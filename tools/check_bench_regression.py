#!/usr/bin/env python3
"""Perf-regression gate over BENCH_micro.json.

Compares a freshly measured bench JSON (schema cspls-bench-micro/2) against
the committed baseline and fails if any kernel's *speedup ratio* regressed by
more than the threshold.  Ratios (batched/scalar and simd/batched) are
dimensionless per-iteration cost ratios measured inside one binary on one
machine, so they transfer across hosts far better than raw iterations/sec —
the gate deliberately never compares absolute throughput.

Usage: check_bench_regression.py FRESH BASELINE [--threshold 0.25]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    schema = data.get("schema", "")
    if not schema.startswith("cspls-bench-micro/"):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return data


def by_instance(data):
    return {r["instance"]: r for r in data.get("results", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated relative drop in a speedup ratio (default "
        "0.25, i.e. fresh must stay above 75%% of the baseline ratio)",
    )
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)
    fresh_by = by_instance(fresh)
    base_by = by_instance(base)

    # Older baselines (schema /1) lack the simd column; gate what both have.
    keys = ["speedup"]
    if base.get("schema") == "cspls-bench-micro/2":
        keys.append("simd_speedup")

    failures = []
    rows = []
    for instance, b in base_by.items():
        f = fresh_by.get(instance)
        if f is None:
            failures.append(f"{instance}: missing from fresh results")
            continue
        if not f.get("paths_agree", False):
            failures.append(f"{instance}: hot paths diverged")
        for key in keys:
            b_ratio = b.get(key, 0.0)
            f_ratio = f.get(key, 0.0)
            if b_ratio <= 0:
                continue
            rel = f_ratio / b_ratio
            ok = rel >= 1.0 - args.threshold
            rows.append((instance, key, b_ratio, f_ratio, rel, ok))
            if not ok:
                failures.append(
                    f"{instance}: {key} regressed {b_ratio:.2f}x -> "
                    f"{f_ratio:.2f}x ({rel:.0%} of baseline)"
                )

    width = max((len(r[0]) for r in rows), default=8)
    print(f"{'instance':<{width}}  {'ratio':<13} {'base':>6} {'fresh':>6} "
          f"{'rel':>5}")
    for instance, key, b_ratio, f_ratio, rel, ok in rows:
        mark = "ok" if ok else "FAIL"
        print(f"{instance:<{width}}  {key:<13} {b_ratio:>5.2f}x "
              f"{f_ratio:>5.2f}x {rel:>4.0%}  {mark}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: {len(rows)} ratios within {args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
