#!/usr/bin/env python3
"""Perf-regression gate over BENCH_micro.json.

Compares a freshly measured bench JSON (schema cspls-bench-micro/2) against
the committed baseline and fails if any kernel's *speedup ratio* regressed by
more than the threshold.  Ratios (batched/scalar and simd/batched) are
dimensionless per-iteration cost ratios measured inside one binary on one
machine, so they transfer across hosts far better than raw iterations/sec —
the gate deliberately never compares absolute throughput.

Usage: check_bench_regression.py FRESH BASELINE [--threshold 0.25]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read bench file: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e}")
    if not isinstance(data, dict):
        sys.exit(f"{path}: expected a JSON object, got {type(data).__name__}")
    schema = data.get("schema", "")
    if not isinstance(schema, str) or not schema.startswith(
        "cspls-bench-micro/"
    ):
        sys.exit(
            f"{path}: unexpected schema {schema!r} "
            "(expected cspls-bench-micro/N)"
        )
    return data


def by_instance(data, path):
    results = data.get("results", [])
    if not isinstance(results, list) or not all(
        isinstance(r, dict) and "instance" in r for r in results
    ):
        sys.exit(
            f"{path}: \"results\" must be a list of objects with an "
            "\"instance\" member"
        )
    if not results:
        sys.exit(f"{path}: \"results\" is empty — nothing to gate")
    return {r["instance"]: r for r in results}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated relative drop in a speedup ratio (default "
        "0.25, i.e. fresh must stay above 75%% of the baseline ratio)",
    )
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)
    fresh_by = by_instance(fresh, args.fresh)
    base_by = by_instance(base, args.baseline)

    # The fresh run must speak a schema at least as new as the baseline:
    # gating a /2 baseline against a /1 fresh file would silently drop the
    # simd column and pass vacuously.
    base_schema = base["schema"]
    fresh_schema = fresh["schema"]
    if fresh_schema != base_schema and fresh_schema < base_schema:
        sys.exit(
            f"schema mismatch: fresh {args.fresh} speaks {fresh_schema!r} "
            f"but baseline {args.baseline} speaks {base_schema!r}; "
            "re-measure with the current bench binary or update the baseline"
        )

    # Older baselines (schema /1) lack the simd column; gate what both have.
    keys = ["speedup"]
    if base_schema == "cspls-bench-micro/2":
        keys.append("simd_speedup")

    failures = []
    rows = []
    for instance, b in base_by.items():
        f = fresh_by.get(instance)
        if f is None:
            renamed = sorted(set(fresh_by) - set(base_by))
            hint = (
                f" (fresh-only instances, possible rename: {', '.join(renamed)})"
                if renamed
                else ""
            )
            failures.append(f"{instance}: missing from fresh results{hint}")
            continue
        if not f.get("paths_agree", False):
            failures.append(f"{instance}: hot paths diverged")
        for key in keys:
            b_ratio = b.get(key, 0.0)
            f_ratio = f.get(key, 0.0)
            if not isinstance(b_ratio, (int, float)) or not isinstance(
                f_ratio, (int, float)
            ):
                failures.append(
                    f"{instance}: {key} is not numeric "
                    f"(base {b_ratio!r}, fresh {f_ratio!r})"
                )
                continue
            if b_ratio <= 0:
                failures.append(
                    f"{instance}: baseline {key} is {b_ratio} — a zero or "
                    "negative baseline ratio gates nothing; re-measure the "
                    "baseline"
                )
                continue
            rel = f_ratio / b_ratio
            ok = rel >= 1.0 - args.threshold
            rows.append((instance, key, b_ratio, f_ratio, rel, ok))
            if not ok:
                failures.append(
                    f"{instance}: {key} regressed {b_ratio:.2f}x -> "
                    f"{f_ratio:.2f}x ({rel:.0%} of baseline)"
                )

    width = max((len(r[0]) for r in rows), default=8)
    print(f"{'instance':<{width}}  {'ratio':<13} {'base':>6} {'fresh':>6} "
          f"{'rel':>5}")
    for instance, key, b_ratio, f_ratio, rel, ok in rows:
        mark = "ok" if ok else "FAIL"
        print(f"{instance:<{width}}  {key:<13} {b_ratio:>5.2f}x "
              f"{f_ratio:>5.2f}x {rel:>4.0%}  {mark}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: {len(rows)} ratios within {args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
