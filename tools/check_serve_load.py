#!/usr/bin/env python3
"""Validate the bench_serve_loadgen CSV schema (CI serve-load smoke).

Usage: check_serve_load.py SERVE_load.csv [--jobs N] [--fused-min-ratio R]

Checks structure and internal consistency, not absolute numbers (latency
depends on the host): the expected lane rows exist, counts add up, the
percentile ladder is ordered, throughput is positive, and the warm path
actually fused (fused_batches/fused_jobs counters are live).  --jobs
asserts the total job count the smoke step requested.  --fused-min-ratio
gates fused vs unfused throughput (e.g. 1.0 = fused must not lose); leave
it off on hosts without idle cores, where fused launches run inline and
the two modes are expected to tie.
"""

import argparse
import csv
import sys

EXPECTED_COLUMNS = [
    "lane", "jobs", "solved", "failed", "cancelled", "p50_ms", "p90_ms",
    "p99_ms", "max_ms", "wall_seconds", "throughput_per_s", "batches",
    "batched_jobs", "givebacks", "samples", "fused_batches", "fused_jobs",
    "unfused_p50_ms", "unfused_p99_ms", "unfused_throughput_per_s",
    "preempted_queued", "preempted_running", "resumed", "rejected_overload",
    "preempt_high_p50_ms", "preempt_low_p50_ms", "preempt_low_p99_ms",
    "preempt_preempted_running", "preempt_resumed", "noresume_high_p50_ms",
    "noresume_low_p50_ms", "noresume_low_p99_ms",
]
EXPECTED_LANES = ["high", "normal", "low", "all"]


def fail(message: str) -> None:
    sys.exit(f"check_serve_load: FAIL: {message}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("--jobs", type=int, default=None,
                        help="expected total job count (the 'all' row)")
    parser.add_argument("--fused-min-ratio", type=float, default=None,
                        help="minimum fused/unfused throughput ratio")
    args = parser.parse_args()

    with open(args.csv_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != EXPECTED_COLUMNS:
            fail(f"bad header: {reader.fieldnames}")
        rows = {row["lane"]: row for row in reader}

    if sorted(rows) != sorted(EXPECTED_LANES):
        fail(f"bad lane set: {sorted(rows)}")

    lane_total = 0
    for lane in EXPECTED_LANES:
        row = rows[lane]
        jobs = int(row["jobs"])
        solved = int(row["solved"])
        failed = int(row["failed"])
        cancelled = int(row["cancelled"])
        if solved + failed + cancelled != jobs:
            fail(f"{lane}: statuses {solved}+{failed}+{cancelled} != {jobs}")
        if failed != 0:
            fail(f"{lane}: {failed} failed jobs")
        ladder = [float(row[c]) for c in ("p50_ms", "p90_ms", "p99_ms",
                                          "max_ms")]
        if jobs > 0 and ladder != sorted(ladder):
            fail(f"{lane}: percentile ladder not ordered: {ladder}")
        if jobs > 0 and ladder[0] <= 0.0:
            fail(f"{lane}: nonpositive p50 {ladder[0]}")
        if float(row["throughput_per_s"]) <= 0.0:
            fail(f"{lane}: nonpositive throughput")
        if float(row["wall_seconds"]) <= 0.0:
            fail(f"{lane}: nonpositive wall time")
        if float(row["unfused_throughput_per_s"]) <= 0.0:
            fail(f"{lane}: nonpositive unfused throughput")
        if jobs > 0 and float(row["unfused_p50_ms"]) > float(
                row["unfused_p99_ms"]):
            fail(f"{lane}: unfused p50 above p99")
        if lane != "all":
            lane_total += jobs

    all_jobs = int(rows["all"]["jobs"])
    if lane_total != all_jobs:
        fail(f"lane totals {lane_total} != all {all_jobs}")
    if args.jobs is not None and all_jobs != args.jobs:
        fail(f"expected {args.jobs} jobs, CSV reports {all_jobs}")

    batches = int(rows["all"]["batches"])
    batched = int(rows["all"]["batched_jobs"])
    if batches <= 0 or batched < all_jobs:
        fail(f"batching counters implausible: {batches} batches, "
             f"{batched} batched jobs for {all_jobs} jobs")
    # Batching must actually batch: strictly fewer claims than jobs.
    if all_jobs >= 100 and batches >= batched:
        fail(f"no batching observed: {batches} batches for {batched} jobs")

    # The fused warm path must be live: multi-job claims become fused
    # launches, so the counters are non-zero and mutually consistent.
    fused_batches = int(rows["all"]["fused_batches"])
    fused_jobs = int(rows["all"]["fused_jobs"])
    if fused_batches <= 0:
        fail("no fused batches: the fused warm path never ran")
    if fused_jobs < 2 * fused_batches:
        fail(f"fused batches not fused: {fused_jobs} jobs in "
             f"{fused_batches} batches (minimum 2 per batch)")
    if fused_jobs > batched:
        fail(f"fused jobs {fused_jobs} exceed batched jobs {batched}")
    # Coverage: with a real load most claims hold >= 2 jobs, so most jobs
    # must have gone through a fused launch (solo claims stay unfused).
    if all_jobs >= 100 and fused_jobs < all_jobs // 2:
        fail(f"fused coverage too low: {fused_jobs} of {all_jobs} jobs")

    # Split preemption counters: present, non-negative, and consistent
    # (every checkpoint-carrying resubmission came from one running
    # suspension).  The throughput passes run uncontended small jobs, so
    # their own counters are usually zero — presence, not magnitude.
    for column in ("preempted_queued", "preempted_running", "resumed",
                   "rejected_overload"):
        if int(rows["all"][column]) < 0:
            fail(f"negative {column}")
    if int(rows["all"]["resumed"]) > int(rows["all"]["preempted_running"]):
        fail("resumed exceeds preempted_running in the throughput pass")

    # The mixed-priority preemption profile must have actually preempted a
    # *running* low job and resumed it from its checkpoint.
    preempted_running = int(rows["all"]["preempt_preempted_running"])
    resumed = int(rows["all"]["preempt_resumed"])
    if preempted_running < 1:
        fail("preemption profile never suspended a running job")
    if resumed < 1:
        fail("preemption profile never resumed from a checkpoint")
    if resumed > preempted_running:
        fail(f"profile resumed {resumed} exceeds "
             f"preempted_running {preempted_running}")
    for prefix in ("preempt", "noresume"):
        high_p50 = float(rows["all"][f"{prefix}_high_p50_ms"])
        low_p50 = float(rows["all"][f"{prefix}_low_p50_ms"])
        low_p99 = float(rows["all"][f"{prefix}_low_p99_ms"])
        if high_p50 <= 0.0 or low_p50 <= 0.0:
            fail(f"{prefix}: nonpositive profile latency")
        if low_p50 > low_p99:
            fail(f"{prefix}: low-lane p50 {low_p50} above p99 {low_p99}")

    ratio = (float(rows["all"]["throughput_per_s"]) /
             float(rows["all"]["unfused_throughput_per_s"]))
    if args.fused_min_ratio is not None and ratio < args.fused_min_ratio:
        fail(f"fused/unfused throughput {ratio:.3f} below "
             f"{args.fused_min_ratio:.3f}")

    print(f"check_serve_load: OK: {all_jobs} jobs, "
          f"p99 {rows['all']['p99_ms']} ms, "
          f"{rows['all']['throughput_per_s']} jobs/s, "
          f"{batches} batches, {fused_batches} fused "
          f"({fused_jobs} jobs), fused/unfused {ratio:.3f}x, "
          f"profile preempted_running {preempted_running} "
          f"resumed {resumed}")


if __name__ == "__main__":
    main()
