#!/usr/bin/env python3
"""Validate the bench_serve_loadgen CSV schema (CI serve-load smoke).

Usage: check_serve_load.py SERVE_load.csv [--jobs N]

Checks structure and internal consistency, not absolute numbers (latency
depends on the host): the expected lane rows exist, counts add up, the
percentile ladder is ordered, and throughput is positive.  --jobs asserts
the total job count the smoke step requested.
"""

import argparse
import csv
import sys

EXPECTED_COLUMNS = [
    "lane", "jobs", "solved", "failed", "cancelled", "p50_ms", "p90_ms",
    "p99_ms", "max_ms", "wall_seconds", "throughput_per_s", "batches",
    "batched_jobs", "givebacks", "samples",
]
EXPECTED_LANES = ["high", "normal", "low", "all"]


def fail(message: str) -> None:
    sys.exit(f"check_serve_load: FAIL: {message}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("--jobs", type=int, default=None,
                        help="expected total job count (the 'all' row)")
    args = parser.parse_args()

    with open(args.csv_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != EXPECTED_COLUMNS:
            fail(f"bad header: {reader.fieldnames}")
        rows = {row["lane"]: row for row in reader}

    if sorted(rows) != sorted(EXPECTED_LANES):
        fail(f"bad lane set: {sorted(rows)}")

    lane_total = 0
    for lane in EXPECTED_LANES:
        row = rows[lane]
        jobs = int(row["jobs"])
        solved = int(row["solved"])
        failed = int(row["failed"])
        cancelled = int(row["cancelled"])
        if solved + failed + cancelled != jobs:
            fail(f"{lane}: statuses {solved}+{failed}+{cancelled} != {jobs}")
        if failed != 0:
            fail(f"{lane}: {failed} failed jobs")
        ladder = [float(row[c]) for c in ("p50_ms", "p90_ms", "p99_ms",
                                          "max_ms")]
        if jobs > 0 and ladder != sorted(ladder):
            fail(f"{lane}: percentile ladder not ordered: {ladder}")
        if jobs > 0 and ladder[0] <= 0.0:
            fail(f"{lane}: nonpositive p50 {ladder[0]}")
        if float(row["throughput_per_s"]) <= 0.0:
            fail(f"{lane}: nonpositive throughput")
        if float(row["wall_seconds"]) <= 0.0:
            fail(f"{lane}: nonpositive wall time")
        if lane != "all":
            lane_total += jobs

    all_jobs = int(rows["all"]["jobs"])
    if lane_total != all_jobs:
        fail(f"lane totals {lane_total} != all {all_jobs}")
    if args.jobs is not None and all_jobs != args.jobs:
        fail(f"expected {args.jobs} jobs, CSV reports {all_jobs}")

    batches = int(rows["all"]["batches"])
    batched = int(rows["all"]["batched_jobs"])
    if batches <= 0 or batched < all_jobs:
        fail(f"batching counters implausible: {batches} batches, "
             f"{batched} batched jobs for {all_jobs} jobs")
    # Batching must actually batch: strictly fewer claims than jobs.
    if all_jobs >= 100 and batches >= batched:
        fail(f"no batching observed: {batches} batches for {batched} jobs")

    print(f"check_serve_load: OK: {all_jobs} jobs, "
          f"p99 {rows['all']['p99_ms']} ms, "
          f"{rows['all']['throughput_per_s']} jobs/s, "
          f"{batches} batches")


if __name__ == "__main__":
    main()
