// Summary claims check (paper §3, Conclusion):
//   "the method is achieving speedups of about 30 with 64 cores, 40 with
//    128 cores and more than 50 with 256 cores, and presents linear
//    speedups on the Costas Array Problem.  Of course speedups depend on
//    the benchmarks and the bigger the benchmark, the better the speedup."
//
// This harness aggregates the Fig.1/Fig.2 pipeline over the CSPLib trio and
// prints claim-vs-measured rows, plus the CAP linearity check and the
// "bigger benchmark, better speedup" monotonicity check (costas at three
// orders).
#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_summary_claims",
      "Checks the paper's summary speedup claims against the simulated "
      "platforms",
      100);
  if (!options) return 0;

  bench::print_preamble(
      "Summary claims — paper §3",
      "Average CSPLib speedups at 64/128/256 cores; CAP linearity; size "
      "monotonicity.");

  const auto platform = sim::ha8000();
  const std::vector<std::size_t> cores{1, 2, 4, 8, 16, 32, 64, 128, 256};

  // --- Claim 1: CSPLib averages at 64/128/256 cores. -----------------------
  const std::vector<std::string> csplib = {"all-interval", "perfect-square",
                                           "magic-square"};
  std::vector<sim::SpeedupCurve> curves;
  for (const auto& name : csplib) {
    const auto spec = bench::spec_for(name, options->paper_scale);
    auto law = bench::measure_walk_law(spec, options->samples, options->seed);
    if (!options->raw_times) {
      law = bench::rescale_to_median(
          law, bench::paper_reference_median_seconds(spec.name));
    }
    curves.push_back(sim::compute_fit_speedup_curve(
        sim::fit_shifted_exponential(law.seconds), platform, cores,
        spec.label()));
  }
  const auto average_at = [&](std::size_t k) {
    double acc = 0.0;
    for (const auto& curve : curves) acc += curve.at(k).speedup;
    return acc / static_cast<double>(curves.size());
  };

  util::Table claims({"claim", "paper", "measured", "note"});
  claims.add_row({"CSPLib speedup @64", "~30",
                  util::Table::num(average_at(64), 1),
                  "mean over the CSPLib trio"});
  claims.add_row({"CSPLib speedup @128", "~40",
                  util::Table::num(average_at(128), 1),
                  "mean over the CSPLib trio"});
  claims.add_row({"CSPLib speedup @256", ">50",
                  util::Table::num(average_at(256), 1),
                  "mean over the CSPLib trio"});

  // --- Claim 2: CAP is (near-)linear. --------------------------------------
  const auto cap_spec = bench::spec_for("costas", options->paper_scale);
  auto cap_law =
      bench::measure_walk_law(cap_spec, options->samples, options->seed);
  if (!options->raw_times) {
    cap_law = bench::rescale_to_median(
        cap_law, bench::paper_reference_median_seconds("costas"));
  }
  const auto cap_curve = sim::compute_fit_speedup_curve(
      sim::fit_shifted_exponential(cap_law.seconds), platform, cores,
      cap_spec.label());
  claims.add_row({"CAP log-log slope", "1.0 (linear)",
                  util::Table::num(sim::loglog_slope(cap_curve), 2),
                  "slope of log2(speedup) vs log2(cores)"});
  claims.add_row({"CAP speedup @256", "~256 (ideal)",
                  util::Table::num(cap_curve.at(256).speedup, 1),
                  "scaled-down instance saturates earlier than n=22"});

  // --- Claim 3: bigger benchmark => better speedup. -------------------------
  // Raw laws on an overhead-free platform: isolates the law-shape effect
  // (the mandatory-descent floor shrinks relative to the mean as instances
  // grow, which is exactly why "the bigger the benchmark, the better the
  // speedup").
  sim::PlatformModel pure;
  pure.name = "no-overhead";
  pure.cores_per_node = 16;
  pure.max_cores = 1 << 20;
  std::vector<double> sizes, speedups;
  util::Table growth(
      {"costas order", "median walk (s)", "floor min/mean", "speedup @256"});
  for (const std::size_t order : {11u, 12u, 13u}) {
    bench::BenchmarkSpec spec;
    spec.name = "costas";
    spec.size = order;
    const auto law =
        bench::measure_walk_law(spec, options->samples, options->seed);
    const auto fit = sim::fit_shifted_exponential(law.seconds);
    const auto curve =
        sim::compute_fit_speedup_curve(fit, pure, cores, spec.label());
    growth.add_row({std::to_string(order),
                    util::Table::sig(law.seconds.median(), 3),
                    util::Table::sig(fit.shift / law.seconds.mean(), 2),
                    util::Table::num(curve.at(256).speedup, 1)});
    sizes.push_back(static_cast<double>(order));
    speedups.push_back(curve.at(256).speedup);
  }
  const bool monotone = speedups.size() == 3 && speedups[0] <= speedups[1] &&
                        speedups[1] <= speedups[2];
  claims.add_row({"bigger => better speedup", "monotone",
                  monotone ? "monotone" : "NOT monotone",
                  "costas orders 11/12/13 @256 cores"});

  std::printf("%s\n", claims.render("Claim-vs-measured").c_str());
  std::printf("%s\n", growth.render("Speedup growth with instance size").c_str());
  std::printf(
      "Note: speedups are evaluated on the shifted-exponential fit of each\n"
      "measured walk law (KS distances ~0.05, i.e. statistically exponential)\n"
      "with the median rescaled to paper-era sequential times, so the fixed\n"
      "platform overheads keep the paper's proportions.  Scaled-down\n"
      "instances carry a smaller mandatory-descent floor than the paper's\n"
      "giant ones, so CSPLib speedups here sit at or above the paper's band\n"
      "while preserving the ordering and the flattening pattern.\n");

  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& curve : curves) {
    for (const auto& p : curve.points) {
      csv_rows.push_back({curve.benchmark, std::to_string(p.cores),
                          util::Table::num(p.speedup, 4)});
    }
  }
  util::CsvWriter csv(options->csv_prefix + "claims.csv");
  csv.write_all({"benchmark", "cores", "speedup"}, csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
