// Figure 1 — "speedups on HA8000": speedup vs number of cores (1..256) for
// all-interval, perfect-square, magic-square and costas on the Hitachi
// HA8000 platform model.
//
// Pipeline (DESIGN.md §2-§3): run the *real* Adaptive Search engine for N
// independent seeded walks per benchmark, take the empirical single-walk
// runtime law, and evaluate the independent multi-walk completion time
// min-of-k exactly on that law under the HA8000 platform model.
#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_fig1_ha8000",
      "Reproduces Fig. 1: multi-walk speedups on HA8000 (1..256 cores)",
      250);
  if (!options) return 0;

  bench::print_preamble(
      "Figure 1 — speedups on HA8000",
      "Speedup = T(1)/T(k) on the HA8000 model; walk law measured with the\n"
      "real solver on scaled-down instances (see DESIGN.md §4).");

  const auto platform = sim::ha8000();
  const auto cores = sim::paper_core_grid();
  std::vector<sim::SpeedupCurve> curves;
  std::vector<sim::SpeedupCurve> fit_curves;
  std::vector<std::vector<std::string>> csv_rows;

  for (const auto& spec : bench::paper_suite(options->paper_scale)) {
    auto law = bench::measure_walk_law(spec, options->samples, options->seed);
    if (!options->raw_times) {
      law = bench::rescale_to_median(
          law, bench::paper_reference_median_seconds(spec.name));
      std::printf("[paper-scale] %s median rescaled to %.0fs (x%.3g)\n",
                  spec.label().c_str(), law.seconds.median(),
                  law.rescale_factor);
    }
    auto curve = sim::compute_speedup_curve(law.seconds, platform, cores,
                                            spec.label());
    const auto fit = sim::fit_shifted_exponential(law.seconds);
    auto fit_curve =
        sim::compute_fit_speedup_curve(fit, platform, cores, spec.label());
    std::printf("[law] %s: shifted-exp fit KS=%.3f shift/mean=%.4f\n",
                spec.label().c_str(), fit.ks_distance,
                fit.shift / law.seconds.mean());
    auto table = bench::make_curve_table();
    bench::append_curve_rows(curve, table, &csv_rows);
    std::printf("%s", table.render(spec.label() + " on " + platform.name).c_str());
    std::printf("\n");
    curves.push_back(std::move(curve));
    fit_curves.push_back(std::move(fit_curve));
  }

  std::printf("%s\n",
              bench::make_figure_table(curves)
                  .render("Fig. 1 series — empirical min-of-k speedups "
                          "(noisy once cores ~ sample count)")
                  .c_str());
  std::printf("%s",
              bench::make_figure_table(fit_curves)
                  .render("Fig. 1 series — shifted-exponential-fit speedups "
                          "(the paper-regime curve)")
                  .c_str());

  util::CsvWriter csv(options->csv_prefix + "curves.csv");
  csv.write_all({"platform", "benchmark", "cores", "expected_seconds",
                 "speedup"},
                csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
