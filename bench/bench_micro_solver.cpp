// Microbenchmarks (google-benchmark) of the solver's hot path: incremental
// cost probes vs full recomputation, committed swaps, projected errors, RNG
// throughput and whole engine iterations.  These are the constants behind
// the "seconds per iteration" calibration used by the cluster simulator.
#include <benchmark/benchmark.h>

#include "core/adaptive_search.hpp"
#include "problems/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace cspls;

std::unique_ptr<csp::Problem> bench_problem(const std::string& name) {
  return problems::make_problem(name, problems::bench_size(name), 7);
}

void BM_RngNext(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000));
  }
}
BENCHMARK(BM_RngBelow);

void BM_CostIfSwap(benchmark::State& state, const std::string& name) {
  auto problem = bench_problem(name);
  util::Xoshiro256 rng(2);
  problem->randomize(rng);
  const std::size_t n = problem->num_variables();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t a = i % n;
    const std::size_t b = (i * 7 + 1) % n;
    ++i;
    if (a == b) continue;
    benchmark::DoNotOptimize(problem->cost_if_swap(a, b));
  }
}

void BM_FullCost(benchmark::State& state, const std::string& name) {
  auto problem = bench_problem(name);
  util::Xoshiro256 rng(3);
  problem->randomize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem->full_cost());
  }
}

void BM_CommittedSwap(benchmark::State& state, const std::string& name) {
  auto problem = bench_problem(name);
  util::Xoshiro256 rng(4);
  problem->randomize(rng);
  const std::size_t n = problem->num_variables();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t a = i % n;
    const std::size_t b = (i * 5 + 1) % n;
    ++i;
    if (a == b) continue;
    benchmark::DoNotOptimize(problem->swap(a, b));
  }
}

void BM_CostOnVariable(benchmark::State& state, const std::string& name) {
  auto problem = bench_problem(name);
  util::Xoshiro256 rng(5);
  problem->randomize(rng);
  const std::size_t n = problem->num_variables();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem->cost_on_variable(i++ % n));
  }
}

void BM_EngineIteration(benchmark::State& state, const std::string& name) {
  // Amortized cost of one engine iteration: run short bounded walks.
  auto prototype = bench_problem(name);
  auto params = core::Params::from_hints(prototype->tuning(),
                                         prototype->num_variables());
  params.restart_limit = 200;
  params.max_restarts = 0;
  params.target_cost = -1;  // unreachable: always runs the full 200
  const core::AdaptiveSearch engine(params);
  util::Xoshiro256 rng(6);
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    auto problem = prototype->clone();
    const auto result = engine.solve(*problem, rng);
    iterations += result.stats.iterations;
    benchmark::DoNotOptimize(result.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iterations));
}

void register_problem_benchmarks() {
  for (const auto& name : problems::problem_names()) {
    benchmark::RegisterBenchmark(("BM_CostIfSwap/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_CostIfSwap(s, name);
                                 });
    benchmark::RegisterBenchmark(("BM_FullCost/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_FullCost(s, name);
                                 });
    benchmark::RegisterBenchmark(("BM_CommittedSwap/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_CommittedSwap(s, name);
                                 });
    benchmark::RegisterBenchmark(("BM_CostOnVariable/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_CostOnVariable(s, name);
                                 });
  }
  for (const std::string name : {"costas", "magic-square"}) {
    benchmark::RegisterBenchmark(("BM_EngineIteration/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_EngineIteration(s, name);
                                 });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_problem_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
