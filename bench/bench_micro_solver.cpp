// Hot-path measurement harness: drives the Adaptive Search engine over every
// kernel through three hot paths in the same binary —
//
//   scalar : csp::ScalarPathProblem, reproducing the pre-batched
//            per-variable virtual loop (PR 1 shape);
//   batched: the kernel's bulk overrides (cost_on_all_variables /
//            best_swap_for) with SIMD force-disabled, i.e. the literal PR 2
//            scalar kernels;
//   simd   : the same bulk overrides with the vector-extension lanes enabled
//            (util/simd.hpp), the PR 6 data-parallel rewrites.
//
// Reports iterations/sec per path plus batched/scalar and simd/batched
// speedups.  Emits machine-readable BENCH_micro.json (schema
// cspls-bench-micro/2) so CI and future PRs can track the perf trajectory;
// exits non-zero if any two paths ever disagree on a fixed-seed trajectory
// (they must be identical — both the batched API and the SIMD lanes are pure
// constant-factor optimizations).
//
// Usage: bench_micro_solver [--quick] [--out FILE] [--seed N]
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_search.hpp"
#include "csp/scalar_path.hpp"
#include "problems/registry.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

using namespace cspls;

struct Workload {
  std::string problem;
  std::size_t size = 0;
  std::uint64_t iteration_budget = 0;  ///< full-mode budget; --quick /10
};

/// Paper-order workloads at (or near) paper sizes where a single walk stays
/// affordable; budgets target roughly 0.2-1 s per path in full mode.
std::vector<Workload> workloads() {
  return {
      {"costas", 18, 20'000},        {"all-interval", 100, 40'000},
      {"all-interval", 200, 15'000}, {"perfect-square", 8, 1'500},
      {"magic-square", 20, 20'000},  {"queens", 100, 20'000},
      {"langford", 32, 40'000},      {"partition", 80, 40'000},
      {"alpha", 26, 40'000},
  };
}

struct PathResult {
  double seconds = 0.0;
  std::uint64_t iterations = 0;
  std::uint64_t cost_evaluations = 0;
  csp::Cost final_cost = 0;
  std::vector<int> solution;

  [[nodiscard]] double iters_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(iterations) / seconds : 0.0;
  }
  [[nodiscard]] double evals_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(cost_evaluations) / seconds
                         : 0.0;
  }
};

/// One bounded, never-terminating walk (target_cost = -1): every path runs
/// the exact same number of engine iterations, so the wall-clock ratio is a
/// pure per-iteration cost ratio.
PathResult run_path(csp::Problem& problem, std::uint64_t budget,
                    std::uint64_t seed) {
  auto params = core::Params::from_hints(problem.tuning(),
                                         problem.num_variables());
  params.restart_limit = budget;
  params.max_restarts = 0;
  params.target_cost = -1;  // unreachable: always run the full budget
  const core::AdaptiveSearch engine(params);
  util::Xoshiro256 rng(seed);
  const auto result = engine.solve(problem, rng);
  PathResult out;
  out.seconds = result.stats.seconds;
  out.iterations = result.stats.iterations;
  out.cost_evaluations = result.stats.cost_evaluations;
  out.final_cost = result.cost;
  out.solution = result.solution;
  return out;
}

bool paths_match(const PathResult& a, const PathResult& b) {
  return a.iterations == b.iterations &&
         a.cost_evaluations == b.cost_evaluations &&
         a.final_cost == b.final_cost && a.solution == b.solution;
}

void append_json_path(std::string& json, const char* key,
                      const PathResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"seconds\": %.6f, \"iters_per_sec\": %.1f, "
                "\"evals_per_sec\": %.1f}",
                key, r.seconds, r.iters_per_sec(), r.evals_per_sec());
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_micro_solver",
                       "Hot-path throughput: scalar vs batched vs SIMD engine "
                       "path per kernel, emitting BENCH_micro.json");
  args.add_flag("quick", "CI smoke mode: 1/10 iteration budgets");
  args.add_string("out", "BENCH_micro.json", "JSON output path");
  args.add_uint64("seed", 0xB5EED, "master RNG seed");
  if (!args.parse(argc, argv)) {
    return args.help_requested() ? 0 : 2;
  }
  const bool quick = args.flag("quick");
  const auto seed = args.get_uint64("seed");

  std::printf("# bench_micro_solver — scalar vs batched vs SIMD hot path%s\n",
              quick ? " (--quick)" : "");
  std::printf("# SIMD tier: %s\n", util::simd::tier_name());

  util::Table table({"instance", "vars", "iters", "scalar it/s",
                     "batched it/s", "simd it/s", "batched/scalar",
                     "simd/batched"});

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"cspls-bench-micro/2\",\n";
  json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  json += std::string("  \"simd_tier\": \"") + util::simd::tier_name() +
          "\",\n";
  json += "  \"results\": [\n";

  bool paths_agree = true;
  bool first = true;
  for (const auto& w : workloads()) {
    const std::uint64_t budget =
        quick ? std::max<std::uint64_t>(200, w.iteration_budget / 10)
              : w.iteration_budget;

    // Batched/simd paths: the kernel's own bulk overrides; which inner loop
    // they run is toggled per measurement via simd::set_force_scalar.
    auto batched_problem = problems::make_problem(w.problem, w.size, 7);
    auto simd_problem = problems::make_problem(w.problem, w.size, 7);
    const std::string instance = batched_problem->instance_description();
    const std::size_t vars = batched_problem->num_variables();
    // Scalar path: same kernel behind the de-optimizing adapter.
    csp::ScalarPathProblem scalar_problem(
        problems::make_problem(w.problem, w.size, 7));

    // Warm-up on throwaway clones (touch caches, fault pages) — the measured
    // problems must keep their pristine canonical state so all paths start
    // from the identical configuration.
    {
      const auto warm_budget = std::max<std::uint64_t>(budget / 10, 50);
      util::simd::set_force_scalar(true);
      auto warm = batched_problem->clone();
      (void)run_path(*warm, warm_budget, seed ^ 0xFFFF);
      auto warm_scalar = scalar_problem.clone();
      (void)run_path(*warm_scalar, warm_budget, seed ^ 0xFFFF);
      util::simd::set_force_scalar(false);
      auto warm_simd = simd_problem->clone();
      (void)run_path(*warm_simd, warm_budget, seed ^ 0xFFFF);
    }
    util::simd::set_force_scalar(true);
    const PathResult batched = run_path(*batched_problem, budget, seed);
    const PathResult scalar = run_path(scalar_problem, budget, seed);
    util::simd::set_force_scalar(false);
    const PathResult simd = run_path(*simd_problem, budget, seed);

    // The three paths must walk the identical trajectory: same iteration
    // count, same evaluation count, same final configuration.
    const bool agree =
        paths_match(batched, scalar) && paths_match(batched, simd);
    if (!agree) {
      std::fprintf(stderr,
                   "ERROR: scalar/batched/simd paths diverged on %s\n",
                   instance.c_str());
      paths_agree = false;
    }

    const double speedup = scalar.seconds > 0.0 && batched.seconds > 0.0
                               ? scalar.seconds / batched.seconds
                               : 0.0;
    const double simd_speedup = batched.seconds > 0.0 && simd.seconds > 0.0
                                    ? batched.seconds / simd.seconds
                                    : 0.0;

    char cell[64];
    std::vector<std::string> row;
    row.push_back(instance);
    row.push_back(std::to_string(vars));
    row.push_back(std::to_string(batched.iterations));
    std::snprintf(cell, sizeof(cell), "%.0f", scalar.iters_per_sec());
    row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%.0f", batched.iters_per_sec());
    row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%.0f", simd.iters_per_sec());
    row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%.2fx", speedup);
    row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%.2fx", simd_speedup);
    row.push_back(cell);
    table.add_row(row);

    if (!first) json += ",\n";
    first = false;
    json += "    {\n";
    json += "      \"problem\": \"" + w.problem + "\",\n";
    json += "      \"instance\": \"" + instance + "\",\n";
    json += "      \"variables\": " + std::to_string(vars) + ",\n";
    json += "      \"iterations\": " + std::to_string(batched.iterations) +
            ",\n";
    json += "      \"cost_evaluations\": " +
            std::to_string(batched.cost_evaluations) + ",\n";
    append_json_path(json, "scalar", scalar);
    json += ",\n";
    append_json_path(json, "batched", batched);
    json += ",\n";
    append_json_path(json, "simd", simd);
    json += ",\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "      \"speedup\": %.3f,\n      \"simd_speedup\": %.3f,\n",
                  speedup, simd_speedup);
    json += buf;
    json += std::string("      \"paths_agree\": ") +
            (agree ? "true" : "false") + "\n";
    json += "    }";
  }
  json += "\n  ]\n}\n";

  std::fputs(table.render("hot-path throughput").c_str(), stdout);

  const std::string& out_path = args.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "ERROR: cannot write %s\n", out_path.c_str());
    return 3;
  }
  out << json;
  out.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!paths_agree) {
    std::fprintf(stderr,
                 "FAIL: at least one kernel's batched/simd path diverged "
                 "from the scalar reference\n");
    return 1;
  }
  return 0;
}
