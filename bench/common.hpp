// Shared support for the experiment harness binaries (bench_*).
//
// Every harness runs with no arguments (the reproduction driver executes
// them bare) and prints the paper's rows/series as aligned tables, mirrored
// to CSV files in the working directory.  DESIGN.md §2 maps each binary to
// its figure/table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "csp/problem.hpp"
#include "sim/order_stats.hpp"
#include "sim/platform.hpp"
#include "sim/sampling.hpp"
#include "sim/speedup.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace cspls::bench {

/// One benchmark instance of the experiment suite.
struct BenchmarkSpec {
  std::string name;
  std::size_t size = 0;
  std::uint64_t instance_seed = 7;  ///< for generated instances

  [[nodiscard]] std::unique_ptr<csp::Problem> instantiate() const;
  [[nodiscard]] std::string label() const;
  /// Canonical spec string ("costas:13@7") — what the JSON solve API and
  /// problems::parse_spec understand.
  [[nodiscard]] std::string spec_string() const;
};

/// The paper's four benchmarks at harness scale (DESIGN.md §4) or at the
/// paper's own scale (--paper-scale: expect hours of sequential sampling).
[[nodiscard]] std::vector<BenchmarkSpec> paper_suite(bool paper_scale);

/// Single benchmark spec at harness scale.  Accepts either a bare name
/// ("costas", size chosen by scale) or a full problems::parse_spec string
/// ("costas:18", explicit size wins).  Throws std::invalid_argument with
/// the registry's diagnostic on unknown names.
[[nodiscard]] BenchmarkSpec spec_for(const std::string& name,
                                     bool paper_scale = false);

/// The measured single-walk law of a spec, in estimated platform-seconds:
/// iteration counts (exact, reproducible) scaled by the measured
/// seconds-per-iteration of this host.  Logs a one-line summary to stderr.
struct WalkLaw {
  sim::EmpiricalDistribution seconds;
  double solve_rate = 0.0;
  double sec_per_iter = 0.0;
  std::size_t samples = 0;
  /// Applied paper-scale factor (1.0 when measuring raw host times).
  double rescale_factor = 1.0;
};
[[nodiscard]] WalkLaw measure_walk_law(const BenchmarkSpec& spec,
                                       std::size_t samples,
                                       std::uint64_t seed);

/// Representative sequential single-walk median of the paper's *own*
/// instances, in seconds (EXPERIMENTS.md documents the provenance): the
/// figure harnesses rescale the measured law's median to this value so that
/// platform overheads (fixed seconds) keep the same proportion to compute
/// time as in the paper's runs.  The law's *shape* — which determines the
/// speedup curve — is untouched.
[[nodiscard]] double paper_reference_median_seconds(const std::string& name);

/// Rescale a measured law so its median equals `target_median` seconds.
[[nodiscard]] WalkLaw rescale_to_median(WalkLaw law, double target_median);

/// Append a speedup curve as rows "cores, E[T], q10, q90, speedup".
void append_curve_rows(const sim::SpeedupCurve& curve, util::Table& table,
                       std::vector<std::vector<std::string>>* csv_rows);

/// Standard header for the per-curve tables.
[[nodiscard]] util::Table make_curve_table();

/// Combined Fig-1/Fig-2-style table: rows = core counts, one speedup column
/// per benchmark curve (all curves must share the core grid).
[[nodiscard]] util::Table make_figure_table(
    const std::vector<sim::SpeedupCurve>& curves);

/// Print the standard preamble: what this binary reproduces and on what.
void print_preamble(const std::string& experiment_id,
                    const std::string& description);

/// Common CLI options shared by the figure harnesses.
struct HarnessOptions {
  std::size_t samples = 120;
  std::uint64_t seed = 0xC5B15;
  bool paper_scale = false;
  bool raw_times = false;  ///< disable the paper-scale time rescaling
  /// CI smoke mode: tiny instances, minimal repetitions, full output
  /// schema — the perf-smoke step validates the CSVs, not the numbers.
  bool quick = false;
  std::string csv_prefix;
};
[[nodiscard]] std::optional<HarnessOptions> parse_harness_options(
    int argc, const char* const* argv, const std::string& program,
    const std::string& description, std::size_t default_samples = 120);

}  // namespace cspls::bench
