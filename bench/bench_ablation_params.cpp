// Ablation 2 — Adaptive Search mechanism ablations.
//
// The engine combines four escape mechanisms: variable freezing (tabu),
// partial resets, plateau walking and worsening-move acceptance.  This
// harness disables each in turn on two representative landscapes (costas:
// descent+perturbation regime; magic-square: plateau regime) and measures
// the median/solve-rate impact — the quantitative version of DESIGN.md's
// per-model tuning notes.
#include <cstdio>

#include "common.hpp"
#include "core/adaptive_search.hpp"
#include "parallel/walker_pool.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

/// One budgeted walk per sample, run through the sequential WalkerPool.
std::vector<cspls::parallel::WalkerOutcome> sequential_walks(
    const cspls::csp::Problem& prototype, std::size_t samples,
    std::uint64_t seed, const cspls::core::Params& params) {
  if (samples == 0) return {};
  cspls::parallel::WalkerPoolOptions pool;
  pool.num_walkers = samples;
  pool.master_seed = seed;
  pool.params = params;
  pool.scheduling = cspls::parallel::Scheduling::kSequential;
  pool.termination = cspls::parallel::Termination::kBestAfterBudget;
  return cspls::parallel::WalkerPool(pool).run(prototype).walkers;
}

struct Variant {
  const char* label;
  void (*mutate)(cspls::core::Params&);
};

const Variant kVariants[] = {
    {"default (tuned)", [](cspls::core::Params&) {}},
    {"no tabu (freeze=0)",
     [](cspls::core::Params& p) {
       p.freeze_loc_min = 0;
       p.freeze_swap = 0;
     }},
    {"no resets",
     [](cspls::core::Params& p) { p.reset_limit = UINT32_MAX; }},
    {"no plateau walk",
     [](cspls::core::Params& p) { p.prob_accept_plateau = 0.0; }},
    {"no worsening moves",
     [](cspls::core::Params& p) { p.prob_accept_local_min = 0.0; }},
    {"aggressive resets (limit=1)",
     [](cspls::core::Params& p) { p.reset_limit = 1; }},
    {"huge reset fraction (0.8)",
     [](cspls::core::Params& p) { p.reset_fraction = 0.8; }},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_ablation_params",
      "Ablation: Adaptive Search mechanism knock-outs", 24);
  if (!options) return 0;

  bench::print_preamble(
      "Ablation 2 — engine mechanism knock-outs",
      "Median single-walk effort with each mechanism disabled "
      "(budgeted walks; '-' = never solved).");

  std::vector<std::vector<std::string>> csv_rows;
  for (const char* name : {"costas", "magic-square"}) {
    const auto spec = bench::spec_for(name, false);
    const auto prototype = spec.instantiate();
    const auto tuned = core::Params::from_hints(prototype->tuning(),
                                                prototype->num_variables());

    util::Table table(
        {"variant", "solved", "med iters", "q90 iters", "med ms"});
    for (const auto& variant : kVariants) {
      core::Params params = tuned;
      variant.mutate(params);
      params.max_restarts = 0;  // one budgeted walk per sample
      // Knocked-out variants may never solve; bound each walk so the
      // harness terminates (the solved column then reads the damage).
      params.restart_limit =
          std::min<std::uint64_t>(params.restart_limit, 60'000);
      const auto walks =
          sequential_walks(*prototype, options->samples, options->seed, params);
      std::vector<double> iters, ms;
      int solved = 0;
      for (const auto& w : walks) {
        if (!w.result.solved) continue;
        ++solved;
        iters.push_back(static_cast<double>(w.result.stats.iterations));
        ms.push_back(w.result.stats.seconds * 1e3);
      }
      const bool any = solved > 0;
      table.add_row({variant.label,
                     std::to_string(solved) + "/" +
                         std::to_string(options->samples),
                     any ? util::Table::num(util::quantile(iters, 0.5), 0)
                         : "-",
                     any ? util::Table::num(util::quantile(iters, 0.9), 0)
                         : "-",
                     any ? util::Table::num(util::quantile(ms, 0.5), 2)
                         : "-"});
      csv_rows.push_back({spec.label(), variant.label,
                          std::to_string(solved),
                          any ? util::Table::num(util::quantile(iters, 0.5), 0)
                              : ""});
    }
    std::printf("%s\n", table.render(spec.label()).c_str());
  }

  // --- Restart-schedule comparison (fixed vs Luby) with restarts on. ------
  for (const char* name : {"costas", "magic-square"}) {
    const auto spec = bench::spec_for(name, false);
    const auto prototype = spec.instantiate();
    const auto tuned = core::Params::from_hints(prototype->tuning(),
                                                prototype->num_variables());
    util::Table table({"schedule", "base budget", "solved", "med iters",
                       "q90 iters"});
    for (const auto schedule :
         {core::RestartSchedule::kFixed, core::RestartSchedule::kLuby}) {
      core::Params params = tuned;
      params.restart_schedule = schedule;
      // A deliberately tight base budget: the regime where the schedule
      // matters (with a generous budget both behave identically).
      params.restart_limit = 2'000;
      params.max_restarts = 200;
      const auto walks =
          sequential_walks(*prototype, options->samples, options->seed, params);
      std::vector<double> iters;
      int solved = 0;
      for (const auto& w : walks) {
        if (!w.result.solved) continue;
        ++solved;
        iters.push_back(static_cast<double>(w.result.stats.iterations));
      }
      table.add_row({schedule == core::RestartSchedule::kLuby ? "luby"
                                                              : "fixed",
                     "2000",
                     std::to_string(solved) + "/" +
                         std::to_string(options->samples),
                     util::Table::num(util::quantile(iters, 0.5), 0),
                     util::Table::num(util::quantile(iters, 0.9), 0)});
    }
    std::printf("%s\n",
                table.render(spec.label() + " — restart schedule").c_str());
  }

  std::printf(
      "Reading: the load-bearing mechanism differs per landscape.  costas\n"
      "is an iterated-descent regime: without partial resets nothing ever\n"
      "solves, while tabu/plateau knobs barely alter the trajectory (its\n"
      "tuned parameters already disable plateau and worsening moves, so\n"
      "those rows coincide with the default by construction).  magic-square\n"
      "is a plateau regime: removing tabu or plateau walking collapses the\n"
      "solve rate, aggressive resets destroy progress, and at this scaled\n"
      "size the search is young enough that disabling resets even helps —\n"
      "at paper scale (200x200) the reset mechanism becomes essential.\n");

  util::CsvWriter csv(options->csv_prefix + "variants.csv");
  csv.write_all({"benchmark", "variant", "solved", "median_iters"}, csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
