// Real-hardware multi-walk: the methodological anchor of the simulation.
//
// The figure harnesses extrapolate to 256 cores through order statistics;
// this binary runs the *actual* std::jthread racing engine on this machine
// and compares the measured time-to-solution against the same order-
// statistics prediction at the core counts this host actually has.  If the
// prediction is honest, measured and predicted speedups must agree at
// k <= hardware cores (beyond that, oversubscription flattens wall-clock
// gains while total work keeps shrinking).
#include <cstdio>
#include <thread>

#include "common.hpp"
#include "parallel/walker_pool.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_real_multiwalk",
      "Real threaded multi-walk vs order-statistics prediction", 80);
  if (!options) return 0;

  const unsigned hw = std::thread::hardware_concurrency();
  bench::print_preamble(
      "Real multi-walk — measured vs predicted (this host)",
      "Hardware threads available: " + std::to_string(hw));

  const auto spec = bench::spec_for("costas", false);
  const auto prototype = spec.instantiate();

  // Prediction from the sequential law.
  const auto law =
      bench::measure_walk_law(spec, options->samples, options->seed);
  sim::PlatformModel host;
  host.name = "this-host";
  host.cores_per_node = hw == 0 ? 2 : hw;
  host.max_cores = 64;
  host.core_speed = 1.0;

  const std::vector<std::size_t> ks{1, 2, 4, 8};
  const auto curve =
      sim::compute_speedup_curve(law.seconds, host, ks, spec.label());

  // Measurement: repeat the race, take median time-to-solution.
  constexpr int kRepetitions = 15;
  util::Table table({"walkers", "measured med T (s)", "measured speedup",
                     "predicted E[T] (s)", "predicted speedup", "solved"});
  std::vector<std::vector<std::string>> csv_rows;
  double t1 = 0.0;
  for (const std::size_t k : ks) {
    std::vector<double> times;
    int solved = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      parallel::WalkerPoolOptions pool;
      pool.num_walkers = k;
      pool.master_seed = options->seed + static_cast<std::uint64_t>(rep) * 1000;
      pool.scheduling = parallel::Scheduling::kThreads;
      pool.termination = parallel::Termination::kFirstFinisher;
      const auto report = parallel::WalkerPool(pool).run(*prototype);
      if (report.solved) {
        ++solved;
        times.push_back(report.time_to_solution_seconds);
      }
    }
    const double median = util::quantile(times, 0.5);
    if (k == 1) t1 = median;
    const double measured_speedup = median > 0.0 ? t1 / median : 0.0;
    table.add_row({std::to_string(k), util::Table::sig(median, 3),
                   util::Table::num(measured_speedup, 2),
                   util::Table::sig(curve.at(k).expected_seconds, 3),
                   util::Table::num(curve.at(k).speedup, 2),
                   std::to_string(solved) + "/" +
                       std::to_string(kRepetitions)});
    csv_rows.push_back({std::to_string(k), util::Table::sig(median, 5),
                        util::Table::num(measured_speedup, 3),
                        util::Table::num(curve.at(k).speedup, 3)});
  }

  std::printf("%s\n",
              table.render(spec.label() + ", " + std::to_string(kRepetitions) +
                           " races per point")
                  .c_str());
  std::printf(
      "Expected agreement holds for k <= %u (hardware threads); beyond\n"
      "that, walkers time-share cores: wall-clock flattens even though the\n"
      "winning walk keeps getting shorter — the simulator's per-core model\n"
      "is the right extrapolation for real clusters, not oversubscription.\n",
      hw);

  util::CsvWriter csv(options->csv_prefix + "measured.csv");
  csv.write_all(
      {"walkers", "measured_median_s", "measured_speedup", "predicted_speedup"},
      csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
