// Local search vs complete (propagation-style) search.
//
// The paper's opening argument: local search "can tackle CSP instances far
// beyond the reach of classical propagation-based solvers".  This harness
// quantifies that on this repository's own complete-search baseline:
// time-to-first-solution of backtracking-with-pruning vs a single Adaptive
// Search walk, across growing instance sizes, showing the crossover and the
// divergence.
#include <cstdio>

#include "baseline/backtracker.hpp"
#include "baseline/checkers.hpp"
#include "common.hpp"
#include "core/adaptive_search.hpp"
#include "problems/registry.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

struct CompleteResult {
  bool found = false;
  double seconds = 0.0;
  std::uint64_t nodes = 0;
  bool hit_limit = false;
};

CompleteResult run_complete(const std::string& name, std::size_t n,
                            std::uint64_t node_budget) {
  using namespace cspls;
  baseline::SearchLimits limits;
  limits.max_nodes = node_budget;
  util::Stopwatch watch;
  baseline::SearchOutcome out;
  if (name == "queens") {
    baseline::QueensChecker checker(n);
    out = baseline::backtrack_search(checker, limits);
  } else if (name == "costas") {
    baseline::CostasChecker checker(n);
    out = baseline::backtrack_search(checker, limits);
  } else {
    baseline::AllIntervalChecker checker(n);
    out = baseline::backtrack_search(checker, limits);
  }
  return CompleteResult{out.found, watch.elapsed_seconds(), out.nodes,
                        out.hit_limit};
}

double run_local_median(const std::string& name, std::size_t n, int reps,
                        std::uint64_t seed) {
  using namespace cspls;
  const auto prototype = problems::make_problem(name, n);
  auto params = core::Params::from_hints(prototype->tuning(),
                                         prototype->num_variables());
  params.max_restarts = 1000;
  const core::AdaptiveSearch engine(params);
  const util::RngStreamFactory streams(seed);
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    auto problem = prototype->clone();
    util::Xoshiro256 rng = streams.stream(static_cast<std::uint64_t>(rep));
    const auto result = engine.solve(*problem, rng);
    if (result.solved) times.push_back(result.stats.seconds);
  }
  return util::quantile(times, 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_vs_complete",
      "Local search vs complete backtracking: time to first solution", 9);
  if (!options) return 0;

  bench::print_preamble(
      "Local search vs complete search (paper §1 motivation)",
      "Time to first solution; complete search capped at 50M nodes.");

  constexpr std::uint64_t kNodeBudget = 50'000'000;
  struct Row {
    const char* benchmark;
    std::vector<std::size_t> sizes;
  };
  const Row rows[] = {
      {"queens", {8, 16, 24, 28}},
      {"costas", {8, 10, 12, 13}},
      {"all-interval", {8, 10, 12, 14}},
  };

  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& row : rows) {
    util::Table table({"n", "complete T (s)", "nodes", "complete status",
                       "local med T (s)", "local/complete"});
    for (const std::size_t n : row.sizes) {
      const CompleteResult complete =
          run_complete(row.benchmark, n, kNodeBudget);
      const double local = run_local_median(
          row.benchmark, n, static_cast<int>(options->samples),
          options->seed);
      const std::string status = complete.hit_limit
                                     ? "BUDGET EXHAUSTED"
                                     : (complete.found ? "ok" : "no solution");
      const std::string ratio =
          (complete.found && !complete.hit_limit && local > 0.0)
              ? util::Table::sig(local / complete.seconds, 2)
              : "-";
      table.add_row({std::to_string(n), util::Table::sig(complete.seconds, 3),
                     std::to_string(complete.nodes), status,
                     util::Table::sig(local, 3), ratio});
      csv_rows.push_back({row.benchmark, std::to_string(n),
                          util::Table::sig(complete.seconds, 5), status,
                          util::Table::sig(local, 5)});
    }
    std::printf("%s\n", table.render(std::string(row.benchmark)).c_str());
  }

  std::printf(
      "Reading: backtracking wins on small instances (microseconds, and it\n"
      "can prove infeasibility), but its time explodes combinatorially; the\n"
      "local-search walk grows much more gently — the paper's motivation\n"
      "for constraint-based local search, and the regime where multi-walk\n"
      "parallelism then multiplies the advantage.\n");

  util::CsvWriter csv(options->csv_prefix + "crossover.csv");
  csv.write_all({"benchmark", "n", "complete_s", "status", "local_median_s"},
                csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
