// Ablation 1 — inter-walker communication under the WalkerPool runtime.
//
// The paper's future-work section asks whether limited communication
// (recording "interesting crossroads" and restarting from them) can beat
// the zero-communication scheme, and warns that "the global cost of a
// configuration is not a reliable information since given by heuristic
// error functions".  Its follow-ups sweep exactly this space: the X10 study
// varies inter-place elite exchange and the Cell BE study is constrained to
// bounded-degree on-chip topologies.
//
// This harness sweeps the full pluggable matrix on identical walker
// populations: Neighborhood (complete / ring / torus / hypercube) x
// ExchangeStrategy (elite / migration / decay-elite) x CommMode (on_reset /
// async gossip) x publish period x adoption probability, against the
// independent baseline (isolated x none).  Two metrics per cell:
//   * first-finisher: total search effort (iterations summed over walkers)
//     and time to solution, plus the exchange-traffic counters (publishes,
//     improving accepts, adoptions);
//   * anytime: best-cost-after-budget curves (sim::anytime_curve over the
//     walkers' cost traces), because communication mostly reshapes the
//     anytime profile, which first-finisher medians cannot see — the
//     gossip-vs-on-reset comparison lives in this CSV.
//
// Outputs: <prefix>schemes.csv (one row per cell) and <prefix>anytime.csv
// (one row per cell x budget).  --quick runs a tiny instance with 2 reps
// and a reduced knob sweep for the CI smoke; --paper-scale uses the paper's
// instance sizes.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "parallel/policy_names.hpp"
#include "parallel/walker_pool.hpp"
#include "sim/anytime.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

using namespace cspls;

/// One point of the sweep: a full communication policy.
struct Cell {
  parallel::CommunicationPolicy policy;

  [[nodiscard]] bool baseline() const { return !policy.exchanging(); }
};

struct CellResult {
  double median_effort = 0.0;   // total iterations across walkers
  double median_time = 0.0;     // time to solution, seconds
  double mean_publishes = 0.0;  // publish events per race (any kind)
  double mean_accepted = 0.0;   // improving keep-best accepts per race
  double mean_adoptions = 0.0;  // configurations actually adopted per race
  int solved = 0;
  /// Per-rep traces of every walker (anytime aggregation input).
  std::vector<std::vector<core::WalkerTrace>> rep_traces;
};

CellResult run_cell(const csp::Problem& prototype, std::size_t walkers,
                    std::uint64_t seed, int reps, const Cell& cell,
                    std::uint64_t trace_period) {
  CellResult out;
  std::vector<double> efforts, times;
  double publishes = 0.0, accepted = 0.0, adoptions = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    parallel::WalkerPoolOptions pool;
    pool.num_walkers = walkers;
    pool.master_seed = seed + static_cast<std::uint64_t>(rep) * 4099;
    pool.scheduling = parallel::Scheduling::kThreads;
    pool.termination = parallel::Termination::kFirstFinisher;
    pool.communication = cell.policy;
    pool.trace.enabled = true;  // RNG-neutral: trajectories are unchanged
    pool.trace.sample_period = trace_period;
    auto report = parallel::WalkerPool(pool).run(prototype);
    publishes += static_cast<double>(report.comm_publishes);
    accepted += static_cast<double>(report.elite_accepted);
    adoptions += static_cast<double>(report.comm_adoptions);
    std::vector<core::WalkerTrace> traces;
    traces.reserve(report.walkers.size());
    for (auto& w : report.walkers) traces.push_back(std::move(w.trace));
    out.rep_traces.push_back(std::move(traces));
    if (report.solved) {
      ++out.solved;
      efforts.push_back(static_cast<double>(report.total_iterations()));
      times.push_back(report.time_to_solution_seconds);
    }
  }
  out.median_effort = util::quantile(efforts, 0.5);
  out.median_time = util::quantile(times, 0.5);
  out.mean_publishes = publishes / reps;
  out.mean_accepted = accepted / reps;
  out.mean_adoptions = adoptions / reps;
  return out;
}

/// Median across reps of the pool's best-cost-at-budget, one row per budget.
void append_anytime_rows(const std::string& benchmark, const Cell& cell,
                         const CellResult& result,
                         std::span<const std::uint64_t> budgets,
                         std::vector<std::vector<std::string>>& rows) {
  std::vector<std::vector<sim::AnytimePoint>> curves;
  curves.reserve(result.rep_traces.size());
  for (const auto& traces : result.rep_traces) {
    curves.push_back(sim::anytime_curve(traces, budgets));
  }
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    std::vector<double> costs;
    for (const auto& curve : curves) {
      if (curve[b].best_cost != csp::kInfiniteCost) {
        costs.push_back(static_cast<double>(curve[b].best_cost));
      }
    }
    if (costs.empty()) continue;
    rows.push_back({benchmark,
                    std::string(parallel::name_of(cell.policy.neighborhood)),
                    std::string(parallel::name_of(cell.policy.exchange)),
                    std::string(parallel::name_of(cell.policy.mode)),
                    std::to_string(cell.policy.period),
                    util::Table::num(cell.policy.adopt_probability, 2),
                    std::to_string(budgets[b]),
                    util::Table::num(util::quantile(costs, 0.5), 1)});
  }
}

std::vector<std::string> scheme_row(const std::string& benchmark,
                                    const Cell& cell, const CellResult& r,
                                    int reps) {
  return {benchmark,
          std::string(parallel::name_of(cell.policy.neighborhood)),
          std::string(parallel::name_of(cell.policy.exchange)),
          std::string(parallel::name_of(cell.policy.mode)),
          std::to_string(cell.policy.period),
          util::Table::num(cell.policy.adopt_probability, 2),
          std::to_string(cell.policy.decay),
          std::to_string(r.solved),
          std::to_string(reps),
          util::Table::num(r.median_effort, 0),
          util::Table::sig(r.median_time, 3),
          util::Table::num(r.mean_publishes, 1),
          util::Table::num(r.mean_accepted, 1),
          util::Table::num(r.mean_adoptions, 1)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_ablation_communication",
      "Ablation: WalkerPool communication — Neighborhood (complete/ring/"
      "torus/hypercube) x ExchangeStrategy (elite/migration/decay-elite) x "
      "CommMode (on_reset/async gossip) vs the independent baseline",
      0);
  if (!options) return 0;

  bench::print_preamble(
      "Ablation 1 — inter-walker communication (paper future work)",
      "Neighborhood x exchange x mode sweep vs the independent scheme; "
      "effort = total iterations across walkers, plus anytime "
      "best-cost-after-budget curves from the walkers' cost traces "
      "(async gossip vs restart-time adoption).");

  const bool quick = options->quick;
  const int reps = quick ? 2 : 9;
  constexpr std::size_t kWalkers = 4;
  constexpr std::uint64_t kTracePeriod = 100;
  const std::uint64_t kDecay = 2 * kWalkers;  // forget after ~2 pool rounds

  const std::vector<const char*> instances =
      quick ? std::vector<const char*>{"costas:10"}
            : std::vector<const char*>{"costas", "magic-square"};
  const std::vector<std::uint64_t> periods =
      quick ? std::vector<std::uint64_t>{100}
            : std::vector<std::uint64_t>{100, 1000};
  const std::vector<double> adopts =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.75};

  std::vector<std::vector<std::string>> scheme_rows;
  std::vector<std::vector<std::string>> anytime_rows;
  for (const char* name : instances) {
    const auto spec = bench::spec_for(name, options->paper_scale);
    const auto prototype = spec.instantiate();

    util::Table table({"neighborhood", "exchange", "mode", "period",
                       "p(adopt)", "decay", "solved", "med effort (iters)",
                       "med T (s)", "publishes", "accepted", "adoptions",
                       "vs independent"});

    // Baseline: the paper's independent scheme.  Its traces also fix the
    // per-benchmark budget grid, so every cell's anytime curve is sampled
    // at comparable budgets.
    Cell baseline;
    baseline.policy.period = 0;
    baseline.policy.adopt_probability = 0.0;
    const CellResult indep = run_cell(*prototype, kWalkers, options->seed,
                                      reps, baseline, kTracePeriod);
    std::vector<core::WalkerTrace> grid_traces;
    for (const auto& traces : indep.rep_traces) {
      grid_traces.insert(grid_traces.end(), traces.begin(), traces.end());
    }
    const std::vector<std::uint64_t> budgets =
        sim::anytime_budget_grid(grid_traces, 8);

    table.add_row({"isolated", "none", "-", "-", "-", "-",
                   std::to_string(indep.solved) + "/" + std::to_string(reps),
                   util::Table::num(indep.median_effort, 0),
                   util::Table::sig(indep.median_time, 3), "0", "0", "0",
                   "1.00x"});
    scheme_rows.push_back(scheme_row(spec.label(), baseline, indep, reps));
    append_anytime_rows(spec.label(), baseline, indep, budgets, anytime_rows);

    for (const auto neighborhood :
         {parallel::Neighborhood::kComplete, parallel::Neighborhood::kRing,
          parallel::Neighborhood::kTorus,
          parallel::Neighborhood::kHypercube}) {
      for (const auto exchange :
           {parallel::Exchange::kElite, parallel::Exchange::kMigration,
            parallel::Exchange::kDecayElite}) {
        for (const auto mode :
             {parallel::CommMode::kOnReset, parallel::CommMode::kAsync}) {
          for (const std::uint64_t period : periods) {
            for (const double adopt : adopts) {
              Cell cell;
              cell.policy.neighborhood = neighborhood;
              cell.policy.exchange = exchange;
              cell.policy.mode = mode;
              cell.policy.period = period;
              cell.policy.adopt_probability = adopt;
              cell.policy.decay =
                  exchange == parallel::Exchange::kDecayElite ? kDecay : 0;
              const CellResult dep = run_cell(*prototype, kWalkers,
                                              options->seed, reps, cell,
                                              kTracePeriod);
              const double ratio =
                  indep.median_effort > 0.0
                      ? dep.median_effort / indep.median_effort
                      : 0.0;
              table.add_row(
                  {std::string(parallel::name_of(neighborhood)),
                   std::string(parallel::name_of(exchange)),
                   std::string(parallel::name_of(mode)),
                   std::to_string(period), util::Table::num(adopt, 2),
                   std::to_string(cell.policy.decay),
                   std::to_string(dep.solved) + "/" + std::to_string(reps),
                   util::Table::num(dep.median_effort, 0),
                   util::Table::sig(dep.median_time, 3),
                   util::Table::num(dep.mean_publishes, 1),
                   util::Table::num(dep.mean_accepted, 1),
                   util::Table::num(dep.mean_adoptions, 1),
                   util::Table::num(ratio, 2) + "x"});
              scheme_rows.push_back(
                  scheme_row(spec.label(), cell, dep, reps));
              append_anytime_rows(spec.label(), cell, dep, budgets,
                                  anytime_rows);
            }
          }
        }
      }
    }
    std::printf("%s\n", table.render(spec.label()).c_str());
  }

  std::printf(
      "Reading: aggressive elite adoption (short periods, the complete\n"
      "blackboard) inflates total effort — walkers herd into one basin — a\n"
      "quantitative echo of the paper's caution that \"the global cost of a\n"
      "configuration is not a reliable information since given by heuristic\n"
      "error functions\".  Bounded-degree graphs (ring, torus, hypercube)\n"
      "bound the damage: diversity collapses one hop at a time instead of\n"
      "globally, with torus/hypercube trading hops for degree.  Migration\n"
      "diversifies instead of herding, and the decay pool forgets stale\n"
      "crossroads, which shows up in the anytime CSV more than in\n"
      "first-finisher medians.  Async gossip (mode = async) adopts while\n"
      "walking instead of waiting for the reset policy: adoptions rise for\n"
      "the same publish traffic, which sharpens the early anytime profile\n"
      "but herds even faster when the neighbourhood is dense.  At harness\n"
      "scale the ratios are noisy; none of the communicating variants beats\n"
      "independence *consistently*, matching the paper's conclusion that\n"
      "doing so is a genuine challenge.\n");

  util::CsvWriter csv(options->csv_prefix + "schemes.csv");
  csv.write_all({"benchmark", "neighborhood", "exchange", "mode", "period",
                 "adopt", "decay", "solved", "reps", "median_effort",
                 "median_time_s", "publishes_mean", "accepted_mean",
                 "adoptions_mean"},
                scheme_rows);
  util::CsvWriter anytime_csv(options->csv_prefix + "anytime.csv");
  anytime_csv.write_all({"benchmark", "neighborhood", "exchange", "mode",
                         "period", "adopt", "budget_iterations",
                         "median_best_cost"},
                        anytime_rows);
  std::printf("\nCSV written to %s and %s\n", csv.path().c_str(),
              anytime_csv.path().c_str());
  return 0;
}
