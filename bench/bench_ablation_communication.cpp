// Ablation 1 — independent vs dependent multi-walk.
//
// The paper's future-work section asks whether limited communication
// (recording "interesting crossroads" and restarting from them) can beat
// the zero-communication scheme, and warns that "the global cost of a
// configuration is not a reliable information since given by heuristic
// error functions".  This harness runs both schemes head-to-head: the
// independent racing solver vs the elite-pool dependent solver across a
// sweep of exchange periods and adoption probabilities, measuring the
// total search effort (iterations summed over walkers) to solution.
#include <cstdio>

#include "common.hpp"
#include "parallel/multi_walk.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

struct SchemeResult {
  double median_effort = 0.0;  // total iterations across walkers
  double median_time = 0.0;    // time to solution, seconds
  int solved = 0;
};

SchemeResult run_scheme(const cspls::csp::Problem& prototype,
                        std::size_t walkers, std::uint64_t seed, int reps,
                        std::uint64_t period, double adopt) {
  using namespace cspls;
  SchemeResult out;
  std::vector<double> efforts, times;
  for (int rep = 0; rep < reps; ++rep) {
    parallel::MultiWalkOptions base;
    base.num_walkers = walkers;
    base.master_seed = seed + static_cast<std::uint64_t>(rep) * 4099;
    parallel::MultiWalkReport report;
    if (period == 0) {
      const parallel::MultiWalkSolver solver(base);
      report = solver.solve(prototype);
    } else {
      parallel::DependentOptions dep;
      dep.base = base;
      dep.period = period;
      dep.adopt_probability = adopt;
      const parallel::DependentMultiWalkSolver solver(dep);
      report = solver.solve(prototype);
    }
    if (report.solved) {
      ++out.solved;
      efforts.push_back(static_cast<double>(report.total_iterations()));
      times.push_back(report.time_to_solution_seconds);
    }
  }
  out.median_effort = cspls::util::quantile(efforts, 0.5);
  out.median_time = cspls::util::quantile(times, 0.5);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_ablation_communication",
      "Ablation: independent vs dependent (elite-pool) multi-walk", 0);
  if (!options) return 0;

  bench::print_preamble(
      "Ablation 1 — inter-walker communication (paper future work)",
      "Independent scheme vs elite-pool exchange; effort = total iterations "
      "across walkers.");

  constexpr int kReps = 9;
  constexpr std::size_t kWalkers = 4;

  std::vector<std::vector<std::string>> csv_rows;
  for (const char* name : {"costas", "magic-square"}) {
    const auto spec = bench::spec_for(name, false);
    const auto prototype = spec.instantiate();

    util::Table table({"scheme", "period", "p(adopt)", "solved",
                       "med effort (iters)", "med T (s)", "vs independent"});
    const SchemeResult indep =
        run_scheme(*prototype, kWalkers, options->seed, kReps, 0, 0.0);
    table.add_row({"independent", "-", "-",
                   std::to_string(indep.solved) + "/" + std::to_string(kReps),
                   util::Table::num(indep.median_effort, 0),
                   util::Table::sig(indep.median_time, 3), "1.00x"});
    csv_rows.push_back({spec.label(), "independent", "0", "0",
                        util::Table::num(indep.median_effort, 0)});

    for (const std::uint64_t period : {100ULL, 1000ULL}) {
      for (const double adopt : {0.25, 0.75}) {
        const SchemeResult dep = run_scheme(*prototype, kWalkers,
                                            options->seed, kReps, period,
                                            adopt);
        const double ratio = indep.median_effort > 0.0
                                 ? dep.median_effort / indep.median_effort
                                 : 0.0;
        table.add_row(
            {"dependent", std::to_string(period), util::Table::num(adopt, 2),
             std::to_string(dep.solved) + "/" + std::to_string(kReps),
             util::Table::num(dep.median_effort, 0),
             util::Table::sig(dep.median_time, 3),
             util::Table::num(ratio, 2) + "x"});
        csv_rows.push_back({spec.label(), "dependent",
                            std::to_string(period), util::Table::num(adopt, 2),
                            util::Table::num(dep.median_effort, 0)});
      }
    }
    std::printf("%s\n", table.render(spec.label()).c_str());
  }

  std::printf(
      "Reading: every dependent configuration costs MORE total effort than\n"
      "the independent scheme (up to ~20x when walkers adopt the elite\n"
      "aggressively and herd into one basin) — a quantitative confirmation\n"
      "of the paper's caution that \"the global cost of a configuration is\n"
      "not a reliable information since given by heuristic error\n"
      "functions\", and of its conclusion that beating independent\n"
      "multi-walk with communication is a genuine challenge.\n");

  util::CsvWriter csv(options->csv_prefix + "schemes.csv");
  csv.write_all({"benchmark", "scheme", "period", "adopt", "median_effort"},
                csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
