// Ablation 1 — communication topology under the WalkerPool runtime.
//
// The paper's future-work section asks whether limited communication
// (recording "interesting crossroads" and restarting from them) can beat
// the zero-communication scheme, and warns that "the global cost of a
// configuration is not a reliable information since given by heuristic
// error functions".  This harness runs the WalkerPool topologies
// head-to-head on identical walker populations: independent (the paper's
// scheme), shared elite pool (the future-work prototype) and ring elite
// exchange (bounded-degree communication in the spirit of the X10/Cell
// follow-ups), across a sweep of exchange periods and adoption
// probabilities, measuring the total search effort (iterations summed over
// walkers) to solution.
#include <cstdio>

#include "common.hpp"
#include "parallel/walker_pool.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

struct SchemeResult {
  double median_effort = 0.0;   // total iterations across walkers
  double median_time = 0.0;     // time to solution, seconds
  double mean_publishes = 0.0;  // elite offers accepted into slots per race
  int solved = 0;
};

const char* topology_name(cspls::parallel::Topology topology) {
  switch (topology) {
    case cspls::parallel::Topology::kIndependent: return "independent";
    case cspls::parallel::Topology::kSharedElite: return "shared-elite";
    case cspls::parallel::Topology::kRingElite: return "ring-elite";
  }
  return "?";
}

SchemeResult run_scheme(const cspls::csp::Problem& prototype,
                        std::size_t walkers, std::uint64_t seed, int reps,
                        cspls::parallel::Topology topology,
                        std::uint64_t period, double adopt) {
  using namespace cspls;
  SchemeResult out;
  std::vector<double> efforts, times;
  double publishes = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    parallel::WalkerPoolOptions pool;
    pool.num_walkers = walkers;
    pool.master_seed = seed + static_cast<std::uint64_t>(rep) * 4099;
    pool.scheduling = parallel::Scheduling::kThreads;
    pool.termination = parallel::Termination::kFirstFinisher;
    pool.communication.topology = topology;
    pool.communication.period = period;
    pool.communication.adopt_probability = adopt;
    const auto report = parallel::WalkerPool(pool).run(prototype);
    publishes += static_cast<double>(report.elite_accepted);
    if (report.solved) {
      ++out.solved;
      efforts.push_back(static_cast<double>(report.total_iterations()));
      times.push_back(report.time_to_solution_seconds);
    }
  }
  out.median_effort = cspls::util::quantile(efforts, 0.5);
  out.median_time = cspls::util::quantile(times, 0.5);
  out.mean_publishes = publishes / reps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_ablation_communication",
      "Ablation: WalkerPool communication topologies (independent vs "
      "shared-elite vs ring-elite)",
      0);
  if (!options) return 0;

  bench::print_preamble(
      "Ablation 1 — inter-walker communication (paper future work)",
      "Independent scheme vs shared-elite vs ring-elite exchange; effort = "
      "total iterations across walkers.");

  constexpr int kReps = 9;
  constexpr std::size_t kWalkers = 4;

  std::vector<std::vector<std::string>> csv_rows;
  for (const char* name : {"costas", "magic-square"}) {
    const auto spec = bench::spec_for(name, false);
    const auto prototype = spec.instantiate();

    util::Table table({"topology", "period", "p(adopt)", "solved",
                       "med effort (iters)", "med T (s)", "publishes",
                       "vs independent"});
    const SchemeResult indep =
        run_scheme(*prototype, kWalkers, options->seed, kReps,
                   parallel::Topology::kIndependent, 0, 0.0);
    table.add_row({"independent", "-", "-",
                   std::to_string(indep.solved) + "/" + std::to_string(kReps),
                   util::Table::num(indep.median_effort, 0),
                   util::Table::sig(indep.median_time, 3), "0", "1.00x"});
    csv_rows.push_back({spec.label(), "independent", "0", "0",
                        util::Table::num(indep.median_effort, 0)});

    for (const auto topology : {parallel::Topology::kSharedElite,
                                parallel::Topology::kRingElite}) {
      for (const std::uint64_t period : {100ULL, 1000ULL}) {
        for (const double adopt : {0.25, 0.75}) {
          const SchemeResult dep =
              run_scheme(*prototype, kWalkers, options->seed, kReps, topology,
                         period, adopt);
          const double ratio = indep.median_effort > 0.0
                                   ? dep.median_effort / indep.median_effort
                                   : 0.0;
          table.add_row(
              {topology_name(topology), std::to_string(period),
               util::Table::num(adopt, 2),
               std::to_string(dep.solved) + "/" + std::to_string(kReps),
               util::Table::num(dep.median_effort, 0),
               util::Table::sig(dep.median_time, 3),
               util::Table::num(dep.mean_publishes, 1),
               util::Table::num(ratio, 2) + "x"});
          csv_rows.push_back({spec.label(), topology_name(topology),
                              std::to_string(period),
                              util::Table::num(adopt, 2),
                              util::Table::num(dep.median_effort, 0)});
        }
      }
    }
    std::printf("%s\n", table.render(spec.label()).c_str());
  }

  std::printf(
      "Reading: aggressive elite adoption (short periods, shared pool)\n"
      "inflates total effort — walkers herd into one basin — a quantitative\n"
      "echo of the paper's caution that \"the global cost of a configuration\n"
      "is not a reliable information since given by heuristic error\n"
      "functions\".  The ring topology bounds the damage: a walker only\n"
      "sees its predecessor's elite, so diversity collapses one hop at a\n"
      "time instead of globally.  At harness scale the ratios are noisy\n"
      "(instances solve in milliseconds); none of the communicating\n"
      "variants beats independence *consistently*, matching the paper's\n"
      "conclusion that doing so is a genuine challenge.\n");

  util::CsvWriter csv(options->csv_prefix + "schemes.csv");
  csv.write_all({"benchmark", "topology", "period", "adopt", "median_effort"},
                csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
