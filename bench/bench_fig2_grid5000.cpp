// Figure 2 — "speedups on Grid5000 (Suno)": same four benchmarks on the
// Grid'5000 platform models.  The paper notes (a) Suno and Helios curves are
// nearly identical (it plots only Suno), and (b) perfect-square diverges
// from HA8000 at 128/256 cores because runs get shorter than a second and
// "some other mechanisms interfere" — with fixed per-job overheads dwarfing
// sub-second compute, exactly what the overhead terms of the platform
// models produce.  This harness prints the Suno figure plus both checks.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_fig2_grid5000",
      "Reproduces Fig. 2: multi-walk speedups on Grid'5000 Suno (+ Helios "
      "check)",
      250);
  if (!options) return 0;

  bench::print_preamble(
      "Figure 2 — speedups on Grid5000 (Suno)",
      "Speedup = T(1)/T(k) per platform model; Helios plotted only as the\n"
      "consistency check the paper reports.");

  const auto suno = sim::grid5000_suno();
  const auto helios = sim::grid5000_helios();
  const auto cores = sim::paper_core_grid();

  std::vector<sim::SpeedupCurve> suno_curves;
  std::vector<sim::SpeedupCurve> suno_fit_curves;
  std::vector<std::vector<std::string>> csv_rows;
  double worst_rel_gap = 0.0;
  std::string worst_case;

  for (const auto& spec : bench::paper_suite(options->paper_scale)) {
    auto law = bench::measure_walk_law(spec, options->samples, options->seed);
    if (!options->raw_times) {
      law = bench::rescale_to_median(
          law, bench::paper_reference_median_seconds(spec.name));
    }
    auto suno_curve =
        sim::compute_speedup_curve(law.seconds, suno, cores, spec.label());
    const auto helios_curve =
        sim::compute_speedup_curve(law.seconds, helios, cores, spec.label());
    suno_fit_curves.push_back(sim::compute_fit_speedup_curve(
        sim::fit_shifted_exponential(law.seconds), suno, cores,
        spec.label()));

    auto table = bench::make_curve_table();
    bench::append_curve_rows(suno_curve, table, &csv_rows);
    std::printf("%s", table.render(spec.label() + " on " + suno.name).c_str());

    // Suno ≈ Helios check (the paper's justification for plotting one).
    for (std::size_t i = 0; i < suno_curve.points.size(); ++i) {
      const double a = suno_curve.points[i].speedup;
      const double b = helios_curve.points[i].speedup;
      const double gap = std::abs(a - b) / std::max(a, b);
      if (gap > worst_rel_gap) {
        worst_rel_gap = gap;
        worst_case = spec.label() + " @" +
                     std::to_string(suno_curve.points[i].cores) + " cores";
      }
    }
    std::printf("\n");
    suno_curves.push_back(std::move(suno_curve));
  }

  std::printf("%s\n",
              bench::make_figure_table(suno_curves)
                  .render("Fig. 2 series — empirical min-of-k speedups (Suno)")
                  .c_str());
  std::printf("%s",
              bench::make_figure_table(suno_fit_curves)
                  .render("Fig. 2 series — shifted-exponential-fit speedups "
                          "(Suno, paper-regime)")
                  .c_str());

  std::printf(
      "\nSuno-vs-Helios consistency: worst relative speedup gap = %.1f%% "
      "(%s)\n",
      worst_rel_gap * 100.0, worst_case.c_str());
  std::printf(
      "(the paper: \"speedups on the two Grid'5000 platforms are nearly\n"
      " identical\" — only Suno is plotted)\n");

  util::CsvWriter csv(options->csv_prefix + "curves.csv");
  csv.write_all({"platform", "benchmark", "cores", "expected_seconds",
                 "speedup"},
                csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
