// Figure 3 — "Speedups for CAP 22 w.r.t. 32 cores" (log-log).
//
// The paper's headline result: for the Costas Array Problem, "on all
// platforms, execution times are halved when the number of cores is
// doubled, thus achieving ideal speedup", plotted on a log-log scale from a
// 32-core baseline (sequential runs of n=22 take hours, so 32 cores is the
// reference).  This harness reproduces the series: CAP walk law measured
// with the real solver (scaled-down order by default, n=22 is behind
// --paper-scale), rebased to 32 cores, with the fitted log-log slope
// (ideal = 1) and the per-doubling time ratios (ideal = 0.5).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_fig3_cap22",
      "Reproduces Fig. 3: CAP speedups w.r.t. 32 cores, log-log", 600);
  if (!options) return 0;

  bench::print_preamble(
      "Figure 3 — CAP speedup w.r.t. 32 cores (log-log)",
      "Ideal behaviour: time halves per core doubling (log-log slope 1).");

  const auto spec = bench::spec_for("costas", options->paper_scale);
  auto law = bench::measure_walk_law(spec, options->samples, options->seed);
  if (!options->raw_times) {
    law = bench::rescale_to_median(
        law, bench::paper_reference_median_seconds("costas"));
  }

  // The CAP literature behind this figure shows CAP runtimes are
  // exponentially distributed; report how exponential *our* measured law is
  // and use the fit as the analytic continuation where min-of-k outruns the
  // sample resolution (k approaching the sample count).
  const auto fit = sim::fit_shifted_exponential(law.seconds);
  const auto evidence = sim::exponentiality_evidence(law.seconds);
  std::printf(
      "walk law: %zu samples, shifted-exponential fit: shift/mean = %.3f, "
      "KS distance = %.3f\n"
      "log-survival linearity (the CAP study's diagnostic): R^2 = %.4f, "
      "rate = %.3g /s\n"
      "(straight log-survival line  =>  memoryless law  =>  ideal "
      "multi-walk speedup)\n\n",
      law.seconds.size(), fit.shift / law.seconds.mean(), fit.ks_distance,
      evidence.r2, -evidence.slope);

  const std::vector<std::size_t> cores{32, 64, 128, 256};
  std::vector<std::vector<std::string>> csv_rows;

  for (const auto& platform :
       {sim::ha8000(), sim::grid5000_suno(), sim::grid5000_helios()}) {
    const auto curve =
        sim::compute_speedup_curve(law.seconds, platform, cores, spec.label());
    const auto rebased = sim::rebase_to(curve, 32);

    util::Table table({"cores", "log2(cores/32)", "E[T] (s)",
                       "speedup vs 32", "log2(speedup)", "T(2k)/T(k)",
                       "exp-fit speedup"});
    const double fit_t32 =
        fit.expected_min_of_k(32) / platform.core_speed +
        platform.overhead_seconds(32);
    for (std::size_t i = 0; i < rebased.points.size(); ++i) {
      const auto& p = rebased.points[i];
      const double halving =
          i == 0 ? 1.0
                 : p.expected_seconds /
                       rebased.points[i - 1].expected_seconds;
      const double fit_tk =
          fit.expected_min_of_k(p.cores) / platform.core_speed +
          platform.overhead_seconds(p.cores);
      table.add_row({std::to_string(p.cores),
                     util::Table::num(std::log2(static_cast<double>(p.cores) / 32.0), 0),
                     util::Table::sig(p.expected_seconds, 4),
                     util::Table::num(p.speedup, 2),
                     util::Table::num(std::log2(std::max(p.speedup, 1e-9)), 3),
                     util::Table::num(halving, 3),
                     util::Table::num(fit_t32 / fit_tk, 2)});
      csv_rows.push_back({platform.name, std::to_string(p.cores),
                          util::Table::sig(p.expected_seconds, 6),
                          util::Table::num(p.speedup, 4)});
    }
    std::printf("%s", table.render(spec.label() + " on " + platform.name +
                                   " (rebased to 32 cores)")
                          .c_str());

    // Log-log slope over the rebased points (paper: visually on the
    // ideal-speedup diagonal).
    std::vector<double> xs, ys;
    for (const auto& p : rebased.points) {
      xs.push_back(std::log2(static_cast<double>(p.cores)));
      ys.push_back(std::log2(std::max(p.speedup, 1e-9)));
    }
    const auto line = util::fit_line(xs, ys);
    std::printf("  log-log slope = %.3f (ideal 1.000), R^2 = %.4f\n\n",
                line.slope, line.r2);
  }

  std::printf(
      "Paper claim: \"execution times are halved when the number of cores\n"
      "is doubled\" — the T(2k)/T(k) column approaches the ideal 0.5 while\n"
      "the walk law stays exponential-like (CAP).  The residual gap at 256\n"
      "cores is the scaled-down instance's luck floor (min/mean ~0.1%% at\n"
      "n=13): at the paper's n=22 the floor is orders of magnitude smaller\n"
      "relative to the mean, closing the gap — run with --paper-scale to\n"
      "sample n=21 directly (expect hours).\n");

  util::CsvWriter csv(options->csv_prefix + "cap_loglog.csv");
  csv.write_all({"platform", "cores", "expected_seconds", "speedup_vs_32"},
                csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
