#include "common.hpp"

#include <cstdio>

#include "problems/registry.hpp"
#include "problems/spec.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace cspls::bench {

std::unique_ptr<csp::Problem> BenchmarkSpec::instantiate() const {
  return problems::instantiate(
      problems::ProblemSpec{name, size, instance_seed});
}

std::string BenchmarkSpec::label() const {
  if (name == "perfect-square" && size == 0) return name + "(order-21)";
  return name + "(" + std::to_string(size) + ")";
}

std::string BenchmarkSpec::spec_string() const {
  return problems::format_spec(
      problems::ProblemSpec{name, size, instance_seed});
}

std::vector<BenchmarkSpec> paper_suite(bool paper_scale) {
  std::vector<BenchmarkSpec> suite;
  for (const auto& name : problems::paper_benchmarks()) {
    suite.push_back(spec_for(name, paper_scale));
  }
  return suite;
}

BenchmarkSpec spec_for(const std::string& name, bool paper_scale) {
  BenchmarkSpec spec;
  if (name.find(':') != std::string::npos ||
      name.find('@') != std::string::npos) {
    const problems::ProblemSpec parsed = problems::parse_spec(name);
    spec.name = parsed.name;
    // An explicit ":size" wins; a seed-only spec ("costas@7") still sizes
    // by the requested scale like a bare name would.
    spec.size = name.find(':') != std::string::npos
                    ? parsed.size
                    : (paper_scale ? problems::paper_size(parsed.name)
                                   : problems::bench_size(parsed.name));
    if (parsed.instance_seed != 0) spec.instance_seed = parsed.instance_seed;
    return spec;
  }
  if (!problems::is_known_problem(name)) {
    // Reject with the name-listing diagnostic instead of the bench_size
    // lookup's terser failure.
    (void)problems::parse_spec(name);
  }
  spec.name = name;
  spec.size =
      paper_scale ? problems::paper_size(name) : problems::bench_size(name);
  return spec;
}

WalkLaw measure_walk_law(const BenchmarkSpec& spec, std::size_t samples,
                         std::uint64_t seed) {
  const auto prototype = spec.instantiate();
  sim::SamplingOptions options;
  options.num_samples = samples;
  options.master_seed = seed;
  util::Stopwatch watch;
  const sim::SampleSet set = sim::collect_walk_samples(*prototype, options);

  WalkLaw law;
  law.solve_rate = set.solve_rate();
  law.sec_per_iter = set.seconds_per_iteration();
  law.samples = samples;
  // Work in iterations scaled to host-seconds: iteration counts are exactly
  // reproducible, and the scale factor re-attaches wall-clock units so that
  // platform overheads (absolute seconds) are comparable.
  const auto iters = set.iterations_distribution();
  std::vector<double> seconds(iters.sorted_samples().begin(),
                              iters.sorted_samples().end());
  for (auto& s : seconds) s *= law.sec_per_iter;
  law.seconds = sim::EmpiricalDistribution(std::move(seconds));

  std::fprintf(stderr,
               "[sample] %-22s %zu walks in %s  solve_rate=%.3f  "
               "median=%.4fs  mean=%.4fs  max=%.4fs\n",
               spec.label().c_str(), samples,
               util::format_duration(watch.elapsed_seconds()).c_str(),
               law.solve_rate, law.seconds.median(), law.seconds.mean(),
               law.seconds.max());
  return law;
}

double paper_reference_median_seconds(const std::string& name) {
  // Paper-era sequential medians (order of magnitude; see EXPERIMENTS.md):
  // CAP n=22 takes "many hours" sequentially and ~1 minute on 256 cores;
  // perfect-square finishes sub-second at 128/256 cores with speedup ~40+,
  // so its sequential runs sit around tens of seconds; magic-square 200x200
  // and all-interval 700 sit in the tens-of-minutes band.
  if (name == "costas") return 10'000.0;
  if (name == "all-interval") return 1'500.0;
  if (name == "magic-square") return 800.0;
  if (name == "perfect-square") return 40.0;
  return 600.0;  // other models: generic paper-era scale
}

WalkLaw rescale_to_median(WalkLaw law, double target_median) {
  const double median = law.seconds.median();
  if (median <= 0.0 || target_median <= 0.0) return law;
  const double factor = target_median / median;
  std::vector<double> scaled(law.seconds.sorted_samples().begin(),
                             law.seconds.sorted_samples().end());
  for (auto& s : scaled) s *= factor;
  law.seconds = sim::EmpiricalDistribution(std::move(scaled));
  law.rescale_factor *= factor;
  return law;
}

util::Table make_curve_table() {
  return util::Table({"cores", "E[T] (s)", "q10 (s)", "q90 (s)", "speedup"});
}

void append_curve_rows(const sim::SpeedupCurve& curve, util::Table& table,
                       std::vector<std::vector<std::string>>* csv_rows) {
  for (const auto& p : curve.points) {
    table.add_row({std::to_string(p.cores), util::Table::sig(p.expected_seconds, 4),
                   util::Table::sig(p.q10_seconds, 4),
                   util::Table::sig(p.q90_seconds, 4),
                   util::Table::num(p.speedup, 2)});
    if (csv_rows != nullptr) {
      csv_rows->push_back({curve.platform, curve.benchmark,
                           std::to_string(p.cores),
                           util::Table::sig(p.expected_seconds, 6),
                           util::Table::num(p.speedup, 4)});
    }
  }
}

util::Table make_figure_table(const std::vector<sim::SpeedupCurve>& curves) {
  std::vector<std::string> headers{"cores"};
  for (const auto& curve : curves) headers.push_back(curve.benchmark);
  headers.push_back("ideal");
  util::Table table(std::move(headers));
  if (curves.empty()) return table;
  for (std::size_t i = 0; i < curves.front().points.size(); ++i) {
    std::vector<std::string> row{
        std::to_string(curves.front().points[i].cores)};
    for (const auto& curve : curves) {
      row.push_back(util::Table::num(curve.points[i].speedup, 1));
    }
    row.push_back(std::to_string(curves.front().points[i].cores));
    table.add_row(std::move(row));
  }
  return table;
}

void print_preamble(const std::string& experiment_id,
                    const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n\n");
}

std::optional<HarnessOptions> parse_harness_options(
    int argc, const char* const* argv, const std::string& program,
    const std::string& description, std::size_t default_samples) {
  util::ArgParser parser(program, description);
  parser.add_int("samples", static_cast<std::int64_t>(default_samples),
                 "independent single-walk samples per benchmark");
  parser.add_uint64("seed", 0xC5B15, "master seed for sampling streams");
  parser.add_flag("paper-scale",
                  "use the paper's instance sizes (hours of sampling!)");
  parser.add_flag("raw-times",
                  "keep raw host seconds instead of paper-scale units");
  parser.add_flag("quick", "CI smoke mode: tiny instances, minimal reps");
  parser.add_string("csv", "", "CSV output prefix (default: <program>_)");
  parser.add_flag("verbose", "chatty logging");
  if (!parser.parse(argc, argv)) return std::nullopt;
  if (parser.flag("verbose")) util::set_log_level(util::LogLevel::kDebug);
  HarnessOptions options;
  options.samples = static_cast<std::size_t>(parser.get_int("samples"));
  options.seed = parser.get_uint64("seed");
  options.paper_scale = parser.flag("paper-scale");
  options.raw_times = parser.flag("raw-times");
  options.quick = parser.flag("quick");
  options.csv_prefix = parser.get_string("csv").empty()
                           ? "csv/" + program + "_"
                           : parser.get_string("csv");
  return options;
}

}  // namespace cspls::bench
