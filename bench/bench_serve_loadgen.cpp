// Serving-tier load generator: drives many concurrent small solves through
// the wire protocol (encoded request lines in, parsed event lines out — the
// same bytes a stdio/HTTP client would exchange) and reports end-to-end
// latency percentiles and throughput per priority lane.
//
// Runs the identical job set twice — once with warm-batch fusion disabled
// (every claimed job is a solo launch) and once with it enabled (one fused
// launch per claimed batch) — so the fusion win is measured in-process under
// the same load, not across runs.  The fused pass is the primary result;
// the unfused pass rides along as per-lane comparison columns.
//
// Defaults complete 1000 jobs; --quick is the CI smoke budget.  The CSV
// (SERVE_load.csv) schema is validated by tools/check_serve_load.py; the
// JSON (BENCH_serve.json) is the committed baseline of record.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::string_view kPriorities[] = {"high", "normal", "low"};

struct LaneAgg {
  std::vector<double> latencies_ms;
  std::uint64_t solved = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;

  [[nodiscard]] std::uint64_t total() const {
    return solved + failed + cancelled;
  }
};

struct PassConfig {
  std::uint64_t jobs = 0;
  std::string problem;
  bool stream = false;
  std::uint64_t seed = 0;
  std::size_t warm_workers = 0;
  std::size_t warm_batch_max = 0;
  std::size_t thread_budget = 0;
  bool fuse = false;
  std::size_t fused_threads = 1;
};

struct PassResult {
  std::map<std::string, LaneAgg> lanes;  // keyed by priority name, plus "all"
  double wall_seconds = 0.0;
  double throughput = 0.0;
  std::uint64_t samples_seen = 0;
  cspls::serve::SchedulerStats stats;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

/// One full pass over the job set on a fresh scheduler.
PassResult run_pass(const PassConfig& config) {
  using namespace cspls;
  serve::SchedulerOptions options;
  options.warm_workers = config.warm_workers;
  options.warm_batch_max = config.warm_batch_max;
  options.service.thread_budget = config.thread_budget;
  options.fuse_warm_batches = config.fuse;
  options.warm_fused_threads = config.fused_threads;
  serve::Scheduler scheduler(options);

  // tag -> submit time; filled before each handle_line, matched against the
  // tag echoed in the report event (ids are assigned by the server).
  std::mutex m;
  std::condition_variable done_cv;
  std::map<std::string, Clock::time_point> submit_at;
  std::map<std::string, std::string> lane_of_tag;
  PassResult result;
  std::uint64_t reported = 0;

  serve::Session session(scheduler, [&](std::string_view line) {
    // Parse exactly what a wire client would read.
    const std::optional<util::Json> event = util::Json::parse(
        std::string_view(line.data(), line.size() - 1));  // strip '\n'
    if (!event) return;
    const std::string& kind = event->at("event").as_string();
    if (kind == "sample") {
      std::lock_guard lock(m);
      ++result.samples_seen;
      return;
    }
    if (kind != "report") return;
    const Clock::time_point now = Clock::now();
    const std::string& tag = event->at("tag").as_string();
    const std::string& status = event->at("status").as_string();
    std::lock_guard lock(m);
    LaneAgg& agg = result.lanes[lane_of_tag[tag]];
    agg.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(now - submit_at[tag])
            .count());
    if (status == "done") {
      ++agg.solved;
    } else if (status == "cancelled") {
      ++agg.cancelled;
    } else {
      ++agg.failed;
    }
    ++reported;
    done_cv.notify_all();
  });

  const Clock::time_point t0 = Clock::now();
  for (std::uint64_t i = 0; i < config.jobs; ++i) {
    const std::string tag = "job-" + std::to_string(i);
    const std::string_view priority = kPriorities[i % 3];
    util::Json request = util::Json::object();
    request.set("problem", config.problem)
        .set("walkers", std::uint64_t{1})
        .set("scheduling", "sequential")
        .set("seed", config.seed + i);
    util::Json envelope = util::Json::object();
    envelope.set("op", "solve")
        .set("request", std::move(request))
        .set("priority", priority)
        .set("tag", tag);
    if (config.stream) {
      envelope.set("stream", true).set("sample_period", std::uint64_t{512});
    }
    {
      std::lock_guard lock(m);
      submit_at[tag] = Clock::now();
      lane_of_tag[tag] = std::string(priority);
    }
    session.handle_line(envelope.dump(0));
  }

  {
    std::unique_lock lock(m);
    done_cv.wait(lock, [&] { return reported == config.jobs; });
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.throughput =
      static_cast<double>(config.jobs) / result.wall_seconds;
  scheduler.shutdown();
  result.stats = scheduler.stats();

  LaneAgg& all = result.lanes["all"];
  for (const std::string_view priority : kPriorities) {
    LaneAgg& agg = result.lanes[std::string(priority)];
    all.solved += agg.solved;
    all.failed += agg.failed;
    all.cancelled += agg.cancelled;
    all.latencies_ms.insert(all.latencies_ms.end(), agg.latencies_ms.begin(),
                            agg.latencies_ms.end());
  }
  for (auto& [lane, agg] : result.lanes) {
    std::sort(agg.latencies_ms.begin(), agg.latencies_ms.end());
  }
  return result;
}

/// Mixed-priority preemption profile: one service slot, long low jobs
/// already running when short high jobs arrive, so every high arrival can
/// only displace the *running* low.  Run once with running preemption
/// (suspend to checkpoint, resume later) and once without (the high waits
/// the walk out): the low-lane completion latencies of the two runs bound
/// the price of being preempted, the high-lane latencies the price of not
/// preempting.
struct PreemptProfile {
  std::vector<double> low_ms;   // sorted low-lane completion latencies
  std::vector<double> high_ms;  // sorted high-lane completion latencies
  cspls::serve::SchedulerStats stats;
};

PreemptProfile run_preempt_profile(bool with_resume, std::uint64_t lows,
                                   std::uint64_t highs, std::uint64_t seed) {
  using namespace cspls;
  serve::SchedulerOptions options;
  options.warm_workers = 1;
  options.warm_lease_threshold = 0;  // every job takes the service path
  options.service_inflight = 1;      // one slot: arrivals must displace it
  options.service.thread_budget = 1;
  options.preempt_running = with_resume;
  serve::Scheduler scheduler(options);

  std::mutex m;
  std::condition_variable done_cv;
  std::map<std::string, Clock::time_point> submit_at;
  std::map<std::string, bool> is_low;
  PreemptProfile profile;
  std::uint64_t reported = 0;

  serve::Session session(scheduler, [&](std::string_view line) {
    const std::optional<util::Json> event = util::Json::parse(
        std::string_view(line.data(), line.size() - 1));
    if (!event || event->at("event").as_string() != "report") return;
    const Clock::time_point now = Clock::now();
    const std::string& tag = event->at("tag").as_string();
    std::lock_guard lock(m);
    const double ms =
        std::chrono::duration<double, std::milli>(now - submit_at[tag])
            .count();
    (is_low[tag] ? profile.low_ms : profile.high_ms).push_back(ms);
    ++reported;
    done_cv.notify_all();
  });

  const auto submit = [&](std::string_view priority, const std::string& tag,
                          std::string_view problem, std::uint64_t job_seed,
                          std::uint64_t restart_limit) {
    util::Json request = util::Json::object();
    request.set("problem", std::string(problem))
        .set("walkers", std::uint64_t{1})
        .set("scheduling", "sequential")
        .set("seed", job_seed);
    if (restart_limit != 0) {
      // A fixed iteration budget on an unsolvable instance: the job's
      // length is the budget, not luck, so the highs land mid-walk.
      util::Json params = util::Json::object();
      params.set("restart_limit", restart_limit)
          .set("max_restarts", std::uint64_t{0});
      request.set("params", std::move(params));
    }
    util::Json envelope = util::Json::object();
    envelope.set("op", "solve")
        .set("request", std::move(request))
        .set("priority", priority)
        .set("tag", tag);
    {
      std::lock_guard lock(m);
      submit_at[tag] = Clock::now();
      is_low[tag] = priority == "low";
    }
    session.handle_line(envelope.dump(0));
  };

  // All low jobs up front: one runs, the rest wait in the low lane (the
  // single service slot leaves no queued-in-service victim).
  for (std::uint64_t i = 0; i < lows; ++i) {
    submit("low", "low-" + std::to_string(i), "langford:5", seed + i,
           400'000);
  }
  // High arrivals paced a few ms apart so several land while a low walk
  // (tens of ms) is mid-run.
  for (std::uint64_t i = 0; i < highs; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    submit("high", "high-" + std::to_string(i), "costas:7",
           seed + 1000 + i, 0);
  }

  {
    std::unique_lock lock(m);
    done_cv.wait(lock, [&] { return reported == lows + highs; });
  }
  scheduler.shutdown();
  profile.stats = scheduler.stats();
  std::sort(profile.low_ms.begin(), profile.low_ms.end());
  std::sort(profile.high_ms.begin(), profile.high_ms.end());
  return profile;
}

void append_json_pass(std::string& json, std::string_view name,
                      PassResult& pass) {
  json += "    \"" + std::string(name) + "\": {\n";
  json += "      \"wall_seconds\": " + fmt(pass.wall_seconds) + ",\n";
  json += "      \"throughput_per_s\": " + fmt(pass.throughput) + ",\n";
  json += "      \"batches\": " + std::to_string(pass.stats.batches) + ",\n";
  json += "      \"batched_jobs\": " +
          std::to_string(pass.stats.batched_jobs) + ",\n";
  json += "      \"fused_batches\": " +
          std::to_string(pass.stats.fused_batches) + ",\n";
  json += "      \"fused_jobs\": " + std::to_string(pass.stats.fused_jobs) +
          ",\n";
  json += "      \"givebacks\": " + std::to_string(pass.stats.givebacks) +
          ",\n";
  json += "      \"preempted_queued\": " +
          std::to_string(pass.stats.preempted_queued) + ",\n";
  json += "      \"preempted_running\": " +
          std::to_string(pass.stats.preempted_running) + ",\n";
  json += "      \"resumed\": " + std::to_string(pass.stats.resumed) + ",\n";
  json += "      \"rejected_overload\": " +
          std::to_string(pass.stats.rejected_overload) + ",\n";
  json += "      \"lanes\": {\n";
  bool first = true;
  for (const std::string_view priority : kPriorities) {
    LaneAgg& agg = pass.lanes[std::string(priority)];
    if (!first) json += ",\n";
    first = false;
    json += "        \"" + std::string(priority) + "\": {";
    json += "\"jobs\": " + std::to_string(agg.total());
    json += ", \"p50_ms\": " + fmt(percentile(agg.latencies_ms, 0.50));
    json += ", \"p99_ms\": " + fmt(percentile(agg.latencies_ms, 0.99));
    json += "}";
  }
  json += "\n      }\n    }";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("bench_serve_loadgen",
                       "serving-tier latency/throughput under concurrent "
                       "small solves, fused vs unfused warm batches");
  args.add_uint64("jobs", 1000, "solve jobs to push through the wire");
  args.add_string("problem", "costas:6", "instance spec per job");
  args.add_uint64("warm-workers", 4, "warm-pool worker threads");
  args.add_uint64("batch", 8, "warm batch claim size");
  args.add_uint64("threads", 0, "service-path walker-thread budget");
  args.add_uint64("fused-threads", 1,
                  "fused launch team size (0 = cores/warm-workers)");
  args.add_flag("stream", "request sample streaming on every job");
  args.add_uint64("repeats", 3,
                  "passes per mode (alternating); best throughput kept");
  args.add_uint64("seed", 0xC5B15, "base seed (job i uses seed + i)");
  args.add_string("csv", "SERVE_load.csv", "output CSV path");
  args.add_string("json", "BENCH_serve.json", "output JSON baseline path");
  args.add_flag("quick", "CI smoke budget (250 jobs)");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  PassConfig config;
  config.jobs = args.flag("quick") ? 250 : args.get_uint64("jobs");
  config.problem = args.get_string("problem");
  config.stream = args.flag("stream");
  config.seed = args.get_uint64("seed");
  config.warm_workers =
      static_cast<std::size_t>(args.get_uint64("warm-workers"));
  config.warm_batch_max = static_cast<std::size_t>(args.get_uint64("batch"));
  config.thread_budget = static_cast<std::size_t>(args.get_uint64("threads"));
  config.fused_threads =
      static_cast<std::size_t>(args.get_uint64("fused-threads"));

  // Same jobs, same seeds, fresh scheduler each time: the only variable is
  // whether a claimed warm batch becomes one fused launch or a solo loop.
  // Both modes run `repeats` times, alternating so ambient drift hits them
  // symmetrically; the best pass per mode is kept — a small solve finishes
  // in milliseconds, so one descheduling blip otherwise dominates the wall.
  const std::uint64_t repeats =
      std::max<std::uint64_t>(1, args.get_uint64("repeats"));
  PassResult unfused, fused;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    config.fuse = false;
    PassResult u = run_pass(config);
    if (r == 0 || u.throughput > unfused.throughput) unfused = std::move(u);
    config.fuse = true;
    PassResult f = run_pass(config);
    if (r == 0 || f.throughput > fused.throughput) fused = std::move(f);
  }

  util::Table table({"mode", "lane", "jobs", "solved", "failed", "cancelled",
                     "p50_ms", "p90_ms", "p99_ms", "max_ms"});
  const auto row_of = [&](std::string_view mode, std::string_view lane,
                          LaneAgg& agg) {
    const double max_ms =
        agg.latencies_ms.empty() ? 0.0 : agg.latencies_ms.back();
    return std::vector<std::string>{
        std::string(mode),
        std::string(lane),
        std::to_string(agg.total()),
        std::to_string(agg.solved),
        std::to_string(agg.failed),
        std::to_string(agg.cancelled),
        fmt(percentile(agg.latencies_ms, 0.50)),
        fmt(percentile(agg.latencies_ms, 0.90)),
        fmt(percentile(agg.latencies_ms, 0.99)),
        fmt(max_ms)};
  };
  for (const std::string_view priority :
       {std::string_view("high"), std::string_view("normal"),
        std::string_view("low"), std::string_view("all")}) {
    table.add_row(row_of("unfused", priority,
                         unfused.lanes[std::string(priority)]));
  }
  for (const std::string_view priority :
       {std::string_view("high"), std::string_view("normal"),
        std::string_view("low"), std::string_view("all")}) {
    table.add_row(row_of("fused", priority,
                         fused.lanes[std::string(priority)]));
  }

  std::cout << "bench_serve_loadgen: " << config.jobs << " x "
            << config.problem << " through the wire, twice ("
            << config.warm_workers << " warm workers; unfused then fused)\n\n"
            << table.render();
  const auto pass_line = [&](std::string_view mode, const PassResult& pass) {
    std::cout << mode << ": wall " << fmt(pass.wall_seconds * 1000.0)
              << " ms, throughput " << fmt(pass.throughput)
              << " jobs/s, batches " << pass.stats.batches << " ("
              << pass.stats.batched_jobs << " jobs), fused "
              << pass.stats.fused_batches << " ("
              << pass.stats.fused_jobs << " jobs), givebacks "
              << pass.stats.givebacks << "\n";
  };
  std::cout << "\n";
  pass_line("unfused", unfused);
  pass_line("fused  ", fused);
  const double speedup =
      unfused.throughput > 0.0 ? fused.throughput / unfused.throughput : 0.0;
  std::cout << "fused/unfused throughput: " << fmt(speedup) << "x\n";

  // Mixed-priority preemption profile: the same arrival pattern with and
  // without running preemption (suspend-to-checkpoint + resume).
  const std::uint64_t profile_lows = 6, profile_highs = 6;
  PreemptProfile preempt = run_preempt_profile(
      /*with_resume=*/true, profile_lows, profile_highs, config.seed);
  PreemptProfile noresume = run_preempt_profile(
      /*with_resume=*/false, profile_lows, profile_highs, config.seed);
  const auto profile_line = [&](std::string_view mode, PreemptProfile& p) {
    std::cout << mode << ": high p50 " << fmt(percentile(p.high_ms, 0.50))
              << " ms, low p50 " << fmt(percentile(p.low_ms, 0.50))
              << " ms, low p99 " << fmt(percentile(p.low_ms, 0.99))
              << " ms, preempted_running " << p.stats.preempted_running
              << ", resumed " << p.stats.resumed << "\n";
  };
  std::cout << "\npreemption profile (" << profile_lows << " low x ~33 ms + "
            << profile_highs << " high arrivals, one service slot):\n";
  profile_line("resume  ", preempt);
  profile_line("noresume", noresume);

  // CSV: the fused pass is the primary row set; the unfused pass rides
  // along as per-lane comparison columns.
  util::CsvWriter csv(args.get_string("csv"));
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::string_view priority :
       {std::string_view("high"), std::string_view("normal"),
        std::string_view("low"), std::string_view("all")}) {
    LaneAgg& agg = fused.lanes[std::string(priority)];
    LaneAgg& base = unfused.lanes[std::string(priority)];
    std::vector<std::string> row = row_of("fused", priority, agg);
    row.erase(row.begin());  // the CSV has no mode column
    row.push_back(fmt(fused.wall_seconds));
    row.push_back(fmt(fused.throughput));
    row.push_back(std::to_string(fused.stats.batches));
    row.push_back(std::to_string(fused.stats.batched_jobs));
    row.push_back(std::to_string(fused.stats.givebacks));
    row.push_back(std::to_string(fused.samples_seen));
    row.push_back(std::to_string(fused.stats.fused_batches));
    row.push_back(std::to_string(fused.stats.fused_jobs));
    row.push_back(fmt(percentile(base.latencies_ms, 0.50)));
    row.push_back(fmt(percentile(base.latencies_ms, 0.99)));
    row.push_back(fmt(unfused.throughput));
    row.push_back(std::to_string(fused.stats.preempted_queued));
    row.push_back(std::to_string(fused.stats.preempted_running));
    row.push_back(std::to_string(fused.stats.resumed));
    row.push_back(std::to_string(fused.stats.rejected_overload));
    row.push_back(fmt(percentile(preempt.high_ms, 0.50)));
    row.push_back(fmt(percentile(preempt.low_ms, 0.50)));
    row.push_back(fmt(percentile(preempt.low_ms, 0.99)));
    row.push_back(std::to_string(preempt.stats.preempted_running));
    row.push_back(std::to_string(preempt.stats.resumed));
    row.push_back(fmt(percentile(noresume.high_ms, 0.50)));
    row.push_back(fmt(percentile(noresume.low_ms, 0.50)));
    row.push_back(fmt(percentile(noresume.low_ms, 0.99)));
    csv_rows.push_back(row);
  }
  csv.write_all({"lane", "jobs", "solved", "failed", "cancelled", "p50_ms",
                 "p90_ms", "p99_ms", "max_ms", "wall_seconds",
                 "throughput_per_s", "batches", "batched_jobs", "givebacks",
                 "samples", "fused_batches", "fused_jobs", "unfused_p50_ms",
                 "unfused_p99_ms", "unfused_throughput_per_s",
                 "preempted_queued", "preempted_running", "resumed",
                 "rejected_overload", "preempt_high_p50_ms",
                 "preempt_low_p50_ms", "preempt_low_p99_ms",
                 "preempt_preempted_running", "preempt_resumed",
                 "noresume_high_p50_ms", "noresume_low_p50_ms",
                 "noresume_low_p99_ms"},
                csv_rows);
  std::cout << "CSV: " << csv.path() << "\n";

  std::string json = "{\n  \"schema\": \"cspls-bench-serve/1\",\n";
  json += "  \"quick\": " +
          std::string(args.flag("quick") ? "true" : "false") + ",\n";
  json += "  \"jobs\": " + std::to_string(config.jobs) + ",\n";
  json += "  \"problem\": \"" + config.problem + "\",\n";
  json += "  \"warm_workers\": " + std::to_string(config.warm_workers) +
          ",\n";
  json += "  \"warm_batch_max\": " +
          std::to_string(config.warm_batch_max) + ",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"passes\": {\n";
  append_json_pass(json, "unfused", unfused);
  json += ",\n";
  append_json_pass(json, "fused", fused);
  json += "\n  },\n";
  const auto profile_json = [&](std::string_view name, PreemptProfile& p) {
    std::string out = "    \"" + std::string(name) + "\": {";
    out += "\"high_p50_ms\": " + fmt(percentile(p.high_ms, 0.50));
    out += ", \"low_p50_ms\": " + fmt(percentile(p.low_ms, 0.50));
    out += ", \"low_p99_ms\": " + fmt(percentile(p.low_ms, 0.99));
    out += ", \"preempted_running\": " +
           std::to_string(p.stats.preempted_running);
    out += ", \"resumed\": " + std::to_string(p.stats.resumed);
    out += "}";
    return out;
  };
  json += "  \"preemption\": {\n";
  json += profile_json("resume", preempt) + ",\n";
  json += profile_json("noresume", noresume) + "\n  },\n";
  json += "  \"fused_speedup\": " + fmt(speedup) + "\n}\n";
  const std::string& json_path = args.get_string("json");
  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "ERROR: cannot write " << json_path << "\n";
    return 3;
  }
  out << json;
  out.close();
  std::cout << "JSON: " << json_path << "\n";

  const std::uint64_t failed =
      unfused.lanes["all"].failed + fused.lanes["all"].failed;
  return failed == 0 ? 0 : 1;
}
