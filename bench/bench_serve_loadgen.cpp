// Serving-tier load generator: drives many concurrent small solves through
// the wire protocol (encoded request lines in, parsed event lines out — the
// same bytes a stdio/HTTP client would exchange) and reports end-to-end
// latency percentiles and throughput per priority lane.
//
// Defaults complete 1000 jobs; --quick is the CI smoke budget.  The CSV
// (SERVE_load.csv) schema is validated by tools/check_serve_load.py.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/session.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct LaneAgg {
  std::vector<double> latencies_ms;
  std::uint64_t solved = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;

  [[nodiscard]] std::uint64_t total() const {
    return solved + failed + cancelled;
  }
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("bench_serve_loadgen",
                       "serving-tier latency/throughput under concurrent "
                       "small solves");
  args.add_uint64("jobs", 1000, "solve jobs to push through the wire");
  args.add_string("problem", "costas:6", "instance spec per job");
  args.add_uint64("warm-workers", 4, "warm-pool worker threads");
  args.add_uint64("batch", 8, "warm batch claim size");
  args.add_uint64("threads", 0, "service-path walker-thread budget");
  args.add_flag("stream", "request sample streaming on every job");
  args.add_uint64("seed", 0xC5B15, "base seed (job i uses seed + i)");
  args.add_string("csv", "SERVE_load.csv", "output CSV path");
  args.add_flag("quick", "CI smoke budget (250 jobs)");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  const std::uint64_t jobs =
      args.flag("quick") ? 250 : args.get_uint64("jobs");
  const std::string problem = args.get_string("problem");
  const bool stream = args.flag("stream");

  serve::SchedulerOptions options;
  options.warm_workers =
      static_cast<std::size_t>(args.get_uint64("warm-workers"));
  options.warm_batch_max = static_cast<std::size_t>(args.get_uint64("batch"));
  options.service.thread_budget =
      static_cast<std::size_t>(args.get_uint64("threads"));
  serve::Scheduler scheduler(options);

  // tag -> submit time; filled before each handle_line, matched against the
  // tag echoed in the report event (ids are assigned by the server).
  std::mutex m;
  std::condition_variable done_cv;
  std::map<std::string, Clock::time_point> submit_at;
  std::map<std::string, LaneAgg> lanes;  // keyed by priority name
  std::uint64_t reported = 0;
  std::uint64_t samples_seen = 0;
  std::map<std::string, std::string> lane_of_tag;

  serve::Session session(scheduler, [&](std::string_view line) {
    // Parse exactly what a wire client would read.
    const std::optional<util::Json> event = util::Json::parse(
        std::string_view(line.data(), line.size() - 1));  // strip '\n'
    if (!event) return;
    const std::string& kind = event->at("event").as_string();
    if (kind == "sample") {
      std::lock_guard lock(m);
      ++samples_seen;
      return;
    }
    if (kind != "report") return;
    const Clock::time_point now = Clock::now();
    const std::string& tag = event->at("tag").as_string();
    const std::string& status = event->at("status").as_string();
    std::lock_guard lock(m);
    LaneAgg& agg = lanes[lane_of_tag[tag]];
    agg.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(now - submit_at[tag])
            .count());
    if (status == "done") {
      ++agg.solved;
    } else if (status == "cancelled") {
      ++agg.cancelled;
    } else {
      ++agg.failed;
    }
    ++reported;
    done_cv.notify_all();
  });

  constexpr std::string_view kPriorities[] = {"high", "normal", "low"};
  const Clock::time_point t0 = Clock::now();
  for (std::uint64_t i = 0; i < jobs; ++i) {
    const std::string tag = "job-" + std::to_string(i);
    const std::string_view priority = kPriorities[i % 3];
    util::Json request = util::Json::object();
    request.set("problem", problem)
        .set("walkers", std::uint64_t{1})
        .set("scheduling", "sequential")
        .set("seed", args.get_uint64("seed") + i);
    util::Json envelope = util::Json::object();
    envelope.set("op", "solve")
        .set("request", std::move(request))
        .set("priority", priority)
        .set("tag", tag);
    if (stream) {
      envelope.set("stream", true).set("sample_period", std::uint64_t{512});
    }
    {
      std::lock_guard lock(m);
      submit_at[tag] = Clock::now();
      lane_of_tag[tag] = std::string(priority);
    }
    session.handle_line(envelope.dump(0));
  }

  {
    std::unique_lock lock(m);
    done_cv.wait(lock, [&] { return reported == jobs; });
  }
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  scheduler.shutdown();

  const serve::SchedulerStats stats = scheduler.stats();
  util::Table table({"lane", "jobs", "solved", "failed", "cancelled",
                     "p50_ms", "p90_ms", "p99_ms", "max_ms"});
  std::vector<std::vector<std::string>> rows;
  LaneAgg all;
  for (const std::string_view priority : kPriorities) {
    LaneAgg& agg = lanes[std::string(priority)];
    all.solved += agg.solved;
    all.failed += agg.failed;
    all.cancelled += agg.cancelled;
    all.latencies_ms.insert(all.latencies_ms.end(), agg.latencies_ms.begin(),
                            agg.latencies_ms.end());
  }
  const auto row_of = [&](std::string_view lane, LaneAgg& agg) {
    std::sort(agg.latencies_ms.begin(), agg.latencies_ms.end());
    const double max_ms =
        agg.latencies_ms.empty() ? 0.0 : agg.latencies_ms.back();
    return std::vector<std::string>{
        std::string(lane),
        std::to_string(agg.total()),
        std::to_string(agg.solved),
        std::to_string(agg.failed),
        std::to_string(agg.cancelled),
        fmt(percentile(agg.latencies_ms, 0.50)),
        fmt(percentile(agg.latencies_ms, 0.90)),
        fmt(percentile(agg.latencies_ms, 0.99)),
        fmt(max_ms)};
  };
  for (const std::string_view priority : kPriorities) {
    rows.push_back(row_of(priority, lanes[std::string(priority)]));
  }
  rows.push_back(row_of("all", all));

  for (const auto& row : rows) table.add_row(row);
  std::cout << "bench_serve_loadgen: " << jobs << " x " << problem
            << " through the wire (" << options.warm_workers
            << " warm workers)\n\n"
            << table.render();
  const double throughput = static_cast<double>(jobs) / wall_seconds;
  std::cout << "\nwall: " << fmt(wall_seconds * 1000.0) << " ms, throughput: "
            << fmt(throughput) << " jobs/s, batches: " << stats.batches
            << " (" << stats.batched_jobs << " jobs), givebacks: "
            << stats.givebacks << ", samples: " << samples_seen << "\n";

  util::CsvWriter csv(args.get_string("csv"));
  std::vector<std::vector<std::string>> csv_rows;
  for (auto& row : rows) {
    row.push_back(fmt(wall_seconds));
    row.push_back(fmt(throughput));
    row.push_back(std::to_string(stats.batches));
    row.push_back(std::to_string(stats.batched_jobs));
    row.push_back(std::to_string(stats.givebacks));
    row.push_back(std::to_string(samples_seen));
    csv_rows.push_back(row);
  }
  csv.write_all({"lane", "jobs", "solved", "failed", "cancelled", "p50_ms",
                 "p90_ms", "p99_ms", "max_ms", "wall_seconds",
                 "throughput_per_s", "batches", "batched_jobs", "givebacks",
                 "samples"},
                csv_rows);
  std::cout << "CSV: " << csv.path() << "\n";
  return all.failed == 0 ? 0 : 1;
}
