// Sequential baseline table (the EvoCOP'11 companion's Table-1 analogue):
// per-benchmark single-walk statistics of the Adaptive Search engine —
// runtime quantiles, iteration counts, and the engine's behavioural
// counters (local minima, resets, restarts).  This is the T(1) every
// speedup in Figures 1-3 is measured against.
#include <cstdio>

#include "common.hpp"
#include "core/adaptive_search.hpp"
#include "parallel/walker_pool.hpp"
#include "problems/registry.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace cspls;
  const auto options = bench::parse_harness_options(
      argc, argv, "bench_sequential_baseline",
      "Sequential Adaptive Search statistics per benchmark (T(1) table)", 60);
  if (!options) return 0;

  bench::print_preamble(
      "Sequential baseline — single-walk Adaptive Search statistics",
      "All eight models of the suite (paper benchmarks first).");

  util::Table table({"benchmark", "vars", "solved", "med iters", "q90 iters",
                     "med ms", "mean ms", "q90 ms", "locmin/it", "resets/it"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const auto& name : problems::problem_names()) {
    const auto spec = bench::spec_for(name, options->paper_scale);
    const auto prototype = spec.instantiate();
    parallel::WalkerPoolOptions pool;
    pool.num_walkers = options->samples;
    pool.master_seed = options->seed;
    pool.scheduling = parallel::Scheduling::kSequential;
    pool.termination = parallel::Termination::kBestAfterBudget;
    const auto walks = options->samples == 0
                           ? std::vector<parallel::WalkerOutcome>{}
                           : parallel::WalkerPool(pool).run(*prototype).walkers;

    std::vector<double> iters, ms;
    double locmin = 0.0, resets = 0.0, total_iters = 0.0;
    std::size_t solved = 0;
    for (const auto& w : walks) {
      if (!w.result.solved) continue;
      ++solved;
      iters.push_back(static_cast<double>(w.result.stats.iterations));
      ms.push_back(w.result.stats.seconds * 1e3);
      locmin += static_cast<double>(w.result.stats.local_minima);
      resets += static_cast<double>(w.result.stats.resets);
      total_iters += static_cast<double>(w.result.stats.iterations);
    }
    table.add_row(
        {spec.label(), std::to_string(prototype->num_variables()),
         std::to_string(solved) + "/" + std::to_string(walks.size()),
         util::Table::num(util::quantile(iters, 0.5), 0),
         util::Table::num(util::quantile(iters, 0.9), 0),
         util::Table::num(util::quantile(ms, 0.5), 2),
         util::Table::num(util::mean(ms), 2),
         util::Table::num(util::quantile(ms, 0.9), 2),
         util::Table::num(total_iters > 0 ? locmin / total_iters : 0.0, 3),
         util::Table::num(total_iters > 0 ? resets / total_iters : 0.0, 4)});
    csv_rows.push_back({spec.label(),
                        util::Table::num(util::quantile(iters, 0.5), 0),
                        util::Table::num(util::quantile(ms, 0.5), 3),
                        util::Table::num(util::mean(ms), 3)});
  }

  std::printf("%s\n", table.render("Single-walk statistics (" +
                                   std::to_string(options->samples) +
                                   " seeded walks each)")
                          .c_str());
  std::printf(
      "Heavy tails (mean >> median) are what independent multi-walk\n"
      "parallelism converts into speedup; compare the ms columns.\n");

  util::CsvWriter csv(options->csv_prefix + "table.csv");
  csv.write_all({"benchmark", "median_iters", "median_ms", "mean_ms"},
                csv_rows);
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
