// Complete (systematic) search baseline.
//
// The paper's introduction positions local search against "classical
// propagation-based solvers"; this module provides that comparator: a
// depth-first backtracking solver over permutation CSPs with incremental
// constraint checking (forward pruning at every placement).  It is used to
//   * cross-validate the local-search models (every complete-search solution
//     must verify() and have cost 0, and vice versa on small instances),
//   * count solutions of small instances against published values
//     (e.g. 4 solutions of 6-queens, 12 Costas arrays of order 4), and
//   * run the local-vs-complete crossover bench (bench_vs_complete).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cspls::baseline {

/// Incremental feasibility oracle for a permutation CSP: positions are
/// assigned left to right; push() extends the prefix, pop() retracts it.
class PartialChecker {
 public:
  virtual ~PartialChecker() = default;

  /// Number of variables (= permutation length).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// The canonical value multiset being permuted.
  [[nodiscard]] virtual std::span<const int> domain() const noexcept = 0;

  /// Try to place `value` at `pos` given the already-placed prefix
  /// [0, pos).  On success the placement is recorded and true is returned;
  /// on failure the checker's state is unchanged.
  [[nodiscard]] virtual bool push(std::size_t pos, int value) = 0;

  /// Retract the placement at `pos` (LIFO discipline).
  virtual void pop(std::size_t pos, int value) = 0;
};

struct SearchLimits {
  /// Abort after this many search nodes (placements tried).
  std::uint64_t max_nodes = UINT64_MAX;
  /// Keep searching after the first solution and count them all.
  bool count_all = false;
};

struct SearchOutcome {
  bool found = false;
  std::vector<int> first_solution;
  std::uint64_t solutions = 0;
  std::uint64_t nodes = 0;
  /// True when the node budget stopped the search (result is a lower bound).
  bool hit_limit = false;
};

/// Depth-first search with the checker's incremental pruning.
[[nodiscard]] SearchOutcome backtrack_search(PartialChecker& checker,
                                             const SearchLimits& limits = {});

}  // namespace cspls::baseline
