#include "baseline/checkers.hpp"

#include <cstdlib>
#include <numeric>

namespace cspls::baseline {

QueensChecker::QueensChecker(std::size_t n)
    : n_(n), domain_(n), up_(2 * n - 1, false), down_(2 * n - 1, false) {
  std::iota(domain_.begin(), domain_.end(), 0);
}

bool QueensChecker::push(std::size_t pos, int value) {
  const std::size_t up = static_cast<std::size_t>(value) + pos;
  const std::size_t down = static_cast<std::size_t>(
      value - static_cast<int>(pos) + static_cast<int>(n_) - 1);
  if (up_[up] || down_[down]) return false;
  up_[up] = true;
  down_[down] = true;
  return true;
}

void QueensChecker::pop(std::size_t pos, int value) {
  up_[static_cast<std::size_t>(value) + pos] = false;
  down_[static_cast<std::size_t>(value - static_cast<int>(pos) +
                                 static_cast<int>(n_) - 1)] = false;
}

CostasChecker::CostasChecker(std::size_t n)
    : n_(n),
      stride_(2 * n + 1),
      domain_(n),
      used_((n - 1) * (2 * n + 1), false) {
  std::iota(domain_.begin(), domain_.end(), 1);
  prefix_.reserve(n);
}

bool CostasChecker::push(std::size_t pos, int value) {
  // New pairs: (i, pos) for every placed i; row d = pos - i.
  for (std::size_t i = 0; i < pos; ++i) {
    const std::size_t d = pos - i;
    const int diff = value - prefix_[i];
    const std::size_t s = slot(d, diff);
    if (used_[s]) {
      // Roll back the marks set so far in this call.
      for (std::size_t r = 0; r < i; ++r) {
        used_[slot(pos - r, value - prefix_[r])] = false;
      }
      return false;
    }
    used_[s] = true;
  }
  prefix_.push_back(value);
  return true;
}

void CostasChecker::pop(std::size_t pos, int value) {
  prefix_.pop_back();
  for (std::size_t i = 0; i < pos; ++i) {
    used_[slot(pos - i, value - prefix_[i])] = false;
  }
}

AllIntervalChecker::AllIntervalChecker(std::size_t n)
    : n_(n), domain_(n), dist_used_(n, false) {
  std::iota(domain_.begin(), domain_.end(), 0);
  prefix_.reserve(n);
}

bool AllIntervalChecker::push(std::size_t /*pos*/, int value) {
  if (!prefix_.empty()) {
    const int d = std::abs(value - prefix_.back());
    if (d == 0 || dist_used_[static_cast<std::size_t>(d)]) return false;
    dist_used_[static_cast<std::size_t>(d)] = true;
  }
  prefix_.push_back(value);
  return true;
}

void AllIntervalChecker::pop(std::size_t /*pos*/, int value) {
  prefix_.pop_back();
  if (!prefix_.empty()) {
    dist_used_[static_cast<std::size_t>(std::abs(value - prefix_.back()))] =
        false;
  }
}

}  // namespace cspls::baseline
