#include "baseline/backtracker.hpp"

#include <algorithm>

namespace cspls::baseline {

namespace {

struct Frame {
  std::size_t pos;
};

/// Recursive DFS (depth = permutation length; recursion depth is bounded by
/// the instance size, which is small for complete search by nature).
bool dfs(PartialChecker& checker, std::vector<int>& values,
         std::vector<bool>& used, std::size_t pos, const SearchLimits& limits,
         SearchOutcome& out) {
  const std::size_t n = checker.size();
  if (pos == n) {
    ++out.solutions;
    if (!out.found) {
      out.found = true;
      out.first_solution = values;
    }
    return !limits.count_all;  // stop unless counting everything
  }
  const auto domain = checker.domain();
  for (std::size_t v = 0; v < n; ++v) {
    if (used[v]) continue;
    if (out.nodes >= limits.max_nodes) {
      out.hit_limit = true;
      return true;
    }
    ++out.nodes;
    const int value = domain[v];
    if (!checker.push(pos, value)) continue;
    used[v] = true;
    values[pos] = value;
    const bool stop = dfs(checker, values, used, pos + 1, limits, out);
    used[v] = false;
    checker.pop(pos, value);
    if (stop) return true;
  }
  return false;
}

}  // namespace

SearchOutcome backtrack_search(PartialChecker& checker,
                               const SearchLimits& limits) {
  SearchOutcome out;
  std::vector<int> values(checker.size(), 0);
  std::vector<bool> used(checker.size(), false);
  dfs(checker, values, used, 0, limits, out);
  return out;
}

}  // namespace cspls::baseline
