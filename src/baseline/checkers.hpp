// Incremental constraint checkers for the complete-search baseline.
#pragma once

#include <vector>

#include "baseline/backtracker.hpp"

namespace cspls::baseline {

/// N-Queens: value = row of the queen in the column being placed; prunes on
/// diagonal occupancy.
class QueensChecker final : public PartialChecker {
 public:
  explicit QueensChecker(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept override { return n_; }
  [[nodiscard]] std::span<const int> domain() const noexcept override {
    return domain_;
  }
  [[nodiscard]] bool push(std::size_t pos, int value) override;
  void pop(std::size_t pos, int value) override;

 private:
  std::size_t n_;
  std::vector<int> domain_;
  std::vector<bool> up_;
  std::vector<bool> down_;
};

/// Costas arrays: prunes as soon as two inter-mark differences coincide in
/// any row of the difference triangle.
class CostasChecker final : public PartialChecker {
 public:
  explicit CostasChecker(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept override { return n_; }
  [[nodiscard]] std::span<const int> domain() const noexcept override {
    return domain_;
  }
  [[nodiscard]] bool push(std::size_t pos, int value) override;
  void pop(std::size_t pos, int value) override;

 private:
  [[nodiscard]] std::size_t slot(std::size_t d, int diff) const noexcept {
    return (d - 1) * stride_ +
           static_cast<std::size_t>(diff + static_cast<int>(n_));
  }

  std::size_t n_;
  std::size_t stride_;
  std::vector<int> domain_;
  std::vector<int> prefix_;  ///< placed values
  std::vector<bool> used_;   ///< difference-triangle occupancy
};

/// All-interval series: prunes on repeated adjacent distances.
class AllIntervalChecker final : public PartialChecker {
 public:
  explicit AllIntervalChecker(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept override { return n_; }
  [[nodiscard]] std::span<const int> domain() const noexcept override {
    return domain_;
  }
  [[nodiscard]] bool push(std::size_t pos, int value) override;
  void pop(std::size_t pos, int value) override;

 private:
  std::size_t n_;
  std::vector<int> domain_;
  std::vector<int> prefix_;
  std::vector<bool> dist_used_;
};

}  // namespace cspls::baseline
