#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cspls::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(std::max(hi, lo)), counts_(std::max<std::size_t>(bins, 1)) {
  if (hi_ == lo_) hi_ = lo_ + 1.0;
  bin_width_ = (hi_ - lo_) / static_cast<double>(counts_.size());
}

Histogram Histogram::from_data(std::span<const double> values,
                               std::size_t bins) {
  double lo = 0.0, hi = 1.0;
  if (!values.empty()) {
    const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    lo = *mn;
    hi = *mx;
  }
  Histogram h(lo, hi, bins);
  h.add_all(values);
  return h;
}

void Histogram::add(double value) noexcept {
  auto raw = static_cast<std::ptrdiff_t>((value - lo_) / bin_width_);
  raw = std::clamp<std::ptrdiff_t>(
      raw, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (const double v : values) add(v);
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  const double lo = lo_ + bin_width_ * static_cast<double>(bin);
  return {lo, lo + bin_width_};
}

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 1;
  for (const std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [blo, bhi] = bin_range(b);
    const auto bar =
        (counts_[b] * width + max_count - 1) / max_count;  // ceil scale
    char label[64];
    std::snprintf(label, sizeof(label), "[%10.4g,%10.4g) %6zu |", blo, bhi,
                  counts_[b]);
    os << label << std::string(counts_[b] == 0 ? 0 : bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace cspls::util
