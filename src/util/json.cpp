#include "util/json.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace cspls::util {

namespace {

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(std::string("Json: expected ") + wanted +
                           ", document holds " +
                           kNames[static_cast<int>(got)]);
}

}  // namespace

Json::Json(bool value) : type_(Type::kBool), bool_(value) {}

Json::Json(int value) : Json(static_cast<std::int64_t>(value)) {}

Json::Json(std::int64_t value)
    : type_(Type::kNumber), scalar_(std::to_string(value)) {}

Json::Json(std::uint64_t value)
    : type_(Type::kNumber), scalar_(std::to_string(value)) {}

Json::Json(double value) : type_(Type::kNumber) {
  // Shortest text that round-trips the exact double (std::to_chars).
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("Json: unformattable double");
  scalar_.assign(buf, end);
}

Json::Json(const char* value) : type_(Type::kString), scalar_(value) {}

Json::Json(std::string value)
    : type_(Type::kString), scalar_(std::move(value)) {}

Json::Json(std::string_view value) : type_(Type::kString), scalar_(value) {}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::number_from_text(std::string text) {
  Json j;
  j.type_ = Type::kNumber;
  j.scalar_ = std::move(text);
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  std::int64_t value = 0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("Json: number '" + scalar_ +
                             "' is not an int64");
  }
  return value;
}

std::uint64_t Json::as_uint64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  std::uint64_t value = 0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("Json: number '" + scalar_ +
                             "' is not a uint64");
  }
  return value;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  double value = 0.0;
  const char* begin = scalar_.data();
  const char* end = begin + scalar_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("Json: number '" + scalar_ +
                             "' is not a double");
  }
  return value;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return scalar_;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

const Json& Json::operator[](std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (index >= array_.size()) {
    throw std::runtime_error("Json: array index " + std::to_string(index) +
                             " out of range (size " +
                             std::to_string(array_.size()) + ")");
  }
  return array_[index];
}

const std::vector<Json>& Json::elements() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw std::runtime_error("Json: missing member \"" + std::string(key) +
                             "\"");
  }
  return *found;
}

const std::vector<Json::Member>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
    case Type::kString:
      return scalar_ == other.scalar_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void write_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += scalar_;
      break;
    case Type::kString:
      write_escaped(out, scalar_);
      break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        write_newline_indent(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (!array_.empty()) write_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        write_newline_indent(out, indent, depth + 1);
        write_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (!object_.empty()) write_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser — strict recursive descent with a nesting cap.
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos >= text.size() || text[pos] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos;
    return true;
  }

  [[nodiscard]] bool parse_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos += literal.size();
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos + 1 >= text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    const auto digits = [&] {
      const std::size_t before = pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
      return pos > before;
    };
    if (!digits()) return fail("bad number");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) return fail("bad number (fraction)");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return fail("bad number (exponent)");
    }
    // Validate the text round-trips through a double (also rejects
    // leading-zero forms the grammar above can let through, e.g. "01").
    const std::string_view body = text.substr(start, pos - start);
    if (body.size() > 1 && body[0] == '0' && body[1] >= '0' && body[1] <= '9') {
      return fail("bad number (leading zero)");
    }
    if (body.size() > 2 && body[0] == '-' && body[1] == '0' && body[2] >= '0' &&
        body[2] <= '9') {
      return fail("bad number (leading zero)");
    }
    out = Json::number_from_text(std::string(body));
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case 'n':
        if (!parse_literal("null")) return false;
        out = Json();
        return true;
      case 't':
        if (!parse_literal("true")) return false;
        out = Json(true);
        return true;
      case 'f':
        if (!parse_literal("false")) return false;
        out = Json(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        Json array = Json::array();
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          out = std::move(array);
          return true;
        }
        while (true) {
          Json element;
          if (!parse_value(element, depth + 1)) return false;
          array.push_back(std::move(element));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated array");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == ']') {
            ++pos;
            out = std::move(array);
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos;
        Json object = Json::object();
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          out = std::move(object);
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          Json value;
          if (!parse_value(value, depth + 1)) return false;
          object.set(std::move(key), std::move(value));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated object");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == '}') {
            ++pos;
            out = std::move(object);
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default:
        return parse_number(out);
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  Json value;
  if (!parser.parse_value(value, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(parser.pos);
    }
    return std::nullopt;
  }
  return value;
}

}  // namespace cspls::util
