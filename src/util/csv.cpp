#include "util/csv.hpp"

#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace cspls::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
  // Create the parent directory if the caller asked for one (harness
  // binaries write their mirrors under csv/ so the bench directory stays a
  // pure list of executables).
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  out_.open(path);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_all(const std::vector<std::string>& header,
                          const std::vector<std::vector<std::string>>& rows) {
  write_row(header);
  for (const auto& row : rows) write_row(row);
  out_.flush();
}

}  // namespace cspls::util
