// Aligned ASCII tables — the harness prints the paper's tables/series as
// human-readable rows (and mirrors them to CSV, see csv.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cspls::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// Simple row/column text table.  Build with add_row(); render() pads and
/// aligns each column to its widest cell and draws a header separator.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> aligns = {});

  /// Append a row; it must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers (fixed decimals / significant digits).
  static std::string num(double value, int decimals = 2);
  static std::string sig(double value, int significant = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Render as aligned text, optionally with a title line above.
  [[nodiscard]] std::string render(std::string_view title = {}) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cspls::util
