#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/rng.hpp"

namespace cspls::util {

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " q25=" << q25 << " med=" << median
     << " q75=" << q75 << " max=" << max << " mean=" << mean
     << " sd=" << stddev;
  return os.str();
}

double quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double p) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, p);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double sample_stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(sorted);
  s.median = quantile_sorted(sorted, 0.5);
  s.q25 = quantile_sorted(sorted, 0.25);
  s.q75 = quantile_sorted(sorted, 0.75);
  s.stddev = sample_stddev(sorted);
  return s;
}

void Welford::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

double Welford::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

BootstrapCi bootstrap_mean_ci(std::span<const double> values, Xoshiro256& rng,
                              std::size_t resamples, double level) {
  BootstrapCi ci;
  if (values.empty()) return ci;
  ci.point = mean(values);
  if (values.size() == 1 || resamples == 0) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }
  std::vector<double> stats(resamples);
  for (auto& stat : stats) {
    double acc = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      acc += values[static_cast<std::size_t>(rng.below(values.size()))];
    }
    stat = acc / static_cast<double>(values.size());
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile_sorted(stats, alpha);
  ci.hi = quantile_sorted(stats, 1.0 - alpha);
  return ci;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace cspls::util
