// Leveled stderr logger.  Verbosity is process-global and settable from the
// harness (`--verbose`); default level keeps bench output clean.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace cspls::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Set / query the global verbosity threshold.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit `message` at `level` if enabled.  Message is one line (no trailing
/// newline needed).  Thread-safe: a single fputs per call.
void log(LogLevel level, std::string_view message);

/// printf-style convenience wrappers.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

inline void log_error(std::string_view m) { log(LogLevel::kError, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }

}  // namespace cspls::util
