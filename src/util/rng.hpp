// Deterministic pseudo-random number generation for reproducible experiments.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded through splitmix64 as
// its authors recommend.  It provides jump() / long_jump() so that a family of
// walkers can be given provably non-overlapping subsequences from one master
// seed — the property the independent multi-walk engine relies on: the paper's
// parallel scheme launches "several search engines starting from different
// initial configurations", and those configurations must be independent even
// when thousands of walkers share a single experiment seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace cspls::util {

/// splitmix64: used to expand a 64-bit seed into engine state.  Also a fine
/// standalone generator for non-critical uses (hashing, quick decorrelation).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 256-bit-state generator.
/// Satisfies std::uniform_random_bit_generator so it can drive <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via splitmix64 expansion (never yields the all-zero state).
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advance 2^128 steps: partitions the period into 2^128 non-overlapping
  /// streams.  Used to derive sibling streams for parallel walkers.
  void jump() noexcept;

  /// Advance 2^192 steps: partitions into 2^64 streams of 2^192 numbers each.
  /// Used to separate *experiments* (each of which may jump() per walker).
  void long_jump() noexcept;

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
  /// method (unbiased, one division in the rare rejection path).  Defined
  /// inline: this is the tie-break draw on the solver's hot path.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) [[unlikely]] {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform01() < p; }

  /// Fisher–Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty span.
  template <typename T>
  [[nodiscard]] std::size_t pick_index(std::span<const T> values) noexcept {
    return static_cast<std::size_t>(below(values.size()));
  }

  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

  /// Rebuild an engine at an exact stream position previously captured with
  /// state().  This is the checkpoint/resume primitive: a resumed engine
  /// continues the captured sequence bit-for-bit.  An all-zero state (never
  /// produced by a seeded engine) is re-seeded defensively so the generator
  /// can't lock up on corrupt input.
  [[nodiscard]] static Xoshiro256 from_state(
      const std::array<std::uint64_t, 4>& state) noexcept {
    Xoshiro256 rng;
    if ((state[0] | state[1] | state[2] | state[3]) != 0) {
      rng.state_ = state;
    }
    return rng;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Factory producing decorrelated sibling generators from one master seed.
///
/// Stream i is the master engine advanced by i jump()s (each jump is 2^128
/// steps), so any two streams are non-overlapping for any realistic run
/// length.  This mirrors how the reproduction assigns one stream per parallel
/// walker and one long_jump per experiment repetition.
class RngStreamFactory {
 public:
  explicit RngStreamFactory(std::uint64_t master_seed) noexcept
      : base_(master_seed) {}

  /// Engine for walker `stream`; identical (seed, stream) always yields the
  /// identical sequence, regardless of how many streams are created.
  [[nodiscard]] Xoshiro256 stream(std::uint64_t stream_index) const noexcept;

  /// Derive a factory for repetition `rep` of the same experiment: the base
  /// engine long_jump()ed rep times, so repetitions never share streams.
  [[nodiscard]] RngStreamFactory repetition(std::uint64_t rep) const noexcept;

  [[nodiscard]] std::uint64_t master_seed() const noexcept { return seed_; }

 private:
  RngStreamFactory(Xoshiro256 base, std::uint64_t seed) noexcept
      : base_(base), seed_(seed) {}

  Xoshiro256 base_;
  std::uint64_t seed_ = 0;
};

/// Convenience: n distinct seeds derived from one master seed via splitmix64.
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t master_seed,
                                                      std::size_t count);

}  // namespace cspls::util
