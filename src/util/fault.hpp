// Deterministic fault injection — the testing story for partial failure.
//
// At the scale the ROADMAP targets, walker crashes, stalled cores and torn
// messages are the steady state, not the exception; the follow-up studies
// the paper spawned (the X10 cooperative teams, the Cell BE heterogeneous
// port) both had to keep solving while members dropped out.  This layer
// makes those failure modes *reproducible*: a FaultPlan names an injection
// site, a target walker, a 1-based probe count and a failure kind, and a
// Session fires the plan at exactly that probe — same seed, same schedule,
// same crash, every run (the same philosophy that makes kEmulatedRace the
// testing story for races).
//
// Sites (each probed by the layer that owns it):
//   walker_iteration  once per engine iteration (core::AdaptiveSearch);
//   elite_publish     before each communication publish (comm_hooks);
//   elite_adopt       at each adoption gate, reset-time or mid-walk;
//   service_dispatch  once per SolverService job attempt (retry testing);
//   checkpoint_capture at each preemption safe-point capture — a throw or
//                     corrupt here proves a failed capture degrades to a
//                     plain cancel+requeue instead of wedging the pool.
//
// Kinds:
//   throw    raise FaultInjected at the site (a crashing walker / attempt);
//   stall    bounded sleep of `stall_ms` (a wedged core; exercises the
//            service watchdog), capped at kMaxStallMs;
//   corrupt  detected data corruption: the site discards or scrambles its
//            payload and the session records the event ("corrupt-and-
//            report") — a scrambled configuration at walker_iteration, a
//            dropped message at the exchange sites.
//
// Schedules come from two places and are merged per run: the CSPLS_FAULTS
// environment spec (grammar below) and the `faults` member of a
// SolveRequest.  Spec grammar — plans separated by ';', fields by ':':
//
//   site ':' walker ':' at_count ':' kind [':' stall_ms]
//
// where `walker` is a 0-based id or '*' (any walker), e.g.
//
//   CSPLS_FAULTS="walker_iteration:1:100:throw;elite_publish:*:3:stall:5"
//
// Compile-time gate: unless the build defines CSPLS_FAULT_INJECTION (the
// -DCSPLS_FAULT_INJECTION=ON CMake option), the free probe() below is an
// inline no-op and the runtimes never arm a schedule — production builds
// carry zero injection overhead.  Plan values, parsing and JSON round-trip
// stay available in every build (a request carrying faults must survive the
// wire regardless of whether the receiving binary can fire them).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cspls::util {
class Json;
}  // namespace cspls::util

namespace cspls::util::fault {

/// FaultPlan::walker value matching every walker.
inline constexpr std::size_t kAnyWalker = static_cast<std::size_t>(-1);

/// Upper bound on a single stall, whatever the plan asks for: a stalled
/// walker must stay merely slow, never unbounded (shutdown joins it).
inline constexpr std::uint64_t kMaxStallMs = 10'000;

enum class Site : std::uint8_t {
  kWalkerIteration,    ///< once per engine iteration
  kElitePublish,       ///< before each communication publish
  kEliteAdopt,         ///< at each adoption gate (reset-time or mid-walk)
  kServiceDispatch,    ///< once per SolverService job attempt
  kCheckpointCapture,  ///< at each preemption safe-point capture
};
inline constexpr std::size_t kNumSites = 5;

enum class Kind : std::uint8_t {
  kThrow,    ///< raise FaultInjected at the site
  kStall,    ///< bounded sleep of stall_ms
  kCorrupt,  ///< detected corruption: site discards/scrambles and reports
};

[[nodiscard]] std::string_view name_of(Site site) noexcept;
[[nodiscard]] std::string_view name_of(Kind kind) noexcept;

/// One scheduled fault: fire `kind` at the `at_count`-th probe of `site`
/// by walker `walker` (1-based; kAnyWalker matches every walker).
struct FaultPlan {
  Site site = Site::kWalkerIteration;
  std::size_t walker = kAnyWalker;
  std::uint64_t at_count = 1;
  Kind kind = Kind::kThrow;
  std::uint64_t stall_ms = 10;  ///< sleep length for kStall (<= kMaxStallMs)

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] util::Json to_json() const;
  /// Throws std::invalid_argument naming the offending member.
  [[nodiscard]] static FaultPlan from_json(const util::Json& json);

  [[nodiscard]] bool operator==(const FaultPlan&) const = default;
};

/// The exception a kThrow plan raises.  Derives from std::runtime_error so
/// the pool's crash containment (which catches std::exception) records the
/// site/walker/count in the failed walker's error message.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(const FaultPlan& plan, std::size_t walker);
};

/// An immutable set of plans.  Parse one from the CSPLS_FAULTS grammar or
/// build it from plan values; merge request plans with the env plans via
/// with_env().
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<FaultPlan> plans) : plans_(std::move(plans)) {}

  /// Parse the CSPLS_FAULTS spec grammar.  Throws std::invalid_argument
  /// with the offending field on a malformed spec.
  [[nodiscard]] static Schedule parse(std::string_view spec);

  /// The process-wide schedule parsed from CSPLS_FAULTS (once, cached;
  /// empty when the variable is unset or empty).  Throws on a malformed
  /// spec at first use — a misspelled plan must fail loudly, not silently
  /// inject nothing.
  [[nodiscard]] static const Schedule& from_env();

  /// `plans` followed by the env plans — the effective per-run schedule.
  [[nodiscard]] static Schedule with_env(std::vector<FaultPlan> plans);

  [[nodiscard]] bool empty() const noexcept { return plans_.empty(); }
  [[nodiscard]] const std::vector<FaultPlan>& plans() const noexcept {
    return plans_;
  }

 private:
  std::vector<FaultPlan> plans_;
};

/// What a fired probe asks the site to do.  kThrow and kStall are handled
/// inside probe() (raise / sleep); kCorrupt is returned because only the
/// site knows what payload to scramble or drop.
enum class Action : std::uint8_t { kNone, kCorrupt };

/// Per-walker (or per-job) armed counters over one schedule.  Deliberately
/// single-threaded: each walker owns its session, exactly like its RNG
/// stream, so probe counts are deterministic under every scheduling mode.
class Session {
 public:
  /// `schedule` may be null (a disarmed session counts nothing and never
  /// fires) and must outlive the session.
  Session(const Schedule* schedule, std::size_t walker) noexcept
      : schedule_(schedule == nullptr || schedule->empty() ? nullptr
                                                           : schedule),
        walker_(walker) {}

  /// Count one probe of `site` and fire any matching plan: kThrow raises
  /// FaultInjected, kStall sleeps (bounded), kCorrupt is returned for the
  /// site to act on.  Counts are 1-based and per-site.
  Action probe(Site site);

  [[nodiscard]] std::uint64_t count(Site site) const noexcept;
  /// Plans fired so far (all kinds — the "report" half of corrupt-and-report).
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }
  [[nodiscard]] bool armed() const noexcept { return schedule_ != nullptr; }

 private:
  const Schedule* schedule_ = nullptr;
  std::size_t walker_ = kAnyWalker;
  std::uint64_t counts_[kNumSites] = {};
  std::uint64_t fired_ = 0;
};

// --- The compile-time gate --------------------------------------------
//
// Every injection site calls the free probe() below.  When the build does
// not define CSPLS_FAULT_INJECTION it is a constant-returning inline no-op
// — the call folds away entirely — and kCompiledIn lets the runtimes skip
// arming schedules (and the guard test assert exactly that).

#if defined(CSPLS_FAULT_INJECTION) && CSPLS_FAULT_INJECTION
inline constexpr bool kCompiledIn = true;
inline Action probe(Session* session, Site site) {
  return session == nullptr ? Action::kNone : session->probe(site);
}
#else
inline constexpr bool kCompiledIn = false;
inline Action probe(Session* /*session*/, Site /*site*/) noexcept {
  return Action::kNone;
}
#endif

}  // namespace cspls::util::fault
