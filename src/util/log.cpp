#include "util/log.hpp"

#include <atomic>
#include <cstdarg>

namespace cspls::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line;
  line.reserve(message.size() + 16);
  line += "[";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log(level, buf);
}

}  // namespace cspls::util
