#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cspls::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kRight);
    if (!aligns_.empty()) aligns_[0] = Align::kLeft;
  }
  if (aligns_.size() != headers_.size()) {
    throw std::invalid_argument("Table: aligns/headers size mismatch");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Table::sig(double value, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", significant, value);
  return buf;
}

std::string Table::render(std::string_view title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_cell = [&](std::ostringstream& os, const std::string& cell,
                             std::size_t c) {
    const std::size_t pad = widths[c] - cell.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << cell;
    else os << cell << std::string(pad, ' ');
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    emit_cell(os, headers_[c], c);
  }
  os << '\n';
  std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (const std::size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      emit_cell(os, row[c], c);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cspls::util
