// Descriptive statistics for runtime-distribution analysis.
//
// The experiments in this repository are distribution-driven: the speedup of
// independent multi-walk parallelism is a pure function of the sequential
// runtime distribution (see sim/order_stats.hpp).  Everything here is small,
// allocation-light and exactly reproducible.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cspls::util {
class Xoshiro256;

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double q25 = 0.0;
  double q75 = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Compute a Summary of `values` (empty input yields a zeroed Summary).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolation quantile (type-7, the numpy/R default) of a sample.
/// `p` in [0,1].  Input need not be sorted.
[[nodiscard]] double quantile(std::span<const double> values, double p);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double p);

[[nodiscard]] double mean(std::span<const double> values);
[[nodiscard]] double sample_stddev(std::span<const double> values);

/// Online mean/variance accumulator (Welford).  Numerically stable; merging
/// supported so per-thread accumulators can be combined without a lock.
class Welford {
 public:
  void add(double x) noexcept;
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1); 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Percentile-bootstrap confidence interval for a statistic of a sample.
struct BootstrapCi {
  double point = 0.0;  ///< statistic on the full sample
  double lo = 0.0;
  double hi = 0.0;
};

/// Bootstrap CI for the mean with `resamples` resamples at confidence
/// `level` (e.g. 0.95).  Deterministic given `rng`.
[[nodiscard]] BootstrapCi bootstrap_mean_ci(std::span<const double> values,
                                            Xoshiro256& rng,
                                            std::size_t resamples = 2000,
                                            double level = 0.95);

/// Pearson correlation of two equal-length samples (0 if degenerate).
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Ordinary-least-squares fit y = a + b*x; returns {intercept a, slope b}.
/// Used to check the log-log slope of Fig. 3 (ideal speedup <=> slope 1).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

}  // namespace cspls::util
