#include "util/rng.hpp"

namespace cspls::util {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
  // splitmix64 cannot produce four zero words from any seed, but be defensive:
  // the all-zero state is the one fixed point of xoshiro.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

namespace {
constexpr std::array<std::uint64_t, 4> kJump = {
    0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
    0x39abdc4529b1661cULL};
constexpr std::array<std::uint64_t, 4> kLongJump = {
    0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
    0x39109bb02acbe635ULL};
}  // namespace

void Xoshiro256::jump() noexcept {
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        acc[0] ^= state_[0];
        acc[1] ^= state_[1];
        acc[2] ^= state_[2];
        acc[3] ^= state_[3];
      }
      (void)next();
    }
  }
  state_ = acc;
}

void Xoshiro256::long_jump() noexcept {
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t word : kLongJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        acc[0] ^= state_[0];
        acc[1] ^= state_[1];
        acc[2] ^= state_[2];
        acc[3] ^= state_[3];
      }
      (void)next();
    }
  }
  state_ = acc;
}

std::int64_t Xoshiro256::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto width =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo expected
  return lo + static_cast<std::int64_t>(below(width));
}

Xoshiro256 RngStreamFactory::stream(std::uint64_t stream_index) const noexcept {
  Xoshiro256 engine = base_;
  for (std::uint64_t i = 0; i < stream_index; ++i) engine.jump();
  return engine;
}

RngStreamFactory RngStreamFactory::repetition(
    std::uint64_t rep) const noexcept {
  Xoshiro256 engine = base_;
  for (std::uint64_t i = 0; i < rep; ++i) engine.long_jump();
  return RngStreamFactory(engine, seed_);
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t master_seed,
                                        std::size_t count) {
  SplitMix64 sm(master_seed);
  std::vector<std::uint64_t> seeds(count);
  for (auto& s : seeds) s = sm.next();
  return seeds;
}

}  // namespace cspls::util
