// Minimal dependency-free JSON document model, writer and reader.
//
// Exists so that api::SolveRequest / api::SolveReport can cross a process
// boundary (files, pipes, HTTP bodies) without pulling a third-party JSON
// library into the build.  Scope is deliberately small: the six JSON types,
// UTF-8 strings with full escape handling, and *lossless* 64-bit integers —
// numbers are stored as their canonical text, so a master seed of 2^64-1
// survives encode -> decode -> encode byte-for-byte (a double-based store
// would silently round it).
//
// Objects preserve insertion order, which makes the writer deterministic:
// encoding the same document twice yields the same bytes (the round-trip
// property the api tests lock in).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cspls::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() noexcept = default;                     // null
  Json(std::nullptr_t) noexcept : Json() {}      // NOLINT(runtime/explicit)
  Json(bool value);                              // NOLINT(runtime/explicit)
  Json(int value);                               // NOLINT(runtime/explicit)
  Json(std::int64_t value);                      // NOLINT(runtime/explicit)
  Json(std::uint64_t value);                     // NOLINT(runtime/explicit)
  Json(double value);                            // NOLINT(runtime/explicit)
  Json(const char* value);                       // NOLINT(runtime/explicit)
  Json(std::string value);                       // NOLINT(runtime/explicit)
  Json(std::string_view value);                  // NOLINT(runtime/explicit)

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();
  /// A number holding exactly `text` (must already be valid JSON number
  /// syntax); the parser uses this to preserve the source text so 64-bit
  /// integers and doubles round-trip losslessly.
  [[nodiscard]] static Json number_from_text(std::string text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  // Typed accessors; all throw std::runtime_error on a type (or numeric
  // range) mismatch, naming the offending conversion.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- Arrays -----------------------------------------------------------
  /// Number of elements (arrays) or members (objects); 0 otherwise.
  [[nodiscard]] std::size_t size() const noexcept;
  Json& push_back(Json value);  ///< appends; *this must be an array
  [[nodiscard]] const Json& operator[](std::size_t index) const;
  [[nodiscard]] const std::vector<Json>& elements() const;

  // --- Objects ----------------------------------------------------------
  /// Insert-or-replace `key`; returns *this so sets chain fluently.
  Json& set(std::string key, Json value);
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Member lookup; throws std::runtime_error naming the missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  [[nodiscard]] const std::vector<Member>& members() const;

  // --- Serialization ----------------------------------------------------
  /// Compact when indent == 0, pretty-printed with `indent` spaces per
  /// nesting level otherwise.  Deterministic: member order is preserved.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parser (whole input must be one JSON value).  Returns
  /// std::nullopt on malformed input and, when `error` is non-null, stores
  /// a message with the byte offset of the failure.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  [[nodiscard]] bool operator==(const Json& other) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  /// Number text (canonical, as written/parsed) or string payload.
  std::string scalar_;
  std::vector<Json> array_;
  std::vector<Member> object_;
};

}  // namespace cspls::util
