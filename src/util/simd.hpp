// Portable fixed-width SIMD lanes for the data-parallel cost kernels.
//
// Two tiers, selected at *build* time by the CSPLS_SIMD CMake option and at
// *run* time by a one-shot dispatch check:
//
//   - vector tier: the lane types wrap GNU vector extensions
//     (`__attribute__((vector_size(32)))`), which GCC and Clang lower to the
//     best ISA the target allows (SSE2 pairs on stock x86-64, single AVX2
//     ops under -march=native/CSPLS_NATIVE, NEON on aarch64).  No intrinsic
//     headers, no per-ISA code.
//   - scalar tier: the same types backed by plain arrays with per-lane
//     loops.  Bit-for-bit the same results — the tier choice is a pure
//     performance decision, never a semantic one.
//
// Lane-tail rules (documented in README "Hot path"): kernels process full
// lanes only and fall back to the scalar loop for the tail; scratch arrays
// that back full-lane loads are padded to a lane multiple via padded_size()
// so a full-width load never reads past the logical end.  Gathers are
// scalar-assisted (per-lane loads): portable, and on the kernels' tiny
// occurrence tables the loads all hit L1.
//
// Runtime dispatch: runtime_enabled() is the one-shot check the kernels
// consult before choosing the vector code path.  It is false when the build
// disabled CSPLS_SIMD, when the CSPLS_SIMD environment variable is "0"/"off"
// at process start, or after set_force_scalar(true) (how the tests and
// bench_micro_solver pit the two tiers against each other inside one
// binary).  Flipping force-scalar while solver threads are running is not
// supported — flip it only between solves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(CSPLS_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define CSPLS_SIMD_VECTOR_EXT 1
#else
#define CSPLS_SIMD_VECTOR_EXT 0
#endif

namespace cspls::util::simd {

/// True when the vector tier was compiled in at all.
[[nodiscard]] constexpr bool compiled_with_vectors() noexcept {
  return CSPLS_SIMD_VECTOR_EXT != 0;
}

/// One-shot runtime dispatch: should the kernels take the vector code path?
[[nodiscard]] bool runtime_enabled() noexcept;

/// Force the scalar tier at runtime (tests / A-B benchmarking).  Global;
/// only flip between solves, never while walkers are running.
void set_force_scalar(bool force) noexcept;

/// Human-readable active tier, e.g. "vector-ext[avx2,avx512f]" or "scalar".
[[nodiscard]] const char* tier_name() noexcept;

/// Smallest multiple of `lanes` >= n (scratch padding for full-lane loads).
[[nodiscard]] constexpr std::size_t padded_size(std::size_t n,
                                                std::size_t lanes) noexcept {
  return (n + lanes - 1) / lanes * lanes;
}

// --- i32x8: eight 32-bit lanes --------------------------------------------
//
// Comparisons return lane masks (-1 for true, 0 for false), so boolean
// counting composes as plain lane arithmetic: `acc + cmp` subtracts one per
// true lane, `acc - cmp` adds one.  This is exactly the shape the kernels'
// surplus marginals want.

struct i32x8 {
  static constexpr std::size_t kLanes = 8;
#if CSPLS_SIMD_VECTOR_EXT
  using native = std::int32_t __attribute__((vector_size(32)));
  native v;
#else
  std::int32_t v[kLanes];
#endif

  [[nodiscard]] static i32x8 load(const std::int32_t* p) noexcept {
    i32x8 r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }

  void store(std::int32_t* p) const noexcept { std::memcpy(p, &v, sizeof(v)); }

  [[nodiscard]] static i32x8 broadcast(std::int32_t s) noexcept {
    i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = native{s, s, s, s, s, s, s, s};
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = s;
#endif
    return r;
  }

  /// {first, first+1, ..., first+7} — candidate-index lanes.
  [[nodiscard]] static i32x8 iota(std::int32_t first) noexcept {
#if CSPLS_SIMD_VECTOR_EXT
    i32x8 r;
    r.v = native{0, 1, 2, 3, 4, 5, 6, 7};
    return r + broadcast(first);
#else
    i32x8 r;
    for (std::size_t k = 0; k < kLanes; ++k) {
      r.v[k] = first + static_cast<std::int32_t>(k);
    }
    return r;
#endif
  }

  /// Scalar-assisted gather: r[k] = base[idx[k]].  Indices are signed —
  /// kernels gather difference tables through a base pointer aimed at the
  /// table's centre, so negative lanes are legitimate.
  [[nodiscard]] static i32x8 gather(const std::int32_t* base,
                                    const i32x8& idx) noexcept {
    i32x8 r;
    for (std::size_t k = 0; k < kLanes; ++k) {
      r.v[k] = base[static_cast<std::ptrdiff_t>(idx.v[k])];
    }
    return r;
  }

  [[nodiscard]] std::int32_t lane(std::size_t k) const noexcept {
    return v[k];
  }

  friend i32x8 operator+(const i32x8& a, const i32x8& b) noexcept {
    i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v + b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] + b.v[k];
#endif
    return r;
  }

  friend i32x8 operator-(const i32x8& a, const i32x8& b) noexcept {
    i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v - b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] - b.v[k];
#endif
    return r;
  }

  friend i32x8 operator^(const i32x8& a, const i32x8& b) noexcept {
    i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v ^ b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] ^ b.v[k];
#endif
    return r;
  }

  friend i32x8 operator&(const i32x8& a, const i32x8& b) noexcept {
    i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v & b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] & b.v[k];
#endif
    return r;
  }

  friend i32x8 operator|(const i32x8& a, const i32x8& b) noexcept {
    i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v | b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] | b.v[k];
#endif
    return r;
  }

  [[nodiscard]] friend i32x8 operator~(const i32x8& a) noexcept {
    return a ^ broadcast(-1);
  }
};

/// |a| per lane, branch-free: (a ^ (a >> 31)) - (a >> 31).
[[nodiscard]] inline i32x8 abs(const i32x8& a) noexcept {
  i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
  const i32x8::native m = a.v >> 31;
  r.v = (a.v ^ m) - m;
#else
  for (std::size_t k = 0; k < i32x8::kLanes; ++k) {
    const std::int32_t m = a.v[k] >> 31;
    r.v[k] = (a.v[k] ^ m) - m;
  }
#endif
  return r;
}

[[nodiscard]] inline i32x8 min(const i32x8& a, const i32x8& b) noexcept {
  i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
  const i32x8::native m = a.v < b.v;
  r.v = (m & a.v) | (~m & b.v);
#else
  for (std::size_t k = 0; k < i32x8::kLanes; ++k) {
    r.v[k] = a.v[k] < b.v[k] ? a.v[k] : b.v[k];
  }
#endif
  return r;
}

[[nodiscard]] inline i32x8 cmp_eq(const i32x8& a, const i32x8& b) noexcept {
  i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
  r.v = a.v == b.v;
#else
  for (std::size_t k = 0; k < i32x8::kLanes; ++k) {
    r.v[k] = a.v[k] == b.v[k] ? -1 : 0;
  }
#endif
  return r;
}

[[nodiscard]] inline i32x8 cmp_ge(const i32x8& a, const i32x8& b) noexcept {
  i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
  r.v = a.v >= b.v;
#else
  for (std::size_t k = 0; k < i32x8::kLanes; ++k) {
    r.v[k] = a.v[k] >= b.v[k] ? -1 : 0;
  }
#endif
  return r;
}

[[nodiscard]] inline i32x8 cmp_gt(const i32x8& a, const i32x8& b) noexcept {
  i32x8 r;
#if CSPLS_SIMD_VECTOR_EXT
  r.v = a.v > b.v;
#else
  for (std::size_t k = 0; k < i32x8::kLanes; ++k) {
    r.v[k] = a.v[k] > b.v[k] ? -1 : 0;
  }
#endif
  return r;
}

/// mask ? a : b per lane (mask lanes must be all-ones or all-zeros).
[[nodiscard]] inline i32x8 select(const i32x8& mask, const i32x8& a,
                                  const i32x8& b) noexcept {
  return (mask & a) | (~mask & b);
}

/// True when any lane is non-zero (mask reduce).
[[nodiscard]] inline bool any(const i32x8& m) noexcept {
  std::int32_t acc = 0;
  for (std::size_t k = 0; k < i32x8::kLanes; ++k) acc |= m.v[k];
  return acc != 0;
}

// --- i64x4: four 64-bit lanes (csp::Cost width) ---------------------------

struct i64x4 {
  static constexpr std::size_t kLanes = 4;
#if CSPLS_SIMD_VECTOR_EXT
  using native = std::int64_t __attribute__((vector_size(32)));
  native v;
#else
  std::int64_t v[kLanes];
#endif

  [[nodiscard]] static i64x4 load(const std::int64_t* p) noexcept {
    i64x4 r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }

  void store(std::int64_t* p) const noexcept { std::memcpy(p, &v, sizeof(v)); }

  [[nodiscard]] static i64x4 broadcast(std::int64_t s) noexcept {
    i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = native{s, s, s, s};
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = s;
#endif
    return r;
  }

  /// Widening load of four 32-bit ints (board values, sums) into Cost lanes.
  [[nodiscard]] static i64x4 load_i32(const std::int32_t* p) noexcept {
    i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
    std::int32_t __attribute__((vector_size(16))) half;
    std::memcpy(&half, p, sizeof(half));
    r.v = __builtin_convertvector(half, native);
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = p[k];
#endif
    return r;
  }

  /// {first, first+1, first+2, first+3}.
  [[nodiscard]] static i64x4 iota(std::int64_t first) noexcept {
#if CSPLS_SIMD_VECTOR_EXT
    i64x4 r;
    r.v = native{0, 1, 2, 3};
    return r + broadcast(first);
#else
    i64x4 r;
    for (std::size_t k = 0; k < kLanes; ++k) {
      r.v[k] = first + static_cast<std::int64_t>(k);
    }
    return r;
#endif
  }

  [[nodiscard]] std::int64_t lane(std::size_t k) const noexcept {
    return v[k];
  }

  friend i64x4 operator+(const i64x4& a, const i64x4& b) noexcept {
    i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v + b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] + b.v[k];
#endif
    return r;
  }

  friend i64x4 operator-(const i64x4& a, const i64x4& b) noexcept {
    i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v - b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] - b.v[k];
#endif
    return r;
  }

  friend i64x4 operator&(const i64x4& a, const i64x4& b) noexcept {
    i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v & b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] & b.v[k];
#endif
    return r;
  }

  friend i64x4 operator|(const i64x4& a, const i64x4& b) noexcept {
    i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v | b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] | b.v[k];
#endif
    return r;
  }

  friend i64x4 operator^(const i64x4& a, const i64x4& b) noexcept {
    i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
    r.v = a.v ^ b.v;
#else
    for (std::size_t k = 0; k < kLanes; ++k) r.v[k] = a.v[k] ^ b.v[k];
#endif
    return r;
  }

  [[nodiscard]] friend i64x4 operator~(const i64x4& a) noexcept {
    return a ^ broadcast(-1);
  }
};

[[nodiscard]] inline i64x4 abs(const i64x4& a) noexcept {
  i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
  const i64x4::native m = a.v >> 63;
  r.v = (a.v ^ m) - m;
#else
  for (std::size_t k = 0; k < i64x4::kLanes; ++k) {
    const std::int64_t m = a.v[k] >> 63;
    r.v[k] = (a.v[k] ^ m) - m;
  }
#endif
  return r;
}

[[nodiscard]] inline i64x4 min(const i64x4& a, const i64x4& b) noexcept {
  i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
  const i64x4::native m = a.v < b.v;
  r.v = (m & a.v) | (~m & b.v);
#else
  for (std::size_t k = 0; k < i64x4::kLanes; ++k) {
    r.v[k] = a.v[k] < b.v[k] ? a.v[k] : b.v[k];
  }
#endif
  return r;
}

[[nodiscard]] inline i64x4 cmp_eq(const i64x4& a, const i64x4& b) noexcept {
  i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
  r.v = a.v == b.v;
#else
  for (std::size_t k = 0; k < i64x4::kLanes; ++k) {
    r.v[k] = a.v[k] == b.v[k] ? -1 : 0;
  }
#endif
  return r;
}

[[nodiscard]] inline i64x4 cmp_le(const i64x4& a, const i64x4& b) noexcept {
  i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
  r.v = a.v <= b.v;
#else
  for (std::size_t k = 0; k < i64x4::kLanes; ++k) {
    r.v[k] = a.v[k] <= b.v[k] ? -1 : 0;
  }
#endif
  return r;
}

[[nodiscard]] inline i64x4 cmp_ge(const i64x4& a, const i64x4& b) noexcept {
  i64x4 r;
#if CSPLS_SIMD_VECTOR_EXT
  r.v = a.v >= b.v;
#else
  for (std::size_t k = 0; k < i64x4::kLanes; ++k) {
    r.v[k] = a.v[k] >= b.v[k] ? -1 : 0;
  }
#endif
  return r;
}

[[nodiscard]] inline i64x4 select(const i64x4& mask, const i64x4& a,
                                  const i64x4& b) noexcept {
  return (mask & a) | (~mask & b);
}

[[nodiscard]] inline bool any(const i64x4& m) noexcept {
  std::int64_t acc = 0;
  for (std::size_t k = 0; k < i64x4::kLanes; ++k) acc |= m.v[k];
  return acc != 0;
}

/// Widen the low/high four i32 lanes into Cost lanes.
inline void widen(const i32x8& a, i64x4& lo, i64x4& hi) noexcept {
#if CSPLS_SIMD_VECTOR_EXT
  using half_t = std::int32_t __attribute__((vector_size(16)));
  const half_t lo_half =
      __builtin_shufflevector(a.v, a.v, 0, 1, 2, 3);
  const half_t hi_half =
      __builtin_shufflevector(a.v, a.v, 4, 5, 6, 7);
  lo.v = __builtin_convertvector(lo_half, i64x4::native);
  hi.v = __builtin_convertvector(hi_half, i64x4::native);
#else
  for (std::size_t k = 0; k < i64x4::kLanes; ++k) {
    lo.v[k] = a.v[k];
    hi.v[k] = a.v[k + 4];
  }
#endif
}

}  // namespace cspls::util::simd
