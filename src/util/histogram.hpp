// Fixed-bin histogram with an ASCII renderer, used by the harness to show the
// shape of runtime distributions (the heavy tail is what makes independent
// multi-walk parallelism pay off, so we surface it).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cspls::util {

class Histogram {
 public:
  /// Build `bins` equal-width bins over [lo, hi]; values outside are clamped
  /// into the first/last bin so no observation is lost.
  Histogram(double lo, double hi, std::size_t bins);

  /// Build from data with automatic range (min..max) and the given bin count.
  static Histogram from_data(std::span<const double> values, std::size_t bins);

  void add(double value) noexcept;
  void add_all(std::span<const double> values) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  /// Inclusive-exclusive bounds of one bin.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;

  /// Multi-line ASCII rendering, one row per bin, bar scaled to `width`.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cspls::util
