// Tiny declarative command-line parser for the bench/example binaries.
//
// Every harness binary must run with *no* arguments (the reproduction driver
// executes them bare), so all options carry defaults; flags only refine runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cspls::util {

/// Declarative option set:  describe options once, parse argv, query typed
/// values.  Unknown options raise; `--help` prints the synopsis and sets
/// help_requested().
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  ArgParser& add_flag(std::string name, std::string help);
  ArgParser& add_int(std::string name, std::int64_t default_value,
                     std::string help);
  /// Full-range unsigned option (seeds!): values up to 2^64-1 parse
  /// exactly and negative input is rejected instead of wrapping.
  ArgParser& add_uint64(std::string name, std::uint64_t default_value,
                        std::string help);
  ArgParser& add_double(std::string name, double default_value,
                        std::string help);
  ArgParser& add_string(std::string name, std::string default_value,
                        std::string help);

  /// Parse argv.  Returns false (after printing usage) if --help was given or
  /// on a parse error; callers should exit(0)/exit(2) respectively.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] std::uint64_t get_uint64(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] const std::string& get_string(std::string_view name) const;

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kUint64, kDouble, kString };
  struct Option {
    Kind kind = Kind::kFlag;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    std::uint64_t uint64_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Option& lookup(std::string_view name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option, std::less<>> options_;
  std::vector<std::string> order_;
  bool help_ = false;
  std::string error_;
};

}  // namespace cspls::util
