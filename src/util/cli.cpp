#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cspls::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_flag(std::string name, std::string help) {
  Option opt;
  opt.kind = Kind::kFlag;
  opt.help = std::move(help);
  order_.push_back(name);
  options_.emplace(std::move(name), std::move(opt));
  return *this;
}

ArgParser& ArgParser::add_int(std::string name, std::int64_t default_value,
                              std::string help) {
  Option opt;
  opt.kind = Kind::kInt;
  opt.help = std::move(help);
  opt.int_value = default_value;
  order_.push_back(name);
  options_.emplace(std::move(name), std::move(opt));
  return *this;
}

ArgParser& ArgParser::add_uint64(std::string name, std::uint64_t default_value,
                                 std::string help) {
  Option opt;
  opt.kind = Kind::kUint64;
  opt.help = std::move(help);
  opt.uint64_value = default_value;
  order_.push_back(name);
  options_.emplace(std::move(name), std::move(opt));
  return *this;
}

ArgParser& ArgParser::add_double(std::string name, double default_value,
                                 std::string help) {
  Option opt;
  opt.kind = Kind::kDouble;
  opt.help = std::move(help);
  opt.double_value = default_value;
  order_.push_back(name);
  options_.emplace(std::move(name), std::move(opt));
  return *this;
}

ArgParser& ArgParser::add_string(std::string name, std::string default_value,
                                 std::string help) {
  Option opt;
  opt.kind = Kind::kString;
  opt.help = std::move(help);
  opt.string_value = std::move(default_value);
  order_.push_back(name);
  options_.emplace(std::move(name), std::move(opt));
  return *this;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag:
        break;
      case Kind::kInt:
        os << " <int=" << opt.int_value << ">";
        break;
      case Kind::kUint64:
        os << " <uint=" << opt.uint64_value << ">";
        break;
      case Kind::kDouble:
        os << " <float=" << opt.double_value << ">";
        break;
      case Kind::kString:
        os << " <str=" << opt.string_value << ">";
        break;
    }
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      error_ = "unexpected argument: " + std::string(arg);
      std::fprintf(stderr, "%s\n%s", error_.c_str(), usage().c_str());
      return false;
    }
    arg.remove_prefix(2);
    // Support both "--name value" and "--name=value".
    std::string_view value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      error_ = "unknown option: --" + std::string(arg);
      std::fprintf(stderr, "%s\n%s", error_.c_str(), usage().c_str());
      return false;
    }
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      opt.flag_value = true;
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        error_ = "option --" + std::string(arg) + " expects a value";
        std::fprintf(stderr, "%s\n", error_.c_str());
        return false;
      }
      value = argv[++i];
    }
    try {
      switch (opt.kind) {
        case Kind::kInt:
          opt.int_value = std::stoll(std::string(value));
          break;
        case Kind::kUint64:
          // stoull silently wraps "-1" to 2^64-1; reject signs explicitly.
          if (!value.empty() && (value[0] == '-' || value[0] == '+')) {
            throw std::invalid_argument("unsigned value expected");
          }
          opt.uint64_value = std::stoull(std::string(value));
          break;
        case Kind::kDouble:
          opt.double_value = std::stod(std::string(value));
          break;
        case Kind::kString:
          opt.string_value = std::string(value);
          break;
        case Kind::kFlag:
          break;
      }
    } catch (const std::exception&) {
      error_ = "bad value for --" + std::string(arg) + ": " +
               std::string(value);
      std::fprintf(stderr, "%s\n", error_.c_str());
      return false;
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::lookup(std::string_view name,
                                           Kind kind) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::logic_error("ArgParser: undeclared option " + std::string(name));
  }
  return it->second;
}

bool ArgParser::flag(std::string_view name) const {
  return lookup(name, Kind::kFlag).flag_value;
}

std::int64_t ArgParser::get_int(std::string_view name) const {
  return lookup(name, Kind::kInt).int_value;
}

std::uint64_t ArgParser::get_uint64(std::string_view name) const {
  return lookup(name, Kind::kUint64).uint64_value;
}

double ArgParser::get_double(std::string_view name) const {
  return lookup(name, Kind::kDouble).double_value;
}

const std::string& ArgParser::get_string(std::string_view name) const {
  return lookup(name, Kind::kString).string_value;
}

}  // namespace cspls::util
