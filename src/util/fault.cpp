#include "util/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>

#include "util/json.hpp"

namespace cspls::util::fault {

namespace {

constexpr std::string_view kSiteNames[kNumSites] = {
    "walker_iteration", "elite_publish", "elite_adopt", "service_dispatch",
    "checkpoint_capture"};
constexpr std::string_view kKindNames[3] = {"throw", "stall", "corrupt"};

std::optional<Site> site_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (kSiteNames[i] == name) return static_cast<Site>(i);
  }
  return std::nullopt;
}

std::optional<Kind> kind_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < 3; ++i) {
    if (kKindNames[i] == name) return static_cast<Kind>(i);
  }
  return std::nullopt;
}

std::string names_hint() {
  return "sites: walker_iteration | elite_publish | elite_adopt | "
         "service_dispatch | checkpoint_capture; "
         "kinds: throw | stall | corrupt";
}

[[noreturn]] void bad_spec(std::string_view plan, const std::string& detail) {
  throw std::invalid_argument("CSPLS_FAULTS plan \"" + std::string(plan) +
                              "\": " + detail + " (" + names_hint() + ")");
}

std::uint64_t parse_u64_field(std::string_view plan, std::string_view field,
                              std::string_view name) {
  if (field.empty() || field.find_first_not_of("0123456789") !=
                           std::string_view::npos) {
    bad_spec(plan, "field \"" + std::string(name) +
                       "\" must be a non-negative integer, got \"" +
                       std::string(field) + "\"");
  }
  std::uint64_t value = 0;
  for (const char c : field) {
    if (value > (UINT64_MAX - (c - '0')) / 10) {
      bad_spec(plan, "field \"" + std::string(name) + "\" overflows");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = text.find(sep);
    out.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return out;
}

FaultPlan parse_plan(std::string_view text) {
  const std::vector<std::string_view> fields = split(text, ':');
  if (fields.size() < 4 || fields.size() > 5) {
    bad_spec(text, "expected site:walker:at_count:kind[:stall_ms]");
  }
  FaultPlan plan;
  const std::optional<Site> site = site_from_name(fields[0]);
  if (!site.has_value()) {
    bad_spec(text, "unknown site \"" + std::string(fields[0]) + "\"");
  }
  plan.site = *site;
  plan.walker = fields[1] == "*"
                    ? kAnyWalker
                    : static_cast<std::size_t>(
                          parse_u64_field(text, fields[1], "walker"));
  plan.at_count = parse_u64_field(text, fields[2], "at_count");
  if (plan.at_count == 0) {
    bad_spec(text, "at_count is 1-based and must be >= 1");
  }
  const std::optional<Kind> kind = kind_from_name(fields[3]);
  if (!kind.has_value()) {
    bad_spec(text, "unknown kind \"" + std::string(fields[3]) + "\"");
  }
  plan.kind = *kind;
  if (fields.size() == 5) {
    plan.stall_ms = parse_u64_field(text, fields[4], "stall_ms");
  }
  return plan;
}

}  // namespace

std::string_view name_of(Site site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::string_view name_of(Kind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

std::string FaultPlan::to_string() const {
  std::string out(name_of(site));
  out += ':';
  out += walker == kAnyWalker ? "*" : std::to_string(walker);
  out += ':';
  out += std::to_string(at_count);
  out += ':';
  out += name_of(kind);
  if (kind == Kind::kStall) {
    out += ':';
    out += std::to_string(stall_ms);
  }
  return out;
}

util::Json FaultPlan::to_json() const {
  util::Json json = util::Json::object();
  json.set("site", std::string(name_of(site)));
  if (walker != kAnyWalker) {
    json.set("walker", static_cast<std::uint64_t>(walker));
  }
  json.set("at", at_count)
      .set("kind", std::string(name_of(kind)))
      .set("stall_ms", stall_ms);
  return json;
}

FaultPlan FaultPlan::from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("faults[]: expected an object");
  }
  for (const auto& member : json.members()) {
    if (member.first != "site" && member.first != "walker" &&
        member.first != "at" && member.first != "kind" &&
        member.first != "stall_ms") {
      throw std::invalid_argument("faults[]: unknown member \"" +
                                  member.first + "\"");
    }
  }
  FaultPlan plan;
  const util::Json* site = json.find("site");
  if (site == nullptr) {
    throw std::invalid_argument("faults[]: missing \"site\" (" +
                                names_hint() + ")");
  }
  const std::optional<Site> parsed_site = site_from_name(site->as_string());
  if (!parsed_site.has_value()) {
    throw std::invalid_argument("faults[]: unknown site \"" +
                                site->as_string() + "\" (" + names_hint() +
                                ")");
  }
  plan.site = *parsed_site;
  if (const util::Json* walker = json.find("walker"); walker != nullptr) {
    plan.walker = static_cast<std::size_t>(walker->as_uint64());
  }
  if (const util::Json* at = json.find("at"); at != nullptr) {
    plan.at_count = at->as_uint64();
    if (plan.at_count == 0) {
      throw std::invalid_argument(
          "faults[]: \"at\" is 1-based and must be >= 1");
    }
  }
  if (const util::Json* kind = json.find("kind"); kind != nullptr) {
    const std::optional<Kind> parsed_kind = kind_from_name(kind->as_string());
    if (!parsed_kind.has_value()) {
      throw std::invalid_argument("faults[]: unknown kind \"" +
                                  kind->as_string() + "\" (" + names_hint() +
                                  ")");
    }
    plan.kind = *parsed_kind;
  }
  if (const util::Json* stall = json.find("stall_ms"); stall != nullptr) {
    plan.stall_ms = stall->as_uint64();
  }
  return plan;
}

FaultInjected::FaultInjected(const FaultPlan& plan, std::size_t walker)
    : std::runtime_error(
          "injected fault: " + std::string(name_of(plan.kind)) + " at " +
          std::string(name_of(plan.site)) + " count " +
          std::to_string(plan.at_count) + " (walker " +
          (walker == kAnyWalker ? std::string("*")
                                : std::to_string(walker)) +
          ")") {}

Schedule Schedule::parse(std::string_view spec) {
  std::vector<FaultPlan> plans;
  for (const std::string_view plan : split(spec, ';')) {
    if (plan.empty()) continue;  // tolerate trailing/double separators
    plans.push_back(parse_plan(plan));
  }
  return Schedule(std::move(plans));
}

const Schedule& Schedule::from_env() {
  static const Schedule schedule = [] {
    const char* spec = std::getenv("CSPLS_FAULTS");
    return spec == nullptr ? Schedule{} : parse(spec);
  }();
  return schedule;
}

Schedule Schedule::with_env(std::vector<FaultPlan> plans) {
  const Schedule& env = from_env();
  plans.insert(plans.end(), env.plans_.begin(), env.plans_.end());
  return Schedule(std::move(plans));
}

Action Session::probe(Site site) {
  const std::uint64_t count = ++counts_[static_cast<std::size_t>(site)];
  if (schedule_ == nullptr) return Action::kNone;
  Action action = Action::kNone;
  for (const FaultPlan& plan : schedule_->plans()) {
    if (plan.site != site || plan.at_count != count) continue;
    if (plan.walker != kAnyWalker && plan.walker != walker_) continue;
    ++fired_;
    switch (plan.kind) {
      case Kind::kThrow:
        throw FaultInjected(plan, walker_);
      case Kind::kStall:
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(plan.stall_ms, kMaxStallMs)));
        break;
      case Kind::kCorrupt:
        action = Action::kCorrupt;
        break;
    }
  }
  return action;
}

std::uint64_t Session::count(Site site) const noexcept {
  return counts_[static_cast<std::size_t>(site)];
}

}  // namespace cspls::util::fault
