#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace cspls::util::simd {
namespace {

/// Environment kill-switch, resolved once at first use: CSPLS_SIMD=0 (or
/// "off"/"false") disables the vector tier for the whole process without a
/// rebuild.  Anything else — including unset — leaves the build-time tier.
bool env_allows_simd() {
  const char* raw = std::getenv("CSPLS_SIMD");
  if (raw == nullptr) return true;
  const std::string value(raw);
  return !(value == "0" || value == "off" || value == "OFF" ||
           value == "false" || value == "FALSE");
}

std::atomic<bool> g_force_scalar{false};

bool one_shot_enabled() {
  static const bool enabled = compiled_with_vectors() && env_allows_simd();
  return enabled;
}

const char* detect_tier_name() {
  if (!one_shot_enabled()) return "scalar";
#if CSPLS_SIMD_VECTOR_EXT && defined(__x86_64__)
  if (__builtin_cpu_supports("avx512f")) return "vector-ext[avx512f]";
  if (__builtin_cpu_supports("avx2")) return "vector-ext[avx2]";
  if (__builtin_cpu_supports("sse4.2")) return "vector-ext[sse4.2]";
  return "vector-ext[sse2]";
#elif CSPLS_SIMD_VECTOR_EXT
  return "vector-ext";
#else
  return "scalar";
#endif
}

}  // namespace

bool runtime_enabled() noexcept {
  return one_shot_enabled() &&
         !g_force_scalar.load(std::memory_order_relaxed);
}

void set_force_scalar(bool force) noexcept {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

const char* tier_name() noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) return "scalar(forced)";
  static const char* const name = detect_tier_name();
  return name;
}

}  // namespace cspls::util::simd
