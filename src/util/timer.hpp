// Monotonic wall-clock stopwatch used by every experiment harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace cspls::util {

/// RAII-free stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

  [[nodiscard]] std::uint64_t elapsed_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  // Wall-clock measurements must come from a monotonic clock: system_clock
  // can jump under NTP adjustment, which would corrupt time-to-solution
  // figures mid-race.
  static_assert(Clock::is_steady, "Stopwatch requires a monotonic clock");
  Clock::time_point start_;
};

/// Render a duration in seconds as a compact human string ("482ms", "1.24s",
/// "3m12s").  Used by harness progress output.
[[nodiscard]] inline std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    const int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm%02.0fs", minutes,
                  seconds - 60.0 * minutes);
  }
  return buf;
}

}  // namespace cspls::util
