// Minimal RFC-4180-ish CSV writer.  Every bench mirrors its printed table to
// a CSV file next to the binary so figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace cspls::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path`.  Throws std::runtime_error if unwritable.
  explicit CsvWriter(const std::string& path);

  /// Write one row; fields containing commas/quotes/newlines are quoted.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: header row then delegate to write_row per data row.
  void write_all(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  static std::string escape(std::string_view field);

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace cspls::util
