#include "sim/sampling.hpp"

#include "core/adaptive_search.hpp"
#include "util/rng.hpp"

namespace cspls::sim {

EmpiricalDistribution SampleSet::seconds_distribution() const {
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.solved) xs.push_back(s.seconds);
  }
  return EmpiricalDistribution(std::move(xs));
}

EmpiricalDistribution SampleSet::iterations_distribution() const {
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.solved) xs.push_back(static_cast<double>(s.iterations));
  }
  return EmpiricalDistribution(std::move(xs));
}

double SampleSet::solve_rate() const {
  if (samples.empty()) return 0.0;
  std::size_t solved = 0;
  for (const auto& s : samples) solved += s.solved ? 1 : 0;
  return static_cast<double>(solved) / static_cast<double>(samples.size());
}

double SampleSet::seconds_per_iteration() const {
  double seconds = 0.0;
  double iterations = 0.0;
  for (const auto& s : samples) {
    seconds += s.seconds;
    iterations += static_cast<double>(s.iterations);
  }
  return iterations > 0.0 ? seconds / iterations : 0.0;
}

SampleSet collect_walk_samples(const csp::Problem& prototype,
                               const SamplingOptions& options) {
  core::Params params;
  if (options.params.has_value()) {
    params = *options.params;
  } else {
    params = core::Params::from_hints(prototype.tuning(),
                                      prototype.num_variables());
    // A single *walk* sample should terminate with a solution essentially
    // always; runaway walks restart rather than fail.
    params.max_restarts = 1000;
  }
  const core::AdaptiveSearch engine(params);
  const util::RngStreamFactory streams(options.master_seed);

  SampleSet set;
  set.samples.reserve(options.num_samples);
  for (std::size_t i = 0; i < options.num_samples; ++i) {
    auto problem = prototype.clone();
    util::Xoshiro256 rng = streams.stream(i);
    const core::Result result = engine.solve(*problem, rng);
    WalkSample sample;
    sample.solved = result.solved;
    sample.seconds = result.stats.seconds;
    sample.iterations = result.stats.iterations;
    set.samples.push_back(sample);
  }
  return set;
}

}  // namespace cspls::sim
