#include "sim/sampling.hpp"

#include "parallel/walker_pool.hpp"

namespace cspls::sim {

EmpiricalDistribution SampleSet::seconds_distribution() const {
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.solved) xs.push_back(s.seconds);
  }
  return EmpiricalDistribution(std::move(xs));
}

EmpiricalDistribution SampleSet::iterations_distribution() const {
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.solved) xs.push_back(static_cast<double>(s.iterations));
  }
  return EmpiricalDistribution(std::move(xs));
}

double SampleSet::solve_rate() const {
  if (samples.empty()) return 0.0;
  std::size_t solved = 0;
  for (const auto& s : samples) solved += s.solved ? 1 : 0;
  return static_cast<double>(solved) / static_cast<double>(samples.size());
}

double SampleSet::seconds_per_iteration() const {
  double seconds = 0.0;
  double iterations = 0.0;
  for (const auto& s : samples) {
    seconds += s.seconds;
    iterations += static_cast<double>(s.iterations);
  }
  return iterations > 0.0 ? seconds / iterations : 0.0;
}

SampleSet collect_walk_samples(const csp::Problem& prototype,
                               const SamplingOptions& options) {
  if (options.num_samples == 0) return {};
  core::Params params;
  if (options.params.has_value()) {
    params = *options.params;
  } else {
    params = core::Params::from_hints(prototype.tuning(),
                                      prototype.num_variables());
    // A single *walk* sample should terminate with a solution essentially
    // always; runaway walks restart rather than fail.
    params.max_restarts = 1000;
  }
  // One sequential pool, one walker per sample: walker i runs on RNG
  // stream i, exactly as it would inside the racing engine.
  parallel::WalkerPoolOptions pool;
  pool.num_walkers = options.num_samples;
  pool.master_seed = options.master_seed;
  pool.params = params;
  pool.scheduling = parallel::Scheduling::kSequential;
  pool.termination = parallel::Termination::kBestAfterBudget;
  pool.trace.enabled = true;
  pool.trace.sample_period = options.trace_sample_period;
  auto report = parallel::WalkerPool(pool).run(prototype);

  SampleSet set;
  set.samples.reserve(report.walkers.size());
  set.traces.reserve(report.walkers.size());
  for (auto& walker : report.walkers) {
    WalkSample sample;
    sample.solved = walker.trace.solved;
    sample.seconds = walker.trace.seconds;
    sample.iterations = walker.trace.iterations;
    set.samples.push_back(sample);
    set.traces.push_back(std::move(walker.trace));
  }
  return set;
}

}  // namespace cspls::sim
