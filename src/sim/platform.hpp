// Models of the paper's execution platforms.
//
// The paper runs on the Hitachi HA8000 supercomputer (University of Tokyo)
// and two Grid'5000 Sophia-Antipolis clusters (Suno, Helios).  We obviously
// cannot rent them; DESIGN.md §3 explains why their effect on *independent
// multi-walk* performance reduces to three scalars per platform, which we
// model here:
//
//   * relative per-core speed (clock/IPC scaling of the walk itself),
//   * job startup overhead (launching k processes; grows mildly with k),
//   * completion-detection latency (noticing the first finisher and
//     stopping; the paper's only communication).
//
// Per-node speed jitter models the heterogeneity of a shared grid (the
// paper's perfect-square anomaly at 128/256 cores, where sub-second runs
// start to be dominated by "some other mechanisms", is reproduced by the
// overhead terms dwarfing the shrunken compute time).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cspls::sim {

struct PlatformModel {
  std::string name;
  std::size_t cores_per_node = 1;
  std::size_t max_cores = 1;
  /// Walk execution speed relative to the measurement host (1.0 = same;
  /// 0.5 = each walk takes twice as long).
  double core_speed = 1.0;
  /// Fixed job-launch overhead in seconds (independent of k).
  double startup_seconds = 0.0;
  /// Additional per-node launch overhead in seconds (k/cores_per_node nodes).
  double per_node_startup_seconds = 0.0;
  /// Latency between the first finisher and global termination, seconds.
  double completion_seconds = 0.0;
  /// Standard deviation of per-node multiplicative speed jitter (0 = none).
  double node_jitter = 0.0;

  /// Total non-compute overhead for a k-core job.
  [[nodiscard]] double overhead_seconds(std::size_t cores) const;
  [[nodiscard]] std::size_t nodes_for(std::size_t cores) const;
};

/// Hitachi HA8000: 952 nodes x 16 cores (4x AMD Opteron 8356, 2.3 GHz).
/// Users get at most 64 nodes (1024 cores); the paper uses up to 256 cores.
[[nodiscard]] PlatformModel ha8000();

/// Grid'5000 Suno (Sophia): 45 Dell PowerEdge R410, 8 cores each (360).
[[nodiscard]] PlatformModel grid5000_suno();

/// Grid'5000 Helios (Sophia): 56 Sun Fire X4100, 4 cores each (224).
[[nodiscard]] PlatformModel grid5000_helios();

/// The core counts the paper's figures sweep.
[[nodiscard]] std::vector<std::size_t> paper_core_grid();

}  // namespace cspls::sim
