// Collection of single-walk runtime samples by running the real solver.
//
// These samples are the simulator's ground truth: every speedup figure is
// computed from the empirical law of the *actual* Adaptive Search engine on
// the actual benchmark model (DESIGN.md §3).  Walks are metered both in
// wall-clock seconds and in engine iterations; the iteration metering is
// noise-free on a shared/throttled host and converts to platform seconds
// through the measured cost-per-iteration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "csp/problem.hpp"
#include "sim/order_stats.hpp"

namespace cspls::sim {

struct SamplingOptions {
  std::size_t num_samples = 100;
  std::uint64_t master_seed = 0xA11CE;
  /// Engine parameters; default = the model's tuning hints with a generous
  /// restart budget so nearly every walk terminates with a solution.
  std::optional<core::Params> params;
};

struct WalkSample {
  bool solved = false;
  double seconds = 0.0;
  std::uint64_t iterations = 0;
};

struct SampleSet {
  std::vector<WalkSample> samples;

  /// Distribution of wall-clock runtimes of the solved walks.
  [[nodiscard]] EmpiricalDistribution seconds_distribution() const;
  /// Distribution of iteration counts of the solved walks.
  [[nodiscard]] EmpiricalDistribution iterations_distribution() const;
  [[nodiscard]] double solve_rate() const;
  /// Mean seconds per engine iteration across all walks (calibration).
  [[nodiscard]] double seconds_per_iteration() const;
};

/// Run `num_samples` independent seeded walks of the real engine on clones
/// of `prototype` and record their runtimes.  Deterministic in master_seed
/// up to wall-clock jitter (iteration counts are exactly reproducible).
[[nodiscard]] SampleSet collect_walk_samples(const csp::Problem& prototype,
                                             const SamplingOptions& options);

}  // namespace cspls::sim
