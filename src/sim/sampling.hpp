// Collection of single-walk runtime samples by running the real solver.
//
// These samples are the simulator's ground truth: every speedup figure is
// computed from the empirical law of the *actual* Adaptive Search engine on
// the actual benchmark model (DESIGN.md §3).  Walks are metered both in
// wall-clock seconds and in engine iterations; the iteration metering is
// noise-free on a shared/throttled host and converts to platform seconds
// through the measured cost-per-iteration.
//
// Sampling runs on the WalkerTrace API of the unified parallel runtime: one
// sequential WalkerPool with tracing enabled, one walker per sample, walker
// i on RNG stream i of the master seed — the exact streams the racing
// engine would use, which is what makes offline min-of-k analysis of these
// samples equivalent to the racing version.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "core/trace.hpp"
#include "csp/problem.hpp"
#include "sim/order_stats.hpp"

namespace cspls::sim {

struct SamplingOptions {
  std::size_t num_samples = 100;
  std::uint64_t master_seed = 0xA11CE;
  /// Engine parameters; default = the model's tuning hints with a generous
  /// restart budget so nearly every walk terminates with a solution.
  std::optional<core::Params> params;
  /// Cost-over-time sampling period, in iterations, recorded into each
  /// walk's trace (0 = counters only; keeps sampling allocation-free).
  std::uint64_t trace_sample_period = 0;
};

struct WalkSample {
  bool solved = false;
  double seconds = 0.0;
  std::uint64_t iterations = 0;
};

struct SampleSet {
  std::vector<WalkSample> samples;
  /// Full instrumentation record of every sampled walk, indexed like
  /// `samples`; cost_samples populated when trace_sample_period was set.
  std::vector<core::WalkerTrace> traces;

  /// Distribution of wall-clock runtimes of the solved walks.
  [[nodiscard]] EmpiricalDistribution seconds_distribution() const;
  /// Distribution of iteration counts of the solved walks.
  [[nodiscard]] EmpiricalDistribution iterations_distribution() const;
  [[nodiscard]] double solve_rate() const;
  /// Mean seconds per engine iteration across all walks (calibration).
  [[nodiscard]] double seconds_per_iteration() const;
};

/// Run `num_samples` independent seeded walks of the real engine on clones
/// of `prototype` and record their runtimes.  Deterministic in master_seed
/// up to wall-clock jitter (iteration counts are exactly reproducible).
[[nodiscard]] SampleSet collect_walk_samples(const csp::Problem& prototype,
                                             const SamplingOptions& options);

}  // namespace cspls::sim
