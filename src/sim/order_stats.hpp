// Order statistics over empirical runtime distributions.
//
// The mathematical heart of the reproduction.  For independent multi-walk
// local search with first-finisher termination (the paper's scheme), the
// completion time on k cores is
//
//     T(k) = min(T_1, ..., T_k),   T_i i.i.d. ~ the single-walk runtime law
//
// (Verhoeven & Aarts 1995).  We therefore measure the *empirical* law of the
// real solver's single-walk runtime and evaluate E[min of k draws] exactly
// on the empirical CDF:
//
//     P(min_k = x_(i)) = ((n-i+1)/n)^k - ((n-i)/n)^k     (x_(i) sorted asc)
//
// No distributional assumption is made — the paper's observed behaviours
// (near-linear speedup for CAP, flattening curves for the CSPLib suite) both
// fall out of the measured sample, depending only on its shape.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace cspls::sim {

/// An empirical distribution of non-negative runtime measurements
/// (in seconds, iterations, or any other effort unit).
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::span<const double> sorted_samples() const noexcept {
    return sorted_;
  }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact E[min of k i.i.d. draws] under the empirical CDF.
  [[nodiscard]] double expected_min_of_k(std::size_t k) const;

  /// Quantile of min-of-k: the value t with P(min_k <= t) = p, computed
  /// through the identity P(min_k <= t) = 1 - (1 - F(t))^k.
  [[nodiscard]] double quantile_min_of_k(std::size_t k, double p) const;

  /// Monte-Carlo draw of min-of-k (resampling with replacement); used to
  /// attach spread estimates to the exact expectation.
  [[nodiscard]] double sample_min_of_k(std::size_t k,
                                       util::Xoshiro256& rng) const;

  /// Empirical CDF F(t) (right-continuous step function).
  [[nodiscard]] double cdf(double t) const;

 private:
  std::vector<double> sorted_;
};

/// Analytic reference distributions used by the unit tests to pin the
/// estimator: for Exp(lambda), E[min_k] = 1/(k*lambda) (perfectly linear
/// speedup — the memoryless ideal the CAP behaviour approaches); for a
/// constant distribution, E[min_k] = c (no parallel gain at all).
[[nodiscard]] std::vector<double> exponential_samples(double lambda,
                                                      std::size_t count,
                                                      util::Xoshiro256& rng);

/// Samples from a shifted-exponential law: t0 + Exp(lambda).  The shift
/// models the mandatory part of a walk; it bounds the achievable speedup by
/// (t0 + 1/lambda) / t0 as k grows — the flattening the paper observes on
/// the CSPLib suite.
[[nodiscard]] std::vector<double> shifted_exponential_samples(
    double t0, double lambda, std::size_t count, util::Xoshiro256& rng);

/// Shifted-exponential fit of a runtime law.
///
/// The Costas Array study underlying the paper's Figure 3 observes that CAP
/// runtimes are exponentially distributed — the property that makes
/// independent multi-walk parallelism *ideal* (memorylessness ⇒ min-of-k is
/// Exp(k·lambda) ⇒ perfectly linear speedup).  The empirical estimator can
/// only resolve min-of-k up to k ≈ sample count; this fit provides the
/// principled analytic continuation beyond that, together with a
/// Kolmogorov–Smirnov distance so harnesses can report how exponential the
/// measured law actually is.
struct ShiftedExponentialFit {
  double shift = 0.0;        ///< t0 (MLE: the sample minimum)
  double rate = 0.0;         ///< lambda (MLE: 1/(mean - min))
  double ks_distance = 1.0;  ///< sup |F_emp - F_fit| over the sample

  /// Analytic E[min of k] = shift + 1/(k*rate).
  [[nodiscard]] double expected_min_of_k(std::size_t k) const;
};

[[nodiscard]] ShiftedExponentialFit fit_shifted_exponential(
    const EmpiricalDistribution& dist);

/// Log-survival analysis — the diagnostic the CAP study uses to establish
/// that runtimes are exponentially distributed: plot ln S(t) = ln P(T > t)
/// against t; a straight line of slope -lambda is the signature of a
/// memoryless law (and hence of ideal multi-walk speedup).
struct SurvivalPoint {
  double t = 0.0;
  double log_survival = 0.0;  ///< ln P(T > t)
};

/// The empirical log-survival curve (one point per sample, excluding the
/// largest where S would be zero).
[[nodiscard]] std::vector<SurvivalPoint> log_survival_points(
    const EmpiricalDistribution& dist);

/// Least-squares evidence of exponentiality: fit a line to the
/// log-survival curve.  r2 near 1 means memoryless; -slope estimates the
/// rate lambda.
struct ExponentialityEvidence {
  double slope = 0.0;  ///< d ln S / dt  (≈ -lambda when exponential)
  double r2 = 0.0;     ///< linearity of the log-survival curve
};
[[nodiscard]] ExponentialityEvidence exponentiality_evidence(
    const EmpiricalDistribution& dist);

}  // namespace cspls::sim
