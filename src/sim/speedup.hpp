// Speedup-curve evaluation: empirical single-walk law + platform model
// -> the series plotted in the paper's Figures 1-3.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/order_stats.hpp"
#include "sim/platform.hpp"

namespace cspls::sim {

/// One point of a speedup curve.
struct SpeedupPoint {
  std::size_t cores = 1;
  double expected_seconds = 0.0;  ///< E[T(k)] incl. platform overheads
  double speedup = 1.0;           ///< T(1) / T(k), the paper's metric
  double q10_seconds = 0.0;       ///< spread of T(k) (10th pctile)
  double q90_seconds = 0.0;       ///< spread of T(k) (90th pctile)
};

struct SpeedupCurve {
  std::string benchmark;
  std::string platform;
  std::vector<SpeedupPoint> points;

  /// Point for an exact core count (must exist).
  [[nodiscard]] const SpeedupPoint& at(std::size_t cores) const;
};

/// Evaluate the expected parallel completion time and speedup on `platform`
/// for each core count in `cores_grid`.
///
/// `walk_seconds` is the empirical distribution of single-walk runtimes *on
/// the measurement host*; the platform model rescales them by its per-core
/// speed (optionally jittered per node to model heterogeneous grids) and
/// adds launch/termination overheads:
///
///     T(k) = overhead(k) + E[ min_{i=1..k}  T_i / (speed * jitter_node(i)) ]
///
/// The expectation is exact on the empirical CDF when jitter is zero and
/// estimated by deterministic resampling (seeded) otherwise.
[[nodiscard]] SpeedupCurve compute_speedup_curve(
    const EmpiricalDistribution& walk_seconds, const PlatformModel& platform,
    const std::vector<std::size_t>& cores_grid, std::string benchmark,
    std::uint64_t seed = 0xC0FFEE, std::size_t jitter_resamples = 4000);

/// Analytic companion of compute_speedup_curve: min-of-k evaluated on a
/// shifted-exponential fit of the walk law instead of the raw sample.
///
/// The empirical estimator degenerates once k approaches the sample count
/// (all probability mass collapses onto the sample minimum, a single noisy
/// order statistic); the fit — justified whenever the reported KS distance
/// is small, which holds for every benchmark law in this suite — provides
/// the stable continuation.  Figures print both.
[[nodiscard]] SpeedupCurve compute_fit_speedup_curve(
    const ShiftedExponentialFit& fit, const PlatformModel& platform,
    const std::vector<std::size_t>& cores_grid, std::string benchmark);

/// Rebase a curve's speedups to a reference core count (Figure 3 plots
/// "speedup w.r.t. 32 cores"): speedup'(k) = T(ref)/T(k).
[[nodiscard]] SpeedupCurve rebase_to(const SpeedupCurve& curve,
                                     std::size_t reference_cores);

/// Log-log slope of speedup vs cores over the curve (1.0 = ideal linear
/// speedup, the paper's observation for CAP).
[[nodiscard]] double loglog_slope(const SpeedupCurve& curve);

}  // namespace cspls::sim
