// Anytime (best-cost-after-budget) aggregation over WalkerTrace samples.
//
// The paper's figures live in the first-finisher regime: the pool stops at
// the first solution and the metric is completion time.  Communication
// strategies, however, mostly reshape the *anytime* profile — how good the
// best configuration is after a given per-walker iteration budget — which
// first-finisher medians cannot see.  This module turns the cost-over-time
// series of a walker population (core::WalkerTrace::cost_samples, recorded
// by the WalkerPool trace policy) into that profile: for each budget b, the
// lowest cost any walker of the pool had reached by iteration b.
//
// Costs are aggregated as running minima per walker before taking the pool
// minimum: a trace records the *current* cost at each sample (resets can
// move it back up), while the anytime contract reports the best
// configuration that could have been returned at the cut-off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/trace.hpp"
#include "csp/cost.hpp"

namespace cspls::sim {

/// One point of an anytime curve: the best cost any walker of the pool had
/// reached by `budget` iterations (csp::kInfiniteCost when no walker
/// recorded a sample at or before the budget).
struct AnytimePoint {
  std::uint64_t budget = 0;
  csp::Cost best_cost = csp::kInfiniteCost;

  [[nodiscard]] bool operator==(const AnytimePoint&) const = default;
};

/// Best-cost-after-budget aggregation across one pool of walkers: for each
/// entry of `budgets` (any order; echoed in the output), the minimum over
/// walkers of the running-minimum cost at or before that iteration.
/// Walkers without cost samples contribute nothing.
[[nodiscard]] std::vector<AnytimePoint> anytime_curve(
    std::span<const core::WalkerTrace> walkers,
    std::span<const std::uint64_t> budgets);

/// A deterministic budget grid covering the traces' sampled range: up to
/// `points` budgets doubling from max/2^(points-1) to the last sampled
/// iteration (zero and duplicate budgets dropped).  Empty when no walker
/// recorded samples.
[[nodiscard]] std::vector<std::uint64_t> anytime_budget_grid(
    std::span<const core::WalkerTrace> walkers, std::size_t points);

}  // namespace cspls::sim
