#include "sim/speedup.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace cspls::sim {

const SpeedupPoint& SpeedupCurve::at(std::size_t cores) const {
  for (const auto& p : points) {
    if (p.cores == cores) return p;
  }
  throw std::out_of_range("SpeedupCurve: no point for requested core count");
}

namespace {

/// Deterministic standard-normal draw (Box-Muller, single value).
double draw_normal(util::Xoshiro256& rng) {
  const double u1 = 1.0 - rng.uniform01();  // (0, 1]
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

struct TimeEstimate {
  double mean = 0.0;
  double q10 = 0.0;
  double q90 = 0.0;
};

/// E and spread of min over k walkers, with per-node speed jitter, via
/// seeded resampling of the empirical law.
TimeEstimate jittered_min(const EmpiricalDistribution& dist,
                          const PlatformModel& platform, std::size_t cores,
                          util::Xoshiro256& rng, std::size_t resamples) {
  std::vector<double> mins(resamples);
  const std::size_t per_node = std::max<std::size_t>(1, platform.cores_per_node);
  for (auto& out : mins) {
    double best = std::numeric_limits<double>::infinity();
    double node_factor = 1.0;
    for (std::size_t i = 0; i < cores; ++i) {
      if (i % per_node == 0) {
        node_factor = std::max(
            0.5, 1.0 + platform.node_jitter * draw_normal(rng));
      }
      const double draw = dist.sample_min_of_k(1, rng);
      best = std::min(best, draw / (platform.core_speed * node_factor));
    }
    out = best;
  }
  std::sort(mins.begin(), mins.end());
  TimeEstimate est;
  est.mean = util::mean(mins);
  est.q10 = util::quantile_sorted(mins, 0.10);
  est.q90 = util::quantile_sorted(mins, 0.90);
  return est;
}

TimeEstimate exact_min(const EmpiricalDistribution& dist,
                       const PlatformModel& platform, std::size_t cores) {
  TimeEstimate est;
  est.mean = dist.expected_min_of_k(cores) / platform.core_speed;
  est.q10 = dist.quantile_min_of_k(cores, 0.10) / platform.core_speed;
  est.q90 = dist.quantile_min_of_k(cores, 0.90) / platform.core_speed;
  return est;
}

}  // namespace

SpeedupCurve compute_speedup_curve(const EmpiricalDistribution& walk_seconds,
                                   const PlatformModel& platform,
                                   const std::vector<std::size_t>& cores_grid,
                                   std::string benchmark, std::uint64_t seed,
                                   std::size_t jitter_resamples) {
  if (walk_seconds.empty()) {
    throw std::invalid_argument("compute_speedup_curve: empty distribution");
  }
  SpeedupCurve curve;
  curve.benchmark = std::move(benchmark);
  curve.platform = platform.name;

  util::Xoshiro256 rng(seed);
  const auto estimate = [&](std::size_t cores) {
    TimeEstimate est =
        platform.node_jitter > 0.0
            ? jittered_min(walk_seconds, platform, cores, rng,
                           jitter_resamples)
            : exact_min(walk_seconds, platform, cores);
    const double overhead = platform.overhead_seconds(cores);
    est.mean += overhead;
    est.q10 += overhead;
    est.q90 += overhead;
    return est;
  };

  // Sequential reference: one core of the *same* platform (the paper's
  // speedup is measured within each machine).
  const double t1 = estimate(1).mean;

  for (const std::size_t cores : cores_grid) {
    const TimeEstimate est = estimate(cores);
    SpeedupPoint point;
    point.cores = cores;
    point.expected_seconds = est.mean;
    point.q10_seconds = est.q10;
    point.q90_seconds = est.q90;
    point.speedup = est.mean > 0.0 ? t1 / est.mean : 0.0;
    curve.points.push_back(point);
  }
  return curve;
}

SpeedupCurve compute_fit_speedup_curve(const ShiftedExponentialFit& fit,
                                       const PlatformModel& platform,
                                       const std::vector<std::size_t>& cores_grid,
                                       std::string benchmark) {
  SpeedupCurve curve;
  curve.benchmark = std::move(benchmark);
  curve.platform = platform.name;
  const auto time_at = [&](std::size_t cores) {
    return fit.expected_min_of_k(cores) / platform.core_speed +
           platform.overhead_seconds(cores);
  };
  const double t1 = time_at(1);
  for (const std::size_t cores : cores_grid) {
    SpeedupPoint point;
    point.cores = cores;
    point.expected_seconds = time_at(cores);
    point.q10_seconds = point.expected_seconds;  // analytic: no spread model
    point.q90_seconds = point.expected_seconds;
    point.speedup =
        point.expected_seconds > 0.0 ? t1 / point.expected_seconds : 0.0;
    curve.points.push_back(point);
  }
  return curve;
}

SpeedupCurve rebase_to(const SpeedupCurve& curve,
                       std::size_t reference_cores) {
  const double t_ref = curve.at(reference_cores).expected_seconds;
  SpeedupCurve rebased = curve;
  for (auto& p : rebased.points) {
    p.speedup = p.expected_seconds > 0.0 ? t_ref / p.expected_seconds : 0.0;
  }
  return rebased;
}

double loglog_slope(const SpeedupCurve& curve) {
  std::vector<double> xs, ys;
  for (const auto& p : curve.points) {
    if (p.speedup > 0.0 && p.cores > 0) {
      xs.push_back(std::log2(static_cast<double>(p.cores)));
      ys.push_back(std::log2(p.speedup));
    }
  }
  return util::fit_line(xs, ys).slope;
}

}  // namespace cspls::sim
