#include "sim/anytime.hpp"

#include <algorithm>

namespace cspls::sim {

std::vector<AnytimePoint> anytime_curve(
    std::span<const core::WalkerTrace> walkers,
    std::span<const std::uint64_t> budgets) {
  // Per-walker prefix minima over the (already iteration-sorted) samples,
  // so each budget query is one binary search per walker.
  struct PrefixMin {
    std::vector<std::uint64_t> iterations;
    std::vector<csp::Cost> best;
  };
  std::vector<PrefixMin> prefixes;
  prefixes.reserve(walkers.size());
  for (const core::WalkerTrace& walker : walkers) {
    if (walker.cost_samples.empty()) continue;
    PrefixMin prefix;
    prefix.iterations.reserve(walker.cost_samples.size());
    prefix.best.reserve(walker.cost_samples.size());
    csp::Cost running = csp::kInfiniteCost;
    for (const core::TraceSample& sample : walker.cost_samples) {
      running = std::min(running, sample.cost);
      prefix.iterations.push_back(sample.iteration);
      prefix.best.push_back(running);
    }
    prefixes.push_back(std::move(prefix));
  }

  std::vector<AnytimePoint> curve;
  curve.reserve(budgets.size());
  for (const std::uint64_t budget : budgets) {
    AnytimePoint point;
    point.budget = budget;
    for (const PrefixMin& prefix : prefixes) {
      const auto it = std::upper_bound(prefix.iterations.begin(),
                                       prefix.iterations.end(), budget);
      if (it == prefix.iterations.begin()) continue;  // first sample > budget
      const std::size_t last =
          static_cast<std::size_t>(it - prefix.iterations.begin()) - 1;
      point.best_cost = std::min(point.best_cost, prefix.best[last]);
    }
    curve.push_back(point);
  }
  return curve;
}

std::vector<std::uint64_t> anytime_budget_grid(
    std::span<const core::WalkerTrace> walkers, std::size_t points) {
  std::uint64_t max_iteration = 0;
  for (const core::WalkerTrace& walker : walkers) {
    if (walker.cost_samples.empty()) continue;
    max_iteration =
        std::max(max_iteration, walker.cost_samples.back().iteration);
  }
  std::vector<std::uint64_t> grid;
  if (max_iteration == 0 || points == 0) return grid;
  grid.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t shift = points - 1 - i;
    const std::uint64_t budget =
        shift >= 64 ? 0 : max_iteration >> shift;
    if (budget == 0) continue;
    if (!grid.empty() && grid.back() == budget) continue;
    grid.push_back(budget);
  }
  return grid;
}

}  // namespace cspls::sim
