#include "sim/order_stats.hpp"

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cspls::sim {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
  if (!sorted_.empty() && sorted_.front() < 0.0) {
    throw std::invalid_argument(
        "EmpiricalDistribution: negative runtime sample");
  }
}

double EmpiricalDistribution::mean() const {
  if (sorted_.empty()) return 0.0;
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::median() const { return quantile(0.5); }

double EmpiricalDistribution::quantile(double p) const {
  if (sorted_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double EmpiricalDistribution::min() const {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double EmpiricalDistribution::max() const {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double EmpiricalDistribution::expected_min_of_k(std::size_t k) const {
  if (sorted_.empty() || k == 0) return 0.0;
  // E[min_k] = sum_i x_(i) * [ ((n-i+1)/n)^k - ((n-i)/n)^k ]  (i is 1-based).
  // Evaluate with pow of ratios; n is small (hundreds), k up to thousands —
  // all well-conditioned in double.
  const double n = static_cast<double>(sorted_.size());
  double expectation = 0.0;
  double upper = 1.0;  // ((n - i + 1)/n)^k with i = 1
  for (std::size_t i = 1; i <= sorted_.size(); ++i) {
    const double lower =
        std::pow((n - static_cast<double>(i)) / n, static_cast<double>(k));
    expectation += sorted_[i - 1] * (upper - lower);
    upper = lower;
  }
  return expectation;
}

double EmpiricalDistribution::quantile_min_of_k(std::size_t k,
                                                double p) const {
  if (sorted_.empty() || k == 0) return 0.0;
  // P(min_k <= t) = 1 - (1 - F(t))^k = p  =>  F(t) = 1 - (1-p)^(1/k).
  const double pf =
      1.0 - std::pow(1.0 - std::clamp(p, 0.0, 1.0), 1.0 / static_cast<double>(k));
  return quantile(pf);
}

double EmpiricalDistribution::sample_min_of_k(std::size_t k,
                                              util::Xoshiro256& rng) const {
  if (sorted_.empty() || k == 0) return 0.0;
  double best = sorted_.back();
  for (std::size_t i = 0; i < k; ++i) {
    const double draw =
        sorted_[static_cast<std::size_t>(rng.below(sorted_.size()))];
    best = std::min(best, draw);
  }
  return best;
}

double EmpiricalDistribution::cdf(double t) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<double> exponential_samples(double lambda, std::size_t count,
                                        util::Xoshiro256& rng) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("exponential_samples: lambda must be > 0");
  }
  std::vector<double> samples(count);
  for (auto& s : samples) {
    // Inverse CDF; 1 - u in (0, 1] avoids log(0).
    s = -std::log(1.0 - rng.uniform01()) / lambda;
  }
  return samples;
}

std::vector<double> shifted_exponential_samples(double t0, double lambda,
                                                std::size_t count,
                                                util::Xoshiro256& rng) {
  auto samples = exponential_samples(lambda, count, rng);
  for (auto& s : samples) s += t0;
  return samples;
}

double ShiftedExponentialFit::expected_min_of_k(std::size_t k) const {
  if (k == 0 || rate <= 0.0) return shift;
  return shift + 1.0 / (static_cast<double>(k) * rate);
}

ShiftedExponentialFit fit_shifted_exponential(
    const EmpiricalDistribution& dist) {
  ShiftedExponentialFit fit;
  if (dist.empty()) return fit;
  fit.shift = dist.min();
  const double excess = dist.mean() - dist.min();
  fit.rate = excess > 0.0 ? 1.0 / excess : 0.0;

  // Kolmogorov–Smirnov distance between the empirical CDF and the fit.
  const auto samples = dist.sorted_samples();
  const double n = static_cast<double>(samples.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double model =
        fit.rate > 0.0
            ? 1.0 - std::exp(-fit.rate * (samples[i] - fit.shift))
            : (samples[i] >= fit.shift ? 1.0 : 0.0);
    const double emp_hi = static_cast<double>(i + 1) / n;
    const double emp_lo = static_cast<double>(i) / n;
    ks = std::max({ks, std::abs(model - emp_hi), std::abs(model - emp_lo)});
  }
  fit.ks_distance = ks;
  return fit;
}

std::vector<SurvivalPoint> log_survival_points(
    const EmpiricalDistribution& dist) {
  std::vector<SurvivalPoint> points;
  const auto samples = dist.sorted_samples();
  if (samples.size() < 2) return points;
  const double n = static_cast<double>(samples.size());
  points.reserve(samples.size() - 1);
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    // After the i-th smallest sample, n-i-1 samples survive.
    const double survival = (n - static_cast<double>(i) - 1.0) / n;
    points.push_back(SurvivalPoint{samples[i], std::log(survival)});
  }
  return points;
}

ExponentialityEvidence exponentiality_evidence(
    const EmpiricalDistribution& dist) {
  ExponentialityEvidence evidence;
  const auto points = log_survival_points(dist);
  if (points.size() < 2) return evidence;
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& p : points) {
    xs.push_back(p.t);
    ys.push_back(p.log_survival);
  }
  const util::LinearFit fit = util::fit_line(xs, ys);
  evidence.slope = fit.slope;
  evidence.r2 = fit.r2;
  return evidence;
}

}  // namespace cspls::sim
