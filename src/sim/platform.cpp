#include "sim/platform.hpp"

namespace cspls::sim {

double PlatformModel::overhead_seconds(std::size_t cores) const {
  return startup_seconds +
         per_node_startup_seconds * static_cast<double>(nodes_for(cores)) +
         completion_seconds;
}

std::size_t PlatformModel::nodes_for(std::size_t cores) const {
  const std::size_t per = cores_per_node == 0 ? 1 : cores_per_node;
  return (cores + per - 1) / per;
}

PlatformModel ha8000() {
  PlatformModel p;
  p.name = "HA8000";
  p.cores_per_node = 16;  // 4x quad-core Opteron 8356
  p.max_cores = 1024;     // normal-service cap (64 nodes)
  // 2.3 GHz 2008-era Opteron vs the measurement host: walks run slower.
  p.core_speed = 0.85;
  // Batch-system job launch on a supercomputer is comparatively heavy.
  p.startup_seconds = 0.050;
  p.per_node_startup_seconds = 0.004;
  p.completion_seconds = 0.020;
  p.node_jitter = 0.02;  // dedicated nodes: nearly homogeneous
  return p;
}

PlatformModel grid5000_suno() {
  PlatformModel p;
  p.name = "Grid5000/Suno";
  p.cores_per_node = 8;  // Dell PowerEdge R410
  p.max_cores = 360;
  p.core_speed = 1.0;    // Nehalem-era Xeons, the faster of the two grids
  p.startup_seconds = 0.030;
  p.per_node_startup_seconds = 0.002;
  p.completion_seconds = 0.010;
  p.node_jitter = 0.05;  // shared grid: mild heterogeneity
  return p;
}

PlatformModel grid5000_helios() {
  PlatformModel p;
  p.name = "Grid5000/Helios";
  p.cores_per_node = 4;  // Sun Fire X4100
  p.max_cores = 224;
  p.core_speed = 0.80;   // older Opteron nodes
  p.startup_seconds = 0.030;
  p.per_node_startup_seconds = 0.002;
  p.completion_seconds = 0.010;
  p.node_jitter = 0.05;
  return p;
}

std::vector<std::size_t> paper_core_grid() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

}  // namespace cspls::sim
