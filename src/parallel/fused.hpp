// FusedRun — one WalkerPool-style launch for many small solves.
//
// The paper's multi-walk result makes small instances embarrassingly
// parallel, but a serving tier that pays one full thread spawn/join per tiny
// job is dominated by launch overhead, not search.  FusedRun amortizes that
// fixed cost: N heterogeneous (Problem prototype, options, StopToken) jobs
// execute on ONE resident thread team — a single spawn/join per batch —
// with work-stealing over a shared task queue (an atomic ticket dispenser,
// exactly the solo pool's wave scheduler widened across jobs).
//
// Contract:
//   * Byte-identity.  Each member runs on its own detail::JobExecution, so
//     every walker still gets RNG stream `walker_id` of the member's own
//     master seed and a clone of the member's prototype.  A fused member's
//     MultiWalkReport is byte-for-byte its solo WalkerPool::run report
//     (timing fields excepted) — fused runs stay valid measurement inputs.
//     Ordered modes (kSequential / kEmulatedRace / collapsed kThreads) run
//     as one task preserving strict walker order, so publish/adopt
//     sequences under communication are untouched; genuinely threaded
//     members fan out one task per walker (any interleaving is a valid
//     schedule of the solo threaded pool).
//   * Independent completion.  The worker that finishes a member's last
//     task finalizes it and calls `sink(member, report)` immediately —
//     a finished job's report is delivered while siblings keep running.
//     Sinks for different members may fire concurrently; the callback must
//     be thread-safe.
//   * Late withdrawal.  `FusedOptions::admit` is consulted exactly once per
//     member, right before its first walker would run.  Returning false
//     withdraws the member: no walker runs, no sink fires, and the index is
//     returned from run() — this is what lets a warm worker give unstarted
//     batch members back to the scheduler after claiming them.  (A member
//     whose StopToken is already cancelled is admitted and reports
//     interrupted-kCancel through the normal path: it was *started* and
//     owes its caller a report.)
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/stop_token.hpp"
#include "parallel/walker_pool.hpp"

namespace cspls::parallel {

/// One member of a fused batch.  `prototype` is borrowed and must outlive
/// the run; `options` is this job's complete solo configuration (seed,
/// walker count, scheduling, communication, faults, sinks...).
struct FusedJob {
  const csp::Problem* prototype = nullptr;
  WalkerPoolOptions options;
  core::StopToken stop;
};

struct FusedOptions {
  /// Resident team size (0 = hardware concurrency).  1 runs the whole batch
  /// inline on the calling thread — still one launch, zero spawns.
  std::size_t num_threads = 0;

  /// Admission gate, consulted once per member just before its first walker
  /// runs (from a team thread; must be thread-safe).  Return false to
  /// withdraw the member — it never starts and produces no report.  Null
  /// admits everything.
  std::function<bool(std::size_t member)> admit;
};

/// Per-member completion callback: (member index, final report).  Called
/// exactly once per admitted member, from the team thread that finished it,
/// while sibling members may still be running.
using FusedSink = std::function<void(std::size_t, MultiWalkReport)>;

/// The fused batch executor.  run() validates every member up front
/// (throwing std::invalid_argument before any work on a degenerate
/// configuration), executes the batch on one resident team, and blocks
/// until every admitted member has finished and its sink returned.  Returns
/// the indices of withdrawn members, in ascending order.
class FusedRun {
 public:
  explicit FusedRun(FusedOptions options = {}) noexcept
      : options_(std::move(options)) {}

  [[nodiscard]] const FusedOptions& options() const noexcept {
    return options_;
  }

  std::vector<std::size_t> run(std::span<const FusedJob> jobs,
                               const FusedSink& sink) const;

 private:
  FusedOptions options_;
};

}  // namespace cspls::parallel
