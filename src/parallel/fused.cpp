#include "parallel/fused.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

#include "parallel/job_execution.hpp"

namespace cspls::parallel {

namespace {

/// Admission lifecycle of one batch member.  kDeciding is the short window
/// in which one team thread is running the admit callback; concurrent
/// walker tasks of the same member spin until the verdict lands.
enum MemberState : int {
  kPending = 0,
  kDeciding,
  kAdmitted,
  kWithdrawn,
};

struct Member {
  std::unique_ptr<detail::JobExecution> exec;
  std::atomic<int> state{kPending};
  /// Tasks still outstanding; the decrement that reaches zero finalizes.
  std::atomic<std::size_t> remaining{0};
};

/// One unit of schedulable work: either a single walker of an
/// order-independent (threaded) member, or the entire ordered walker
/// sequence of a sequential/emulated/collapsed member.
struct Task {
  std::size_t member = 0;
  std::size_t walker = 0;
  bool ordered = false;
};

std::size_t team_size(std::size_t requested, std::size_t num_tasks) {
  if (num_tasks == 0) return 0;
  std::size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency() == 0
            ? 2
            : std::thread::hardware_concurrency();
  }
  return std::min(n, num_tasks);
}

}  // namespace

std::vector<std::size_t> FusedRun::run(std::span<const FusedJob> jobs,
                                       const FusedSink& sink) const {
  // Validate the whole batch before any member does work: a degenerate
  // configuration throws here, leaving no sibling half-run.
  std::vector<Member> members(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].prototype == nullptr) {
      throw std::invalid_argument("FusedJob: prototype must be non-null");
    }
    members[j].exec = std::make_unique<detail::JobExecution>(
        *jobs[j].prototype, jobs[j].options, jobs[j].stop);
  }

  std::vector<Task> tasks;
  tasks.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (members[j].exec->walkers_independent()) {
      const std::size_t k = members[j].exec->num_walkers();
      for (std::size_t w = 0; w < k; ++w) tasks.push_back({j, w, false});
      members[j].remaining.store(k, std::memory_order_relaxed);
    } else {
      tasks.push_back({j, 0, true});
      members[j].remaining.store(1, std::memory_order_relaxed);
    }
  }

  // The shared walker queue: an atomic ticket dispenser over the flattened
  // task list, pulled by every team thread (and the caller) until drained.
  std::atomic<std::size_t> cursor{0};
  const auto work = [&] {
    for (;;) {
      const std::size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks.size()) return;
      const Task& task = tasks[t];
      Member& m = members[task.member];

      // Decide admission exactly once, on the member's first dequeued task.
      int state = m.state.load(std::memory_order_acquire);
      if (state == kPending) {
        int expected = kPending;
        if (m.state.compare_exchange_strong(expected, kDeciding,
                                            std::memory_order_acq_rel)) {
          bool admitted = true;
          try {
            admitted = !options_.admit || options_.admit(task.member);
          } catch (...) {
            admitted = false;  // a throwing gate withdraws, never crashes
          }
          state = admitted ? kAdmitted : kWithdrawn;
          m.state.store(state, std::memory_order_release);
        } else {
          state = expected;
        }
      }
      while (state == kDeciding) {
        std::this_thread::yield();
        state = m.state.load(std::memory_order_acquire);
      }

      if (state == kAdmitted) {
        if (task.ordered) {
          m.exec->run_walkers_one_by_one();
        } else {
          m.exec->run_walker(task.walker);
        }
      }
      // Withdrawn members drain their tasks as no-ops; only admitted ones
      // finalize.  The last finisher delivers the report immediately —
      // siblings keep running on the other team threads.
      if (m.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          state == kAdmitted) {
        if (sink) sink(task.member, m.exec->finalize());
      }
    }
  };

  // One spawn/join for the whole batch: the caller's thread is team member
  // zero, so a single-thread team runs everything inline with zero spawns.
  const std::size_t threads = team_size(options_.num_threads, tasks.size());
  if (threads > 1) {
    std::vector<std::jthread> team;
    team.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) team.emplace_back(work);
    work();
    team.clear();  // join
  } else if (threads == 1) {
    work();
  }

  std::vector<std::size_t> withdrawn;
  for (std::size_t j = 0; j < members.size(); ++j) {
    if (members[j].state.load(std::memory_order_acquire) == kWithdrawn) {
      withdrawn.push_back(j);
    }
  }
  return withdrawn;
}

}  // namespace cspls::parallel
