#include "parallel/walker_pool.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/job_execution.hpp"

namespace cspls::parallel {

std::uint64_t MultiWalkReport::total_iterations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& w : walkers) total += w.result.stats.iterations;
  return total;
}

void validate_options(const WalkerPoolOptions& options) {
  if (options.num_walkers == 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: num_walkers must be at least 1");
  }
  const CommunicationPolicy& comm = options.communication;
  if (comm.mode == CommMode::kAsync && !comm.exchanging()) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.mode = async requires an "
        "exchanging strategy (async gossip over Exchange::kNone would "
        "silently never adopt)");
  }
  if (!comm.exchanging()) return;  // knobs are ignored without an exchange
  if (comm.period == 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.period must be non-zero with an "
        "exchanging strategy (period 0 would silently never publish)");
  }
  if (!(comm.adopt_probability >= 0.0 && comm.adopt_probability <= 1.0)) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.adopt_probability must be in "
        "[0, 1]");
  }
  if (comm.neighborhood == Neighborhood::kIsolated) {
    throw std::invalid_argument(
        "WalkerPoolOptions: an isolated neighborhood cannot exchange; pick "
        "a connected neighborhood or Exchange::kNone");
  }
  if (comm.exchange == Exchange::kDecayElite && comm.decay == 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.decay must be >= 1 for the "
        "decay-elite strategy (0 never forgets, which is plain elite)");
  }
  if (comm.exchange == Exchange::kElite && comm.decay != 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.decay is meaningless for the "
        "elite strategy (it never forgets); use Exchange::kDecayElite");
  }
}

MultiWalkReport WalkerPool::run(const csp::Problem& prototype) const {
  return run(prototype, core::StopToken{});
}

MultiWalkReport WalkerPool::run(const csp::Problem& prototype,
                                const core::StopToken& external) const {
  detail::JobExecution job(prototype, options_, external);

  if (job.threaded()) {
    const std::size_t num_threads = job.preferred_threads();
    if (num_threads <= 1) {
      job.run_walkers_one_by_one();
    } else {
      // Wave execution: an atomic ticket dispenser hands walker ids to a
      // bounded pool of OS threads.
      const std::size_t k = job.num_walkers();
      std::atomic<std::size_t> next{0};
      std::vector<std::jthread> pool;
      pool.reserve(num_threads);
      for (std::size_t t = 0; t < num_threads; ++t) {
        pool.emplace_back([&] {
          for (;;) {
            const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
            if (id >= k) return;
            job.run_walker(id);
          }
        });
      }
      pool.clear();  // join
    }
  } else {
    job.run_walkers_one_by_one();
  }

  return job.finalize();
}

}  // namespace cspls::parallel
