#include "parallel/walker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/adaptive_search.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cspls::parallel {

std::uint64_t MultiWalkReport::total_iterations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& w : walkers) total += w.result.stats.iterations;
  return total;
}

void validate_options(const WalkerPoolOptions& options) {
  if (options.num_walkers == 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: num_walkers must be at least 1");
  }
  const CommunicationPolicy& comm = options.communication;
  if (comm.mode == CommMode::kAsync && !comm.exchanging()) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.mode = async requires an "
        "exchanging strategy (async gossip over Exchange::kNone would "
        "silently never adopt)");
  }
  if (!comm.exchanging()) return;  // knobs are ignored without an exchange
  if (comm.period == 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.period must be non-zero with an "
        "exchanging strategy (period 0 would silently never publish)");
  }
  if (!(comm.adopt_probability >= 0.0 && comm.adopt_probability <= 1.0)) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.adopt_probability must be in "
        "[0, 1]");
  }
  if (comm.neighborhood == Neighborhood::kIsolated) {
    throw std::invalid_argument(
        "WalkerPoolOptions: an isolated neighborhood cannot exchange; pick "
        "a connected neighborhood or Exchange::kNone");
  }
  if (comm.exchange == Exchange::kDecayElite && comm.decay == 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.decay must be >= 1 for the "
        "decay-elite strategy (0 never forgets, which is plain elite)");
  }
  if (comm.exchange == Exchange::kElite && comm.decay != 0) {
    throw std::invalid_argument(
        "WalkerPoolOptions: communication.decay is meaningless for the "
        "elite strategy (it never forgets); use Exchange::kDecayElite");
  }
}

namespace {

core::Params params_for(const csp::Problem& prototype,
                        const std::optional<core::Params>& params) {
  return params.has_value() ? *params
                            : core::Params::from_hints(
                                  prototype.tuning(),
                                  prototype.num_variables());
}

/// Best-cost selection over completed walks (Termination::kBestAfterBudget
/// and the no-winner fallback of the threaded race): prefer any solved
/// result, then any survivor over a crashed walker, then the lowest cost,
/// first index breaking ties.  On an all-failed pool this still selects a
/// (failed) result so the report stays structured.
void select_best_after_budget(MultiWalkReport& report) {
  const auto best_it = std::min_element(
      report.walkers.begin(), report.walkers.end(),
      [](const WalkerOutcome& a, const WalkerOutcome& b) {
        if (a.result.solved != b.result.solved) return a.result.solved;
        if (a.failed() != b.failed()) return !a.failed();
        return a.result.cost < b.result.cost;
      });
  if (best_it != report.walkers.end()) {
    report.best = best_it->result;
    report.solved = best_it->result.solved;
    report.winner = report.solved ? static_cast<std::size_t>(
                                        best_it - report.walkers.begin())
                                  : kNoWinner;
  }
}

/// Crash-containment roll-up shared by every return path.
void tally_failures(MultiWalkReport& report) {
  report.failed_walkers = 0;
  report.faults_injected = 0;
  for (const auto& w : report.walkers) {
    if (w.failed()) ++report.failed_walkers;
    report.faults_injected += w.injected_faults;
  }
}

}  // namespace

MultiWalkReport resolve_emulated_race(std::vector<WalkerOutcome> walkers) {
  MultiWalkReport report;
  report.walkers = std::move(walkers);
  std::uint64_t best_iters = UINT64_MAX;
  csp::Cost best_cost = csp::kInfiniteCost;
  std::size_t best_id = kNoWinner;
  double wall = 0.0;
  for (const auto& w : report.walkers) {
    wall = std::max(wall, w.result.stats.seconds);
    if (w.result.solved) {
      if (w.result.stats.iterations < best_iters) {
        best_iters = w.result.stats.iterations;
        best_id = w.walker_id;
      }
    } else if (best_id == kNoWinner && w.result.cost < best_cost) {
      best_cost = w.result.cost;
    }
  }
  report.wall_seconds = wall;
  if (best_id != kNoWinner) {
    report.solved = true;
    report.winner = best_id;
    for (const auto& w : report.walkers) {
      if (w.walker_id == best_id) {
        report.best = w.result;
        report.time_to_solution_seconds = w.result.stats.seconds;
        break;
      }
    }
  } else {
    for (const auto& w : report.walkers) {
      if (w.result.cost <= best_cost) {
        report.best = w.result;
        break;
      }
    }
    report.time_to_solution_seconds = wall;
  }
  tally_failures(report);
  return report;
}

MultiWalkReport WalkerPool::run(const csp::Problem& prototype) const {
  return run(prototype, core::StopToken{});
}

MultiWalkReport WalkerPool::run(const csp::Problem& prototype,
                                const core::StopToken& external) const {
  validate_options(options_);
  const std::size_t k = options_.num_walkers;
  if (options_.warm_start.has_value() &&
      options_.warm_start->size() != prototype.num_variables()) {
    throw std::invalid_argument(
        "WalkerPoolOptions: warm_start has " +
        std::to_string(options_.warm_start->size()) + " values but \"" +
        std::string(prototype.name()) + "\" has " +
        std::to_string(prototype.num_variables()) + " variables");
  }
  const core::Params params = params_for(prototype, options_.params);
  const core::AdaptiveSearch engine(params);
  const util::RngStreamFactory streams(options_.master_seed);
  CommChannels comm(options_.communication, k);
  // The effective fault schedule: request plans + the CSPLS_FAULTS env spec.
  // Production builds never arm it — sessions stay disarmed and the sites
  // compile to no-ops.
  const util::fault::Schedule fault_schedule =
      util::fault::kCompiledIn ? util::fault::Schedule::with_env(options_.faults)
                               : util::fault::Schedule{};

  const bool threaded = options_.scheduling == Scheduling::kThreads;
  const bool race =
      threaded && options_.termination == Termination::kFirstFinisher;

  // The *only* shared state among racing walkers: the completion flag, the
  // winner slot and the time-to-solution stamp.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> winner{kNoWinner};
  std::atomic<std::uint64_t> solution_time_us{0};
  // Walkers stopped by the *external* token latch their cause here (the
  // engine records which source its poll observed, so a race loser cut by
  // the pool's internal completion flag — StopCause::kChained — is never
  // misattributed to a deadline that happened to pass during the joins).
  std::atomic<bool> external_cancel_hit{false};
  std::atomic<bool> external_deadline_hit{false};

  MultiWalkReport report;
  report.walkers.resize(k);
  util::Stopwatch watch;

  const auto run_walker = [&](std::size_t id) {
    WalkerOutcome& out = report.walkers[id];
    out.walker_id = id;
    // Each walker owns its fault session, exactly like its RNG stream, so
    // probe counts are deterministic under every scheduling mode.
    util::fault::Session session(&fault_schedule, id);
    // Crash containment: no exception may escape a walker body — an escape
    // under kThreads would std::terminate the process.  A throwing walker
    // (injected or genuine) is recorded as StopCause::kFailed with its
    // message; survivors keep walking and the termination policies
    // aggregate over them.
    try {
      auto problem = prototype.clone();
      util::Xoshiro256 rng = streams.stream(id);
      core::Hooks hooks = comm_hooks(options_.communication, comm, id, k,
                                     session.armed() ? &session : nullptr);
      if (options_.trace.enabled) {
        out.trace.walker_id = id;
        hooks.trace = &out.trace;
        hooks.trace_sample_period = options_.trace.sample_period;
      }
      if (session.armed()) hooks.fault = &session;
      hooks.heartbeat = options_.heartbeat;
      if (options_.sample_sink && options_.sample_sink_period != 0) {
        hooks.sample = [this, id](std::uint64_t iteration, csp::Cost cost) {
          options_.sample_sink(id, iteration, cost);
        };
        hooks.sample_period = options_.sample_sink_period;
      }
      if (options_.warm_start.has_value()) {
        hooks.warm_start = &*options_.warm_start;
      }
      // Each walker polls its own token copy: the caller's cancel/deadline,
      // chained with the pool's completion flag when racing.
      const core::StopToken token =
          race ? external.also_cancelled_by(&stop) : external;
      core::Result result = engine.solve(*problem, rng, token, hooks);
      if (result.stop_cause == core::StopCause::kCancel) {
        external_cancel_hit.store(true, std::memory_order_relaxed);
      } else if (result.stop_cause == core::StopCause::kDeadline) {
        external_deadline_hit.store(true, std::memory_order_relaxed);
      }
      if (race && result.solved && !result.interrupted) {
        // First walker to flip the flag is the winner; latecomers keep
        // their result but lose the race (exactly the paper's completion
        // protocol).
        bool expected = false;
        if (stop.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
          winner.store(id, std::memory_order_release);
          solution_time_us.store(watch.elapsed_us(),
                                 std::memory_order_release);
        }
      }
      out.result = std::move(result);
    } catch (const std::exception& e) {
      out.result = core::Result{};
      out.result.stop_cause = core::StopCause::kFailed;
      out.result.error = e.what();
    } catch (...) {
      out.result = core::Result{};
      out.result.stop_cause = core::StopCause::kFailed;
      out.result.error = "unknown exception";
    }
    out.injected_faults = session.fired();
  };

  // Between-walker short-circuit for any path that runs walkers one after
  // another (sequential/emulated scheduling, and the threaded scheduler
  // collapsed to a single thread): once a stop source has fired, the
  // not-yet-started walkers are marked interrupted with zero iterations
  // instead of each paying a full clone + initial cost evaluation.
  const auto mark_rest_interrupted = [&](std::size_t from,
                                         core::StopCause cause) {
    for (std::size_t rest = from; rest < k; ++rest) {
      report.walkers[rest].walker_id = rest;
      report.walkers[rest].result.interrupted = true;
      report.walkers[rest].result.stop_cause = cause;
    }
  };
  const auto run_walkers_one_by_one = [&] {
    for (std::size_t id = 0; id < k; ++id) {
      // Unthrottled check on purpose: the engine-rate throttle inside the
      // token's poll would let each walker start and run a stride of
      // iterations before noticing an already-expired deadline.
      const bool ext_cancelled = external.cancelled();
      if (ext_cancelled || external.deadline_expired()) {
        const core::StopCause cause = ext_cancelled
                                          ? core::StopCause::kCancel
                                          : core::StopCause::kDeadline;
        (ext_cancelled ? external_cancel_hit : external_deadline_hit)
            .store(true, std::memory_order_relaxed);
        mark_rest_interrupted(id, cause);
        break;
      }
      // A collapsed threaded race already decided: the remaining walkers
      // would only run to their first poll and report kChained anyway —
      // record exactly that outcome without paying their start-up cost.
      if (race && stop.load(std::memory_order_acquire)) {
        mark_rest_interrupted(id, core::StopCause::kChained);
        break;
      }
      run_walker(id);
    }
  };

  if (threaded) {
    const std::size_t hw = std::thread::hardware_concurrency() == 0
                               ? 2
                               : std::thread::hardware_concurrency();
    const std::size_t thread_cap =
        options_.max_threads == 0 ? k : std::min(options_.max_threads, k);
    const std::size_t num_threads = std::min({k, thread_cap, hw * 16});

    if (num_threads <= 1) {
      run_walkers_one_by_one();
    } else {
      // Wave execution: an atomic ticket dispenser hands walker ids to a
      // bounded pool of OS threads.
      std::atomic<std::size_t> next{0};
      std::vector<std::jthread> pool;
      pool.reserve(num_threads);
      for (std::size_t t = 0; t < num_threads; ++t) {
        pool.emplace_back([&] {
          for (;;) {
            const std::size_t id =
                next.fetch_add(1, std::memory_order_relaxed);
            if (id >= k) return;
            run_walker(id);
          }
        });
      }
      pool.clear();  // join
    }
  } else {
    run_walkers_one_by_one();
  }

  // Cancellation wins the attribution tie when walkers observed both.
  const core::StopCause interrupt_cause =
      external_cancel_hit.load(std::memory_order_relaxed)
          ? core::StopCause::kCancel
      : external_deadline_hit.load(std::memory_order_relaxed)
          ? core::StopCause::kDeadline
          : core::StopCause::kNone;

  if (!threaded && options_.termination == Termination::kFirstFinisher) {
    MultiWalkReport resolved = resolve_emulated_race(std::move(report.walkers));
    resolved.comm_publishes = comm.publishes();
    resolved.elite_accepted = comm.accepted();
    resolved.comm_adoptions = comm.adoptions();
    resolved.interrupt_cause = interrupt_cause;
    resolved.interrupted = interrupt_cause != core::StopCause::kNone;
    return resolved;
  }

  if (!threaded) {
    // Emulated machine's wall clock: all walkers start together and the
    // pool stops when the slowest one exhausts its budget.
    double wall = 0.0;
    for (const auto& w : report.walkers) {
      wall = std::max(wall, w.result.stats.seconds);
    }
    report.wall_seconds = wall;
  } else {
    report.wall_seconds = watch.elapsed_seconds();
  }

  if (race) {
    const std::size_t win = winner.load(std::memory_order_acquire);
    report.winner = win;
    report.solved = win != kNoWinner;
    if (report.solved) {
      report.best = report.walkers[win].result;
      report.time_to_solution_seconds =
          static_cast<double>(
              solution_time_us.load(std::memory_order_acquire)) /
          1e6;
    } else {
      // Nobody flipped the flag: report the best configuration reached.  (A
      // walker may still have solved after losing the race; prefer any
      // solved result.)
      select_best_after_budget(report);
      report.time_to_solution_seconds = report.wall_seconds;
    }
  } else {
    // kBestAfterBudget (and the non-racing threaded case): the pool's wall
    // clock doubles as the time-to-result — also on cancelled or
    // deadline-expired runs, where `best` is the anytime answer and the
    // times say how long the pool actually had.
    select_best_after_budget(report);
    report.time_to_solution_seconds = report.wall_seconds;
  }
  report.comm_publishes = comm.publishes();
  report.elite_accepted = comm.accepted();
  report.comm_adoptions = comm.adoptions();
  report.interrupt_cause = interrupt_cause;
  report.interrupted = interrupt_cause != core::StopCause::kNone;
  tally_failures(report);
  return report;
}

}  // namespace cspls::parallel
