#include "parallel/elite_pool.hpp"

namespace cspls::parallel {

bool ElitePool::offer(std::uint64_t tick, csp::Cost cost,
                      std::span<const int> values, std::size_t publisher) {
  const std::scoped_lock lock(mutex_);
  ++publishes_;
  if (has_entry_ && !stale(tick) && cost >= best_cost_) return false;
  has_entry_ = true;
  best_cost_ = cost;
  best_values_.assign(values.begin(), values.end());
  entry_tick_ = tick;
  entry_publisher_ = publisher;
  ++accepted_;
  return true;
}

void ElitePool::store(std::uint64_t tick, csp::Cost cost,
                      std::span<const int> values, std::size_t publisher) {
  const std::scoped_lock lock(mutex_);
  ++publishes_;
  has_entry_ = true;
  best_cost_ = cost;
  best_values_.assign(values.begin(), values.end());
  entry_tick_ = tick;
  entry_publisher_ = publisher;
}

csp::Cost ElitePool::take_if_better(std::uint64_t now, csp::Cost below,
                                    std::vector<int>& out,
                                    std::size_t exclude_publisher) const {
  const std::scoped_lock lock(mutex_);
  if (!has_entry_ || stale(now) || best_cost_ >= below ||
      best_values_.empty()) {
    return csp::kInfiniteCost;
  }
  if (exclude_publisher != kNoPublisher &&
      entry_publisher_ == exclude_publisher) {
    return csp::kInfiniteCost;  // own publication: nothing to gossip
  }
  out = best_values_;
  return best_cost_;
}

csp::Cost ElitePool::best_cost() const {
  const std::scoped_lock lock(mutex_);
  return has_entry_ ? best_cost_ : csp::kInfiniteCost;
}

std::uint64_t ElitePool::publishes() const {
  const std::scoped_lock lock(mutex_);
  return publishes_;
}

std::uint64_t ElitePool::accepted_offers() const {
  const std::scoped_lock lock(mutex_);
  return accepted_;
}

ElitePool::Snapshot ElitePool::snapshot() const {
  const std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.has_entry = has_entry_;
  snap.cost = best_cost_;
  snap.values = best_values_;
  snap.tick = entry_tick_;
  snap.publisher = entry_publisher_;
  snap.publishes = publishes_;
  snap.accepted = accepted_;
  return snap;
}

void ElitePool::restore(const Snapshot& snapshot) {
  const std::scoped_lock lock(mutex_);
  has_entry_ = snapshot.has_entry;
  best_cost_ = snapshot.cost;
  best_values_ = snapshot.values;
  entry_tick_ = snapshot.tick;
  entry_publisher_ = snapshot.publisher;
  publishes_ = snapshot.publishes;
  accepted_ = snapshot.accepted;
}

}  // namespace cspls::parallel
