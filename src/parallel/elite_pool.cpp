#include "parallel/elite_pool.hpp"

namespace cspls::parallel {

bool ElitePool::offer(csp::Cost cost, std::span<const int> values) {
  const std::scoped_lock lock(mutex_);
  if (cost >= best_cost_) return false;
  best_cost_ = cost;
  best_values_.assign(values.begin(), values.end());
  ++accepted_;
  return true;
}

csp::Cost ElitePool::take_if_better(csp::Cost below,
                                    std::vector<int>& out) const {
  const std::scoped_lock lock(mutex_);
  if (best_cost_ >= below || best_values_.empty()) return csp::kInfiniteCost;
  out = best_values_;
  return best_cost_;
}

csp::Cost ElitePool::best_cost() const {
  const std::scoped_lock lock(mutex_);
  return best_cost_;
}

std::uint64_t ElitePool::accepted_offers() const {
  const std::scoped_lock lock(mutex_);
  return accepted_;
}

}  // namespace cspls::parallel
