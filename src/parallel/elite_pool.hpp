// One exchange slot of the communication layer.
//
// An ElitePool holds at most one configuration — the paper's future-work
// "recorded crossroad": transfers stay rare (periodic) and small (one
// configuration per edge).  The slot serves every ExchangeStrategy of
// exchange.hpp through two publish verbs and one adopt verb:
//
//   offer()           keep-best publish (elite exchange): accepted only if
//                     strictly better than the current entry;
//   store()           unconditional overwrite (island-style migration);
//   take_if_better()  adopt: copy only when strictly below the caller's
//                     threshold — the adopter's own cost for elite
//                     exchange, csp::kInfiniteCost for migration (any
//                     fresh migrant qualifies).
//
// Staleness: every publish carries a tick from the pool-wide exchange clock
// (one tick per publish event anywhere in the pool).  A slot built with
// `decay` > 0 forgets its entry once more than `decay` ticks have passed
// since it was recorded — a stale crossroad is invisible to adopters and is
// replaced by the next offer even when that offer is worse (the cost-decay
// pool of the ROADMAP: the paper warns "the global cost of a configuration
// is not a reliable information", and an old low cost is the least reliable
// of all).  `decay` == 0 means entries never expire, which reproduces the
// PR-1 keep-best pool byte-for-byte.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "csp/cost.hpp"

namespace cspls::parallel {

class ElitePool {
 public:
  /// "No publisher recorded" / "exclude nobody" sentinel for the publisher
  /// stamp below.
  static constexpr std::size_t kNoPublisher = static_cast<std::size_t>(-1);

  /// `decay` is the staleness bound in exchange-clock ticks (0 = entries
  /// never expire).
  explicit ElitePool(std::uint64_t decay = 0) noexcept : decay_(decay) {}

  /// Keep-best publish at time `tick`: kept if strictly better than the
  /// current entry, or if the current entry has gone stale.  Returns true
  /// when accepted.  `publisher` stamps the entry with the publishing
  /// walker (consumed by the mid-walk self-adoption filter); the stamp
  /// never affects acceptance.
  bool offer(std::uint64_t tick, csp::Cost cost, std::span<const int> values,
             std::size_t publisher = kNoPublisher);

  /// Unconditional overwrite at time `tick` (migration publish): the slot
  /// always carries the owner's latest configuration.  Counts as a publish,
  /// never as an accepted offer — an overwrite that cannot be rejected
  /// carries no acceptance signal.
  void store(std::uint64_t tick, csp::Cost cost, std::span<const int> values,
             std::size_t publisher = kNoPublisher);

  /// Copy the entry into `out` if it is fresh at time `now` and its cost is
  /// strictly below `below`; returns its cost or csp::kInfiniteCost.
  /// `below` = csp::kInfiniteCost adopts any fresh entry (migration).
  /// An entry stamped with `exclude_publisher` is invisible: the
  /// asynchronous mid-walk gate passes its own walker id so a shared slot
  /// (or a self-loop) never hands a walker back its own publication —
  /// that "adoption" would be a no-op assign that wipes tabu state and
  /// inflates the adoption counter.  Reset-time adoption excludes nobody:
  /// restarting from your *own* recorded crossroad is the paper's
  /// future-work semantics, since the reset abandons the current position
  /// anyway.
  csp::Cost take_if_better(std::uint64_t now, csp::Cost below,
                           std::vector<int>& out,
                           std::size_t exclude_publisher = kNoPublisher) const;

  /// Cost of the current entry (freshness not consulted), or
  /// csp::kInfiniteCost when empty.
  [[nodiscard]] csp::Cost best_cost() const;

  /// Publish events of any kind (offer calls accepted or not, plus every
  /// store): the denominator of the exchange-traffic counters.
  [[nodiscard]] std::uint64_t publishes() const;

  /// Keep-best offers actually accepted (strictly improving, or replacing a
  /// stale entry).  Stores never count: acceptance of an unconditional
  /// overwrite is vacuous.
  [[nodiscard]] std::uint64_t accepted_offers() const;

  /// Verbatim slot state for pool checkpointing: the entry, its freshness
  /// tick and publisher stamp, and both traffic counters.  restore() makes
  /// the slot indistinguishable from the one snapshot() saw, so a resumed
  /// run's exchange behaviour and counters continue exactly.
  struct Snapshot {
    bool has_entry = false;
    csp::Cost cost = csp::kInfiniteCost;
    std::vector<int> values;
    std::uint64_t tick = 0;
    std::size_t publisher = kNoPublisher;
    std::uint64_t publishes = 0;
    std::uint64_t accepted = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

 private:
  /// Requires mutex_ held.
  [[nodiscard]] bool stale(std::uint64_t now) const noexcept {
    return decay_ != 0 && now > entry_tick_ && now - entry_tick_ > decay_;
  }

  mutable std::mutex mutex_;
  const std::uint64_t decay_;
  bool has_entry_ = false;
  csp::Cost best_cost_ = csp::kInfiniteCost;
  std::vector<int> best_values_;
  std::uint64_t entry_tick_ = 0;
  std::size_t entry_publisher_ = kNoPublisher;
  std::uint64_t publishes_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace cspls::parallel
