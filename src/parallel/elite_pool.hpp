// Shared elite-configuration pool for the dependent multi-walk prototype.
//
// This is the only inter-walker channel in the whole system, implementing
// the paper's future-work design goals: transfers are rare (periodic) and
// small (one configuration), and good "crossroads" are recorded so a reset
// can restart from them.
#pragma once

#include <mutex>
#include <span>
#include <vector>

#include "csp/cost.hpp"

namespace cspls::parallel {

class ElitePool {
 public:
  /// Publish `values` as a candidate elite; kept only if strictly better
  /// than the current elite.  Returns true when accepted.
  bool offer(csp::Cost cost, std::span<const int> values);

  /// Copy the elite configuration into `out` if one exists with cost
  /// strictly below `below`; returns its cost or csp::kInfiniteCost.
  csp::Cost take_if_better(csp::Cost below, std::vector<int>& out) const;

  [[nodiscard]] csp::Cost best_cost() const;

  /// Number of accepted offers (for the ablation bench's reporting).
  [[nodiscard]] std::uint64_t accepted_offers() const;

 private:
  mutable std::mutex mutex_;
  csp::Cost best_cost_ = csp::kInfiniteCost;
  std::vector<int> best_values_;
  std::uint64_t accepted_ = 0;
};

}  // namespace cspls::parallel
