#include "parallel/exchange.hpp"

#include <utility>

namespace cspls::parallel {

CommunicationPolicy::CommunicationPolicy(Topology topology) {
  switch (topology) {
    case Topology::kIndependent:
      neighborhood = Neighborhood::kIsolated;
      exchange = Exchange::kNone;
      break;
    case Topology::kSharedElite:
      neighborhood = Neighborhood::kComplete;
      exchange = Exchange::kElite;
      break;
    case Topology::kRingElite:
      neighborhood = Neighborhood::kRing;
      exchange = Exchange::kElite;
      break;
  }
}

CommChannels::CommChannels(const CommunicationPolicy& policy,
                           std::size_t num_walkers) {
  if (!policy.exchanging()) return;
  // kElite never forgets (decay is validated to 0 there); the decaying
  // strategies thread the staleness bound into every slot.
  const std::uint64_t decay =
      policy.exchange == Exchange::kElite ? 0 : policy.decay;
  const std::size_t count = slot_count(policy.neighborhood, num_walkers);
  slots_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    slots_.push_back(std::make_unique<ElitePool>(decay));
  }
}

std::uint64_t CommChannels::publishes() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->publishes();
  return total;
}

std::uint64_t CommChannels::accepted() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->accepted_offers();
  return total;
}

core::Hooks comm_hooks(const CommunicationPolicy& policy,
                       CommChannels& channels, std::size_t walker,
                       std::size_t num_walkers, util::fault::Session* fault) {
  core::Hooks hooks;
  if (!policy.exchanging() || !channels.active()) return hooks;

  const bool migrate = policy.exchange == Exchange::kMigration;
  ElitePool* publish =
      &channels.slot(publish_slot(policy.neighborhood, walker, num_walkers));

  hooks.observer_period = policy.period;
  hooks.observer = [publish, &channels, migrate, walker, fault](
                       std::uint64_t, csp::Cost cost,
                       std::span<const int> values) {
    if (util::fault::probe(fault, util::fault::Site::kElitePublish) ==
        util::fault::Action::kCorrupt) {
      return;  // torn publish: the message is dropped, the walk continues
    }
    const std::uint64_t tick = channels.next_tick();
    if (migrate) {
      publish->store(tick, cost, values, walker);
    } else {
      publish->offer(tick, cost, values, walker);
    }
  };

  std::vector<ElitePool*> sources;
  for (const std::size_t s :
       adopt_slots(policy.neighborhood, walker, num_walkers)) {
    sources.push_back(&channels.slot(s));
  }
  if (sources.empty()) return hooks;  // e.g. single-walker torus/hypercube

  // One adoption scan serves both hooks; they differ only in the
  // self-publication filter.  Reset-time adoption excludes nobody (your
  // own recorded crossroad is a legitimate restart point — the reset
  // abandons the current position anyway); the mid-walk gate excludes the
  // walker's own entries, because pulling back your own latest publication
  // from a shared slot or self-loop is a no-op assign that would wipe the
  // tabu state and count a phantom adoption.
  const auto make_adopt = [&policy, &channels, migrate, fault,
                           sources = std::move(sources)](
                              std::size_t exclude_publisher) {
    return [sources, &channels, migrate, exclude_publisher, fault,
            p = policy.adopt_probability](csp::Problem& problem,
                                          util::Xoshiro256& rng) {
      // Exactly one RNG draw per gate whether or not anything is adopted,
      // so the communication gate never desynchronizes a walker's stream
      // from the equivalent PR-1 run (and mid-walk gates stay
      // reproducible).
      if (!rng.chance(p)) return false;
      if (util::fault::probe(fault, util::fault::Site::kEliteAdopt) ==
          util::fault::Action::kCorrupt) {
        return false;  // incoming message discarded as corrupt
      }
      const std::uint64_t now = channels.now();
      std::vector<int> incoming;
      std::vector<int> best;
      bool found = false;
      // Scan the in-neighbour slots in graph order for the lowest-cost
      // fresh entry.  Elite only adopts a strict improvement on the
      // walker's own cost; migration adopts the best migrant regardless of
      // it (diversification, not elitism) — the infinite threshold makes
      // any fresh entry beat "nothing" while still skipping (and not
      // copying) migrants worse than one already in hand.
      csp::Cost below = migrate ? csp::kInfiniteCost : problem.total_cost();
      for (ElitePool* source : sources) {
        const csp::Cost cost =
            source->take_if_better(now, below, incoming, exclude_publisher);
        if (cost == csp::kInfiniteCost) continue;
        best.swap(incoming);
        below = cost;
        found = true;
      }
      if (!found) return false;
      problem.assign(best);
      channels.record_adoption();
      return true;
    };
  };

  hooks.on_reset = make_adopt(ElitePool::kNoPublisher);
  if (policy.mode == CommMode::kAsync) {
    // Asynchronous gossip: the same staleness-bounded, single-draw adoption
    // scan also runs mid-walk every `period` iterations, so a walker can
    // pull a better configuration without waiting for its reset policy.
    hooks.mid_walk = make_adopt(walker);
    hooks.mid_walk_period = policy.period;
  }
  return hooks;
}

}  // namespace cspls::parallel
