// ExchangeStrategy — what flows over the neighbourhood edges, and when.
//
// Together with neighborhood.hpp this replaces the closed Topology enum that
// used to hard-wire three communication schemes into the WalkerPool run
// loop.  A CommunicationPolicy is now the free product of two orthogonal
// choices plus three knobs:
//
//   Exchange::kNone        no communication (the paper's scheme) — the
//                          neighbourhood is irrelevant and no slots exist;
//   Exchange::kElite       periodic keep-best publish to the walker's own
//                          slot, adopt-on-reset of the best strictly
//                          improving entry among the in-neighbour slots
//                          (PR-1's shared/ring elite exchange, generalized);
//   Exchange::kMigration   island model: the walker's *current* whole
//                          configuration overwrites its slot every period,
//                          and a reset adopts the lowest-cost in-neighbour
//                          migrant regardless of whether it improves —
//                          diversification, not elitism;
//   Exchange::kDecayElite  kElite over slots whose entries age out after
//                          `decay` pool-wide publish ticks, so stale
//                          crossroads are forgotten instead of pinning every
//                          reset to one ancient low-cost basin.
//
// Knobs: `period` (iterations between publishes — the paper's goal 1:
// transfers stay rare), `adopt_probability` (chance that a partial reset
// consults the neighbours at all — goal 2: restart from recorded
// crossroads), and `decay` (staleness bound in publish ticks; required for
// kDecayElite, optional freshness filter for kMigration, rejected for
// kElite which by definition never forgets).
//
// A third orthogonal axis, CommMode, decides *when* adoption may happen:
// kOnReset confines it to partial resets (the PR-4 semantics, and the
// restart-time elite adoption the paper's communication analysis stops
// at); kAsync additionally gates a staleness-bounded pull every `period`
// iterations *while walking* (the cooperative gossip of the X10 and Cell
// BE follow-ups), through the engine's mid-walk adoption hook — strict
// improvement for the elite strategies, unconditional for migration.
//
// Determinism: adoption scans the in-neighbour slots in deterministic graph
// order and draws exactly one RNG value (the adopt_probability gate) per
// consultation — whether reset-time or mid-walk — so a single-source
// on-reset graph reproduces the PR-1 trajectories byte-for-byte and
// sequential runs of any graph (either mode) are exactly reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/adaptive_search.hpp"
#include "parallel/elite_pool.hpp"
#include "parallel/neighborhood.hpp"
#include "util/fault.hpp"

namespace cspls::parallel {

enum class Exchange {
  kNone,        ///< no communication (the paper's independent scheme)
  kElite,       ///< periodic keep-best publish, adopt-if-better on reset
  kMigration,   ///< whole-configuration overwrite + unconditional adopt
  kDecayElite,  ///< kElite whose entries age out after `decay` ticks
};

/// When adoption may happen — the third orthogonal communication axis.
enum class CommMode {
  kOnReset,  ///< adopt only when a partial reset fires (restart-time elite)
  kAsync,    ///< also pull from the in-neighbour slots mid-walk every period
};

/// The legacy communication enum of PR 1..3.  Deprecated: each value is an
/// alias for a (Neighborhood, Exchange) pair via the CommunicationPolicy
/// converting constructor; new code should spell the pair directly.
enum class Topology {
  kIndependent,  ///< = kIsolated x kNone
  kSharedElite,  ///< = kComplete x kElite
  kRingElite,    ///< = kRing x kElite
};

/// Communication policy: the exchange graph, the strategy flowing over it,
/// and the shared knobs (all ignored under Exchange::kNone).
struct CommunicationPolicy {
  Neighborhood neighborhood = Neighborhood::kIsolated;
  Exchange exchange = Exchange::kNone;
  /// When adoption may happen: on partial resets only (the PR-4 default,
  /// byte-identical trajectories), or additionally mid-walk every `period`
  /// iterations (asynchronous gossip).  Requires an exchanging strategy.
  CommMode mode = CommMode::kOnReset;
  /// Walkers publish every `period` iterations (the paper's goal 1:
  /// minimise data transfers).  Must be non-zero when exchanging.
  std::uint64_t period = 1000;
  /// Probability that a partial reset consults the neighbour slots instead
  /// of randomizing (goal 2: restart from recorded crossroads).
  double adopt_probability = 0.5;
  /// Staleness bound in pool-wide publish ticks: entries older than this
  /// are invisible and forgotten.  Required >= 1 for kDecayElite, optional
  /// for kMigration (0 = migrants never expire), must be 0 for kElite.
  std::uint64_t decay = 0;

  CommunicationPolicy() = default;
  /// Deprecated alias: spell a legacy Topology as neighbourhood x exchange
  /// (implicit on purpose — legacy call sites pass the bare enum).
  CommunicationPolicy(Topology topology);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool exchanging() const noexcept {
    return exchange != Exchange::kNone;
  }

  [[nodiscard]] bool operator==(const CommunicationPolicy&) const = default;
};

/// The slots plus the pool-wide exchange clock backing one WalkerPool run.
/// Construct once per run; comm_hooks wires each walker's engine hooks to
/// it.  Slot addresses are stable (unique_ptr) and every member is safe
/// under concurrent walker access.
class CommChannels {
 public:
  CommChannels(const CommunicationPolicy& policy, std::size_t num_walkers);

  /// True when the policy allocated any slots (i.e. communication is on).
  [[nodiscard]] bool active() const noexcept { return !slots_.empty(); }

  [[nodiscard]] std::size_t num_slots() const noexcept { return slots_.size(); }

  [[nodiscard]] ElitePool& slot(std::size_t index) { return *slots_[index]; }

  /// Checkpoint restore: rewind the exchange clock and the adoption counter
  /// to a captured position (slots restore individually via
  /// ElitePool::restore).  Call before any walker runs.
  void restore_counters(std::uint64_t clock, std::uint64_t adoptions) noexcept {
    clock_.store(clock, std::memory_order_relaxed);
    adoptions_.store(adoptions, std::memory_order_relaxed);
  }

  /// Advance the exchange clock by one publish event and return its time.
  std::uint64_t next_tick() noexcept {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Read the clock without advancing it (adopt-side staleness checks).
  [[nodiscard]] std::uint64_t now() const noexcept {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Publish events across all slots, accepted or not
  /// (MultiWalkReport::comm_publishes).
  [[nodiscard]] std::uint64_t publishes() const;

  /// Improving keep-best publishes accepted across all slots
  /// (MultiWalkReport::elite_accepted).  Migration's unconditional stores
  /// count as publishes, never as accepts — an overwrite carries no signal.
  [[nodiscard]] std::uint64_t accepted() const;

  /// Record one adoption event: a configuration actually assigned from an
  /// in-neighbour slot (not every take_if_better probe of the multi-source
  /// scan).  Called by the comm_hooks adoption path, reset-time or mid-walk.
  void record_adoption() noexcept {
    adoptions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Adoption events across the pool (MultiWalkReport::comm_adoptions).
  [[nodiscard]] std::uint64_t adoptions() const noexcept {
    return adoptions_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<ElitePool>> slots_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> adoptions_{0};
};

/// Engine hooks for walker `walker` of `num_walkers` under `policy`:
/// publish to the walker's slot every `period` iterations, adopt from its
/// in-neighbour slots on partial reset with probability `adopt_probability`
/// — and, under CommMode::kAsync, also through the engine's mid-walk gate
/// every `period` iterations (same single-draw discipline, staleness
/// bounded by `decay`; strict improvement for elite, unconditional for
/// migration).  Returns empty hooks when the policy does not exchange or
/// the walker has no slots to talk to.  `channels` must outlive the
/// returned hooks.
///
/// `fault` (optional) arms the communication fault sites: each publish
/// probes `elite_publish` and each adoption gate probes `elite_adopt` —
/// kCorrupt drops the message (a torn publish / discarded adoption),
/// kThrow propagates out of the engine for the pool's crash containment.
/// The session must outlive the returned hooks.
[[nodiscard]] core::Hooks comm_hooks(const CommunicationPolicy& policy,
                                     CommChannels& channels,
                                     std::size_t walker,
                                     std::size_t num_walkers,
                                     util::fault::Session* fault = nullptr);

}  // namespace cspls::parallel
