// Single source of truth for policy-name <-> enum mapping.
//
// Every layer that spells a WalkerPool policy on a wire or in a CSV — the
// JSON solve API (api/solve.cpp), the bench harnesses and the README's
// policy matrix — maps through these tables.  Adding an enumerator without
// extending its table here is a compile error at the switch, not a silent
// "?" leaking into a CSV.
//
// `name_of` is total; the `*_from_name` parsers return std::nullopt for
// unknown names (callers attach the valid alternatives via
// `policy_names_hint`).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/restart_policy.hpp"
#include "parallel/walker_pool.hpp"

namespace cspls::parallel {

[[nodiscard]] constexpr std::string_view name_of(Scheduling scheduling) {
  switch (scheduling) {
    case Scheduling::kThreads:
      return "threads";
    case Scheduling::kSequential:
      return "sequential";
    case Scheduling::kEmulatedRace:
      return "emulated-race";
  }
  return "threads";
}

[[nodiscard]] constexpr std::string_view name_of(Neighborhood neighborhood) {
  switch (neighborhood) {
    case Neighborhood::kIsolated:
      return "isolated";
    case Neighborhood::kComplete:
      return "complete";
    case Neighborhood::kRing:
      return "ring";
    case Neighborhood::kTorus:
      return "torus";
    case Neighborhood::kHypercube:
      return "hypercube";
  }
  return "isolated";
}

[[nodiscard]] constexpr std::string_view name_of(Exchange exchange) {
  switch (exchange) {
    case Exchange::kNone:
      return "none";
    case Exchange::kElite:
      return "elite";
    case Exchange::kMigration:
      return "migration";
    case Exchange::kDecayElite:
      return "decay-elite";
  }
  return "none";
}

[[nodiscard]] constexpr std::string_view name_of(CommMode mode) {
  switch (mode) {
    case CommMode::kOnReset:
      return "on_reset";
    case CommMode::kAsync:
      return "async";
  }
  return "on_reset";
}

/// Legacy alias spellings (the pre-neighborhood wire format).
[[nodiscard]] constexpr std::string_view name_of(Topology topology) {
  switch (topology) {
    case Topology::kIndependent:
      return "independent";
    case Topology::kSharedElite:
      return "shared-elite";
    case Topology::kRingElite:
      return "ring-elite";
  }
  return "independent";
}

[[nodiscard]] constexpr std::string_view name_of(Termination termination) {
  switch (termination) {
    case Termination::kFirstFinisher:
      return "first-finisher";
    case Termination::kBestAfterBudget:
      return "best-after-budget";
  }
  return "first-finisher";
}

[[nodiscard]] constexpr std::string_view name_of(
    core::RestartSchedule schedule) {
  switch (schedule) {
    case core::RestartSchedule::kFixed:
      return "fixed";
    case core::RestartSchedule::kLuby:
      return "luby";
  }
  return "fixed";
}

[[nodiscard]] inline std::optional<Scheduling> scheduling_from_name(
    std::string_view name) {
  if (name == "threads") return Scheduling::kThreads;
  if (name == "sequential") return Scheduling::kSequential;
  if (name == "emulated-race") return Scheduling::kEmulatedRace;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<Neighborhood> neighborhood_from_name(
    std::string_view name) {
  if (name == "isolated") return Neighborhood::kIsolated;
  if (name == "complete") return Neighborhood::kComplete;
  if (name == "ring") return Neighborhood::kRing;
  if (name == "torus") return Neighborhood::kTorus;
  if (name == "hypercube") return Neighborhood::kHypercube;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<Exchange> exchange_from_name(
    std::string_view name) {
  if (name == "none") return Exchange::kNone;
  if (name == "elite") return Exchange::kElite;
  if (name == "migration") return Exchange::kMigration;
  if (name == "decay-elite") return Exchange::kDecayElite;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<CommMode> comm_mode_from_name(
    std::string_view name) {
  if (name == "on_reset") return CommMode::kOnReset;
  if (name == "async") return CommMode::kAsync;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<Topology> topology_from_name(
    std::string_view name) {
  if (name == "independent") return Topology::kIndependent;
  if (name == "shared-elite") return Topology::kSharedElite;
  if (name == "ring-elite") return Topology::kRingElite;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<Termination> termination_from_name(
    std::string_view name) {
  if (name == "first-finisher") return Termination::kFirstFinisher;
  if (name == "best-after-budget") return Termination::kBestAfterBudget;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<core::RestartSchedule>
restart_schedule_from_name(std::string_view name) {
  if (name == "fixed") return core::RestartSchedule::kFixed;
  if (name == "luby") return core::RestartSchedule::kLuby;
  return std::nullopt;
}

/// One line per policy axis, for error messages and --help text.
[[nodiscard]] inline std::string policy_names_hint() {
  return "scheduling: threads | sequential | emulated-race\n"
         "neighborhood: isolated | complete | ring | torus | hypercube\n"
         "exchange: none | elite | migration | decay-elite\n"
         "comm_mode: on_reset | async\n"
         "topology (deprecated alias): independent | shared-elite | "
         "ring-elite\n"
         "termination: first-finisher | best-after-budget\n"
         "restart_schedule: fixed | luby";
}

}  // namespace cspls::parallel
