// WalkerPool — the unified parallel execution runtime.
//
// The paper studies independent multi-walk adaptive search across execution
// regimes; its follow-ups (the X10 study and the Cell BE study) show the
// interesting design space is *communication topology × scheduling mode*.
// WalkerPool makes that space first-class: one runtime, parameterized by
// three orthogonal policies instead of one hard-coded code path per regime.
//
//   Scheduling — how walkers execute:
//     * kThreads       real std::jthread walkers racing on the hardware;
//     * kSequential    the same walker population run to completion one
//                      after another (the sampling primitive of sim/);
//     * kEmulatedRace  sequential execution, but the report replays the
//                      race on a deterministic iteration-synchronous
//                      machine (winner = fewest iterations).
//
//   Communication (CommunicationPolicy, exchange.hpp) — who talks to whom
//     and what they exchange, as two orthogonal pluggable concepts:
//     * a Neighborhood (neighborhood.hpp): the exchange graph — isolated,
//       complete (one shared blackboard), ring, 2-D torus, hypercube;
//     * an ExchangeStrategy: what flows over the edges — nothing, periodic
//       elite publish/adopt-on-reset, whole-configuration migration
//       (island model), or a cost-decay elite pool whose entries age out;
//     * a CommMode: when adoption may happen — on partial resets only
//       (kOnReset, the historical semantics) or additionally mid-walk every
//       publish period (kAsync, asynchronous gossip through the engine's
//       mid-walk hook).
//     The legacy Topology enum survives as a deprecated alias constructor
//     (kIndependent = isolated x none, kSharedElite = complete x elite,
//     kRingElite = ring x elite — byte-for-byte the PR-1 trajectories).
//
//   Termination — when the pool stops:
//     * kFirstFinisher    the first walker to solve wins and stops the rest
//                         (the paper's completion protocol);
//     * kBestAfterBudget  every walker runs its full budget; the best final
//                         cost wins (anytime/optimization regime).
//
// Policy combinations reproduce every legacy entry point of multi_walk.hpp
// byte-for-byte for a fixed master seed: walker i always receives RNG
// stream i of the master seed and a clone of the prototype, regardless of
// the policies — so scheduling, communication, termination and tracing can
// be toggled without perturbing any walker's trajectory (communication
// hooks excepted, since adoption is *meant* to change trajectories).
//
// Tracing: when enabled, each walker's core::WalkerTrace (counters +
// cost-over-time samples) is recorded through core::Hooks and returned in
// its WalkerOutcome.  Recording is passive and RNG-neutral.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "core/result.hpp"
#include "core/stop_token.hpp"
#include "core/trace.hpp"
#include "csp/problem.hpp"
#include "parallel/checkpoint.hpp"
#include "parallel/exchange.hpp"
#include "util/fault.hpp"

namespace cspls::parallel {

/// Winner value of a report in which no walker produced a solution.
inline constexpr std::size_t kNoWinner = static_cast<std::size_t>(-1);

enum class Scheduling {
  kThreads,     ///< real std::jthread walkers racing on the hardware
  kSequential,  ///< walkers executed to completion one after another
  /// Sequential execution whose kFirstFinisher reports replay the race on a
  /// deterministic iteration-synchronous machine.  Behaviourally identical
  /// to kSequential (both honour the termination policy); the distinct name
  /// states the caller's intent: emulating the race, not sampling walks.
  kEmulatedRace,
};

enum class Termination {
  kFirstFinisher,    ///< first solver stops the pool (completion protocol)
  kBestAfterBudget,  ///< all walkers run their budget; best cost wins
};

/// Instrumentation policy: fills WalkerOutcome::trace when enabled.
struct TracePolicy {
  bool enabled = false;
  /// Cost-over-time sampling period in iterations (0 = counters only).
  std::uint64_t sample_period = 0;
};

struct WalkerPoolOptions {
  /// Number of parallel walkers (the paper's "number of cores").
  std::size_t num_walkers = 4;

  /// Master seed; walker i uses RNG stream i (non-overlapping subsequences).
  std::uint64_t master_seed = 0x5eedULL;

  /// Engine parameters; when unset, each walker uses the model's tuning
  /// defaults (Params::from_hints).
  std::optional<core::Params> params;

  /// Cap on concurrently running OS threads under Scheduling::kThreads
  /// (0 = one thread per walker).  With more walkers than threads, walkers
  /// run in waves; wall times then measure throughput, not latency.
  std::size_t max_threads = 0;

  Scheduling scheduling = Scheduling::kThreads;
  CommunicationPolicy communication;
  Termination termination = Termination::kFirstFinisher;
  TracePolicy trace;

  /// Fault-injection plans for this run, merged with the CSPLS_FAULTS env
  /// schedule.  Armed only in CSPLS_FAULT_INJECTION builds; in production
  /// builds the plans are carried but never fire (the sites are no-ops).
  std::vector<util::fault::FaultPlan> faults;

  /// When set, every walker's first walk starts from this configuration
  /// instead of a random one (retry-with-checkpoint; see
  /// core::Hooks::warm_start — RNG streams are unaffected).  Must match the
  /// problem's num_variables.
  std::optional<std::vector<int>> warm_start;

  /// Liveness counter bumped by every walker (see core::Hooks::heartbeat);
  /// null disables.  Must outlive run().
  std::atomic<std::uint64_t>* heartbeat = nullptr;

  /// Live cost-sample sink for the serving tier's streaming responses:
  /// called with (walker_id, iteration, current cost) at iteration 0 and
  /// every `sample_sink_period` iterations of each walk (see
  /// core::Hooks::sample).  Invoked from walker bodies — concurrently under
  /// Scheduling::kThreads — so the callback must be thread-safe and cheap.
  /// Purely observational and RNG-neutral: enabling it cannot change the
  /// outcome of a seeded run.  Must outlive run().
  std::function<void(std::size_t, std::uint64_t, csp::Cost)> sample_sink;
  std::uint64_t sample_sink_period = 0;  ///< 0 disables the sink

  /// Cooperative preemption flag: when it becomes true, every walker drains
  /// to its next safe point (the engine's stop-poll site) and stops with
  /// StopCause::kPreempted; not-yet-started walkers never start.  Weaker
  /// than cancellation (cancel flags and chained race flags outrank it) but
  /// stronger than the deadline.  Null disables; must outlive run().
  const std::atomic<bool>* preempt = nullptr;

  /// When non-null and the run is preempted without having solved, run()
  /// assembles the drained walkers (per-walker checkpoints, final results
  /// of already-finished walkers, the ElitePool contents and exchange
  /// counters) into a PoolCheckpoint here.  Left empty when any mid-run
  /// walker failed to produce a valid checkpoint (a torn capture degrades
  /// the whole preemption to a plain interrupt — callers treat it as a
  /// cancel).  Must outlive run().
  std::optional<PoolCheckpoint>* checkpoint_out = nullptr;

  /// When set, the run resumes from this checkpoint instead of starting
  /// fresh: mid-run walkers continue byte-identically from their captured
  /// state, finished walkers replay their recorded outcome, pending
  /// walkers run from their untouched RNG stream, and the communication
  /// state picks up where it stopped.  Walker count must match
  /// num_walkers.  Overrides warm_start.
  std::optional<PoolCheckpoint> resume;
};

struct WalkerOutcome {
  std::size_t walker_id = 0;
  core::Result result;
  /// Instrumentation record; populated only when TracePolicy::enabled.
  core::WalkerTrace trace;
  /// Fault plans that fired in this walker's session (0 in production
  /// builds and un-faulted runs) — the "report" half of corrupt-and-report.
  std::uint64_t injected_faults = 0;

  /// True when this walker died on an exception (crash containment):
  /// result.stop_cause == kFailed and result.error holds the message.
  [[nodiscard]] bool failed() const noexcept {
    return result.stop_cause == core::StopCause::kFailed;
  }
};

struct MultiWalkReport {
  bool solved = false;
  /// Index of the walker whose solution was accepted, or kNoWinner.
  std::size_t winner = kNoWinner;
  /// Wall-clock time from launch to the last walker having stopped.  Under
  /// sequential/emulated scheduling this is the emulated machine's wall
  /// clock: the max of the walkers' solo runtimes.
  double wall_seconds = 0.0;
  /// Wall-clock time from launch to the winning solution (completion time).
  double time_to_solution_seconds = 0.0;
  /// The accepted result (winner's, or best-cost when nobody solved).
  core::Result best;
  /// Every walker's outcome, indexed by walker id.
  std::vector<WalkerOutcome> walkers;
  /// Publish events across all communication slots, accepted or not (0
  /// under Exchange::kNone).
  std::uint64_t comm_publishes = 0;
  /// Improving keep-best publishes accepted across all slots (0 under
  /// Exchange::kNone, and 0 under pure migration — unconditional overwrites
  /// carry no acceptance signal).
  std::uint64_t elite_accepted = 0;
  /// Adoption events: configurations actually pulled from an in-neighbour
  /// slot, whether at reset time or — under CommMode::kAsync — mid-walk.
  std::uint64_t comm_adoptions = 0;
  /// True when an external cancel flag or deadline cut the pool short: at
  /// least one walker was stopped (or never started) because the caller's
  /// StopToken fired.  Race losers interrupted by the pool's own
  /// first-finisher completion flag do NOT set this (each walk records the
  /// actual source that stopped it, so attribution is exact).  On such
  /// runs wall_seconds and time_to_solution_seconds are still populated
  /// (the anytime contract): `best` is the best configuration reached
  /// before the cut-off.
  bool interrupted = false;
  /// The external source when `interrupted`: kCancel, kPreempted or
  /// kDeadline (cancel wins over preemption, which wins over the deadline,
  /// when walkers observed several).  kNone otherwise.
  core::StopCause interrupt_cause = core::StopCause::kNone;
  /// Walkers that died on an exception (crash containment): each is
  /// recorded with StopCause::kFailed and its message in result.error;
  /// survivors' trajectories are unaffected.  Equal to walkers.size() on an
  /// all-failed run — the pool then still returns a structured report with
  /// solved == false, it never terminates the process.
  std::size_t failed_walkers = 0;
  /// Total fault plans fired across the pool (0 in production builds).
  std::uint64_t faults_injected = 0;

  /// True when every walker died (failed_walkers == walkers.size() != 0):
  /// the report carries no usable configuration.
  [[nodiscard]] bool all_failed() const noexcept {
    return !walkers.empty() && failed_walkers == walkers.size();
  }

  [[nodiscard]] bool has_winner() const noexcept { return winner != kNoWinner; }

  /// Aggregate iteration count across walkers (total work performed).
  [[nodiscard]] std::uint64_t total_iterations() const noexcept;
};

/// Validate `options` up front, throwing std::invalid_argument naming the
/// offending knob: a zero walker population, an exchanging strategy with a
/// zero publish period, an adopt probability outside [0, 1], an isolated
/// neighbourhood asked to exchange, a decay-elite strategy without a decay
/// bound, a plain elite strategy with one (kElite never forgets — spell
/// kDecayElite), or CommMode::kAsync without an exchanging strategy (there
/// is nothing to gossip).  Called by WalkerPool::run, so a degenerate
/// configuration fails loudly instead of silently running without
/// communication; api::Solver surfaces the same error as a rejected
/// request.
void validate_options(const WalkerPoolOptions& options);

/// The unified runtime: executes one walker population under the configured
/// scheduling × communication × termination policies.
class WalkerPool {
 public:
  explicit WalkerPool(WalkerPoolOptions options) noexcept
      : options_(std::move(options)) {}

  [[nodiscard]] const WalkerPoolOptions& options() const noexcept {
    return options_;
  }

  /// Run the pool on clones of `prototype` and report the accepted outcome.
  [[nodiscard]] MultiWalkReport run(const csp::Problem& prototype) const;

  /// Same, honouring an external StopToken under every Scheduling mode:
  /// cancellation or deadline expiry stops racing threads within one engine
  /// polling period and cuts sequential/emulated populations short (walkers
  /// not yet started report interrupted with zero iterations).  A
  /// never-firing token makes this byte-for-byte identical to run(prototype)
  /// for a fixed master seed — the token is polled, never consulted for
  /// randomness.
  [[nodiscard]] MultiWalkReport run(const csp::Problem& prototype,
                                    const core::StopToken& external) const;

 private:
  WalkerPoolOptions options_;
};

/// Deterministic race replay over completed walks: the winner is the solved
/// walker with the fewest iterations (the one that would have signalled
/// completion first on an iteration-synchronous machine).  Shared by
/// Scheduling::kEmulatedRace and the legacy emulate_first_finisher wrapper.
[[nodiscard]] MultiWalkReport resolve_emulated_race(
    std::vector<WalkerOutcome> walkers);

}  // namespace cspls::parallel
