#include "parallel/multi_walk.hpp"

namespace cspls::parallel {

WalkerPoolOptions MultiWalkOptions::to_pool_options() const {
  WalkerPoolOptions pool;
  pool.num_walkers = num_walkers;
  pool.master_seed = master_seed;
  pool.params = params;
  pool.max_threads = max_threads;
  pool.scheduling = Scheduling::kThreads;
  pool.communication = CommunicationPolicy(Topology::kIndependent);
  pool.termination = Termination::kFirstFinisher;
  return pool;
}

MultiWalkReport MultiWalkSolver::solve(const csp::Problem& prototype) const {
  return WalkerPool(options_.to_pool_options()).run(prototype);
}

std::vector<WalkerOutcome> run_independent_walks(
    const csp::Problem& prototype, std::size_t num_walkers,
    std::uint64_t master_seed, const std::optional<core::Params>& params) {
  if (num_walkers == 0) return {};
  WalkerPoolOptions pool;
  pool.num_walkers = num_walkers;
  pool.master_seed = master_seed;
  pool.params = params;
  pool.scheduling = Scheduling::kSequential;
  pool.termination = Termination::kBestAfterBudget;
  return std::move(WalkerPool(pool).run(prototype).walkers);
}

MultiWalkReport emulate_first_finisher(std::vector<WalkerOutcome> walkers) {
  return resolve_emulated_race(std::move(walkers));
}

MultiWalkReport DependentMultiWalkSolver::solve(
    const csp::Problem& prototype) const {
  WalkerPoolOptions pool = options_.base.to_pool_options();
  pool.communication = CommunicationPolicy(Topology::kSharedElite);
  pool.communication.period = options_.period;
  pool.communication.adopt_probability = options_.adopt_probability;
  return WalkerPool(pool).run(prototype);
}

}  // namespace cspls::parallel
