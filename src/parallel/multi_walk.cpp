#include "parallel/multi_walk.hpp"

#include <algorithm>
#include <thread>

#include "parallel/elite_pool.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cspls::parallel {

std::uint64_t MultiWalkReport::total_iterations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& w : walkers) total += w.result.stats.iterations;
  return total;
}

namespace {

core::Params params_for(const csp::Problem& prototype,
                        const std::optional<core::Params>& params) {
  return params.has_value() ? *params
                            : core::Params::from_hints(
                                  prototype.tuning(),
                                  prototype.num_variables());
}

/// Shared driver for both multi-walk variants.  `make_hooks(walker_id)`
/// returns the engine hooks for that walker (empty hooks = independent).
template <typename HookFactory>
MultiWalkReport run_threaded(const csp::Problem& prototype,
                             const MultiWalkOptions& options,
                             HookFactory&& make_hooks) {
  const std::size_t k = std::max<std::size_t>(1, options.num_walkers);
  const core::Params params = params_for(prototype, options.params);
  const core::AdaptiveSearch engine(params);
  const util::RngStreamFactory streams(options.master_seed);

  // The *only* shared state among walkers: the completion flag, the winner
  // slot and the time-to-solution stamp.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> winner{static_cast<std::size_t>(-1)};
  std::atomic<std::uint64_t> solution_time_us{0};

  MultiWalkReport report;
  report.walkers.resize(k);
  util::Stopwatch watch;

  const auto run_walker = [&](std::size_t id) {
    auto problem = prototype.clone();
    util::Xoshiro256 rng = streams.stream(id);
    const core::Hooks hooks = make_hooks(id);
    core::Result result = engine.solve(*problem, rng, &stop, hooks);
    if (result.solved && !result.interrupted) {
      // First walker to flip the flag is the winner; latecomers keep their
      // result but lose the race (exactly the paper's completion protocol).
      bool expected = false;
      if (stop.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
        winner.store(id, std::memory_order_release);
        solution_time_us.store(watch.elapsed_us(), std::memory_order_release);
      }
    }
    report.walkers[id] = WalkerOutcome{id, std::move(result)};
  };

  const std::size_t hw = std::thread::hardware_concurrency() == 0
                             ? 2
                             : std::thread::hardware_concurrency();
  const std::size_t thread_cap =
      options.max_threads == 0 ? k : std::min(options.max_threads, k);
  const std::size_t num_threads = std::min({k, thread_cap, hw * 16});

  if (num_threads <= 1) {
    for (std::size_t id = 0; id < k; ++id) run_walker(id);
  } else {
    // Wave execution: an atomic ticket dispenser hands walker ids to a
    // bounded pool of OS threads.
    std::atomic<std::size_t> next{0};
    std::vector<std::jthread> pool;
    pool.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
          if (id >= k) return;
          run_walker(id);
        }
      });
    }
    pool.clear();  // join
  }

  report.wall_seconds = watch.elapsed_seconds();
  const std::size_t win = winner.load(std::memory_order_acquire);
  report.winner = win;
  report.solved = win != static_cast<std::size_t>(-1);
  if (report.solved) {
    report.best = report.walkers[win].result;
    report.time_to_solution_seconds =
        static_cast<double>(
            solution_time_us.load(std::memory_order_acquire)) /
        1e6;
  } else {
    // Nobody finished: report the best configuration reached.  (A walker
    // may still have solved *after* being interrupted lost the race; prefer
    // any solved result.)
    const auto best_it = std::min_element(
        report.walkers.begin(), report.walkers.end(),
        [](const WalkerOutcome& a, const WalkerOutcome& b) {
          if (a.result.solved != b.result.solved) return a.result.solved;
          return a.result.cost < b.result.cost;
        });
    if (best_it != report.walkers.end()) {
      report.best = best_it->result;
      report.solved = best_it->result.solved;
      if (report.solved) {
        report.winner =
            static_cast<std::size_t>(best_it - report.walkers.begin());
      }
    }
    report.time_to_solution_seconds = report.wall_seconds;
  }
  return report;
}

}  // namespace

MultiWalkReport MultiWalkSolver::solve(const csp::Problem& prototype) const {
  return run_threaded(prototype, options_,
                      [](std::size_t) { return core::Hooks{}; });
}

std::vector<WalkerOutcome> run_independent_walks(
    const csp::Problem& prototype, std::size_t num_walkers,
    std::uint64_t master_seed, const std::optional<core::Params>& params) {
  const core::Params p = params_for(prototype, params);
  const core::AdaptiveSearch engine(p);
  const util::RngStreamFactory streams(master_seed);
  std::vector<WalkerOutcome> outcomes;
  outcomes.reserve(num_walkers);
  for (std::size_t id = 0; id < num_walkers; ++id) {
    auto problem = prototype.clone();
    util::Xoshiro256 rng = streams.stream(id);
    outcomes.push_back(WalkerOutcome{id, engine.solve(*problem, rng)});
  }
  return outcomes;
}

MultiWalkReport emulate_first_finisher(std::vector<WalkerOutcome> walkers) {
  MultiWalkReport report;
  report.walkers = std::move(walkers);
  std::uint64_t best_iters = UINT64_MAX;
  csp::Cost best_cost = csp::kInfiniteCost;
  std::size_t best_id = static_cast<std::size_t>(-1);
  double wall = 0.0;
  for (const auto& w : report.walkers) {
    wall = std::max(wall, w.result.stats.seconds);
    if (w.result.solved) {
      if (w.result.stats.iterations < best_iters) {
        best_iters = w.result.stats.iterations;
        best_id = w.walker_id;
      }
    } else if (best_id == static_cast<std::size_t>(-1) &&
               w.result.cost < best_cost) {
      best_cost = w.result.cost;
    }
  }
  report.wall_seconds = wall;
  if (best_id != static_cast<std::size_t>(-1)) {
    report.solved = true;
    report.winner = best_id;
    for (const auto& w : report.walkers) {
      if (w.walker_id == best_id) {
        report.best = w.result;
        report.time_to_solution_seconds = w.result.stats.seconds;
        break;
      }
    }
  } else {
    for (const auto& w : report.walkers) {
      if (w.result.cost <= best_cost) {
        report.best = w.result;
        break;
      }
    }
    report.time_to_solution_seconds = wall;
  }
  return report;
}

MultiWalkReport DependentMultiWalkSolver::solve(
    const csp::Problem& prototype) const {
  ElitePool pool;
  const double adopt_probability = options_.adopt_probability;
  const std::uint64_t period = options_.period;

  const auto make_hooks = [&pool, adopt_probability,
                           period](std::size_t) {
    core::Hooks hooks;
    hooks.observer_period = period;
    hooks.observer = [&pool](std::uint64_t, csp::Cost cost,
                             std::span<const int> values) {
      pool.offer(cost, values);
    };
    hooks.on_reset = [&pool, adopt_probability](csp::Problem& problem,
                                                util::Xoshiro256& rng) {
      if (!rng.chance(adopt_probability)) return false;
      std::vector<int> elite;
      const csp::Cost cost =
          pool.take_if_better(problem.total_cost(), elite);
      if (cost == csp::kInfiniteCost) return false;
      problem.assign(elite);
      return true;
    };
    return hooks;
  };
  return run_threaded(prototype, options_.base, make_hooks);
}

}  // namespace cspls::parallel
