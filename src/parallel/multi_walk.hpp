// Legacy façade over the unified WalkerPool runtime (walker_pool.hpp).
//
// "The implemented algorithm is a parallel version of adaptive search in a
//  multiple independent-walk manner, that is, each process is an independent
//  search engine and there is no communication between the simultaneous
//  computations" — except for completion.
//
// Historically each execution regime was a separate code path; they are now
// thin wrappers over WalkerPool policy combinations, preserved because
// their walker-for-walker outcomes for a fixed master seed are part of the
// reproduction's contract (locked in by tests/parallel_walker_pool_test):
//
//   * MultiWalkSolver::solve
//       = WalkerPool{kThreads, kIndependent, kFirstFinisher}
//     real std::jthread walkers, one cloned problem and one decorrelated
//     RNG stream each, an atomic first-finisher flag as the *only* shared
//     state, polled once per engine iteration.
//
//   * run_independent_walks
//       = WalkerPool{kSequential, kIndependent, kBestAfterBudget}.walkers
//     the same walker population executed to completion sequentially.
//     This yields the full runtime distribution of the walkers and is the
//     sampling primitive of the cluster simulator (sim/).
//
//   * emulate_first_finisher
//       = resolve_emulated_race (deterministic race replay; the winner is
//     the solved walker with the fewest iterations).
//
//   * DependentMultiWalkSolver::solve
//       = WalkerPool{kThreads, kSharedElite, kFirstFinisher}
//     the paper's future-work prototype (periodic elite exchange), benched
//     by bench_ablation_communication — which now also exercises the new
//     kRingElite topology directly through WalkerPool.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "core/result.hpp"
#include "csp/problem.hpp"
#include "parallel/walker_pool.hpp"

namespace cspls::parallel {

struct MultiWalkOptions {
  /// Number of parallel walkers (the paper's "number of cores").
  std::size_t num_walkers = 4;

  /// Master seed; walker i uses RNG stream i (non-overlapping subsequences).
  std::uint64_t master_seed = 0x5eedULL;

  /// Engine parameters; when unset, each walker uses the model's tuning
  /// defaults (Params::from_hints).
  std::optional<core::Params> params;

  /// Cap on concurrently running OS threads (0 = one thread per walker).
  /// With more walkers than threads, walkers are executed in waves; wall
  /// times then measure throughput, not latency (the simulator corrects for
  /// this by working on per-walk solo runtimes instead).
  std::size_t max_threads = 0;

  /// The equivalent WalkerPool configuration (threads + independent +
  /// first-finisher; extend the returned value to opt into other policies).
  [[nodiscard]] WalkerPoolOptions to_pool_options() const;
};

/// Real-thread independent multi-walk with first-finisher termination.
class MultiWalkSolver {
 public:
  explicit MultiWalkSolver(MultiWalkOptions options) noexcept
      : options_(options) {}

  [[nodiscard]] const MultiWalkOptions& options() const noexcept {
    return options_;
  }

  /// Launch one walker per num_walkers on clones of `prototype`.
  [[nodiscard]] MultiWalkReport solve(const csp::Problem& prototype) const;

 private:
  MultiWalkOptions options_;
};

/// Execute `num_walkers` independent walks to completion (no stop flag), one
/// after another, and return every result.  Walker i of a given master_seed
/// behaves identically here and in MultiWalkSolver (same RNG stream), which
/// is what lets the simulator reason about the racing version offline.
[[nodiscard]] std::vector<WalkerOutcome> run_independent_walks(
    const csp::Problem& prototype, std::size_t num_walkers,
    std::uint64_t master_seed, const std::optional<core::Params>& params = {});

/// Deterministic first-finisher semantics over completed walks: the winner
/// is the solved walker with the fewest iterations (the one that would have
/// signalled completion first on an iteration-synchronous machine).
[[nodiscard]] MultiWalkReport emulate_first_finisher(
    std::vector<WalkerOutcome> walkers);

// ---------------------------------------------------------------------------
// Dependent multi-walk (future-work prototype)
// ---------------------------------------------------------------------------

struct DependentOptions {
  MultiWalkOptions base;
  /// Walkers publish their configuration to the elite pool every `period`
  /// iterations (the paper's goal 1: minimise data transfers).
  std::uint64_t period = 1000;
  /// Probability that a partial reset adopts the elite configuration
  /// instead of randomizing (the paper's goal 2: reuse common computations /
  /// restart from recorded crossroads).
  double adopt_probability = 0.5;
};

/// Multi-walk with a shared elite pool (best configuration seen so far).
/// Shares the first-finisher termination of MultiWalkSolver.
class DependentMultiWalkSolver {
 public:
  explicit DependentMultiWalkSolver(DependentOptions options) noexcept
      : options_(options) {}

  [[nodiscard]] MultiWalkReport solve(const csp::Problem& prototype) const;

 private:
  DependentOptions options_;
};

}  // namespace cspls::parallel
