// JobExecution — the per-job half of the parallel runtime, factored out of
// WalkerPool::run so one walker population can execute on *any* thread
// supply: the pool's own wave scheduler (the solo path), the caller's
// thread (sequential/emulated scheduling), or a shared resident team fusing
// many jobs into one launch (parallel/fused.hpp).
//
// The class owns everything one run needs — engine, RNG stream factory,
// communication channels, fault schedule, the report under construction and
// the shared race state — and exposes exactly the two execution primitives
// WalkerPool::run was built from:
//
//   * run_walker(id)            body of walker `id`; thread-safe across
//                               distinct ids (walkers share nothing but the
//                               race flag), so a team may run them
//                               concurrently under Scheduling::kThreads;
//   * run_walkers_one_by_one()  the strictly-ordered path (sequential /
//                               emulated scheduling and the collapsed
//                               threaded pool), with the between-walker
//                               external/race short-circuits.
//
// finalize() then applies the termination policy and returns the
// MultiWalkReport.  Byte-identity invariant: for a fixed master seed every
// walker's trajectory depends only on (options, prototype, stream id) —
// never on which thread or team ran it — so a fused member's report is
// byte-for-byte the solo WalkerPool::run report (timing fields excepted).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/adaptive_search.hpp"
#include "core/checkpoint.hpp"
#include "core/stop_token.hpp"
#include "parallel/checkpoint.hpp"
#include "parallel/walker_pool.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cspls::parallel::detail {

class JobExecution {
 public:
  /// Validates `options` (validate_options + warm-start arity) and
  /// preallocates every per-run structure; throws std::invalid_argument
  /// before any walker work on a degenerate configuration.  `prototype` and
  /// `options` are borrowed and must outlive the execution.
  JobExecution(const csp::Problem& prototype, const WalkerPoolOptions& options,
               core::StopToken external);

  JobExecution(const JobExecution&) = delete;
  JobExecution& operator=(const JobExecution&) = delete;

  [[nodiscard]] std::size_t num_walkers() const noexcept { return k_; }
  [[nodiscard]] bool threaded() const noexcept { return threaded_; }
  [[nodiscard]] bool race() const noexcept { return race_; }

  /// Thread count the solo pool would use under Scheduling::kThreads: the
  /// walker count clamped by max_threads and a hardware-derived ceiling.
  /// 1 when the threaded pool collapses to the ordered path.
  [[nodiscard]] std::size_t preferred_threads() const noexcept;

  /// True when this job's walkers may execute as independent tasks on a
  /// shared team: genuinely threaded scheduling (any interleaving is a
  /// valid schedule of the solo pool).  False for the ordered modes, where
  /// trajectories under communication depend on the publish/adopt order
  /// that one-by-one execution defines.
  [[nodiscard]] bool walkers_independent() const noexcept {
    return threaded_ && preferred_threads() > 1;
  }

  /// Body of walker `id`: clone, stream(id), hooks, solve, crash
  /// containment.  Callable concurrently for distinct ids.
  void run_walker(std::size_t id);

  /// Ordered execution with the external/race between-walker short-circuits
  /// (not-yet-started walkers are marked interrupted instead of paying a
  /// clone + initial evaluation).
  void run_walkers_one_by_one();

  /// Apply the termination policy and hand over the report.  Call exactly
  /// once, after every walker task has returned.
  [[nodiscard]] MultiWalkReport finalize();

 private:
  /// Cause latches + first-finisher CAS, shared by live runs and checkpoint
  /// replays of already-finished walkers.
  void note_completion(std::size_t id, const core::Result& result);

  /// Assemble the PoolCheckpoint after a preempted run (finalize helper;
  /// `report` is the finalized report whose walker outcomes become the
  /// kDone entries).  Returns false — and leaves *options_.checkpoint_out
  /// empty — when any started walker was preempted without a valid
  /// checkpoint (torn or failed capture) or walkers observed mixed
  /// external interruptions: the whole preemption then degrades to a plain
  /// interrupt, which callers treat as a cancel.
  bool assemble_checkpoint(const MultiWalkReport& report);

  const csp::Problem& prototype_;
  const WalkerPoolOptions& options_;
  const core::StopToken external_;
  const std::size_t k_;
  const core::AdaptiveSearch engine_;
  const util::RngStreamFactory streams_;
  CommChannels comm_;
  const util::fault::Schedule fault_schedule_;
  const bool threaded_;
  const bool race_;

  // The *only* shared state among racing walkers: the completion flag, the
  // winner slot and the time-to-solution stamp.
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> winner_{kNoWinner};
  std::atomic<std::uint64_t> solution_time_us_{0};
  // Walkers stopped by the *external* token latch their cause here (the
  // engine records which source its poll observed, so a race loser cut by
  // the pool's internal completion flag — StopCause::kChained — is never
  // misattributed to a deadline that happened to pass during the joins).
  std::atomic<bool> external_cancel_hit_{false};
  std::atomic<bool> external_deadline_hit_{false};
  std::atomic<bool> preempt_hit_{false};

  // Per-walker preemption state.  Each slot is written only by the thread
  // running that walker (like report_.walkers) and read in finalize(),
  // after every walker task has been joined.
  std::vector<std::optional<core::Checkpoint>> walker_checkpoints_;
  std::vector<char> walker_started_;

  MultiWalkReport report_;
  util::Stopwatch watch_;
};

}  // namespace cspls::parallel::detail
