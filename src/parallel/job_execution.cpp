#include "parallel/job_execution.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

namespace cspls::parallel {

namespace {

core::Params params_for(const csp::Problem& prototype,
                        const std::optional<core::Params>& params) {
  return params.has_value() ? *params
                            : core::Params::from_hints(
                                  prototype.tuning(),
                                  prototype.num_variables());
}

/// Best-cost selection over completed walks (Termination::kBestAfterBudget
/// and the no-winner fallback of the threaded race): prefer any solved
/// result, then any survivor over a crashed walker, then the lowest cost,
/// first index breaking ties.  On an all-failed pool this still selects a
/// (failed) result so the report stays structured.
void select_best_after_budget(MultiWalkReport& report) {
  const auto best_it = std::min_element(
      report.walkers.begin(), report.walkers.end(),
      [](const WalkerOutcome& a, const WalkerOutcome& b) {
        if (a.result.solved != b.result.solved) return a.result.solved;
        if (a.failed() != b.failed()) return !a.failed();
        return a.result.cost < b.result.cost;
      });
  if (best_it != report.walkers.end()) {
    report.best = best_it->result;
    report.solved = best_it->result.solved;
    report.winner = report.solved ? static_cast<std::size_t>(
                                        best_it - report.walkers.begin())
                                  : kNoWinner;
  }
}

/// Crash-containment roll-up shared by every return path.
void tally_failures(MultiWalkReport& report) {
  report.failed_walkers = 0;
  report.faults_injected = 0;
  for (const auto& w : report.walkers) {
    if (w.failed()) ++report.failed_walkers;
    report.faults_injected += w.injected_faults;
  }
}

}  // namespace

MultiWalkReport resolve_emulated_race(std::vector<WalkerOutcome> walkers) {
  MultiWalkReport report;
  report.walkers = std::move(walkers);
  std::uint64_t best_iters = UINT64_MAX;
  csp::Cost best_cost = csp::kInfiniteCost;
  std::size_t best_id = kNoWinner;
  double wall = 0.0;
  for (const auto& w : report.walkers) {
    wall = std::max(wall, w.result.stats.seconds);
    if (w.result.solved) {
      if (w.result.stats.iterations < best_iters) {
        best_iters = w.result.stats.iterations;
        best_id = w.walker_id;
      }
    } else if (best_id == kNoWinner && w.result.cost < best_cost) {
      best_cost = w.result.cost;
    }
  }
  report.wall_seconds = wall;
  if (best_id != kNoWinner) {
    report.solved = true;
    report.winner = best_id;
    for (const auto& w : report.walkers) {
      if (w.walker_id == best_id) {
        report.best = w.result;
        report.time_to_solution_seconds = w.result.stats.seconds;
        break;
      }
    }
  } else {
    for (const auto& w : report.walkers) {
      if (w.result.cost <= best_cost) {
        report.best = w.result;
        break;
      }
    }
    report.time_to_solution_seconds = wall;
  }
  tally_failures(report);
  return report;
}

namespace detail {

JobExecution::JobExecution(const csp::Problem& prototype,
                           const WalkerPoolOptions& options,
                           core::StopToken external)
    : prototype_(prototype),
      options_(options),
      external_(external),
      k_(options.num_walkers),
      engine_((validate_options(options), params_for(prototype,
                                                     options.params))),
      streams_(options.master_seed),
      comm_(options.communication, options.num_walkers),
      // The effective fault schedule: request plans + the CSPLS_FAULTS env
      // spec.  Production builds never arm it — sessions stay disarmed and
      // the sites compile to no-ops.
      fault_schedule_(util::fault::kCompiledIn
                          ? util::fault::Schedule::with_env(options.faults)
                          : util::fault::Schedule{}),
      threaded_(options.scheduling == Scheduling::kThreads),
      race_(threaded_ && options.termination == Termination::kFirstFinisher) {
  if (options_.warm_start.has_value() &&
      options_.warm_start->size() != prototype.num_variables()) {
    throw std::invalid_argument(
        "WalkerPoolOptions: warm_start has " +
        std::to_string(options_.warm_start->size()) + " values but \"" +
        std::string(prototype.name()) + "\" has " +
        std::to_string(prototype.num_variables()) + " variables");
  }
  if (options_.resume.has_value()) {
    const PoolCheckpoint& resume = *options_.resume;
    if (resume.walkers.size() != k_) {
      throw std::invalid_argument(
          "WalkerPoolOptions: resume checkpoint has " +
          std::to_string(resume.walkers.size()) + " walkers but the pool has " +
          std::to_string(k_));
    }
    if (resume.elite.size() != comm_.num_slots()) {
      throw std::invalid_argument(
          "WalkerPoolOptions: resume checkpoint has " +
          std::to_string(resume.elite.size()) + " elite slots but the "
          "communication policy allocates " +
          std::to_string(comm_.num_slots()));
    }
    // Restore the communication state before any walker runs, so the first
    // publish/adopt of the resumed run sees exactly the preempted state.
    comm_.restore_counters(resume.comm_clock, resume.comm_adoptions);
    for (std::size_t i = 0; i < resume.elite.size(); ++i) {
      const PoolCheckpoint::EliteSlot& slot = resume.elite[i];
      ElitePool::Snapshot snap;
      snap.has_entry = slot.has_entry;
      snap.cost = slot.cost;
      snap.values = slot.values;
      snap.tick = slot.tick;
      snap.publisher = static_cast<std::size_t>(slot.publisher);
      snap.publishes = slot.publishes;
      snap.accepted = slot.accepted;
      comm_.slot(i).restore(snap);
    }
  }
  report_.walkers.resize(k_);
  walker_checkpoints_.resize(k_);
  walker_started_.assign(k_, 0);
}

std::size_t JobExecution::preferred_threads() const noexcept {
  if (!threaded_) return 1;
  const std::size_t hw = std::thread::hardware_concurrency() == 0
                             ? 2
                             : std::thread::hardware_concurrency();
  const std::size_t thread_cap =
      options_.max_threads == 0 ? k_ : std::min(options_.max_threads, k_);
  return std::min({k_, thread_cap, hw * 16});
}

void JobExecution::note_completion(std::size_t id, const core::Result& result) {
  if (result.stop_cause == core::StopCause::kCancel) {
    external_cancel_hit_.store(true, std::memory_order_relaxed);
  } else if (result.stop_cause == core::StopCause::kDeadline) {
    external_deadline_hit_.store(true, std::memory_order_relaxed);
  } else if (result.stop_cause == core::StopCause::kPreempted) {
    preempt_hit_.store(true, std::memory_order_relaxed);
  }
  if (race_ && result.solved && !result.interrupted) {
    // First walker to flip the flag is the winner; latecomers keep
    // their result but lose the race (exactly the paper's completion
    // protocol).  A replayed kDone walker competes like a live one so a
    // resumed race reaches the same winner as the uninterrupted run.
    bool expected = false;
    if (stop_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
      winner_.store(id, std::memory_order_release);
      solution_time_us_.store(watch_.elapsed_us(), std::memory_order_release);
    }
  }
}

void JobExecution::run_walker(std::size_t id) {
  WalkerOutcome& out = report_.walkers[id];
  out.walker_id = id;
  // A walker that already finished before the pool was preempted replays
  // its recorded outcome verbatim — no clone, no RNG draws, no fault
  // probes beyond those its original run already burned.
  const PoolCheckpoint::WalkerEntry* resume_entry =
      options_.resume.has_value() ? &options_.resume->walkers[id] : nullptr;
  if (resume_entry != nullptr &&
      resume_entry->stage == PoolCheckpoint::WalkerStage::kDone) {
    out.result = resume_entry->result;
    out.trace = resume_entry->trace;
    out.injected_faults = resume_entry->injected_faults;
    note_completion(id, out.result);
    return;
  }
  walker_started_[id] = 1;
  // Each walker owns its fault session, exactly like its RNG stream, so
  // probe counts are deterministic under every scheduling mode.
  util::fault::Session session(&fault_schedule_, id);
  // Crash containment: no exception may escape a walker body — an escape
  // under kThreads would std::terminate the process.  A throwing walker
  // (injected or genuine) is recorded as StopCause::kFailed with its
  // message; survivors keep walking and the termination policies
  // aggregate over them.
  try {
    auto problem = prototype_.clone();
    util::Xoshiro256 rng = streams_.stream(id);
    core::Hooks hooks = comm_hooks(options_.communication, comm_, id, k_,
                                   session.armed() ? &session : nullptr);
    if (options_.trace.enabled) {
      out.trace.walker_id = id;
      hooks.trace = &out.trace;
      hooks.trace_sample_period = options_.trace.sample_period;
    }
    if (session.armed()) hooks.fault = &session;
    hooks.heartbeat = options_.heartbeat;
    if (options_.sample_sink && options_.sample_sink_period != 0) {
      hooks.sample = [this, id](std::uint64_t iteration, csp::Cost cost) {
        options_.sample_sink(id, iteration, cost);
      };
      hooks.sample_period = options_.sample_sink_period;
    }
    if (options_.warm_start.has_value()) {
      hooks.warm_start = &*options_.warm_start;
    }
    // Exact resume overrides the warm start: the checkpoint carries the
    // full mid-walk state (values, bests, tabu marks, RNG position), not
    // just a seed configuration.
    if (resume_entry != nullptr &&
        resume_entry->stage == PoolCheckpoint::WalkerStage::kRunning) {
      hooks.resume = &resume_entry->checkpoint;
    }
    if (options_.checkpoint_out != nullptr) {
      hooks.checkpoint_out = &walker_checkpoints_[id];
    }
    // Each walker polls its own token copy: the caller's cancel/deadline,
    // chained with the pool's completion flag when racing, plus the pool
    // preemption flag when the caller may suspend the job.
    core::StopToken token =
        race_ ? external_.also_cancelled_by(&stop_) : external_;
    if (options_.preempt != nullptr) {
      token = token.with_preempt(options_.preempt);
    }
    core::Result result = engine_.solve(*problem, rng, token, hooks);
    note_completion(id, result);
    out.result = std::move(result);
  } catch (const std::exception& e) {
    out.result = core::Result{};
    out.result.stop_cause = core::StopCause::kFailed;
    out.result.error = e.what();
  } catch (...) {
    out.result = core::Result{};
    out.result.stop_cause = core::StopCause::kFailed;
    out.result.error = "unknown exception";
  }
  out.injected_faults = session.fired();
}

// Between-walker short-circuit for any path that runs walkers one after
// another (sequential/emulated scheduling, and the threaded scheduler
// collapsed to a single thread): once a stop source has fired, the
// not-yet-started walkers are marked interrupted with zero iterations
// instead of each paying a full clone + initial cost evaluation.
void JobExecution::run_walkers_one_by_one() {
  core::StopCause cut = core::StopCause::kNone;
  for (std::size_t id = 0; id < k_; ++id) {
    // A walker the resume checkpoint records as finished replays its
    // outcome even after a stop source fired: the replay is free (no
    // clone, no draws) and under sequential communication the restored
    // elite state already contains its publishes — skipping or re-running
    // it would break the byte-identity of a later resume.
    if (options_.resume.has_value() &&
        options_.resume->walkers[id].stage ==
            PoolCheckpoint::WalkerStage::kDone) {
      run_walker(id);
      continue;
    }
    if (cut == core::StopCause::kNone) {
      // Unthrottled check on purpose: the engine-rate throttle inside the
      // token's poll would let each walker start and run a stride of
      // iterations before noticing an already-expired deadline.
      const bool ext_cancelled = external_.cancelled();
      // Same precedence as StopToken::poll: cancel > preempt > deadline.
      // A preempted not-yet-started walker never starts — it stays
      // kPending in the checkpoint and resumes from its untouched stream.
      const bool preempt_raised =
          !ext_cancelled && options_.preempt != nullptr &&
          options_.preempt->load(std::memory_order_relaxed);
      if (ext_cancelled || preempt_raised || external_.deadline_expired()) {
        cut = ext_cancelled    ? core::StopCause::kCancel
              : preempt_raised ? core::StopCause::kPreempted
                               : core::StopCause::kDeadline;
        (ext_cancelled    ? external_cancel_hit_
         : preempt_raised ? preempt_hit_
                          : external_deadline_hit_)
            .store(true, std::memory_order_relaxed);
      } else if (race_ && stop_.load(std::memory_order_acquire)) {
        // A collapsed threaded race already decided: the remaining walkers
        // would only run to their first poll and report kChained anyway —
        // record exactly that outcome without paying their start-up cost.
        cut = core::StopCause::kChained;
      }
    }
    if (cut != core::StopCause::kNone) {
      report_.walkers[id].walker_id = id;
      report_.walkers[id].result.interrupted = true;
      report_.walkers[id].result.stop_cause = cut;
      continue;
    }
    run_walker(id);
  }
}

bool JobExecution::assemble_checkpoint(const MultiWalkReport& report) {
  PoolCheckpoint cp;
  cp.walkers.resize(k_);
  const std::size_t n = prototype_.num_variables();
  for (std::size_t id = 0; id < k_; ++id) {
    const WalkerOutcome& out = report.walkers[id];
    PoolCheckpoint::WalkerEntry& entry = cp.walkers[id];
    std::optional<core::Checkpoint>& captured = walker_checkpoints_[id];
    if (captured.has_value()) {
      // Validate the capture before trusting it with a future resume: the
      // sizes and the configuration/cost invariant the resume constructor
      // checks.  A torn capture (the checkpoint_capture corrupt fault, or
      // any bug producing inconsistent state) fails here and degrades the
      // whole preemption instead of planting a time bomb in the requeue.
      const core::Checkpoint& c = *captured;
      if (c.values.size() != n || c.best.size() != n ||
          c.tabu_until.size() != n) {
        return false;
      }
      const auto probe = prototype_.clone();
      probe->assign(c.values);
      if (probe->total_cost() != c.cost) return false;
      entry.stage = PoolCheckpoint::WalkerStage::kRunning;
      entry.checkpoint = std::move(*captured);
    } else if (out.result.stop_cause == core::StopCause::kPreempted) {
      if (walker_started_[id] != 0) {
        // Started, preempted, but produced no checkpoint: the capture
        // itself failed (the checkpoint_capture throw fault, or an
        // allocation failure mid-copy).
        return false;
      }
      entry.stage = PoolCheckpoint::WalkerStage::kPending;
    } else if (walker_started_[id] != 0 ||
               (options_.resume.has_value() &&
                options_.resume->walkers[id].stage ==
                    PoolCheckpoint::WalkerStage::kDone)) {
      if (out.result.interrupted) {
        // Mixed external interruption (this walker observed the deadline
        // or a chained flag while others were preempted): no consistent
        // resumable state exists.
        return false;
      }
      entry.stage = PoolCheckpoint::WalkerStage::kDone;
      entry.result = out.result;
      entry.trace = out.trace;
      entry.injected_faults = out.injected_faults;
    } else {
      entry.stage = PoolCheckpoint::WalkerStage::kPending;
    }
  }
  for (std::size_t i = 0; i < comm_.num_slots(); ++i) {
    const ElitePool::Snapshot snap = comm_.slot(i).snapshot();
    PoolCheckpoint::EliteSlot slot;
    slot.has_entry = snap.has_entry;
    slot.cost = snap.cost;
    slot.values = snap.values;
    slot.tick = snap.tick;
    slot.publisher = static_cast<std::uint64_t>(snap.publisher);
    slot.publishes = snap.publishes;
    slot.accepted = snap.accepted;
    cp.elite.push_back(std::move(slot));
  }
  cp.comm_clock = comm_.now();
  cp.comm_adoptions = comm_.adoptions();
  options_.checkpoint_out->emplace(std::move(cp));
  return true;
}

MultiWalkReport JobExecution::finalize() {
  // Cancellation wins the attribution tie when walkers observed several
  // sources; preemption outranks the deadline (the preempted run must
  // surrender its checkpoint even when its deadline fired on the same
  // poll).
  const core::StopCause interrupt_cause =
      external_cancel_hit_.load(std::memory_order_relaxed)
          ? core::StopCause::kCancel
      : preempt_hit_.load(std::memory_order_relaxed)
          ? core::StopCause::kPreempted
      : external_deadline_hit_.load(std::memory_order_relaxed)
          ? core::StopCause::kDeadline
          : core::StopCause::kNone;

  MultiWalkReport report;
  if (!threaded_ && options_.termination == Termination::kFirstFinisher) {
    report = resolve_emulated_race(std::move(report_.walkers));
  } else {
    report = std::move(report_);
    if (!threaded_) {
      // Emulated machine's wall clock: all walkers start together and the
      // pool stops when the slowest one exhausts its budget.
      double wall = 0.0;
      for (const auto& w : report.walkers) {
        wall = std::max(wall, w.result.stats.seconds);
      }
      report.wall_seconds = wall;
    } else {
      report.wall_seconds = watch_.elapsed_seconds();
    }

    if (race_) {
      const std::size_t win = winner_.load(std::memory_order_acquire);
      report.winner = win;
      report.solved = win != kNoWinner;
      if (report.solved) {
        report.best = report.walkers[win].result;
        report.time_to_solution_seconds =
            static_cast<double>(
                solution_time_us_.load(std::memory_order_acquire)) /
            1e6;
      } else {
        // Nobody flipped the flag: report the best configuration reached.
        // (A walker may still have solved after losing the race; prefer
        // any solved result.)
        select_best_after_budget(report);
        report.time_to_solution_seconds = report.wall_seconds;
      }
    } else {
      // kBestAfterBudget (and the non-racing threaded case): the pool's
      // wall clock doubles as the time-to-result — also on cancelled or
      // deadline-expired runs, where `best` is the anytime answer and the
      // times say how long the pool actually had.
      select_best_after_budget(report);
      report.time_to_solution_seconds = report.wall_seconds;
    }
    tally_failures(report);
  }
  report.comm_publishes = comm_.publishes();
  report.elite_accepted = comm_.accepted();
  report.comm_adoptions = comm_.adoptions();
  report.interrupt_cause = interrupt_cause;
  report.interrupted = interrupt_cause != core::StopCause::kNone;
  if (interrupt_cause == core::StopCause::kPreempted &&
      options_.checkpoint_out != nullptr && !report.solved) {
    // A failed assembly leaves *checkpoint_out empty: the preemption
    // degrades to a plain interrupt and the caller requeues cold.
    (void)assemble_checkpoint(report);
  }
  return report;
}

}  // namespace detail
}  // namespace cspls::parallel
