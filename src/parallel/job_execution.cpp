#include "parallel/job_execution.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

namespace cspls::parallel {

namespace {

core::Params params_for(const csp::Problem& prototype,
                        const std::optional<core::Params>& params) {
  return params.has_value() ? *params
                            : core::Params::from_hints(
                                  prototype.tuning(),
                                  prototype.num_variables());
}

/// Best-cost selection over completed walks (Termination::kBestAfterBudget
/// and the no-winner fallback of the threaded race): prefer any solved
/// result, then any survivor over a crashed walker, then the lowest cost,
/// first index breaking ties.  On an all-failed pool this still selects a
/// (failed) result so the report stays structured.
void select_best_after_budget(MultiWalkReport& report) {
  const auto best_it = std::min_element(
      report.walkers.begin(), report.walkers.end(),
      [](const WalkerOutcome& a, const WalkerOutcome& b) {
        if (a.result.solved != b.result.solved) return a.result.solved;
        if (a.failed() != b.failed()) return !a.failed();
        return a.result.cost < b.result.cost;
      });
  if (best_it != report.walkers.end()) {
    report.best = best_it->result;
    report.solved = best_it->result.solved;
    report.winner = report.solved ? static_cast<std::size_t>(
                                        best_it - report.walkers.begin())
                                  : kNoWinner;
  }
}

/// Crash-containment roll-up shared by every return path.
void tally_failures(MultiWalkReport& report) {
  report.failed_walkers = 0;
  report.faults_injected = 0;
  for (const auto& w : report.walkers) {
    if (w.failed()) ++report.failed_walkers;
    report.faults_injected += w.injected_faults;
  }
}

}  // namespace

MultiWalkReport resolve_emulated_race(std::vector<WalkerOutcome> walkers) {
  MultiWalkReport report;
  report.walkers = std::move(walkers);
  std::uint64_t best_iters = UINT64_MAX;
  csp::Cost best_cost = csp::kInfiniteCost;
  std::size_t best_id = kNoWinner;
  double wall = 0.0;
  for (const auto& w : report.walkers) {
    wall = std::max(wall, w.result.stats.seconds);
    if (w.result.solved) {
      if (w.result.stats.iterations < best_iters) {
        best_iters = w.result.stats.iterations;
        best_id = w.walker_id;
      }
    } else if (best_id == kNoWinner && w.result.cost < best_cost) {
      best_cost = w.result.cost;
    }
  }
  report.wall_seconds = wall;
  if (best_id != kNoWinner) {
    report.solved = true;
    report.winner = best_id;
    for (const auto& w : report.walkers) {
      if (w.walker_id == best_id) {
        report.best = w.result;
        report.time_to_solution_seconds = w.result.stats.seconds;
        break;
      }
    }
  } else {
    for (const auto& w : report.walkers) {
      if (w.result.cost <= best_cost) {
        report.best = w.result;
        break;
      }
    }
    report.time_to_solution_seconds = wall;
  }
  tally_failures(report);
  return report;
}

namespace detail {

JobExecution::JobExecution(const csp::Problem& prototype,
                           const WalkerPoolOptions& options,
                           core::StopToken external)
    : prototype_(prototype),
      options_(options),
      external_(external),
      k_(options.num_walkers),
      engine_((validate_options(options), params_for(prototype,
                                                     options.params))),
      streams_(options.master_seed),
      comm_(options.communication, options.num_walkers),
      // The effective fault schedule: request plans + the CSPLS_FAULTS env
      // spec.  Production builds never arm it — sessions stay disarmed and
      // the sites compile to no-ops.
      fault_schedule_(util::fault::kCompiledIn
                          ? util::fault::Schedule::with_env(options.faults)
                          : util::fault::Schedule{}),
      threaded_(options.scheduling == Scheduling::kThreads),
      race_(threaded_ && options.termination == Termination::kFirstFinisher) {
  if (options_.warm_start.has_value() &&
      options_.warm_start->size() != prototype.num_variables()) {
    throw std::invalid_argument(
        "WalkerPoolOptions: warm_start has " +
        std::to_string(options_.warm_start->size()) + " values but \"" +
        std::string(prototype.name()) + "\" has " +
        std::to_string(prototype.num_variables()) + " variables");
  }
  report_.walkers.resize(k_);
}

std::size_t JobExecution::preferred_threads() const noexcept {
  if (!threaded_) return 1;
  const std::size_t hw = std::thread::hardware_concurrency() == 0
                             ? 2
                             : std::thread::hardware_concurrency();
  const std::size_t thread_cap =
      options_.max_threads == 0 ? k_ : std::min(options_.max_threads, k_);
  return std::min({k_, thread_cap, hw * 16});
}

void JobExecution::run_walker(std::size_t id) {
  WalkerOutcome& out = report_.walkers[id];
  out.walker_id = id;
  // Each walker owns its fault session, exactly like its RNG stream, so
  // probe counts are deterministic under every scheduling mode.
  util::fault::Session session(&fault_schedule_, id);
  // Crash containment: no exception may escape a walker body — an escape
  // under kThreads would std::terminate the process.  A throwing walker
  // (injected or genuine) is recorded as StopCause::kFailed with its
  // message; survivors keep walking and the termination policies
  // aggregate over them.
  try {
    auto problem = prototype_.clone();
    util::Xoshiro256 rng = streams_.stream(id);
    core::Hooks hooks = comm_hooks(options_.communication, comm_, id, k_,
                                   session.armed() ? &session : nullptr);
    if (options_.trace.enabled) {
      out.trace.walker_id = id;
      hooks.trace = &out.trace;
      hooks.trace_sample_period = options_.trace.sample_period;
    }
    if (session.armed()) hooks.fault = &session;
    hooks.heartbeat = options_.heartbeat;
    if (options_.sample_sink && options_.sample_sink_period != 0) {
      hooks.sample = [this, id](std::uint64_t iteration, csp::Cost cost) {
        options_.sample_sink(id, iteration, cost);
      };
      hooks.sample_period = options_.sample_sink_period;
    }
    if (options_.warm_start.has_value()) {
      hooks.warm_start = &*options_.warm_start;
    }
    // Each walker polls its own token copy: the caller's cancel/deadline,
    // chained with the pool's completion flag when racing.
    const core::StopToken token =
        race_ ? external_.also_cancelled_by(&stop_) : external_;
    core::Result result = engine_.solve(*problem, rng, token, hooks);
    if (result.stop_cause == core::StopCause::kCancel) {
      external_cancel_hit_.store(true, std::memory_order_relaxed);
    } else if (result.stop_cause == core::StopCause::kDeadline) {
      external_deadline_hit_.store(true, std::memory_order_relaxed);
    }
    if (race_ && result.solved && !result.interrupted) {
      // First walker to flip the flag is the winner; latecomers keep
      // their result but lose the race (exactly the paper's completion
      // protocol).
      bool expected = false;
      if (stop_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
        winner_.store(id, std::memory_order_release);
        solution_time_us_.store(watch_.elapsed_us(),
                                std::memory_order_release);
      }
    }
    out.result = std::move(result);
  } catch (const std::exception& e) {
    out.result = core::Result{};
    out.result.stop_cause = core::StopCause::kFailed;
    out.result.error = e.what();
  } catch (...) {
    out.result = core::Result{};
    out.result.stop_cause = core::StopCause::kFailed;
    out.result.error = "unknown exception";
  }
  out.injected_faults = session.fired();
}

// Between-walker short-circuit for any path that runs walkers one after
// another (sequential/emulated scheduling, and the threaded scheduler
// collapsed to a single thread): once a stop source has fired, the
// not-yet-started walkers are marked interrupted with zero iterations
// instead of each paying a full clone + initial cost evaluation.
void JobExecution::mark_rest_interrupted(std::size_t from,
                                         core::StopCause cause) {
  for (std::size_t rest = from; rest < k_; ++rest) {
    report_.walkers[rest].walker_id = rest;
    report_.walkers[rest].result.interrupted = true;
    report_.walkers[rest].result.stop_cause = cause;
  }
}

void JobExecution::run_walkers_one_by_one() {
  for (std::size_t id = 0; id < k_; ++id) {
    // Unthrottled check on purpose: the engine-rate throttle inside the
    // token's poll would let each walker start and run a stride of
    // iterations before noticing an already-expired deadline.
    const bool ext_cancelled = external_.cancelled();
    if (ext_cancelled || external_.deadline_expired()) {
      const core::StopCause cause = ext_cancelled
                                        ? core::StopCause::kCancel
                                        : core::StopCause::kDeadline;
      (ext_cancelled ? external_cancel_hit_ : external_deadline_hit_)
          .store(true, std::memory_order_relaxed);
      mark_rest_interrupted(id, cause);
      break;
    }
    // A collapsed threaded race already decided: the remaining walkers
    // would only run to their first poll and report kChained anyway —
    // record exactly that outcome without paying their start-up cost.
    if (race_ && stop_.load(std::memory_order_acquire)) {
      mark_rest_interrupted(id, core::StopCause::kChained);
      break;
    }
    run_walker(id);
  }
}

MultiWalkReport JobExecution::finalize() {
  // Cancellation wins the attribution tie when walkers observed both.
  const core::StopCause interrupt_cause =
      external_cancel_hit_.load(std::memory_order_relaxed)
          ? core::StopCause::kCancel
      : external_deadline_hit_.load(std::memory_order_relaxed)
          ? core::StopCause::kDeadline
          : core::StopCause::kNone;

  if (!threaded_ && options_.termination == Termination::kFirstFinisher) {
    MultiWalkReport resolved =
        resolve_emulated_race(std::move(report_.walkers));
    resolved.comm_publishes = comm_.publishes();
    resolved.elite_accepted = comm_.accepted();
    resolved.comm_adoptions = comm_.adoptions();
    resolved.interrupt_cause = interrupt_cause;
    resolved.interrupted = interrupt_cause != core::StopCause::kNone;
    return resolved;
  }

  MultiWalkReport report = std::move(report_);
  if (!threaded_) {
    // Emulated machine's wall clock: all walkers start together and the
    // pool stops when the slowest one exhausts its budget.
    double wall = 0.0;
    for (const auto& w : report.walkers) {
      wall = std::max(wall, w.result.stats.seconds);
    }
    report.wall_seconds = wall;
  } else {
    report.wall_seconds = watch_.elapsed_seconds();
  }

  if (race_) {
    const std::size_t win = winner_.load(std::memory_order_acquire);
    report.winner = win;
    report.solved = win != kNoWinner;
    if (report.solved) {
      report.best = report.walkers[win].result;
      report.time_to_solution_seconds =
          static_cast<double>(
              solution_time_us_.load(std::memory_order_acquire)) /
          1e6;
    } else {
      // Nobody flipped the flag: report the best configuration reached.  (A
      // walker may still have solved after losing the race; prefer any
      // solved result.)
      select_best_after_budget(report);
      report.time_to_solution_seconds = report.wall_seconds;
    }
  } else {
    // kBestAfterBudget (and the non-racing threaded case): the pool's wall
    // clock doubles as the time-to-result — also on cancelled or
    // deadline-expired runs, where `best` is the anytime answer and the
    // times say how long the pool actually had.
    select_best_after_budget(report);
    report.time_to_solution_seconds = report.wall_seconds;
  }
  report.comm_publishes = comm_.publishes();
  report.elite_accepted = comm_.accepted();
  report.comm_adoptions = comm_.adoptions();
  report.interrupt_cause = interrupt_cause;
  report.interrupted = interrupt_cause != core::StopCause::kNone;
  tally_failures(report);
  return report;
}

}  // namespace detail
}  // namespace cspls::parallel
