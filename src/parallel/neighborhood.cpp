#include "parallel/neighborhood.hpp"

#include <algorithm>

namespace cspls::parallel {

namespace {

/// Append `slot` unless it is already present or a self edge.
void push_unique(std::vector<std::size_t>& slots, std::size_t slot,
                 std::size_t self) {
  if (slot == self) return;
  if (std::find(slots.begin(), slots.end(), slot) != slots.end()) return;
  slots.push_back(slot);
}

}  // namespace

TorusShape torus_shape(std::size_t num_walkers) {
  TorusShape shape;
  if (num_walkers == 0) return shape;
  std::size_t rows = 1;
  for (std::size_t r = 1; r * r <= num_walkers; ++r) {
    if (num_walkers % r == 0) rows = r;
  }
  shape.rows = rows;
  shape.cols = num_walkers / rows;
  return shape;
}

std::size_t slot_count(Neighborhood graph, std::size_t num_walkers) {
  switch (graph) {
    case Neighborhood::kIsolated:
      return 0;
    case Neighborhood::kComplete:
      return 1;
    case Neighborhood::kRing:
    case Neighborhood::kTorus:
    case Neighborhood::kHypercube:
      return num_walkers;
  }
  return 0;
}

std::size_t publish_slot(Neighborhood graph, std::size_t walker,
                         std::size_t /*num_walkers*/) {
  return graph == Neighborhood::kComplete ? 0 : walker;
}

std::vector<std::size_t> adopt_slots(Neighborhood graph, std::size_t walker,
                                     std::size_t num_walkers) {
  std::vector<std::size_t> slots;
  if (num_walkers == 0) return slots;
  switch (graph) {
    case Neighborhood::kIsolated:
      break;

    case Neighborhood::kComplete:
      slots.push_back(0);
      break;

    case Neighborhood::kRing:
      // The PR-1 kRingElite wiring, preserved exactly: walker i reads its
      // predecessor's slot — including the single-walker self loop.
      slots.push_back((walker + num_walkers - 1) % num_walkers);
      break;

    case Neighborhood::kTorus: {
      const TorusShape shape = torus_shape(num_walkers);
      const std::size_t r = walker / shape.cols;
      const std::size_t c = walker % shape.cols;
      const auto id = [&shape](std::size_t row, std::size_t col) {
        return row * shape.cols + col;
      };
      push_unique(slots, id((r + shape.rows - 1) % shape.rows, c), walker);
      push_unique(slots, id((r + 1) % shape.rows, c), walker);
      push_unique(slots, id(r, (c + shape.cols - 1) % shape.cols), walker);
      push_unique(slots, id(r, (c + 1) % shape.cols), walker);
      break;
    }

    case Neighborhood::kHypercube:
      // Flip each address bit; partners beyond the pool are clipped (the
      // incomplete-hypercube fallback for non-power-of-two pools).  XOR is
      // symmetric and clipping preserves both endpoints' membership, so the
      // resulting graph stays undirected.
      for (std::size_t bit = 1; bit < num_walkers; bit <<= 1) {
        const std::size_t partner = walker ^ bit;
        if (partner < num_walkers) push_unique(slots, partner, walker);
      }
      break;
  }
  return slots;
}

}  // namespace cspls::parallel
