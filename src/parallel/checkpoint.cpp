#include "parallel/checkpoint.hpp"

#include <stdexcept>
#include <string>

#include "parallel/elite_pool.hpp"

namespace cspls::parallel {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument("parallel::PoolCheckpoint: " + message);
}

void require_known_members(const util::Json& json,
                           std::initializer_list<std::string_view> allowed,
                           std::string_view where) {
  for (const auto& [key, value] : json.members()) {
    (void)value;
    bool known = false;
    for (const std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      bad("unknown member '" + key + "' in " + std::string(where));
    }
  }
}

const util::Json& member(const util::Json& json, std::string_view name) {
  const util::Json* value = json.find(name);
  if (value == nullptr) bad("missing member '" + std::string(name) + "'");
  return *value;
}

std::string_view stage_name(PoolCheckpoint::WalkerStage stage) {
  switch (stage) {
    case PoolCheckpoint::WalkerStage::kPending:
      return "pending";
    case PoolCheckpoint::WalkerStage::kRunning:
      return "running";
    case PoolCheckpoint::WalkerStage::kDone:
      return "done";
  }
  return "pending";
}

PoolCheckpoint::WalkerStage stage_from_name(const std::string& name) {
  if (name == "pending") return PoolCheckpoint::WalkerStage::kPending;
  if (name == "running") return PoolCheckpoint::WalkerStage::kRunning;
  if (name == "done") return PoolCheckpoint::WalkerStage::kDone;
  bad("unknown walker stage '" + name + "'");
}

std::string_view cause_name(core::StopCause cause) {
  switch (cause) {
    case core::StopCause::kNone:
      return "none";
    case core::StopCause::kCancel:
      return "cancel";
    case core::StopCause::kChained:
      return "chained";
    case core::StopCause::kPreempted:
      return "preempted";
    case core::StopCause::kDeadline:
      return "deadline";
    case core::StopCause::kFailed:
      return "failed";
  }
  return "none";
}

core::StopCause cause_from_name(const std::string& name) {
  if (name == "none") return core::StopCause::kNone;
  if (name == "cancel") return core::StopCause::kCancel;
  if (name == "chained") return core::StopCause::kChained;
  if (name == "preempted") return core::StopCause::kPreempted;
  if (name == "deadline") return core::StopCause::kDeadline;
  if (name == "failed") return core::StopCause::kFailed;
  bad("unknown stop cause '" + name + "'");
}

util::Json int_array(const std::vector<int>& values) {
  util::Json array = util::Json::array();
  for (const int v : values) array.push_back(static_cast<std::int64_t>(v));
  return array;
}

std::vector<int> int_vector(const util::Json& json) {
  std::vector<int> out;
  out.reserve(json.elements().size());
  for (const util::Json& element : json.elements()) {
    out.push_back(static_cast<int>(element.as_int64()));
  }
  return out;
}

util::Json stats_to_json(const core::RunStats& stats) {
  util::Json json = util::Json::object();
  json.set("iterations", stats.iterations)
      .set("swaps", stats.swaps)
      .set("plateau_moves", stats.plateau_moves)
      .set("local_minima", stats.local_minima)
      .set("resets", stats.resets)
      .set("restarts", stats.restarts)
      .set("cost_evaluations", stats.cost_evaluations)
      .set("seconds", stats.seconds);
  return json;
}

core::RunStats stats_from_json(const util::Json& json) {
  if (!json.is_object()) bad("stats is not an object");
  require_known_members(json,
                        {"iterations", "swaps", "plateau_moves",
                         "local_minima", "resets", "restarts",
                         "cost_evaluations", "seconds"},
                        "stats");
  core::RunStats stats;
  stats.iterations = member(json, "iterations").as_uint64();
  stats.swaps = member(json, "swaps").as_uint64();
  stats.plateau_moves = member(json, "plateau_moves").as_uint64();
  stats.local_minima = member(json, "local_minima").as_uint64();
  stats.resets = member(json, "resets").as_uint64();
  stats.restarts = member(json, "restarts").as_uint64();
  stats.cost_evaluations = member(json, "cost_evaluations").as_uint64();
  stats.seconds = member(json, "seconds").as_double();
  return stats;
}

util::Json samples_to_json(const std::vector<core::TraceSample>& samples) {
  util::Json array = util::Json::array();
  for (const core::TraceSample& sample : samples) {
    util::Json pair = util::Json::array();
    pair.push_back(sample.iteration);
    pair.push_back(static_cast<std::int64_t>(sample.cost));
    array.push_back(std::move(pair));
  }
  return array;
}

std::vector<core::TraceSample> samples_from_json(const util::Json& json) {
  std::vector<core::TraceSample> samples;
  for (const util::Json& pair : json.elements()) {
    if (pair.elements().size() != 2) bad("trace sample must be [iter, cost]");
    samples.push_back(core::TraceSample{pair.elements()[0].as_uint64(),
                                        pair.elements()[1].as_int64()});
  }
  return samples;
}

util::Json result_to_json(const core::Result& result) {
  util::Json json = util::Json::object();
  json.set("solved", result.solved)
      .set("cost", static_cast<std::int64_t>(result.cost))
      .set("solution", int_array(result.solution))
      .set("stats", stats_to_json(result.stats))
      .set("interrupted", result.interrupted)
      .set("stop_cause", cause_name(result.stop_cause))
      .set("error", result.error);
  return json;
}

core::Result result_from_json(const util::Json& json) {
  if (!json.is_object()) bad("result is not an object");
  require_known_members(json,
                        {"solved", "cost", "solution", "stats", "interrupted",
                         "stop_cause", "error"},
                        "result");
  core::Result result;
  result.solved = member(json, "solved").as_bool();
  result.cost = member(json, "cost").as_int64();
  result.solution = int_vector(member(json, "solution"));
  result.stats = stats_from_json(member(json, "stats"));
  result.interrupted = member(json, "interrupted").as_bool();
  result.stop_cause = cause_from_name(member(json, "stop_cause").as_string());
  result.error = member(json, "error").as_string();
  return result;
}

util::Json trace_to_json(const core::WalkerTrace& trace) {
  util::Json json = util::Json::object();
  json.set("walker_id", static_cast<std::uint64_t>(trace.walker_id))
      .set("solved", trace.solved)
      .set("interrupted", trace.interrupted)
      .set("iterations", trace.iterations)
      .set("resets", trace.resets)
      .set("restarts", trace.restarts)
      .set("local_minima", trace.local_minima)
      .set("seconds", trace.seconds)
      .set("best_cost", static_cast<std::int64_t>(trace.best_cost))
      .set("cost_samples", samples_to_json(trace.cost_samples));
  return json;
}

core::WalkerTrace trace_from_json(const util::Json& json) {
  if (!json.is_object()) bad("trace is not an object");
  require_known_members(json,
                        {"walker_id", "solved", "interrupted", "iterations",
                         "resets", "restarts", "local_minima", "seconds",
                         "best_cost", "cost_samples"},
                        "trace");
  core::WalkerTrace trace;
  trace.walker_id =
      static_cast<std::size_t>(member(json, "walker_id").as_uint64());
  trace.solved = member(json, "solved").as_bool();
  trace.interrupted = member(json, "interrupted").as_bool();
  trace.iterations = member(json, "iterations").as_uint64();
  trace.resets = member(json, "resets").as_uint64();
  trace.restarts = member(json, "restarts").as_uint64();
  trace.local_minima = member(json, "local_minima").as_uint64();
  trace.seconds = member(json, "seconds").as_double();
  trace.best_cost = member(json, "best_cost").as_int64();
  trace.cost_samples = samples_from_json(member(json, "cost_samples"));
  return trace;
}

}  // namespace

util::Json PoolCheckpoint::to_json() const {
  util::Json json = util::Json::object();
  json.set("schema", kSchema);
  util::Json walkers_json = util::Json::array();
  for (const WalkerEntry& entry : walkers) {
    util::Json entry_json = util::Json::object();
    entry_json.set("stage", stage_name(entry.stage));
    switch (entry.stage) {
      case WalkerStage::kPending:
        break;
      case WalkerStage::kRunning:
        entry_json.set("checkpoint", entry.checkpoint.to_json());
        break;
      case WalkerStage::kDone:
        entry_json.set("result", result_to_json(entry.result));
        entry_json.set("trace", trace_to_json(entry.trace));
        entry_json.set("injected_faults", entry.injected_faults);
        break;
    }
    walkers_json.push_back(std::move(entry_json));
  }
  json.set("walkers", std::move(walkers_json));
  util::Json elite_json = util::Json::array();
  for (const EliteSlot& slot : elite) {
    util::Json slot_json = util::Json::object();
    slot_json.set("has_entry", slot.has_entry)
        .set("cost", static_cast<std::int64_t>(slot.cost))
        .set("values", int_array(slot.values))
        .set("tick", slot.tick)
        .set("publisher", slot.publisher)
        .set("publishes", slot.publishes)
        .set("accepted", slot.accepted);
    elite_json.push_back(std::move(slot_json));
  }
  json.set("elite", std::move(elite_json));
  json.set("comm_clock", comm_clock);
  json.set("comm_adoptions", comm_adoptions);
  return json;
}

PoolCheckpoint PoolCheckpoint::from_json(const util::Json& json) {
  if (!json.is_object()) bad("document is not an object");
  require_known_members(
      json, {"schema", "walkers", "elite", "comm_clock", "comm_adoptions"},
      "pool checkpoint");
  if (member(json, "schema").as_string() != kSchema) {
    bad("unsupported schema '" + member(json, "schema").as_string() + "'");
  }

  PoolCheckpoint cp;
  for (const util::Json& entry_json : member(json, "walkers").elements()) {
    if (!entry_json.is_object()) bad("walker entry is not an object");
    WalkerEntry entry;
    entry.stage = stage_from_name(member(entry_json, "stage").as_string());
    switch (entry.stage) {
      case WalkerStage::kPending:
        require_known_members(entry_json, {"stage"}, "pending walker");
        break;
      case WalkerStage::kRunning:
        require_known_members(entry_json, {"stage", "checkpoint"},
                              "running walker");
        entry.checkpoint =
            core::Checkpoint::from_json(member(entry_json, "checkpoint"));
        break;
      case WalkerStage::kDone:
        require_known_members(
            entry_json, {"stage", "result", "trace", "injected_faults"},
            "done walker");
        entry.result = result_from_json(member(entry_json, "result"));
        entry.trace = trace_from_json(member(entry_json, "trace"));
        entry.injected_faults =
            member(entry_json, "injected_faults").as_uint64();
        break;
    }
    cp.walkers.push_back(std::move(entry));
  }
  if (cp.walkers.empty()) bad("no walker entries");

  for (const util::Json& slot_json : member(json, "elite").elements()) {
    if (!slot_json.is_object()) bad("elite slot is not an object");
    require_known_members(slot_json,
                          {"has_entry", "cost", "values", "tick", "publisher",
                           "publishes", "accepted"},
                          "elite slot");
    EliteSlot slot;
    slot.has_entry = member(slot_json, "has_entry").as_bool();
    slot.cost = member(slot_json, "cost").as_int64();
    slot.values = int_vector(member(slot_json, "values"));
    slot.tick = member(slot_json, "tick").as_uint64();
    slot.publisher = member(slot_json, "publisher").as_uint64();
    slot.publishes = member(slot_json, "publishes").as_uint64();
    slot.accepted = member(slot_json, "accepted").as_uint64();
    cp.elite.push_back(std::move(slot));
  }
  cp.comm_clock = member(json, "comm_clock").as_uint64();
  cp.comm_adoptions = member(json, "comm_adoptions").as_uint64();
  return cp;
}

}  // namespace cspls::parallel
