// Neighborhood — who talks to whom, as a pure function of walker ids.
//
// The communication layer of parallel::WalkerPool is split into two
// orthogonal concepts (the design space of the paper's follow-ups: the X10
// inter-place study and the bounded-degree Cell BE study):
//
//   * a Neighborhood (this header): the directed exchange graph, mapping
//     each walker to the slot it publishes into and the slots it may adopt
//     from — nothing here knows *what* flows over the edges;
//   * an ExchangeStrategy (exchange.hpp): what flows over those edges and
//     when.
//
// Slot model: a pool of n walkers owns `slot_count` exchange slots.  Under
// kComplete there is a single shared slot (the paper's future-work global
// pool); every other graph gives walker i its own slot i, and `adopt_slots`
// returns the publish slots of walker i's in-neighbours.  All functions are
// pure and total for num_walkers >= 1 — the same graph is recomputed
// identically by every walker, so no graph state is ever shared.
//
// Built-in graphs:
//   kIsolated   no edges — the paper's independent multi-walk;
//   kComplete   one shared slot, all-to-all through a blackboard;
//   kRing       directed ring: walker i adopts from its predecessor i-1
//               (the PR-1 kRingElite wiring, byte-for-byte);
//   kTorus      2-D wraparound grid (rows x cols, rows = the largest
//               divisor of n at most sqrt(n)), 4-neighbourhood with
//               duplicate/self edges removed — degenerates to a
//               bidirectional ring when n is prime;
//   kHypercube  binary hypercube: walker i adopts from i ^ (1 << b) for
//               every bit b — degree log2(n) when n is a power of two;
//               for other n the out-of-range partners are clipped
//               (the standard incomplete-hypercube fallback).
#pragma once

#include <cstddef>
#include <vector>

namespace cspls::parallel {

enum class Neighborhood {
  kIsolated,   ///< no edges (the paper's independent scheme)
  kComplete,   ///< one shared slot: all-to-all blackboard
  kRing,       ///< directed ring; adopt from the predecessor
  kTorus,      ///< 2-D wraparound grid, 4-neighbourhood
  kHypercube,  ///< binary hypercube, degree log2(n)
};

/// Shape of the torus for a given pool size: rows is the largest divisor of
/// num_walkers that is at most sqrt(num_walkers) (1 x n for prime n).
struct TorusShape {
  std::size_t rows = 1;
  std::size_t cols = 1;

  [[nodiscard]] bool operator==(const TorusShape&) const = default;
};

[[nodiscard]] TorusShape torus_shape(std::size_t num_walkers);

/// Number of exchange slots a pool of `num_walkers` owns under `graph`:
/// 0 for kIsolated, 1 for kComplete, num_walkers otherwise.
[[nodiscard]] std::size_t slot_count(Neighborhood graph,
                                     std::size_t num_walkers);

/// The slot walker `walker` publishes into (0 for kComplete, own id
/// otherwise).  Meaningless under kIsolated (no slots exist).
[[nodiscard]] std::size_t publish_slot(Neighborhood graph, std::size_t walker,
                                       std::size_t num_walkers);

/// The slots walker `walker` may adopt from: the publish slots of its
/// in-neighbours, in deterministic order, duplicates and (except for the
/// single-walker ring) self edges removed.  Empty under kIsolated.
[[nodiscard]] std::vector<std::size_t> adopt_slots(Neighborhood graph,
                                                   std::size_t walker,
                                                   std::size_t num_walkers);

}  // namespace cspls::parallel
