// PoolCheckpoint — a whole WalkerPool run suspended at safe points, as one
// serializable value.
//
// When a run is cooperatively preempted (WalkerPoolOptions::preempt), every
// walker drains to its next safe point and the pool assembles:
//
//   * one entry per walker — mid-run walkers carry a core::Checkpoint
//     (exact-resume state), already-finished walkers carry their final
//     Result/trace verbatim, and never-started walkers are pending (they
//     run from their untouched RNG stream on resume);
//   * the communication state — every ElitePool slot's entry and counters,
//     the pool-wide exchange clock and the adoption counter — so a resumed
//     run's exchange traffic and counters continue exactly where they
//     stopped.
//
// Resuming a pool from its checkpoint (WalkerPoolOptions::resume) then
// produces a MultiWalkReport byte-identical (timing fields excepted) to the
// run that was never preempted — the property the serving tier's
// running-job preemption and the distributed pool's walker migration both
// build on.  The JSON schema is strict and versioned
// ("cspls-pool-checkpoint/1"): unknown members reject.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/result.hpp"
#include "core/trace.hpp"
#include "csp/cost.hpp"
#include "util/json.hpp"

namespace cspls::parallel {

struct PoolCheckpoint {
  static constexpr std::string_view kSchema = "cspls-pool-checkpoint/1";

  enum class WalkerStage : std::uint8_t {
    kPending,  ///< never started; resume runs it from its stream's start
    kRunning,  ///< suspended mid-run; `checkpoint` is its exact-resume state
    kDone,     ///< finished before the preemption; `result`/`trace` are final
  };

  struct WalkerEntry {
    WalkerStage stage = WalkerStage::kPending;
    core::Checkpoint checkpoint;  ///< kRunning only
    core::Result result;          ///< kDone only
    core::WalkerTrace trace;      ///< kDone only (empty when untraced)
    std::uint64_t injected_faults = 0;  ///< kDone only

    [[nodiscard]] bool operator==(const WalkerEntry&) const = default;
  };

  /// One ElitePool slot, verbatim (see ElitePool::Snapshot).
  struct EliteSlot {
    bool has_entry = false;
    csp::Cost cost = 0;
    std::vector<int> values;
    std::uint64_t tick = 0;
    std::uint64_t publisher = 0;  ///< ElitePool::kNoPublisher when none
    std::uint64_t publishes = 0;
    std::uint64_t accepted = 0;

    [[nodiscard]] bool operator==(const EliteSlot&) const = default;
  };

  std::vector<WalkerEntry> walkers;  ///< indexed by walker id
  std::vector<EliteSlot> elite;      ///< empty when communication is off
  std::uint64_t comm_clock = 0;
  std::uint64_t comm_adoptions = 0;

  [[nodiscard]] util::Json to_json() const;
  /// Strict decode: rejects a wrong/missing schema tag, unknown members,
  /// missing members and malformed walker entries.
  [[nodiscard]] static PoolCheckpoint from_json(const util::Json& json);

  [[nodiscard]] bool operator==(const PoolCheckpoint&) const = default;
};

}  // namespace cspls::parallel
