// Name-based factory over all benchmark models, used by benches, examples
// and tests to iterate "every problem in the suite".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

/// Canonical benchmark names, paper benchmarks first:
/// "costas", "all-interval", "perfect-square", "magic-square",
/// then the additional models from the original distribution:
/// "queens", "langford", "partition", "alpha".
[[nodiscard]] const std::vector<std::string>& problem_names();

/// The four benchmarks evaluated by the paper (Figures 1-3).
[[nodiscard]] const std::vector<std::string>& paper_benchmarks();

/// True iff `name` is one of problem_names().
[[nodiscard]] bool is_known_problem(const std::string& name);

/// "" when (name, size) is instantiable; otherwise the diagnostic
/// make_problem would throw — unknown names list every valid name,
/// unusable sizes say what the problem expects.  Shared with
/// problems::parse_spec so the CLI, JSON API and benches reject bad
/// instances with identical messages.
[[nodiscard]] std::string validate_instance(const std::string& name,
                                            std::size_t size);

/// Instantiate a problem by name.
///
/// `size` semantics per problem:
///   costas/queens: order n;  all-interval: series length n;
///   magic-square: board side n;  langford: number count n;
///   partition: n (multiple of 4);  alpha: ignored (fixed 26 letters);
///   perfect-square: quadtree split count (side 32), or 0 for the
///   Duijvestijn order-21 instance (side 112).
/// `seed` only affects generated instances (perfect-square quadtree).
///
/// Throws std::invalid_argument with the validate_instance diagnostic on
/// an unknown name or an unusable size.
[[nodiscard]] std::unique_ptr<csp::Problem> make_problem(
    const std::string& name, std::size_t size, std::uint64_t seed = 0);

/// A reasonable quick-run size for each problem (used by tests/examples).
[[nodiscard]] std::size_t default_size(const std::string& name);

/// The scaled-down size used by the simulation benches (DESIGN.md §4).
[[nodiscard]] std::size_t bench_size(const std::string& name);

/// The paper's own experiment scale (minutes-to-hours sequential!).
[[nodiscard]] std::size_t paper_size(const std::string& name);

}  // namespace cspls::problems
