#include "problems/alpha.hpp"

#include <numeric>
#include <sstream>

namespace cspls::problems {

using csp::Cost;

namespace {

constexpr const char* kWords[] = {
    "ballet", "cello",     "concert", "flute", "fugue",
    "glee",   "jazz",      "lyre",    "oboe",  "opera",
    "polka",  "quartet",   "saxophone", "scale", "solo",
    "song",   "soprano",   "theme",   "violin", "waltz"};

std::vector<int> canonical_values() {
  std::vector<int> v(26);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

}  // namespace

std::array<int, 26> Alpha::reference_solution() noexcept {
  // The published solution of the classic puzzle (A..Z).  The targets below
  // are *derived* from it, so the instance is solvable by construction.
  return {5,  13, 9,  16, 20, 4,  24, 21, 25, 17, 23, 2,  8,
          12, 10, 19, 7,  11, 15, 3,  1,  26, 6,  22, 18, 14};
}

Alpha::Alpha()
    : PermutationProblem(canonical_values()),
      letter_eqs_(26),
      cand_(26, 0) {
  const std::array<int, 26> ref = reference_solution();
  for (const char* word : kWords) {
    words_.emplace_back(word);
    std::array<int, 26> coeff{};
    Cost target = 0;
    for (const char* p = word; *p; ++p) {
      const auto letter = static_cast<std::size_t>(*p - 'a');
      ++coeff[letter];
      target += ref[letter];
    }
    const std::size_t eq = coeffs_.size();
    coeffs_.push_back(coeff);
    targets_.push_back(target);
    for (std::size_t letter = 0; letter < 26; ++letter) {
      if (coeff[letter] > 0) letter_eqs_[letter].push_back(eq);
    }
  }
  sums_.assign(coeffs_.size(), 0);
  eq_err_.assign(coeffs_.size(), 0);
}

const std::string& Alpha::name() const noexcept { return name_; }

std::string Alpha::instance_description() const {
  std::ostringstream os;
  os << "alpha cipher (" << words_.size() << " equations, 26 letters)";
  return os.str();
}

std::unique_ptr<csp::Problem> Alpha::clone() const {
  return std::make_unique<Alpha>(*this);
}

Cost Alpha::on_rebind() {
  Cost cost = 0;
  for (std::size_t e = 0; e < coeffs_.size(); ++e) {
    Cost sum = 0;
    for (std::size_t letter = 0; letter < 26; ++letter) {
      sum += static_cast<Cost>(coeffs_[e][letter]) * value(letter);
    }
    sums_[e] = sum;
    cost += equation_error(e);
  }
  return cost;
}

Cost Alpha::full_cost() const {
  Cost cost = 0;
  for (std::size_t e = 0; e < coeffs_.size(); ++e) {
    Cost sum = 0;
    for (std::size_t letter = 0; letter < 26; ++letter) {
      sum += static_cast<Cost>(coeffs_[e][letter]) * value(letter);
    }
    const Cost d = sum - targets_[e];
    cost += d < 0 ? -d : d;
  }
  return cost;
}

Cost Alpha::cost_on_variable(std::size_t i) const {
  Cost err = 0;
  for (const std::size_t e : letter_eqs_[i]) err += equation_error(e);
  return err;
}

Cost Alpha::cost_if_swap(std::size_t i, std::size_t j) const {
  const Cost d = static_cast<Cost>(value(j)) - static_cast<Cost>(value(i));
  if (d == 0) return total_cost();
  Cost delta = 0;
  // Equations containing i gain (cj - ci_coeff...) — walk both lists and
  // handle the overlap once via the coefficient difference.
  for (const std::size_t e : letter_eqs_[i]) {
    const Cost change =
        d * (static_cast<Cost>(coeffs_[e][i]) - static_cast<Cost>(coeffs_[e][j]));
    if (change == 0) continue;
    const Cost s = sums_[e] + change - targets_[e];
    delta += (s < 0 ? -s : s) - equation_error(e);
  }
  for (const std::size_t e : letter_eqs_[j]) {
    if (coeffs_[e][i] > 0) continue;  // already handled above
    const Cost change = -d * static_cast<Cost>(coeffs_[e][j]);
    const Cost s = sums_[e] + change - targets_[e];
    delta += (s < 0 ? -s : s) - equation_error(e);
  }
  return total_cost() + delta;
}

Cost Alpha::did_swap(std::size_t i, std::size_t j) {
  // values() are post-swap; letter i's value changed by value(i) - value(j)
  // (its new value minus its old one, which is now at j).
  const Cost d = static_cast<Cost>(value(i)) - static_cast<Cost>(value(j));
  for (const std::size_t e : letter_eqs_[i]) {
    sums_[e] += d * (static_cast<Cost>(coeffs_[e][i]) -
                     static_cast<Cost>(coeffs_[e][j]));
  }
  for (const std::size_t e : letter_eqs_[j]) {
    if (coeffs_[e][i] > 0) continue;
    sums_[e] += -d * static_cast<Cost>(coeffs_[e][j]);
  }
  Cost cost = 0;
  for (std::size_t e = 0; e < coeffs_.size(); ++e) cost += equation_error(e);
  return cost;
}

void Alpha::cost_on_all_variables(std::span<Cost> out) const {
  // Equation errors once (~20 of them), then one pass over the (sparse)
  // letter -> equation index — instead of 26 scalar calls re-deriving the
  // same equation errors.
  for (std::size_t e = 0; e < sums_.size(); ++e) {
    eq_err_[e] = equation_error(e);
  }
  for (std::size_t letter = 0; letter < out.size(); ++letter) {
    Cost err = 0;
    for (const std::size_t e : letter_eqs_[letter]) err += eq_err_[e];
    out[letter] = err;
  }
}

std::uint64_t Alpha::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                   std::size_t& best_j, Cost& best_cost,
                                   std::size_t& ties) const {
  // cost_if_swap is already O(equations containing either letter); the bulk
  // win here is devirtualizing the candidate loop.
  const std::size_t nn = num_variables();
  Cost* const cand = cand_.data();
  for (std::size_t j = 0; j < nn; ++j) {
    cand[j] = j == x ? csp::kInfiniteCost : Alpha::cost_if_swap(x, j);
  }
  csp::SwapScan scan(nn);
  scan.feed_lanes(0, std::span<const Cost>(cand, nn), x, rng);
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return nn - 1;
}

bool Alpha::verify(std::span<const int> vals) const {
  if (vals.size() != 26) return false;
  if (!csp::is_permutation_of(vals, canonical_values())) return false;
  for (std::size_t e = 0; e < coeffs_.size(); ++e) {
    Cost sum = 0;
    for (std::size_t letter = 0; letter < 26; ++letter) {
      sum += static_cast<Cost>(coeffs_[e][letter]) * vals[letter];
    }
    if (sum != targets_[e]) return false;
  }
  return true;
}

csp::TuningHints Alpha::tuning() const noexcept {
  csp::TuningHints hints;
  // Swept empirically: the linear system rewards *long* freezes (letters in
  // many equations must stay out of the spotlight long enough for the rest
  // to settle) plus full plateau walking.
  hints.freeze_loc_min = 6;
  hints.freeze_swap = 3;
  hints.reset_limit = 12;
  hints.reset_fraction = 0.1;
  hints.restart_limit = 300'000;
  hints.prob_accept_plateau = 1.0;
  hints.prob_accept_local_min = 0.0;
  return hints;
}

}  // namespace cspls::problems
