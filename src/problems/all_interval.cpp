#include "problems/all_interval.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "util/simd.hpp"

namespace cspls::problems {

using csp::Cost;
namespace simd = util::simd;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}
}  // namespace

AllInterval::AllInterval(std::size_t n)
    : PermutationProblem(canonical_values(n)), n_(n), occ_(n, 0),
      pair_diff_(n, 0), cand_cost_(n, 0) {
  if (n < 2) {
    throw std::invalid_argument("AllInterval: n must be >= 2");
  }
}

const std::string& AllInterval::name() const noexcept { return name_; }

std::string AllInterval::instance_description() const {
  std::ostringstream os;
  os << "all-interval n=" << n_;
  return os.str();
}

std::unique_ptr<csp::Problem> AllInterval::clone() const {
  return std::make_unique<AllInterval>(*this);
}

int AllInterval::diff_at(std::size_t p) const noexcept {
  return std::abs(value(p + 1) - value(p));
}

int AllInterval::diff_at_swapped(std::size_t p, std::size_t i,
                                 std::size_t j) const noexcept {
  const auto at = [&](std::size_t pos) {
    if (pos == i) return value(j);
    if (pos == j) return value(i);
    return value(pos);
  };
  return std::abs(at(p + 1) - at(p));
}

std::size_t AllInterval::affected_pairs(std::size_t i, std::size_t j,
                                        std::size_t out[4]) const noexcept {
  std::size_t count = 0;
  const auto push = [&](std::size_t p) {
    if (p >= n_ - 1) return;  // also rejects p == size_t(-1) underflow
    for (std::size_t k = 0; k < count; ++k) {
      if (out[k] == p) return;
    }
    out[count++] = p;
  };
  push(i - 1);
  push(i);
  push(j - 1);
  push(j);
  return count;
}

Cost AllInterval::on_rebind() {
  std::fill(occ_.begin(), occ_.end(), 0);
  Cost cost = 0;
  for (std::size_t p = 0; p + 1 < n_; ++p) {
    const int d = diff_at(p);
    pair_diff_[p] = d;
    if (occ_[static_cast<std::size_t>(d)]++ >= 1) ++cost;
  }
  return cost;
}

Cost AllInterval::full_cost() const {
  std::vector<int> occ(n_, 0);
  Cost cost = 0;
  for (std::size_t p = 0; p + 1 < n_; ++p) {
    const int d = diff_at(p);
    if (occ[static_cast<std::size_t>(d)]++ >= 1) ++cost;
  }
  return cost;
}

Cost AllInterval::cost_on_variable(std::size_t i) const {
  // Blame position i for every surplus occurrence of an adjacent difference.
  Cost err = 0;
  if (i > 0) {
    const int d = diff_at(i - 1);
    err += std::max(0, occ_[static_cast<std::size_t>(d)] - 1);
  }
  if (i + 1 < n_) {
    const int d = diff_at(i);
    err += std::max(0, occ_[static_cast<std::size_t>(d)] - 1);
  }
  return err;
}

Cost AllInterval::cost_if_swap(std::size_t i, std::size_t j) const {
  std::size_t pairs[4];
  const std::size_t count = affected_pairs(i, j, pairs);

  Cost delta = 0;
  int removed[4];
  int added[4];
  // Remove the old differences of the affected pairs...
  for (std::size_t k = 0; k < count; ++k) {
    const int d = diff_at(pairs[k]);
    removed[k] = d;
    if (--occ_[static_cast<std::size_t>(d)] >= 1) --delta;
  }
  // ...and account the post-swap differences.
  for (std::size_t k = 0; k < count; ++k) {
    const int d = diff_at_swapped(pairs[k], i, j);
    added[k] = d;
    if (occ_[static_cast<std::size_t>(d)]++ >= 1) ++delta;
  }
  // Roll back the probe.
  for (std::size_t k = 0; k < count; ++k) {
    --occ_[static_cast<std::size_t>(added[k])];
    ++occ_[static_cast<std::size_t>(removed[k])];
  }
  return total_cost() + delta;
}

Cost AllInterval::did_swap(std::size_t i, std::size_t j) {
  // values() already hold the post-swap configuration; the pre-swap
  // differences of the affected pairs are re-derivable by swapping back.
  std::size_t pairs[4];
  const std::size_t count = affected_pairs(i, j, pairs);
  Cost delta = 0;
  for (std::size_t k = 0; k < count; ++k) {
    // diff_at_swapped now yields the *old* difference (swap is involutive).
    const int d = diff_at_swapped(pairs[k], i, j);
    if (--occ_[static_cast<std::size_t>(d)] >= 1) --delta;
  }
  for (std::size_t k = 0; k < count; ++k) {
    const int d = diff_at(pairs[k]);
    pair_diff_[pairs[k]] = d;
    if (occ_[static_cast<std::size_t>(d)]++ >= 1) ++delta;
  }
  return total_cost() + delta;
}

void AllInterval::cost_on_all_variables(std::span<Cost> out) const {
  // One pass over the n-1 adjacent differences (maintained incrementally by
  // did_swap/on_rebind), charging each surplus to both endpoints — the
  // scalar projection without n virtual calls.
  std::fill(out.begin(), out.end(), Cost{0});
  for (std::size_t p = 0; p + 1 < n_; ++p) {
    const int c = occ_[static_cast<std::size_t>(pair_diff_[p])];
    if (c >= 2) {
      const Cost s = c - 1;
      out[p] += s;
      out[p + 1] += s;
    }
  }
}

namespace {
inline int abs_diff(int a, int b) noexcept { return a > b ? a - b : b - a; }
}  // namespace

std::uint64_t AllInterval::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                         std::size_t& best_j, Cost& best_cost,
                                         std::size_t& ties) const {
  // Probe-and-undo on the occurrence table: the <= 4 old differences come
  // from pair_diff_ (rebuilt once per call), only the <= 4 hypothetical ones
  // are computed per candidate, and the surplus marginals telescope so the
  // fused retract/assert pass yields the exact cost_if_swap value.  The
  // x-side flags are loop-invariant and the j-side ones fail only at the two
  // border candidates, so the inner loop runs effectively branch-free.
  const auto vals = values();
  const Cost total = total_cost();
  const int vx = vals[x];
  const bool x_has_left = x > 0;
  const bool x_has_right = x + 1 < n_;
  const int vxl = x_has_left ? vals[x - 1] : 0;
  const int vxr = x_has_right ? vals[x + 1] : 0;
  const int d1 = x_has_left ? pair_diff_[x - 1] : 0;
  const int d2 = x_has_right ? pair_diff_[x] : 0;
  int* const occ = occ_.data();

  // Fold the candidate-independent retraction of x's pairs into the table
  // for the compute pass (restored before the generic probes run and before
  // returning).  The surplus marginals telescope, so every candidate's
  // delta is delta0 plus its own j-side ops evaluated on the folded counts —
  // and all corrections against the x-side removals vanish from the inner
  // loop.
  Cost delta0 = 0;
  if (x_has_left) delta0 -= (--occ[d1] >= 1);
  if (x_has_right) delta0 -= (--occ[d2] >= 1);
  const auto restore_x = [&] {
    if (x_has_left) ++occ[d1];
    if (x_has_right) ++occ[d2];
  };

  // Phase 1: every candidate's total cost into cand_cost_ — pure compute,
  // no tie-break branches interleaved, so loads pipeline across candidates.
  // The kernel is specialized on the (call-constant) x-boundary flags so
  // dead terms fold away.  Ops run in a fixed order (remove d3, d4; add
  // a1..a4) and each marginal corrects its slot count by the equality-folded
  // net of the earlier ops — read-only and branch-free per candidate.
  const Cost base = total + delta0;
  Cost* const cand = cand_cost_.data();
  const std::size_t lo = x > 0 ? x - 1 : 0;            // specials: x and its
  const std::size_t hi = x + 1 < n_ ? x + 1 : n_ - 1;  // neighbours + borders
  const auto run = [&](auto xl_tag, auto xr_tag, std::size_t jb,
                       std::size_t je) {
    constexpr bool kXL = decltype(xl_tag)::value;
    constexpr bool kXR = decltype(xr_tag)::value;
    for (std::size_t j = jb; j < je; ++j) {
      if (j >= lo && j <= hi) continue;  // filled by the generic probe below
      const int vj = vals[j];
      const int vjl = vals[j - 1];
      const int vjr = vals[j + 1];
      const int d3 = pair_diff_[j - 1];
      const int d4 = pair_diff_[j];
      const int a3 = abs_diff(vx, vjl);
      const int a4 = abs_diff(vjr, vx);
      Cost delta = 0;
      delta -= (occ[d3] >= 2);
      delta -= (occ[d4] - (d4 == d3) >= 2);
      int a1 = 0, a2 = 0;
      if constexpr (kXL) {
        a1 = abs_diff(vj, vxl);
        delta += (occ[a1] - (a1 == d3) - (a1 == d4) >= 1);
      }
      if constexpr (kXR) {
        a2 = abs_diff(vxr, vj);
        delta += (occ[a2] - (a2 == d3) - (a2 == d4) + (kXL && a2 == a1) >=
                  1);
      }
      delta += (occ[a3] - (a3 == d3) - (a3 == d4) + (kXL && a3 == a1) +
                    (kXR && a3 == a2) >=
                1);
      delta += (occ[a4] - (a4 == d3) - (a4 == d4) + (kXL && a4 == a1) +
                    (kXR && a4 == a2) + (a4 == a3) >=
                1);
      cand[j] = base + delta;
    }
  };
  // SIMD phase-1: eight candidates per step.  Comparisons yield -1/0 lane
  // masks, so every scalar equality fold above maps to mask arithmetic
  // (`t + cmp_eq` subtracts one per equal lane, `t - cmp_eq` adds) and the
  // thresholds map to `delta ± cmp_ge` — the exact integer arithmetic of the
  // scalar kernel, lane-parallel.  Blocks run over the whole interior
  // including x's window: those lanes are overwritten by the scalar probes
  // below, and all occurrence reads stay in-bounds, so skipping them is a
  // branch the vector loop doesn't need.  Tail candidates fall back to the
  // scalar kernel.
  const auto run_simd = [&](auto xl_tag, auto xr_tag) {
    constexpr bool kXL = decltype(xl_tag)::value;
    constexpr bool kXR = decltype(xr_tag)::value;
    constexpr std::size_t kL = simd::i32x8::kLanes;
    const auto one = simd::i32x8::broadcast(1);
    const auto two = simd::i32x8::broadcast(2);
    const auto vxb = simd::i32x8::broadcast(vx);
    const auto vxlb = simd::i32x8::broadcast(vxl);
    const auto vxrb = simd::i32x8::broadcast(vxr);
    const auto baseb = simd::i64x4::broadcast(base);
    std::size_t j = 1;
    for (; j + kL + 1 <= n_; j += kL) {
      const auto vj = simd::i32x8::load(vals.data() + j);
      const auto vjl = simd::i32x8::load(vals.data() + j - 1);
      const auto vjr = simd::i32x8::load(vals.data() + j + 1);
      const auto d3 = simd::i32x8::load(pair_diff_.data() + j - 1);
      const auto d4 = simd::i32x8::load(pair_diff_.data() + j);
      auto delta = simd::cmp_ge(simd::i32x8::gather(occ, d3), two);
      delta = delta + simd::cmp_ge(
                          simd::i32x8::gather(occ, d4) + simd::cmp_eq(d4, d3),
                          two);
      [[maybe_unused]] simd::i32x8 a1{};
      [[maybe_unused]] simd::i32x8 a2{};
      if constexpr (kXL) {
        a1 = simd::abs(vj - vxlb);
        const auto t1 = simd::i32x8::gather(occ, a1) + simd::cmp_eq(a1, d3) +
                        simd::cmp_eq(a1, d4);
        delta = delta - simd::cmp_ge(t1, one);
      }
      if constexpr (kXR) {
        a2 = simd::abs(vxrb - vj);
        auto t2 = simd::i32x8::gather(occ, a2) + simd::cmp_eq(a2, d3) +
                  simd::cmp_eq(a2, d4);
        if constexpr (kXL) t2 = t2 - simd::cmp_eq(a2, a1);
        delta = delta - simd::cmp_ge(t2, one);
      }
      const auto a3 = simd::abs(vxb - vjl);
      auto t3 = simd::i32x8::gather(occ, a3) + simd::cmp_eq(a3, d3) +
                simd::cmp_eq(a3, d4);
      if constexpr (kXL) t3 = t3 - simd::cmp_eq(a3, a1);
      if constexpr (kXR) t3 = t3 - simd::cmp_eq(a3, a2);
      delta = delta - simd::cmp_ge(t3, one);
      const auto a4 = simd::abs(vjr - vxb);
      auto t4 = simd::i32x8::gather(occ, a4) + simd::cmp_eq(a4, d3) +
                simd::cmp_eq(a4, d4);
      if constexpr (kXL) t4 = t4 - simd::cmp_eq(a4, a1);
      if constexpr (kXR) t4 = t4 - simd::cmp_eq(a4, a2);
      t4 = t4 - simd::cmp_eq(a4, a3);
      delta = delta - simd::cmp_ge(t4, one);
      simd::i64x4 dlo, dhi;
      simd::widen(delta, dlo, dhi);
      (baseb + dlo).store(cand + j);
      (baseb + dhi).store(cand + j + simd::i64x4::kLanes);
    }
    run(xl_tag, xr_tag, j, n_ - 1);
  };
  const bool vector_path = simd::runtime_enabled();
  if (x_has_left && x_has_right) {
    vector_path ? run_simd(std::true_type{}, std::true_type{})
                : run(std::true_type{}, std::true_type{}, 1, n_ - 1);
  } else if (x_has_left) {
    vector_path ? run_simd(std::true_type{}, std::false_type{})
                : run(std::true_type{}, std::false_type{}, 1, n_ - 1);
  } else {
    vector_path ? run_simd(std::false_type{}, std::true_type{})
                : run(std::false_type{}, std::true_type{}, 1, n_ - 1);
  }
  // Specials — borders, x's neighbourhood (adjacency shares a pair): the
  // deduplicating scalar probe on the restored table (at most 7 per call).
  restore_x();
  for (std::size_t j = lo; j <= hi; ++j) {
    if (j != x) cand[j] = AllInterval::cost_if_swap(x, j);
  }
  cand[0] = x == 0 ? 0 : AllInterval::cost_if_swap(x, 0);
  cand[n_ - 1] = x == n_ - 1 ? 0 : AllInterval::cost_if_swap(x, n_ - 1);

  // Phase 2: batched reservoir scan over the array — identical draw order to
  // the historical inline loop, with SIMD discarding all-worse lane blocks.
  csp::SwapScan scan(n_);
  scan.feed_lanes(0, std::span<const Cost>(cand, n_), x, rng);
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return n_ - 1;
}

bool AllInterval::verify(std::span<const int> vals) const {
  if (vals.size() != n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  std::vector<bool> seen(n_, false);
  for (std::size_t p = 0; p + 1 < n_; ++p) {
    const int d = std::abs(vals[p + 1] - vals[p]);
    if (d < 1 || static_cast<std::size_t>(d) > n_ - 1) return false;
    if (seen[static_cast<std::size_t>(d)]) return false;
    seen[static_cast<std::size_t>(d)] = true;
  }
  return true;
}

csp::Cost AllInterval::reset_perturbation(double fraction,
                                          util::Xoshiro256& rng) {
  // Reverse one random segment whose length scales with `fraction` (at
  // least 2).  Operates on the underlying values directly, then rebinds.
  auto& vals = mutable_values();
  const std::size_t n = vals.size();
  const auto max_len = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(n) * fraction));
  const std::size_t len =
      2 + static_cast<std::size_t>(rng.below(std::max<std::size_t>(
              1, max_len - 1)));
  const std::size_t start =
      static_cast<std::size_t>(rng.below(n - std::min(len, n) + 1));
  std::reverse(vals.begin() + static_cast<std::ptrdiff_t>(start),
               vals.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(start + len, n)));
  const csp::Cost cost = on_rebind();
  set_cached_cost(cost);
  return cost;
}

csp::TuningHints AllInterval::tuning() const noexcept {
  csp::TuningHints hints;
  // The step-like landscape needs full plateau walking, generous worsening
  // acceptance and the segment-reversal reset (reset_perturbation above);
  // freezing recent swap participants stops plateau two-cycles.  Swept in
  // scratch harnesses; this benchmark stays the hardest per variable, which
  // matches the original study (all-interval shows the steepest sequential
  // growth of the CSPLib trio).
  hints.freeze_loc_min = 3;
  hints.freeze_swap = 4;
  hints.reset_limit = 4;
  hints.reset_fraction = 0.1;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * 300;
  hints.prob_accept_plateau = 1.0;
  hints.prob_accept_local_min = 0.4;
  return hints;
}

}  // namespace cspls::problems
