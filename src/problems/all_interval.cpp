#include "problems/all_interval.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cspls::problems {

using csp::Cost;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}
}  // namespace

AllInterval::AllInterval(std::size_t n)
    : PermutationProblem(canonical_values(n)), n_(n), occ_(n, 0) {
  if (n < 2) {
    throw std::invalid_argument("AllInterval: n must be >= 2");
  }
}

const std::string& AllInterval::name() const noexcept { return name_; }

std::string AllInterval::instance_description() const {
  std::ostringstream os;
  os << "all-interval n=" << n_;
  return os.str();
}

std::unique_ptr<csp::Problem> AllInterval::clone() const {
  return std::make_unique<AllInterval>(*this);
}

int AllInterval::diff_at(std::size_t p) const noexcept {
  return std::abs(value(p + 1) - value(p));
}

int AllInterval::diff_at_swapped(std::size_t p, std::size_t i,
                                 std::size_t j) const noexcept {
  const auto at = [&](std::size_t pos) {
    if (pos == i) return value(j);
    if (pos == j) return value(i);
    return value(pos);
  };
  return std::abs(at(p + 1) - at(p));
}

std::size_t AllInterval::affected_pairs(std::size_t i, std::size_t j,
                                        std::size_t out[4]) const noexcept {
  std::size_t count = 0;
  const auto push = [&](std::size_t p) {
    if (p >= n_ - 1) return;  // also rejects p == size_t(-1) underflow
    for (std::size_t k = 0; k < count; ++k) {
      if (out[k] == p) return;
    }
    out[count++] = p;
  };
  push(i - 1);
  push(i);
  push(j - 1);
  push(j);
  return count;
}

Cost AllInterval::on_rebind() {
  std::fill(occ_.begin(), occ_.end(), 0);
  Cost cost = 0;
  for (std::size_t p = 0; p + 1 < n_; ++p) {
    const int d = diff_at(p);
    if (occ_[static_cast<std::size_t>(d)]++ >= 1) ++cost;
  }
  return cost;
}

Cost AllInterval::full_cost() const {
  std::vector<int> occ(n_, 0);
  Cost cost = 0;
  for (std::size_t p = 0; p + 1 < n_; ++p) {
    const int d = diff_at(p);
    if (occ[static_cast<std::size_t>(d)]++ >= 1) ++cost;
  }
  return cost;
}

Cost AllInterval::cost_on_variable(std::size_t i) const {
  // Blame position i for every surplus occurrence of an adjacent difference.
  Cost err = 0;
  if (i > 0) {
    const int d = diff_at(i - 1);
    err += std::max(0, occ_[static_cast<std::size_t>(d)] - 1);
  }
  if (i + 1 < n_) {
    const int d = diff_at(i);
    err += std::max(0, occ_[static_cast<std::size_t>(d)] - 1);
  }
  return err;
}

Cost AllInterval::cost_if_swap(std::size_t i, std::size_t j) const {
  std::size_t pairs[4];
  const std::size_t count = affected_pairs(i, j, pairs);

  Cost delta = 0;
  int removed[4];
  int added[4];
  // Remove the old differences of the affected pairs...
  for (std::size_t k = 0; k < count; ++k) {
    const int d = diff_at(pairs[k]);
    removed[k] = d;
    if (--occ_[static_cast<std::size_t>(d)] >= 1) --delta;
  }
  // ...and account the post-swap differences.
  for (std::size_t k = 0; k < count; ++k) {
    const int d = diff_at_swapped(pairs[k], i, j);
    added[k] = d;
    if (occ_[static_cast<std::size_t>(d)]++ >= 1) ++delta;
  }
  // Roll back the probe.
  for (std::size_t k = 0; k < count; ++k) {
    --occ_[static_cast<std::size_t>(added[k])];
    ++occ_[static_cast<std::size_t>(removed[k])];
  }
  return total_cost() + delta;
}

Cost AllInterval::did_swap(std::size_t i, std::size_t j) {
  // values() already hold the post-swap configuration; the pre-swap
  // differences of the affected pairs are re-derivable by swapping back.
  std::size_t pairs[4];
  const std::size_t count = affected_pairs(i, j, pairs);
  Cost delta = 0;
  for (std::size_t k = 0; k < count; ++k) {
    // diff_at_swapped now yields the *old* difference (swap is involutive).
    const int d = diff_at_swapped(pairs[k], i, j);
    if (--occ_[static_cast<std::size_t>(d)] >= 1) --delta;
  }
  for (std::size_t k = 0; k < count; ++k) {
    const int d = diff_at(pairs[k]);
    if (occ_[static_cast<std::size_t>(d)]++ >= 1) ++delta;
  }
  return total_cost() + delta;
}

bool AllInterval::verify(std::span<const int> vals) const {
  if (vals.size() != n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  std::vector<bool> seen(n_, false);
  for (std::size_t p = 0; p + 1 < n_; ++p) {
    const int d = std::abs(vals[p + 1] - vals[p]);
    if (d < 1 || static_cast<std::size_t>(d) > n_ - 1) return false;
    if (seen[static_cast<std::size_t>(d)]) return false;
    seen[static_cast<std::size_t>(d)] = true;
  }
  return true;
}

csp::Cost AllInterval::reset_perturbation(double fraction,
                                          util::Xoshiro256& rng) {
  // Reverse one random segment whose length scales with `fraction` (at
  // least 2).  Operates on the underlying values directly, then rebinds.
  auto& vals = mutable_values();
  const std::size_t n = vals.size();
  const auto max_len = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(n) * fraction));
  const std::size_t len =
      2 + static_cast<std::size_t>(rng.below(std::max<std::size_t>(
              1, max_len - 1)));
  const std::size_t start =
      static_cast<std::size_t>(rng.below(n - std::min(len, n) + 1));
  std::reverse(vals.begin() + static_cast<std::ptrdiff_t>(start),
               vals.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(start + len, n)));
  const csp::Cost cost = on_rebind();
  set_cached_cost(cost);
  return cost;
}

csp::TuningHints AllInterval::tuning() const noexcept {
  csp::TuningHints hints;
  // The step-like landscape needs full plateau walking, generous worsening
  // acceptance and the segment-reversal reset (reset_perturbation above);
  // freezing recent swap participants stops plateau two-cycles.  Swept in
  // scratch harnesses; this benchmark stays the hardest per variable, which
  // matches the original study (all-interval shows the steepest sequential
  // growth of the CSPLib trio).
  hints.freeze_loc_min = 3;
  hints.freeze_swap = 4;
  hints.reset_limit = 4;
  hints.reset_fraction = 0.1;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * 300;
  hints.prob_accept_plateau = 1.0;
  hints.prob_accept_local_min = 0.4;
  return hints;
}

}  // namespace cspls::problems
