#include "problems/perfect_square.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace cspls::problems {

using csp::Cost;

PerfectSquareInstance PerfectSquareInstance::quadtree(int side_log2,
                                                      int splits,
                                                      std::uint64_t seed) {
  if (side_log2 < 1 || side_log2 > 12) {
    throw std::invalid_argument("quadtree: side_log2 out of range");
  }
  PerfectSquareInstance inst;
  inst.side = 1 << side_log2;
  inst.sizes = {inst.side};
  util::SplitMix64 rng(seed);
  for (int s = 0; s < splits; ++s) {
    // Collect splittable squares (side >= 2); stop early if none remain.
    std::vector<std::size_t> splittable;
    for (std::size_t i = 0; i < inst.sizes.size(); ++i) {
      if (inst.sizes[i] >= 2) splittable.push_back(i);
    }
    if (splittable.empty()) break;
    const std::size_t pick =
        splittable[rng.next() % splittable.size()];
    const int half = inst.sizes[pick] / 2;
    inst.sizes[pick] = half;
    inst.sizes.insert(inst.sizes.end(), 3, half);
  }
  // The first split always splits the master square itself, so drop the
  // degenerate single-square case from labels only.
  std::ostringstream label;
  label << "quadtree S=" << inst.side << " n=" << inst.sizes.size() << " seed="
        << seed;
  inst.label = label.str();
  return inst;
}

PerfectSquareInstance PerfectSquareInstance::duijvestijn21() {
  PerfectSquareInstance inst;
  inst.side = 112;
  inst.sizes = {50, 42, 37, 35, 33, 29, 27, 25, 24, 19, 18,
                17, 16, 15, 11, 9,  8,  7,  6,  4,  2};
  inst.label = "Duijvestijn order-21 (side 112)";
  return inst;
}

namespace {
std::vector<int> canonical_order(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}
}  // namespace

PerfectSquare::PerfectSquare(PerfectSquareInstance instance)
    : PermutationProblem(canonical_order(instance.sizes.size())),
      instance_(std::move(instance)),
      overflow_by_pos_(instance_.sizes.size(), 0),
      scratch_order_(instance_.sizes.size()),
      heights_(static_cast<std::size_t>(instance_.side), 0),
      checkpoint_h_(instance_.sizes.size() *
                        static_cast<std::size_t>(instance_.side),
                    0),
      checkpoint_err_(instance_.sizes.size(), 0),
      ring_(static_cast<std::size_t>(instance_.side)),
      cand_(instance_.sizes.size(), 0) {
  long long area = 0;
  for (const int s : instance_.sizes) {
    if (s < 1 || s > instance_.side) {
      throw std::invalid_argument("PerfectSquare: square size out of range");
    }
    area += static_cast<long long>(s) * s;
  }
  if (area != static_cast<long long>(instance_.side) * instance_.side) {
    throw std::invalid_argument(
        "PerfectSquare: square areas must sum to side^2");
  }
}

const std::string& PerfectSquare::name() const noexcept { return name_; }

std::string PerfectSquare::instance_description() const {
  std::ostringstream os;
  os << "perfect-square " << instance_.label;
  return os.str();
}

std::unique_ptr<csp::Problem> PerfectSquare::clone() const {
  return std::make_unique<PerfectSquare>(*this);
}

Cost PerfectSquare::place(std::size_t s, std::vector<int>& h,
                          std::size_t& out_x, int& out_y) const {
  const auto side = static_cast<std::size_t>(instance_.side);

  // Sliding-window maximum of the skyline over windows of width s
  // (monotone queue): win_max(x) = max h[x .. x+s-1].  The queue lives in a
  // preallocated ring buffer — head/tail only ever advance, and at most one
  // index is pushed per column, so `side` slots suffice without wraparound.
  int best_y = INT32_MAX;
  std::size_t best_x = 0;
  std::size_t* ring = ring_.data();  // indices with decreasing heights
  std::size_t head = 0;
  std::size_t tail = 0;
  for (std::size_t x = 0; x < side; ++x) {
    while (tail > head && h[ring[tail - 1]] <= h[x]) --tail;
    ring[tail++] = x;
    if (x + 1 >= s) {
      const std::size_t win_start = x + 1 - s;
      while (ring[head] < win_start) ++head;
      const int y = h[ring[head]];
      if (y < best_y) {
        best_y = y;
        best_x = win_start;
      }
    }
  }

  const int top = best_y + static_cast<int>(s);
  // Placing on an uneven window buries the area between the lower columns
  // and the square's bottom forever (the skyline never fills below).
  // Charging that waste *at creation time* gives the search a gradient
  // long before anything pokes above the lid; by area conservation the
  // final buried area equals the final overflow area, so the total is
  // simply twice the waste and still zero exactly on perfect tilings.
  Cost buried = 0;
  for (std::size_t c = best_x; c < best_x + s; ++c) {
    buried += best_y - h[c];
    h[c] = top;
  }
  const Cost overflow =
      top > instance_.side
          ? static_cast<Cost>(top - instance_.side) * static_cast<Cost>(s)
          : 0;
  out_x = best_x;
  out_y = best_y;
  return buried + overflow;
}

Cost PerfectSquare::decode_from(std::size_t first, std::span<const int> order,
                                std::vector<Cost>* overflow_by_pos,
                                std::vector<SquarePlacement>* placements,
                                bool capture) const {
  const auto side = static_cast<std::size_t>(instance_.side);
  auto& h = heights_;
  Cost total = 0;
  if (first == 0) {
    std::fill(h.begin(), h.end(), 0);
  } else {
    // Resume from the prefix checkpoint: order[0..first) matches the
    // configuration the checkpoints were captured from, and the decoder is
    // deterministic, so the first `first` placements are identical.
    const int* row = checkpoint_h_.data() + first * side;
    std::copy(row, row + side, h.begin());
    total = checkpoint_err_[first];
  }
  if (placements) placements->resize(first);

  for (std::size_t pos = first; pos < order.size(); ++pos) {
    if (capture) {
      std::copy(h.begin(), h.end(), checkpoint_h_.begin() + pos * side);
      checkpoint_err_[pos] = total;
    }
    const int id = order[pos];
    const auto s = static_cast<std::size_t>(
        instance_.sizes[static_cast<std::size_t>(id)]);
    std::size_t best_x = 0;
    int best_y = 0;
    const Cost err = place(s, h, best_x, best_y);
    total += err;
    if (overflow_by_pos) (*overflow_by_pos)[pos] = err;
    if (placements) {
      placements->push_back(SquarePlacement{static_cast<int>(best_x), best_y,
                                            static_cast<int>(s), id});
    }
  }
  return total;
}

Cost PerfectSquare::decode(std::span<const int> order,
                           std::vector<Cost>* overflow_by_pos,
                           std::vector<SquarePlacement>* placements) const {
  return decode_from(0, order, overflow_by_pos, placements, /*capture=*/false);
}

Cost PerfectSquare::on_rebind() {
  const Cost total =
      decode_from(0, values(), &overflow_by_pos_, &placements_,
                  /*capture=*/true);
  checkpoints_valid_ = true;
  return total;
}

Cost PerfectSquare::full_cost() const {
  return decode(values(), nullptr, nullptr);
}

Cost PerfectSquare::cost_on_variable(std::size_t i) const {
  return overflow_by_pos_[i];
}

Cost PerfectSquare::cost_if_swap(std::size_t i, std::size_t j) const {
  const auto vals = values();
  std::copy(vals.begin(), vals.end(), scratch_order_.begin());
  std::swap(scratch_order_[i], scratch_order_[j]);
  // A swap leaves order positions below min(i, j) untouched, so the probe
  // decode resumes from that prefix checkpoint instead of position 0.
  const std::size_t first = checkpoints_valid_ ? std::min(i, j) : 0;
  return decode_from(first, scratch_order_, nullptr, nullptr,
                     /*capture=*/false);
}

Cost PerfectSquare::did_swap(std::size_t i, std::size_t j) {
  // Same prefix argument as cost_if_swap: placements, waste attribution and
  // checkpoints below min(i, j) are unchanged, so only re-decode (and
  // re-capture) from there.
  const std::size_t first = checkpoints_valid_ ? std::min(i, j) : 0;
  const Cost total = decode_from(first, values(), &overflow_by_pos_,
                                 &placements_, /*capture=*/true);
  checkpoints_valid_ = true;
  return total;
}

void PerfectSquare::cost_on_all_variables(std::span<Cost> out) const {
  // The decoder already attributes waste per order position on every commit.
  std::copy(overflow_by_pos_.begin(), overflow_by_pos_.end(), out.begin());
}

std::uint64_t PerfectSquare::best_swap_for(std::size_t x,
                                           util::Xoshiro256& rng,
                                           std::size_t& best_j,
                                           Cost& best_cost,
                                           std::size_t& ties) const {
  // Each candidate still re-runs the decoder tail (the placement of square k
  // depends on every earlier placement), but the order buffer is built once
  // and patched by two-element swaps, and each decode resumes from the
  // prefix checkpoint at min(x, j) — candidates with j < x pay only the
  // suffix from j, candidates with j > x only the suffix from x.
  const std::size_t nn = num_variables();
  const auto vals = values();
  std::copy(vals.begin(), vals.end(), scratch_order_.begin());
  for (std::size_t j = 0; j < nn; ++j) {
    if (j == x) {
      cand_[j] = csp::kInfiniteCost;
      continue;
    }
    std::swap(scratch_order_[x], scratch_order_[j]);
    const std::size_t first = checkpoints_valid_ ? std::min(x, j) : 0;
    cand_[j] = decode_from(first, scratch_order_, nullptr, nullptr,
                           /*capture=*/false);
    std::swap(scratch_order_[x], scratch_order_[j]);
  }
  csp::SwapScan scan(nn);
  scan.feed_lanes(0, std::span<const Cost>(cand_.data(), nn), x, rng);
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return nn - 1;
}

bool PerfectSquare::verify(std::span<const int> vals) const {
  const auto n = instance_.sizes.size();
  if (vals.size() != n) return false;
  if (!csp::is_permutation_of(vals, canonical_order(n))) return false;

  // Independent re-simulation on an explicit occupancy grid (separate code
  // path from the deque-based decoder): derive column heights from the grid,
  // place each square at the (y, x)-minimal skyline position, and demand
  // in-bounds, overlap-free placement plus full coverage.
  const auto side = static_cast<std::size_t>(instance_.side);
  std::vector<std::uint8_t> grid(side * side, 0);
  const auto column_height = [&](std::size_t c) {
    for (std::size_t r = side; r > 0; --r) {
      if (grid[(r - 1) * side + c]) return static_cast<int>(r);
    }
    return 0;
  };
  for (const int id : vals) {
    const auto s =
        static_cast<std::size_t>(instance_.sizes[static_cast<std::size_t>(id)]);
    int best_y = INT32_MAX;
    std::size_t best_x = 0;
    for (std::size_t x = 0; x + s <= side; ++x) {
      int y = 0;
      for (std::size_t c = x; c < x + s; ++c) {
        y = std::max(y, column_height(c));
      }
      if (y < best_y) {
        best_y = y;
        best_x = x;
      }
    }
    if (best_y + static_cast<int>(s) > instance_.side) return false;  // pokes out
    for (std::size_t r = static_cast<std::size_t>(best_y);
         r < static_cast<std::size_t>(best_y) + s; ++r) {
      for (std::size_t c = best_x; c < best_x + s; ++c) {
        if (grid[r * side + c]) return false;  // overlap
        grid[r * side + c] = 1;
      }
    }
  }
  for (const std::uint8_t cell : grid) {
    if (!cell) return false;  // gap
  }
  return true;
}

csp::TuningHints PerfectSquare::tuning() const noexcept {
  csp::TuningHints hints;
  // With the buried-waste gradient the landscape is well-behaved: short
  // freezes, frequent small perturbations, moderate plateau walking (swept
  // empirically in scratch harnesses).
  hints.freeze_loc_min = 1;
  hints.freeze_swap = 0;
  hints.reset_limit = 4;
  hints.reset_fraction = 0.1;
  hints.restart_limit = instance_.sizes.size() * instance_.sizes.size() * 50;
  hints.prob_accept_plateau = 0.5;
  hints.prob_accept_local_min = 0.0;
  return hints;
}

std::string PerfectSquare::packing_to_string() const {
  const auto side = static_cast<std::size_t>(instance_.side);
  std::vector<char> grid(side * side, '.');
  const char* alphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  for (const auto& p : placements_) {
    const char mark = alphabet[static_cast<std::size_t>(p.id) % 62];
    for (int r = p.y; r < p.y + p.size && r < instance_.side; ++r) {
      for (int c = p.x; c < p.x + p.size; ++c) {
        grid[static_cast<std::size_t>(r) * side + static_cast<std::size_t>(c)] =
            mark;
      }
    }
  }
  std::ostringstream os;
  for (std::size_t r = side; r > 0; --r) {  // row 0 at the bottom
    for (std::size_t c = 0; c < side; ++c) {
      os << grid[(r - 1) * side + c];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cspls::problems
