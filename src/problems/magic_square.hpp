// Magic Square (CSPLib prob019), one of the paper's three CSPLib benchmarks.
//
// Place 1..n² on an n×n board so every row, column and both main diagonals
// sum to the magic constant M = n(n²+1)/2.  Model (as in the original
// Adaptive Search library): the board is a permutation of 1..n²; the cost of
// a configuration is the sum of |line_sum − M| over all 2n+2 lines; the
// projected error of a cell is the sum of the errors of the lines through it.
// Swapping two cells touches at most 6 lines, so cost_if_swap is O(1).
#pragma once

#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

class MagicSquare final : public csp::PermutationProblem {
 public:
  /// An n×n instance (n >= 3).
  explicit MagicSquare(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

  [[nodiscard]] std::size_t side() const noexcept { return n_; }
  [[nodiscard]] csp::Cost magic_constant() const noexcept { return magic_; }

  /// Render the current board ("  1  12   8 ..." rows) for examples.
  [[nodiscard]] std::string board_to_string() const;

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  /// Line ids: 0..n-1 rows, n..2n-1 cols, 2n main diag, 2n+1 anti diag.
  static constexpr std::size_t kNoLine = static_cast<std::size_t>(-1);

  [[nodiscard]] csp::Cost line_error(std::size_t line) const noexcept {
    return line_err_[line];
  }

  /// |error| change of `line` if its sum moved by `change`.
  [[nodiscard]] csp::Cost line_error_after(std::size_t line,
                                           csp::Cost change) const noexcept {
    const csp::Cost d = sums_[line] + change - magic_;
    return (d < 0 ? -d : d) - line_err_[line];
  }

  /// Sum of |error| changes over lines affected by writing `delta` into the
  /// lines of cell a and `-delta` into the lines of cell b.
  [[nodiscard]] csp::Cost swap_delta(std::size_t a, std::size_t b) const;

  /// Move `line`'s sum by `change`, keeping line_err_ and err_sum_ in sync.
  void shift_line(std::size_t line, csp::Cost change) noexcept {
    sums_[line] += change;
    const csp::Cost d = sums_[line] - magic_;
    const csp::Cost err = d < 0 ? -d : d;
    err_sum_ += err - line_err_[line];
    line_err_[line] = err;
  }

  std::size_t n_;
  csp::Cost magic_;
  std::string name_ = "magic-square";
  std::vector<csp::Cost> sums_;      ///< 2n+2 line sums
  std::vector<csp::Cost> line_err_;  ///< |sums_ - M| per line, cached
  csp::Cost err_sum_ = 0;            ///< running total of line_err_
  /// SIMD-path candidate costs consumed by SwapScan::feed_lanes.
  mutable std::vector<csp::Cost> cand_;
};

}  // namespace cspls::problems
