// The "alpha" cipher puzzle from the original Adaptive Search distribution
// (also shipped as alpha.pl with GNU Prolog): assign a distinct value of
// 1..26 to each letter A..Z so that twenty word equations hold, where a
// word's value is the sum of its letters' values (e.g. BALLET = 45).
//
// This is the library's linear-arithmetic showcase: the cost is the sum of
// |word_sum - target| over all equations, the projected error of a letter is
// the summed error of the equations it appears in, and a swap touches only
// the equations containing either letter.
//
// The equation *targets* are generated from an embedded reference solution
// (the classic puzzle's published answer), which keeps the instance solvable
// by construction while preserving the exact constraint structure; a unit
// test pins the reference solution to cost zero.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

class Alpha final : public csp::PermutationProblem {
 public:
  Alpha();

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

  /// The reference assignment the targets were generated from (A..Z order).
  [[nodiscard]] static std::array<int, 26> reference_solution() noexcept;

  /// The puzzle's words, A..Z coefficient vectors and targets, for tests.
  [[nodiscard]] const std::vector<std::string>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] const std::vector<csp::Cost>& targets() const noexcept {
    return targets_;
  }

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  [[nodiscard]] csp::Cost equation_error(std::size_t e) const noexcept {
    const csp::Cost d = sums_[e] - targets_[e];
    return d < 0 ? -d : d;
  }

  std::string name_ = "alpha";
  std::vector<std::string> words_;
  std::vector<std::array<int, 26>> coeffs_;       ///< per-equation letter counts
  std::vector<csp::Cost> targets_;
  std::vector<std::vector<std::size_t>> letter_eqs_;  ///< letter -> equations
  std::vector<csp::Cost> sums_;                   ///< cached equation sums
  mutable std::vector<csp::Cost> eq_err_;         ///< bulk-scan scratch
  /// Candidate costs consumed by SwapScan::feed_lanes (one code shape with
  /// the SIMD kernels; the lane fast-skip applies even to this scalar-width
  /// compute).
  mutable std::vector<csp::Cost> cand_;
};

}  // namespace cspls::problems
