#include "problems/magic_square.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/simd.hpp"

namespace cspls::problems {

using csp::Cost;
namespace simd = util::simd;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n * n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}
}  // namespace

MagicSquare::MagicSquare(std::size_t n)
    : PermutationProblem(canonical_values(n)),
      n_(n),
      magic_(static_cast<Cost>(n) * (static_cast<Cost>(n) * static_cast<Cost>(n) + 1) / 2),
      sums_(2 * n + 2, 0),
      line_err_(2 * n + 2, 0),
      cand_(n * n, 0) {
  if (n < 3) {
    throw std::invalid_argument("MagicSquare: n must be >= 3");
  }
}

const std::string& MagicSquare::name() const noexcept { return name_; }

std::string MagicSquare::instance_description() const {
  std::ostringstream os;
  os << "magic-square " << n_ << "x" << n_ << " (M=" << magic_ << ")";
  return os.str();
}

std::unique_ptr<csp::Problem> MagicSquare::clone() const {
  return std::make_unique<MagicSquare>(*this);
}

Cost MagicSquare::on_rebind() {
  std::fill(sums_.begin(), sums_.end(), Cost{0});
  const auto vals = values();
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const Cost v = vals[i * n_ + j];
      sums_[i] += v;
      sums_[n_ + j] += v;
      if (i == j) sums_[2 * n_] += v;
      if (i + j == n_ - 1) sums_[2 * n_ + 1] += v;
    }
  }
  err_sum_ = 0;
  for (std::size_t line = 0; line < sums_.size(); ++line) {
    const Cost d = sums_[line] - magic_;
    line_err_[line] = d < 0 ? -d : d;
    err_sum_ += line_err_[line];
  }
  return err_sum_;
}

Cost MagicSquare::full_cost() const {
  // Independent of the cached sums: recompute from the raw values.
  std::vector<Cost> sums(2 * n_ + 2, 0);
  const auto vals = values();
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const Cost v = vals[i * n_ + j];
      sums[i] += v;
      sums[n_ + j] += v;
      if (i == j) sums[2 * n_] += v;
      if (i + j == n_ - 1) sums[2 * n_ + 1] += v;
    }
  }
  Cost cost = 0;
  for (const Cost s : sums) {
    const Cost d = s - magic_;
    cost += d < 0 ? -d : d;
  }
  return cost;
}

Cost MagicSquare::cost_on_variable(std::size_t k) const {
  const std::size_t i = k / n_;
  const std::size_t j = k % n_;
  Cost err = line_error(i) + line_error(n_ + j);
  if (i == j) err += line_error(2 * n_);
  if (i + j == n_ - 1) err += line_error(2 * n_ + 1);
  return err;
}

Cost MagicSquare::swap_delta(std::size_t a, std::size_t b) const {
  // Cell a receives value(b) and cell b receives value(a):
  // every line through a gains d, every line through b loses d, and a line
  // through both is unchanged.
  const Cost d = static_cast<Cost>(value(b)) - static_cast<Cost>(value(a));
  if (d == 0 || a == b) return 0;
  const std::size_t ia = a / n_, ja = a % n_;
  const std::size_t ib = b / n_, jb = b % n_;

  Cost delta = 0;
  const auto add = [&](std::size_t line, Cost change) {
    delta += line_error_after(line, change);
  };
  if (ia != ib) {
    add(ia, d);
    add(ib, -d);
  }
  if (ja != jb) {
    add(n_ + ja, d);
    add(n_ + jb, -d);
  }
  const bool a_d1 = (ia == ja), b_d1 = (ib == jb);
  if (a_d1 != b_d1) add(2 * n_, a_d1 ? d : -d);
  const bool a_d2 = (ia + ja == n_ - 1), b_d2 = (ib + jb == n_ - 1);
  if (a_d2 != b_d2) add(2 * n_ + 1, a_d2 ? d : -d);
  return delta;
}

Cost MagicSquare::cost_if_swap(std::size_t i, std::size_t j) const {
  return total_cost() + swap_delta(i, j);
}

Cost MagicSquare::did_swap(std::size_t i, std::size_t j) {
  // values() already reflect the swap; sums_ do not yet.  The delta formula
  // needs pre-swap values, and value(i)/value(j) are now exchanged, so the
  // "incoming" value at i is value(i) = old value(j).  Only the <= 6 lines
  // through the two cells move; shift_line keeps the per-line error cache
  // and the running total exact, so the commit is O(1), not O(n).
  const Cost d = static_cast<Cost>(value(i)) - static_cast<Cost>(value(j));
  const std::size_t ia = i / n_, ja = i % n_;
  const std::size_t ib = j / n_, jb = j % n_;
  if (ia != ib) {
    shift_line(ia, d);
    shift_line(ib, -d);
  }
  if (ja != jb) {
    shift_line(n_ + ja, d);
    shift_line(n_ + jb, -d);
  }
  const bool a_d1 = (ia == ja), b_d1 = (ib == jb);
  if (a_d1 != b_d1) shift_line(2 * n_, a_d1 ? d : -d);
  const bool a_d2 = (ia + ja == n_ - 1), b_d2 = (ib + jb == n_ - 1);
  if (a_d2 != b_d2) shift_line(2 * n_ + 1, a_d2 ? d : -d);
  return err_sum_;
}

void MagicSquare::cost_on_all_variables(std::span<Cost> out) const {
  // One pass over the board reading the cached line errors: the bulk scan
  // shares the 2n+2 error lookups across all n^2 cells.
  const Cost d1 = line_err_[2 * n_], d2 = line_err_[2 * n_ + 1];
  if (simd::runtime_enabled()) {
    // Per row: the column errors are one contiguous Cost load, the row error
    // a broadcast, and the two diagonal patches iota-mask selects — no
    // gathers anywhere on this kernel.
    constexpr std::size_t kL = simd::i64x4::kLanes;
    const auto d1b = simd::i64x4::broadcast(d1);
    const auto d2b = simd::i64x4::broadcast(d2);
    for (std::size_t i = 0; i < n_; ++i) {
      const auto rowb = simd::i64x4::broadcast(line_err_[i]);
      const auto diagb = simd::i64x4::broadcast(static_cast<std::int64_t>(i));
      const auto antib =
          simd::i64x4::broadcast(static_cast<std::int64_t>(n_ - 1 - i));
      Cost* const row_out = out.data() + i * n_;
      std::size_t j = 0;
      for (; j + kL <= n_; j += kL) {
        const auto jv = simd::i64x4::iota(static_cast<std::int64_t>(j));
        auto err = rowb + simd::i64x4::load(line_err_.data() + n_ + j);
        err = err + (d1b & simd::cmp_eq(jv, diagb));
        err = err + (d2b & simd::cmp_eq(jv, antib));
        err.store(row_out + j);
      }
      for (; j < n_; ++j) {
        Cost err = line_err_[i] + line_err_[n_ + j];
        if (i == j) err += d1;
        if (i + j == n_ - 1) err += d2;
        row_out[j] = err;
      }
    }
    return;
  }
  std::size_t k = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const Cost row = line_err_[i];
    for (std::size_t j = 0; j < n_; ++j, ++k) {
      Cost err = row + line_err_[n_ + j];
      if (i == j) err += d1;
      if (i + j == n_ - 1) err += d2;
      out[k] = err;
    }
  }
}

std::uint64_t MagicSquare::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                         std::size_t& best_j, Cost& best_cost,
                                         std::size_t& ties) const {
  // Specialized swap_delta with everything about cell x hoisted out of the
  // candidate loop; the board walk tracks (row, col) so no divisions happen
  // per candidate.
  const std::size_t nn = num_variables();
  const std::size_t ia = x / n_, ja = x % n_;
  const Cost va = value(x);
  const bool a_d1 = (ia == ja), a_d2 = (ia + ja == n_ - 1);
  const Cost total = total_cost();
  const auto vals = values();
  if (!simd::runtime_enabled()) {
    csp::SwapScan scan(nn);
    std::size_t b = 0;
    for (std::size_t ib = 0; ib < n_; ++ib) {
      for (std::size_t jb = 0; jb < n_; ++jb, ++b) {
        if (b == x) continue;
        const Cost d = static_cast<Cost>(vals[b]) - va;
        Cost delta = 0;
        if (ia != ib) {
          delta += line_error_after(ia, d) + line_error_after(ib, -d);
        }
        if (ja != jb) {
          delta += line_error_after(n_ + ja, d) + line_error_after(n_ + jb, -d);
        }
        const bool b_d1 = (ib == jb);
        if (a_d1 != b_d1) delta += line_error_after(2 * n_, a_d1 ? d : -d);
        const bool b_d2 = (ib + jb == n_ - 1);
        if (a_d2 != b_d2) delta += line_error_after(2 * n_ + 1, a_d2 ? d : -d);
        scan.consider(b, total + delta, rng);
      }
    }
    best_j = scan.best_j;
    best_cost = scan.best_cost;
    ties = scan.ties;
    return nn - 1;
  }
  // Vector per-line error recomputation, four candidate cells per step (Cost
  // width: line sums reach n³, past 32-bit comfort at bench sizes).  Within
  // a board row the candidate's row line is constant, the column lines are
  // contiguous loads, and every conditional of the scalar kernel becomes an
  // iota/equality mask: no gathers at all.  The x lane computes d = 0 (delta
  // 0) and is overwritten with the sentinel before the reservoir runs.
  constexpr std::size_t kL = simd::i64x4::kLanes;
  const auto vab = simd::i64x4::broadcast(va);
  const auto totalb = simd::i64x4::broadcast(total);
  const auto zero = simd::i64x4::broadcast(0);
  const auto row_ab = simd::i64x4::broadcast(sums_[ia] - magic_);
  const auto row_ae = simd::i64x4::broadcast(line_err_[ia]);
  const auto col_ab = simd::i64x4::broadcast(sums_[n_ + ja] - magic_);
  const auto col_ae = simd::i64x4::broadcast(line_err_[n_ + ja]);
  const auto diag1b = simd::i64x4::broadcast(sums_[2 * n_] - magic_);
  const auto diag1e = simd::i64x4::broadcast(line_err_[2 * n_]);
  const auto diag2b = simd::i64x4::broadcast(sums_[2 * n_ + 1] - magic_);
  const auto diag2e = simd::i64x4::broadcast(line_err_[2 * n_ + 1]);
  const auto jab = simd::i64x4::broadcast(static_cast<std::int64_t>(ja));
  const auto magicb = simd::i64x4::broadcast(magic_);
  Cost* const cand = cand_.data();
  for (std::size_t ib = 0; ib < n_; ++ib) {
    const bool row_differs = (ia != ib);
    const auto row_bb = simd::i64x4::broadcast(sums_[ib] - magic_);
    const auto row_be = simd::i64x4::broadcast(line_err_[ib]);
    const auto ibb = simd::i64x4::broadcast(static_cast<std::int64_t>(ib));
    const auto antib =
        simd::i64x4::broadcast(static_cast<std::int64_t>(n_ - 1 - ib));
    std::size_t b = ib * n_;
    std::size_t jb = 0;
    for (; jb + kL <= n_; jb += kL, b += kL) {
      const auto dv = simd::i64x4::load_i32(vals.data() + b) - vab;
      const auto jv = simd::i64x4::iota(static_cast<std::int64_t>(jb));
      auto delta = zero;
      if (row_differs) {
        delta = (simd::abs(row_ab + dv) - row_ae) +
                (simd::abs(row_bb - dv) - row_be);
      }
      const auto col_bb = simd::i64x4::load(sums_.data() + n_ + jb) - magicb;
      const auto col_be = simd::i64x4::load(line_err_.data() + n_ + jb);
      const auto col_term = (simd::abs(col_ab + dv) - col_ae) +
                            (simd::abs(col_bb - dv) - col_be);
      delta = delta + (col_term & ~simd::cmp_eq(jv, jab));
      const auto sd1 = a_d1 ? dv : zero - dv;
      const auto b_d1m = simd::cmp_eq(jv, ibb);
      const auto d1m = a_d1 ? ~b_d1m : b_d1m;
      delta = delta + ((simd::abs(diag1b + sd1) - diag1e) & d1m);
      const auto sd2 = a_d2 ? dv : zero - dv;
      const auto b_d2m = simd::cmp_eq(jv, antib);
      const auto d2m = a_d2 ? ~b_d2m : b_d2m;
      delta = delta + ((simd::abs(diag2b + sd2) - diag2e) & d2m);
      (totalb + delta).store(cand + b);
    }
    for (; jb < n_; ++jb, ++b) {
      const Cost d = static_cast<Cost>(vals[b]) - va;
      Cost delta = 0;
      if (row_differs) {
        delta += line_error_after(ia, d) + line_error_after(ib, -d);
      }
      if (ja != jb) {
        delta += line_error_after(n_ + ja, d) + line_error_after(n_ + jb, -d);
      }
      const bool b_d1 = (ib == jb);
      if (a_d1 != b_d1) delta += line_error_after(2 * n_, a_d1 ? d : -d);
      const bool b_d2 = (ib + jb == n_ - 1);
      if (a_d2 != b_d2) delta += line_error_after(2 * n_ + 1, a_d2 ? d : -d);
      cand[b] = total + delta;
    }
  }
  cand[x] = csp::kInfiniteCost;
  csp::SwapScan scan(nn);
  scan.feed_lanes(0, std::span<const Cost>(cand, nn), x, rng);
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return nn - 1;
}

bool MagicSquare::verify(std::span<const int> vals) const {
  if (vals.size() != n_ * n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  for (std::size_t i = 0; i < n_; ++i) {
    Cost row = 0, col = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      row += vals[i * n_ + j];
      col += vals[j * n_ + i];
    }
    if (row != magic_ || col != magic_) return false;
  }
  Cost d1 = 0, d2 = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    d1 += vals[i * n_ + i];
    d2 += vals[i * n_ + (n_ - 1 - i)];
  }
  return d1 == magic_ && d2 == magic_;
}

csp::TuningHints MagicSquare::tuning() const noexcept {
  csp::TuningHints hints;
  // Swept empirically (see DESIGN.md): plateau walking plus occasional
  // worsening moves matter on the |line - M| surface; resets fire after a
  // quarter of the cells have hit local minima and reshuffle a small subset.
  hints.freeze_loc_min = 5;
  hints.freeze_swap = 0;
  hints.reset_limit = static_cast<std::uint32_t>(
      std::max<std::size_t>(2, n_ * n_ / 4));
  hints.reset_fraction = 0.05;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * 400;
  hints.prob_accept_plateau = 0.5;
  hints.prob_accept_local_min = 0.1;
  return hints;
}

std::string MagicSquare::board_to_string() const {
  std::ostringstream os;
  const auto vals = values();
  const int width = static_cast<int>(std::to_string(n_ * n_).size());
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      os.width(width + 1);
      os << vals[i * n_ + j];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cspls::problems
