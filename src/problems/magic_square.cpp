#include "problems/magic_square.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cspls::problems {

using csp::Cost;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n * n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}
}  // namespace

MagicSquare::MagicSquare(std::size_t n)
    : PermutationProblem(canonical_values(n)),
      n_(n),
      magic_(static_cast<Cost>(n) * (static_cast<Cost>(n) * static_cast<Cost>(n) + 1) / 2),
      sums_(2 * n + 2, 0),
      line_err_(2 * n + 2, 0) {
  if (n < 3) {
    throw std::invalid_argument("MagicSquare: n must be >= 3");
  }
}

const std::string& MagicSquare::name() const noexcept { return name_; }

std::string MagicSquare::instance_description() const {
  std::ostringstream os;
  os << "magic-square " << n_ << "x" << n_ << " (M=" << magic_ << ")";
  return os.str();
}

std::unique_ptr<csp::Problem> MagicSquare::clone() const {
  return std::make_unique<MagicSquare>(*this);
}

Cost MagicSquare::on_rebind() {
  std::fill(sums_.begin(), sums_.end(), Cost{0});
  const auto vals = values();
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const Cost v = vals[i * n_ + j];
      sums_[i] += v;
      sums_[n_ + j] += v;
      if (i == j) sums_[2 * n_] += v;
      if (i + j == n_ - 1) sums_[2 * n_ + 1] += v;
    }
  }
  err_sum_ = 0;
  for (std::size_t line = 0; line < sums_.size(); ++line) {
    const Cost d = sums_[line] - magic_;
    line_err_[line] = d < 0 ? -d : d;
    err_sum_ += line_err_[line];
  }
  return err_sum_;
}

Cost MagicSquare::full_cost() const {
  // Independent of the cached sums: recompute from the raw values.
  std::vector<Cost> sums(2 * n_ + 2, 0);
  const auto vals = values();
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const Cost v = vals[i * n_ + j];
      sums[i] += v;
      sums[n_ + j] += v;
      if (i == j) sums[2 * n_] += v;
      if (i + j == n_ - 1) sums[2 * n_ + 1] += v;
    }
  }
  Cost cost = 0;
  for (const Cost s : sums) {
    const Cost d = s - magic_;
    cost += d < 0 ? -d : d;
  }
  return cost;
}

Cost MagicSquare::cost_on_variable(std::size_t k) const {
  const std::size_t i = k / n_;
  const std::size_t j = k % n_;
  Cost err = line_error(i) + line_error(n_ + j);
  if (i == j) err += line_error(2 * n_);
  if (i + j == n_ - 1) err += line_error(2 * n_ + 1);
  return err;
}

Cost MagicSquare::swap_delta(std::size_t a, std::size_t b) const {
  // Cell a receives value(b) and cell b receives value(a):
  // every line through a gains d, every line through b loses d, and a line
  // through both is unchanged.
  const Cost d = static_cast<Cost>(value(b)) - static_cast<Cost>(value(a));
  if (d == 0 || a == b) return 0;
  const std::size_t ia = a / n_, ja = a % n_;
  const std::size_t ib = b / n_, jb = b % n_;

  Cost delta = 0;
  const auto add = [&](std::size_t line, Cost change) {
    delta += line_error_after(line, change);
  };
  if (ia != ib) {
    add(ia, d);
    add(ib, -d);
  }
  if (ja != jb) {
    add(n_ + ja, d);
    add(n_ + jb, -d);
  }
  const bool a_d1 = (ia == ja), b_d1 = (ib == jb);
  if (a_d1 != b_d1) add(2 * n_, a_d1 ? d : -d);
  const bool a_d2 = (ia + ja == n_ - 1), b_d2 = (ib + jb == n_ - 1);
  if (a_d2 != b_d2) add(2 * n_ + 1, a_d2 ? d : -d);
  return delta;
}

Cost MagicSquare::cost_if_swap(std::size_t i, std::size_t j) const {
  return total_cost() + swap_delta(i, j);
}

Cost MagicSquare::did_swap(std::size_t i, std::size_t j) {
  // values() already reflect the swap; sums_ do not yet.  The delta formula
  // needs pre-swap values, and value(i)/value(j) are now exchanged, so the
  // "incoming" value at i is value(i) = old value(j).  Only the <= 6 lines
  // through the two cells move; shift_line keeps the per-line error cache
  // and the running total exact, so the commit is O(1), not O(n).
  const Cost d = static_cast<Cost>(value(i)) - static_cast<Cost>(value(j));
  const std::size_t ia = i / n_, ja = i % n_;
  const std::size_t ib = j / n_, jb = j % n_;
  if (ia != ib) {
    shift_line(ia, d);
    shift_line(ib, -d);
  }
  if (ja != jb) {
    shift_line(n_ + ja, d);
    shift_line(n_ + jb, -d);
  }
  const bool a_d1 = (ia == ja), b_d1 = (ib == jb);
  if (a_d1 != b_d1) shift_line(2 * n_, a_d1 ? d : -d);
  const bool a_d2 = (ia + ja == n_ - 1), b_d2 = (ib + jb == n_ - 1);
  if (a_d2 != b_d2) shift_line(2 * n_ + 1, a_d2 ? d : -d);
  return err_sum_;
}

void MagicSquare::cost_on_all_variables(std::span<Cost> out) const {
  // One pass over the board reading the cached line errors: the bulk scan
  // shares the 2n+2 error lookups across all n^2 cells.
  std::size_t k = 0;
  const Cost d1 = line_err_[2 * n_], d2 = line_err_[2 * n_ + 1];
  for (std::size_t i = 0; i < n_; ++i) {
    const Cost row = line_err_[i];
    for (std::size_t j = 0; j < n_; ++j, ++k) {
      Cost err = row + line_err_[n_ + j];
      if (i == j) err += d1;
      if (i + j == n_ - 1) err += d2;
      out[k] = err;
    }
  }
}

std::uint64_t MagicSquare::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                         std::size_t& best_j, Cost& best_cost,
                                         std::size_t& ties) const {
  // Specialized swap_delta with everything about cell x hoisted out of the
  // candidate loop; the board walk tracks (row, col) so no divisions happen
  // per candidate.
  const std::size_t nn = num_variables();
  const std::size_t ia = x / n_, ja = x % n_;
  const Cost va = value(x);
  const bool a_d1 = (ia == ja), a_d2 = (ia + ja == n_ - 1);
  const Cost total = total_cost();
  const auto vals = values();
  csp::SwapScan scan(nn);
  std::size_t b = 0;
  for (std::size_t ib = 0; ib < n_; ++ib) {
    for (std::size_t jb = 0; jb < n_; ++jb, ++b) {
      if (b == x) continue;
      const Cost d = static_cast<Cost>(vals[b]) - va;
      Cost delta = 0;
      if (ia != ib) {
        delta += line_error_after(ia, d) + line_error_after(ib, -d);
      }
      if (ja != jb) {
        delta += line_error_after(n_ + ja, d) + line_error_after(n_ + jb, -d);
      }
      const bool b_d1 = (ib == jb);
      if (a_d1 != b_d1) delta += line_error_after(2 * n_, a_d1 ? d : -d);
      const bool b_d2 = (ib + jb == n_ - 1);
      if (a_d2 != b_d2) delta += line_error_after(2 * n_ + 1, a_d2 ? d : -d);
      scan.consider(b, total + delta, rng);
    }
  }
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return nn - 1;
}

bool MagicSquare::verify(std::span<const int> vals) const {
  if (vals.size() != n_ * n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  for (std::size_t i = 0; i < n_; ++i) {
    Cost row = 0, col = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      row += vals[i * n_ + j];
      col += vals[j * n_ + i];
    }
    if (row != magic_ || col != magic_) return false;
  }
  Cost d1 = 0, d2 = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    d1 += vals[i * n_ + i];
    d2 += vals[i * n_ + (n_ - 1 - i)];
  }
  return d1 == magic_ && d2 == magic_;
}

csp::TuningHints MagicSquare::tuning() const noexcept {
  csp::TuningHints hints;
  // Swept empirically (see DESIGN.md): plateau walking plus occasional
  // worsening moves matter on the |line - M| surface; resets fire after a
  // quarter of the cells have hit local minima and reshuffle a small subset.
  hints.freeze_loc_min = 5;
  hints.freeze_swap = 0;
  hints.reset_limit = static_cast<std::uint32_t>(
      std::max<std::size_t>(2, n_ * n_ / 4));
  hints.reset_fraction = 0.05;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * 400;
  hints.prob_accept_plateau = 0.5;
  hints.prob_accept_local_min = 0.1;
  return hints;
}

std::string MagicSquare::board_to_string() const {
  std::ostringstream os;
  const auto vals = values();
  const int width = static_cast<int>(std::to_string(n_ * n_).size());
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      os.width(width + 1);
      os << vals[i * n_ + j];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cspls::problems
