// The Costas Array Problem (CAP) — the paper's headline benchmark.
//
// A Costas array of order n is an n×n permutation matrix whose n(n-1)/2
// inter-mark vectors are pairwise distinct.  In the permutation view
// (variables V[0..n-1], a permutation of 1..n), that means: for every row
// d = 1..n-1 of the difference triangle, the values V[i+d] - V[i] are all
// different.  Cost model (as in the original library / the Diaz-Richoux-
// Codognet CAP study): per-row occurrence tables of the differences; cost =
// total surplus occurrences, zero exactly on Costas arrays.  A swap touches
// the O(n) pairs involving the two positions, so cost_if_swap is O(n).
#pragma once

#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

class Costas final : public csp::PermutationProblem {
 public:
  /// Order n (n >= 2).  Costas arrays exist for every n <= 31; the paper's
  /// experiments run n = 18..22.
  explicit Costas(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

  [[nodiscard]] std::size_t order() const noexcept { return n_; }

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  /// occ slot for difference `diff` in triangle row `d` (1-based row).
  [[nodiscard]] std::size_t slot(std::size_t d, int diff) const noexcept {
    return (d - 1) * stride_ + static_cast<std::size_t>(diff + static_cast<int>(n_));
  }

  /// Apply +1/-1 to the occurrence of pair (a, a+d) computed on the current
  /// values, returning the surplus-cost change.
  csp::Cost bump(std::size_t a, std::size_t d, int step,
                 const int* probe_values) const;

  /// Visit all pair starts (a, d) such that the pair {a, a+d} involves
  /// position i or position j (deduplicated); calls f(a, d).
  template <typename F>
  void for_affected_pairs(std::size_t i, std::size_t j, F&& f) const;

  /// Data-parallel candidate scan (taken when util::simd::runtime_enabled());
  /// bit-identical costs and RNG draws to the scalar loop in best_swap_for.
  std::uint64_t best_swap_for_simd(std::size_t x, util::Xoshiro256& rng,
                                   std::size_t& best_j, csp::Cost& best_cost,
                                   std::size_t& ties) const;

  std::size_t n_;
  std::size_t stride_;
  /// Lane-padded row stride for the SIMD tables (multiple of i32x8 lanes).
  std::size_t pstride_;
  std::string name_ = "costas";
  /// Occurrence tables, mutable for probe/rollback in cost_if_swap.
  mutable std::vector<int> occ_;
  /// best_swap_for acceleration tables (value-independent, built once):
  /// for the pair {p, q}, slot = rowoff_[p*n+q] + sign_[p*n+q] * (V[q]-V[p])
  /// — the (d-1)*stride + n row offset with the diff's orientation folded
  /// into a sign, so the candidate loop computes slots branch-free.
  std::vector<std::uint32_t> rowoff_;
  std::vector<std::int8_t> sign_;
  /// SIMD mirrors of the tables above, lane-padded (stride pstride_) with
  /// the sign replaced by a negate mask (0 / -1): slot = ro + ((diff^m)-m),
  /// multiply-free and one vector op per eight pairs.  Padding lanes hold
  /// zeros; their computed slots are stored to scratch but never consumed.
  std::vector<std::int32_t> rowoff_pad_;
  std::vector<std::int32_t> sgmask_;
  /// Per-call scratch (alloc-free steady state): cached slots of the pairs
  /// through the selected variable, and the probe undo lists.
  mutable std::vector<std::uint32_t> xrem_slots_;
  mutable std::vector<std::uint32_t> undo_rem_;
  mutable std::vector<std::uint32_t> undo_add_;
  /// SIMD-path scratch, all lane-padded: padded copy of values(), the three
  /// per-candidate slot arrays, the per-variable surplus accumulator and the
  /// candidate cost vector consumed by SwapScan::feed_lanes.
  mutable std::vector<std::int32_t> vals_pad_;
  mutable std::vector<std::int32_t> xslot_;
  mutable std::vector<std::int32_t> srj_;
  mutable std::vector<std::int32_t> sax_;
  mutable std::vector<std::int32_t> saj_;
  mutable std::vector<std::int32_t> acc32_;
  mutable std::vector<csp::Cost> cand_;
};

}  // namespace cspls::problems
