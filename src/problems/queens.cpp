#include "problems/queens.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/simd.hpp"

namespace cspls::problems {

using csp::Cost;
namespace simd = util::simd;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}
}  // namespace

Queens::Queens(std::size_t n)
    : PermutationProblem(canonical_values(n)),
      n_(n),
      up_(2 * n - 1, 0),
      down_(2 * n - 1, 0) {
  if (n < 1) {
    throw std::invalid_argument("Queens: n must be >= 1");
  }
}

const std::string& Queens::name() const noexcept { return name_; }

std::string Queens::instance_description() const {
  std::ostringstream os;
  os << "queens n=" << n_;
  return os.str();
}

std::unique_ptr<csp::Problem> Queens::clone() const {
  return std::make_unique<Queens>(*this);
}

Cost Queens::bump(std::size_t col, int row, int step) const {
  Cost delta = 0;
  int& u = up_[up_slot(col, row)];
  int& d = down_[down_slot(col, row)];
  if (step > 0) {
    if (u++ >= 1) ++delta;
    if (d++ >= 1) ++delta;
  } else {
    if (--u >= 1) --delta;
    if (--d >= 1) --delta;
  }
  return delta;
}

Cost Queens::on_rebind() {
  std::fill(up_.begin(), up_.end(), 0);
  std::fill(down_.begin(), down_.end(), 0);
  Cost cost = 0;
  for (std::size_t col = 0; col < n_; ++col) {
    cost += bump(col, value(col), +1);
  }
  return cost;
}

Cost Queens::full_cost() const {
  std::vector<int> up(2 * n_ - 1, 0);
  std::vector<int> down(2 * n_ - 1, 0);
  Cost cost = 0;
  for (std::size_t col = 0; col < n_; ++col) {
    const int row = value(col);
    if (up[up_slot(col, row)]++ >= 1) ++cost;
    if (down[down_slot(col, row)]++ >= 1) ++cost;
  }
  return cost;
}

Cost Queens::cost_on_variable(std::size_t i) const {
  const int row = value(i);
  const int u = up_[up_slot(i, row)];
  const int d = down_[down_slot(i, row)];
  return (u >= 2 ? u - 1 : 0) + (d >= 2 ? d - 1 : 0);
}

Cost Queens::cost_if_swap(std::size_t i, std::size_t j) const {
  Cost delta = 0;
  delta += bump(i, value(i), -1);
  delta += bump(j, value(j), -1);
  delta += bump(i, value(j), +1);
  delta += bump(j, value(i), +1);
  const Cost result = total_cost() + delta;
  (void)bump(i, value(j), -1);
  (void)bump(j, value(i), -1);
  (void)bump(i, value(i), +1);
  (void)bump(j, value(j), +1);
  return result;
}

Cost Queens::did_swap(std::size_t i, std::size_t j) {
  // values() are post-swap: the queen that *was* in column i now shows as
  // value(j) and vice versa.
  Cost delta = 0;
  delta += bump(i, value(j), -1);  // retract old placement of column i
  delta += bump(j, value(i), -1);  // retract old placement of column j
  delta += bump(i, value(i), +1);
  delta += bump(j, value(j), +1);
  return total_cost() + delta;
}

void Queens::cost_on_all_variables(std::span<Cost> out) const {
  const auto vals = values();
  std::size_t i = 0;
  if (simd::runtime_enabled()) {
    // Eight columns per step: both diagonal slots are affine in (row, col),
    // so the only non-contiguous accesses are the two occupation gathers.
    constexpr std::size_t kL = simd::i32x8::kLanes;
    const auto one = simd::i32x8::broadcast(1);
    const auto two = simd::i32x8::broadcast(2);
    const auto n1b = simd::i32x8::broadcast(static_cast<int>(n_) - 1);
    for (; i + kL <= n_; i += kL) {
      const auto rv = simd::i32x8::load(vals.data() + i);
      const auto iv = simd::i32x8::iota(static_cast<int>(i));
      const auto u = simd::i32x8::gather(up_.data(), rv + iv);
      const auto d = simd::i32x8::gather(down_.data(), (rv - iv) + n1b);
      const auto s = ((u - one) & simd::cmp_ge(u, two)) +
                     ((d - one) & simd::cmp_ge(d, two));
      simd::i64x4 slo, shi;
      simd::widen(s, slo, shi);
      slo.store(out.data() + i);
      shi.store(out.data() + i + simd::i64x4::kLanes);
    }
  }
  for (; i < n_; ++i) {
    const int row = vals[i];
    const int u = up_[up_slot(i, row)];
    const int d = down_[down_slot(i, row)];
    out[i] = (u >= 2 ? u - 1 : 0) + (d >= 2 ? d - 1 : 0);
  }
}

namespace {

/// Surplus change of removing one occupant from diagonals a and b (possibly
/// the same) — closed form of the bump/rollback dance, no writes.
inline Cost remove_two(const std::vector<int>& occ, std::size_t a,
                       std::size_t b) noexcept {
  if (a == b) {
    const int c = occ[a];
    return c >= 3 ? -2 : (c == 2 ? -1 : 0);
  }
  return (occ[a] >= 2 ? Cost{-1} : Cost{0}) +
         (occ[b] >= 2 ? Cost{-1} : Cost{0});
}

/// Surplus change of adding one occupant to diagonals a and b (possibly the
/// same).  Addition slots are always disjoint from the removal slots of the
/// same candidate (coincidence would force equal rows or columns), so the
/// two closed forms compose without interference.
inline Cost add_two(const std::vector<int>& occ, std::size_t a,
                    std::size_t b) noexcept {
  if (a == b) {
    return occ[a] >= 1 ? Cost{2} : Cost{1};
  }
  return (occ[a] >= 1 ? Cost{1} : Cost{0}) +
         (occ[b] >= 1 ? Cost{1} : Cost{0});
}

}  // namespace

std::uint64_t Queens::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                    std::size_t& best_j, Cost& best_cost,
                                    std::size_t& ties) const {
  const auto vals = values();
  const Cost total = total_cost();
  const int rx = vals[x];
  const std::size_t ux = up_slot(x, rx);
  const std::size_t dx = down_slot(x, rx);
  if (!simd::runtime_enabled()) {
    csp::SwapScan scan(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      if (j == x) continue;
      const int rj = vals[j];
      const Cost delta =
          remove_two(up_, ux, up_slot(j, rj)) +
          add_two(up_, up_slot(x, rj), up_slot(j, rx)) +
          remove_two(down_, dx, down_slot(j, rj)) +
          add_two(down_, down_slot(x, rj), down_slot(j, rx));
      scan.consider(j, total + delta, rng);
    }
    best_j = scan.best_j;
    best_cost = scan.best_cost;
    ties = scan.ties;
    return n_ - 1;
  }
  // Vector closed forms, eight candidates per step.  remove/add slot
  // coincidence (the a == b cases above) collapses to one vector equality
  // mask and a select; the x-side occupation reads are lane-constant, so
  // their contributions are hoisted to scalar broadcasts and each lane block
  // performs six occupation gathers total.  The reservoir is fused into the
  // compute loop: each half-block of costs is tested against the incumbent
  // best while still in registers, and only a half that could improve or tie
  // replays the scalar cascade — draw-for-draw what SwapScan::feed_lanes
  // does, without staging candidates through a side buffer first.  The lane
  // holding j == x computes a garbage cost; the replay skips it, and a
  // garbage lane can at worst trigger a replay whose real lanes are all
  // strictly worse, which consumes no RNG either way.
  constexpr std::size_t kL = simd::i32x8::kLanes;
  const int u_x = up_[ux];
  const int d_x = down_[dx];
  const auto rm_eq_u =
      simd::i32x8::broadcast(u_x >= 3 ? -2 : (u_x == 2 ? -1 : 0));
  const auto rm_eq_d =
      simd::i32x8::broadcast(d_x >= 3 ? -2 : (d_x == 2 ? -1 : 0));
  const auto rm_ne_u = simd::i32x8::broadcast(u_x >= 2 ? -1 : 0);
  const auto rm_ne_d = simd::i32x8::broadcast(d_x >= 2 ? -1 : 0);
  const auto zero = simd::i32x8::broadcast(0);
  const auto one = simd::i32x8::broadcast(1);
  const auto two = simd::i32x8::broadcast(2);
  const auto uxb = simd::i32x8::broadcast(static_cast<int>(ux));
  const auto dxb = simd::i32x8::broadcast(static_cast<int>(dx));
  const auto xb = simd::i32x8::broadcast(static_cast<int>(x));
  const auto rxb = simd::i32x8::broadcast(rx);
  const auto n1b = simd::i32x8::broadcast(static_cast<int>(n_) - 1);
  const auto totalb = simd::i64x4::broadcast(total);
  csp::SwapScan scan(n_);
  Cost incumbent = scan.best_cost;
  auto bestv = simd::i64x4::broadcast(incumbent);
  constexpr std::size_t kHalf = simd::i64x4::kLanes;
  const auto feed_half = [&](const simd::i64x4 costs, std::size_t base) {
    if (!simd::any(simd::cmp_le(costs, bestv))) return;
    Cost block[kHalf];
    costs.store(block);
    for (std::size_t t = 0; t < kHalf; ++t) {
      const std::size_t cj = base + t;
      if (cj == x) continue;
      scan.consider(cj, block[t], rng);
    }
    if (scan.best_cost != incumbent) {
      incumbent = scan.best_cost;
      bestv = simd::i64x4::broadcast(incumbent);
    }
  };
  std::size_t j = 0;
  for (; j + kL <= n_; j += kL) {
    const auto rj = simd::i32x8::load(vals.data() + j);
    const auto jv = simd::i32x8::iota(static_cast<int>(j));
    const auto ujj = rj + jv;               // up slot of candidate queen
    const auto uxr = rj + xb;               // up slot of x holding row rj
    const auto ujx = jv + rxb;              // up slot of j holding row rx
    const auto djj = (rj - jv) + n1b;       // down slots, same roles
    const auto dxr = (rj - xb) + n1b;
    const auto djx = (rxb - jv) + n1b;
    const auto rem_u =
        simd::select(simd::cmp_eq(ujj, uxb), rm_eq_u,
                     rm_ne_u + simd::cmp_ge(
                                   simd::i32x8::gather(up_.data(), ujj), two));
    const auto rem_d =
        simd::select(simd::cmp_eq(djj, dxb), rm_eq_d,
                     rm_ne_d + simd::cmp_ge(
                                   simd::i32x8::gather(down_.data(), djj),
                                   two));
    const auto cu1 =
        simd::cmp_ge(simd::i32x8::gather(up_.data(), uxr), one);
    const auto cu2 =
        simd::cmp_ge(simd::i32x8::gather(up_.data(), ujx), one);
    const auto add_u = simd::select(simd::cmp_eq(uxr, ujx), one - cu1,
                                    (zero - cu1) - cu2);
    const auto cd1 =
        simd::cmp_ge(simd::i32x8::gather(down_.data(), dxr), one);
    const auto cd2 =
        simd::cmp_ge(simd::i32x8::gather(down_.data(), djx), one);
    const auto add_d = simd::select(simd::cmp_eq(dxr, djx), one - cd1,
                                    (zero - cd1) - cd2);
    const auto delta = ((rem_u + add_u) + (rem_d + add_d));
    simd::i64x4 dlo, dhi;
    simd::widen(delta, dlo, dhi);
    feed_half(totalb + dlo, j);
    feed_half(totalb + dhi, j + kHalf);
  }
  for (; j < n_; ++j) {
    if (j == x) continue;
    const int rj = vals[j];
    scan.consider(j,
                  total + remove_two(up_, ux, up_slot(j, rj)) +
                      add_two(up_, up_slot(x, rj), up_slot(j, rx)) +
                      remove_two(down_, dx, down_slot(j, rj)) +
                      add_two(down_, down_slot(x, rj), down_slot(j, rx)),
                  rng);
  }
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return n_ - 1;
}

bool Queens::verify(std::span<const int> vals) const {
  if (vals.size() != n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const auto col_gap = static_cast<int>(b - a);
      const int row_gap = vals[b] - vals[a];
      if (row_gap == col_gap || row_gap == -col_gap) return false;
    }
  }
  return true;
}

csp::TuningHints Queens::tuning() const noexcept {
  csp::TuningHints hints;
  hints.freeze_loc_min = 1;
  hints.freeze_swap = 0;
  hints.reset_limit =
      static_cast<std::uint32_t>(std::max<std::size_t>(2, n_ / 10));
  hints.reset_fraction = 0.1;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * 500;
  hints.prob_accept_local_min = 0.0;
  return hints;
}

}  // namespace cspls::problems
