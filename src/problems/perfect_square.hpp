// Perfect Square placement (CSPLib prob009), the paper's third CSPLib
// benchmark.
//
// Tile a master square of side S exactly with a given list of squares
// (sum of their areas equals S²).  The original C model is unpublished; as
// documented in DESIGN.md (§3), we use the standard permutation + decoder
// formulation from the packing-metaheuristics literature, which keeps the
// problem inside Adaptive Search's native permutation frame:
//
//   - a configuration is a *placement order* (permutation of square ids);
//   - a deterministic skyline bottom-left decoder places the squares in that
//     order, each at the position minimising (y, x) on the current skyline;
//   - the cost charges, per placement, the area it buries below itself
//     (columns lower than the chosen support level can never be filled by a
//     skyline decoder) plus any area protruding above the master square's
//     lid.
//
// Because the areas sum to S², the final buried area equals the protruding
// area, so the cost is twice the waste and zero exactly on perfect tilings;
// charging waste at creation time gives the search a positional gradient.
//
// Probes run the decoder with an *incremental skyline*: every commit
// captures, per order position, the skyline (and accumulated waste) before
// that placement.  A two-element swap at (i, j) cannot affect placements
// below min(i, j), so cost_if_swap / best_swap_for resume decoding from
// that checkpoint instead of re-packing from scratch — O((n−p)·S) per probe
// with a ring-buffer sliding-window maximum — while producing bit-identical
// placements and waste charges to a full decode.
//
// Instances: quadtree-generated classes (exactly solvable by construction,
// hardness tuned by split count) and the classic order-21 simple perfect
// squared square of side 112 (Duijvestijn 1978).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

/// A perfect-square placement instance: master side and square sizes.
struct PerfectSquareInstance {
  int side = 0;
  std::vector<int> sizes;
  std::string label;

  /// Exactly-solvable instance built by recursively splitting squares into
  /// four half-size quadrants, starting from one square of side 2^side_log2.
  /// `splits` controls the square count (n = 1 + 3*splits).  Deterministic
  /// in `seed`.
  static PerfectSquareInstance quadtree(int side_log2, int splits,
                                        std::uint64_t seed);

  /// Duijvestijn's order-21 simple perfect squared square (side 112).
  static PerfectSquareInstance duijvestijn21();
};

/// One decoded placement (for reporting and verification).
struct SquarePlacement {
  int x = 0;
  int y = 0;
  int size = 0;
  int id = 0;
};

class PerfectSquare final : public csp::PermutationProblem {
 public:
  explicit PerfectSquare(PerfectSquareInstance instance);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

  [[nodiscard]] const PerfectSquareInstance& instance() const noexcept {
    return instance_;
  }

  /// Placements decoded from the current configuration.
  [[nodiscard]] const std::vector<SquarePlacement>& placements() const noexcept {
    return placements_;
  }

  /// ASCII rendering of the current packing (one char per id, '.' empty).
  [[nodiscard]] std::string packing_to_string() const;

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  /// Place one square of size `s` on the skyline `h` (bottom-left rule via a
  /// ring-buffer monotone sliding-window maximum); charges buried + overflow
  /// waste, raises the supporting columns, and reports the chosen corner.
  csp::Cost place(std::size_t s, std::vector<int>& h, std::size_t& out_x,
                  int& out_y) const;

  /// Run the skyline decoder on `order` starting at order position `first`,
  /// resuming from the prefix checkpoint captured on the last commit
  /// (`first` must be 0 unless checkpoints_valid_).  Optionally fills
  /// per-order-position waste and placements from `first` on (earlier
  /// entries are untouched — they belong to the unchanged prefix) and, when
  /// `capture` is set, refreshes the prefix checkpoints (callers must pass
  /// the *current* configuration in that case).  Returns total waste.
  [[nodiscard]] csp::Cost decode_from(
      std::size_t first, std::span<const int> order,
      std::vector<csp::Cost>* overflow_by_pos,
      std::vector<SquarePlacement>* placements, bool capture) const;

  /// Full decode, no checkpoint refresh (probes, full_cost).
  [[nodiscard]] csp::Cost decode(std::span<const int> order,
                                 std::vector<csp::Cost>* overflow_by_pos,
                                 std::vector<SquarePlacement>* placements) const;

  PerfectSquareInstance instance_;
  std::string name_ = "perfect-square";
  std::vector<csp::Cost> overflow_by_pos_;      ///< per order position
  std::vector<SquarePlacement> placements_;     ///< decoded, current config
  mutable std::vector<int> scratch_order_;      ///< probe buffer
  mutable std::vector<int> heights_;            ///< decoder skyline buffer
  /// Incremental-skyline state: checkpoint row p is the skyline *before*
  /// placing order position p of the current configuration, with the waste
  /// accumulated so far in checkpoint_err_[p].  A probe whose order agrees
  /// with the current one below position p resumes there instead of
  /// re-decoding the whole packing.  Rebuilt on every commit (on_rebind /
  /// did_swap); probes never touch it.
  mutable std::vector<int> checkpoint_h_;       ///< n rows of `side` columns
  mutable std::vector<csp::Cost> checkpoint_err_;
  bool checkpoints_valid_ = false;
  mutable std::vector<std::size_t> ring_;       ///< window-max ring buffer
  mutable std::vector<csp::Cost> cand_;         ///< feed_lanes candidates
};

}  // namespace cspls::problems
