// Perfect Square placement (CSPLib prob009), the paper's third CSPLib
// benchmark.
//
// Tile a master square of side S exactly with a given list of squares
// (sum of their areas equals S²).  The original C model is unpublished; as
// documented in DESIGN.md (§3), we use the standard permutation + decoder
// formulation from the packing-metaheuristics literature, which keeps the
// problem inside Adaptive Search's native permutation frame:
//
//   - a configuration is a *placement order* (permutation of square ids);
//   - a deterministic skyline bottom-left decoder places the squares in that
//     order, each at the position minimising (y, x) on the current skyline;
//   - the cost charges, per placement, the area it buries below itself
//     (columns lower than the chosen support level can never be filled by a
//     skyline decoder) plus any area protruding above the master square's
//     lid.
//
// Because the areas sum to S², the final buried area equals the protruding
// area, so the cost is twice the waste and zero exactly on perfect tilings;
// charging waste at creation time gives the search a positional gradient.  cost_if_swap re-runs the decoder (O(n·S) with a monotone-deque
// sliding maximum), which mirrors the evaluation weight of the original
// benchmark (perfect-square was the paper's fastest-running benchmark).
//
// Instances: quadtree-generated classes (exactly solvable by construction,
// hardness tuned by split count) and the classic order-21 simple perfect
// squared square of side 112 (Duijvestijn 1978).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

/// A perfect-square placement instance: master side and square sizes.
struct PerfectSquareInstance {
  int side = 0;
  std::vector<int> sizes;
  std::string label;

  /// Exactly-solvable instance built by recursively splitting squares into
  /// four half-size quadrants, starting from one square of side 2^side_log2.
  /// `splits` controls the square count (n = 1 + 3*splits).  Deterministic
  /// in `seed`.
  static PerfectSquareInstance quadtree(int side_log2, int splits,
                                        std::uint64_t seed);

  /// Duijvestijn's order-21 simple perfect squared square (side 112).
  static PerfectSquareInstance duijvestijn21();
};

/// One decoded placement (for reporting and verification).
struct SquarePlacement {
  int x = 0;
  int y = 0;
  int size = 0;
  int id = 0;
};

class PerfectSquare final : public csp::PermutationProblem {
 public:
  explicit PerfectSquare(PerfectSquareInstance instance);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

  [[nodiscard]] const PerfectSquareInstance& instance() const noexcept {
    return instance_;
  }

  /// Placements decoded from the current configuration.
  [[nodiscard]] const std::vector<SquarePlacement>& placements() const noexcept {
    return placements_;
  }

  /// ASCII rendering of the current packing (one char per id, '.' empty).
  [[nodiscard]] std::string packing_to_string() const;

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  /// Run the skyline decoder on `order`; optionally fill per-order-position
  /// waste (buried + protruding area) and placements.  Returns total waste.
  [[nodiscard]] csp::Cost decode(std::span<const int> order,
                                 std::vector<csp::Cost>* overflow_by_pos,
                                 std::vector<SquarePlacement>* placements) const;

  PerfectSquareInstance instance_;
  std::string name_ = "perfect-square";
  std::vector<csp::Cost> overflow_by_pos_;      ///< per order position
  std::vector<SquarePlacement> placements_;     ///< decoded, current config
  mutable std::vector<int> scratch_order_;      ///< probe buffer
  mutable std::vector<int> heights_;            ///< decoder skyline buffer
};

}  // namespace cspls::problems
