#include "problems/costas.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/simd.hpp"

namespace cspls::problems {

using csp::Cost;
namespace simd = util::simd;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}
}  // namespace

Costas::Costas(std::size_t n)
    : PermutationProblem(canonical_values(n)),
      n_(n),
      stride_(2 * n + 1),
      pstride_(simd::padded_size(n, simd::i32x8::kLanes)),
      // +8 scratch slots past the real difference triangle: the SIMD swap
      // scan parks the q == x / q == j lanes there to keep its bump/undo
      // loops branch-free (each dummy absorbs exactly one op per candidate
      // and is restored by the matching undo, so they stay at zero).
      occ_((n - 1) * (2 * n + 1) + 8, 0),
      rowoff_(n * n, 0),
      sign_(n * n, 0),
      rowoff_pad_(n * pstride_, 0),
      sgmask_(n * pstride_, 0),
      xrem_slots_(n, 0),
      undo_rem_(2 * n, 0),
      undo_add_(2 * n, 0),
      vals_pad_(pstride_, 0),
      xslot_(pstride_, 0),
      srj_(pstride_, 0),
      sax_(pstride_, 0),
      saj_(pstride_, 0),
      acc32_(pstride_, 0),
      cand_(pstride_, 0) {
  if (n < 2) {
    throw std::invalid_argument("Costas: n must be >= 2");
  }
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      const std::size_t d = p > q ? p - q : q - p;
      rowoff_[p * n + q] =
          static_cast<std::uint32_t>((d - 1) * stride_ + n);
      sign_[p * n + q] = q > p ? 1 : -1;
      rowoff_pad_[p * pstride_ + q] =
          static_cast<std::int32_t>((d - 1) * stride_ + n);
      sgmask_[p * pstride_ + q] = q > p ? 0 : -1;
    }
  }
}

const std::string& Costas::name() const noexcept { return name_; }

std::string Costas::instance_description() const {
  std::ostringstream os;
  os << "costas n=" << n_;
  return os.str();
}

std::unique_ptr<csp::Problem> Costas::clone() const {
  return std::make_unique<Costas>(*this);
}

Cost Costas::on_rebind() {
  std::fill(occ_.begin(), occ_.end(), 0);
  Cost cost = 0;
  for (std::size_t d = 1; d < n_; ++d) {
    for (std::size_t a = 0; a + d < n_; ++a) {
      const int diff = value(a + d) - value(a);
      if (occ_[slot(d, diff)]++ >= 1) ++cost;
    }
  }
  return cost;
}

Cost Costas::full_cost() const {
  std::vector<int> occ((n_ - 1) * stride_, 0);
  Cost cost = 0;
  for (std::size_t d = 1; d < n_; ++d) {
    for (std::size_t a = 0; a + d < n_; ++a) {
      const int diff = value(a + d) - value(a);
      if (occ[slot(d, diff)]++ >= 1) ++cost;
    }
  }
  return cost;
}

Cost Costas::cost_on_variable(std::size_t i) const {
  // Surplus occurrences of every difference produced by a pair through i.
  Cost err = 0;
  for (std::size_t q = 0; q < n_; ++q) {
    if (q == i) continue;
    const std::size_t a = std::min(i, q);
    const std::size_t d = (i > q) ? i - q : q - i;
    const int diff = value(a + d) - value(a);
    const int occ = occ_[slot(d, diff)];
    if (occ >= 2) err += occ - 1;
  }
  return err;
}

namespace {
/// Value at `pos` under an optional hypothetical exchange of positions i, j.
inline int view(std::span<const int> vals, std::size_t pos, bool swapped,
                std::size_t i, std::size_t j) noexcept {
  if (swapped) {
    if (pos == i) return vals[j];
    if (pos == j) return vals[i];
  }
  return vals[pos];
}
}  // namespace

Cost Costas::bump(std::size_t a, std::size_t d, int step,
                  const int* probe) const {
  // probe encodes (swapped?, i, j) packed by the callers below via the
  // three-int convention {swapped, i, j}; see for_affected_pairs call sites.
  const bool swapped = probe[0] != 0;
  const auto i = static_cast<std::size_t>(probe[1]);
  const auto j = static_cast<std::size_t>(probe[2]);
  const int diff = view(values(), a + d, swapped, i, j) -
                   view(values(), a, swapped, i, j);
  int& occ = occ_[slot(d, diff)];
  if (step > 0) {
    return occ++ >= 1 ? Cost{1} : Cost{0};
  }
  return --occ >= 1 ? Cost{-1} : Cost{0};
}

template <typename F>
void Costas::for_affected_pairs(std::size_t i, std::size_t j, F&& f) const {
  for (std::size_t q = 0; q < n_; ++q) {
    if (q == i) continue;
    f(std::min(i, q), (i > q) ? i - q : q - i);
  }
  for (std::size_t q = 0; q < n_; ++q) {
    if (q == j || q == i) continue;  // the {i, j} pair was already visited
    f(std::min(j, q), (j > q) ? j - q : q - j);
  }
}

Cost Costas::cost_if_swap(std::size_t i, std::size_t j) const {
  const int current[3] = {0, static_cast<int>(i), static_cast<int>(j)};
  const int exchanged[3] = {1, static_cast<int>(i), static_cast<int>(j)};
  Cost delta = 0;
  // Retract the differences of all affected pairs (current configuration)...
  for_affected_pairs(
      i, j, [&](std::size_t a, std::size_t d) { delta += bump(a, d, -1, current); });
  // ...assert them under the hypothetical exchange...
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    delta += bump(a, d, +1, exchanged);
  });
  const Cost result = total_cost() + delta;
  // ...and roll the probe back.
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    (void)bump(a, d, -1, exchanged);
  });
  for_affected_pairs(
      i, j, [&](std::size_t a, std::size_t d) { (void)bump(a, d, +1, current); });
  return result;
}

Cost Costas::did_swap(std::size_t i, std::size_t j) {
  // values() are post-swap; "swapped view" therefore reconstructs the
  // pre-swap configuration (exchange is involutive).
  const int pre_swap[3] = {1, static_cast<int>(i), static_cast<int>(j)};
  const int post_swap[3] = {0, static_cast<int>(i), static_cast<int>(j)};
  Cost delta = 0;
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    delta += bump(a, d, -1, pre_swap);
  });
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    delta += bump(a, d, +1, post_swap);
  });
  return total_cost() + delta;
}

void Costas::cost_on_all_variables(std::span<Cost> out) const {
  // One pass over the difference triangle instead of n scalar calls of O(n)
  // each: every pair's surplus is charged to both endpoints, which is
  // exactly the cost_on_variable projection summed per variable.
  const auto vals = values();
  if (!simd::runtime_enabled()) {
    std::fill(out.begin(), out.end(), Cost{0});
    for (std::size_t d = 1; d < n_; ++d) {
      const int* occ_row = occ_.data() + (d - 1) * stride_ +
                           static_cast<std::ptrdiff_t>(n_);
      for (std::size_t a = 0; a + d < n_; ++a) {
        const int c = occ_row[vals[a + d] - vals[a]];
        if (c >= 2) {
          const Cost s = c - 1;
          out[a] += s;
          out[a + d] += s;
        }
      }
    }
    return;
  }
  // SIMD triangle pass.  The per-row charge "out[a] += s, out[a+d] += s" is
  // two *contiguous* accumulations of the same surplus vector at offsets 0
  // and d, so apart from the occurrence gather the row is pure vector code.
  // The a+d block may overlap the a block when d < kLanes; the second
  // load/store pair sits after the first store, so the overlap is read back
  // correctly.  Accumulation runs in 32-bit (bounded by n² ≪ 2³¹) and is
  // widened into the Cost lanes once at the end.
  constexpr std::size_t kL = simd::i32x8::kLanes;
  const std::size_t n = n_;
  std::fill(acc32_.begin(), acc32_.end(), 0);
  const auto one = simd::i32x8::broadcast(1);
  const auto two = simd::i32x8::broadcast(2);
  for (std::size_t d = 1; d < n; ++d) {
    const int* occ_row = occ_.data() + (d - 1) * stride_ +
                         static_cast<std::ptrdiff_t>(n);
    const std::size_t m = n - d;
    std::size_t a = 0;
    for (; a + kL <= m; a += kL) {
      const auto lo = simd::i32x8::load(vals.data() + a);
      const auto hi = simd::i32x8::load(vals.data() + a + d);
      const auto c = simd::i32x8::gather(occ_row, hi - lo);
      const auto s = (c - one) & simd::cmp_ge(c, two);
      (simd::i32x8::load(acc32_.data() + a) + s).store(acc32_.data() + a);
      (simd::i32x8::load(acc32_.data() + a + d) + s)
          .store(acc32_.data() + a + d);
    }
    for (; a < m; ++a) {
      const int c = occ_row[vals[a + d] - vals[a]];
      if (c >= 2) {
        acc32_[a] += c - 1;
        acc32_[a + d] += c - 1;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = acc32_[i];
}

std::uint64_t Costas::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                    std::size_t& best_j, Cost& best_cost,
                                    std::size_t& ties) const {
  // Probe-and-undo candidate deltas, one fused pass per candidate.  The cost
  // is a sum of per-slot surpluses g(c) = max(0, c - 1) whose marginals
  // telescope, so retracting the ~2n affected pairs and asserting their
  // hypothetical replacements directly on occ_ (recording the slots for the
  // undo) yields the exact cost_if_swap value with no virtual calls, no
  // rollback recomputation and — thanks to the sign-folded slot tables — no
  // branches in the inner loop.
  const std::size_t n = n_;
  const auto vals = values();
  const Cost total = total_cost();
  const int vx = vals[x];
  if (simd::runtime_enabled()) {
    return best_swap_for_simd(x, rng, best_j, best_cost, ties);
  }
  const std::uint32_t* ro_x = rowoff_.data() + x * n;
  const std::int8_t* sg_x = sign_.data() + x * n;

  // The retraction slots of x's pairs are candidate-independent: cache them.
  for (std::size_t q = 0; q < n; ++q) {
    if (q == x) continue;
    xrem_slots_[q] = static_cast<std::uint32_t>(
        static_cast<int>(ro_x[q]) + sg_x[q] * (vals[q] - vx));
  }

  int* const occ = occ_.data();
  std::uint32_t* const rem = undo_rem_.data();
  std::uint32_t* const add = undo_add_.data();
  csp::SwapScan scan(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == x) continue;
    const int vj = vals[j];
    const std::uint32_t* ro_j = rowoff_.data() + j * n;
    const std::int8_t* sg_j = sign_.data() + j * n;
    std::size_t count = 0;
    Cost delta = 0;
    for (std::size_t q = 0; q < n; ++q) {
      if (q == x || q == j) continue;
      const int vq = vals[q];
      // Retract pair {x, q} (cached) and pair {j, q} (current values)...
      const std::uint32_t s_rx = xrem_slots_[q];
      delta -= (--occ[s_rx] >= 1);
      const std::uint32_t s_rj = static_cast<std::uint32_t>(
          static_cast<int>(ro_j[q]) + sg_j[q] * (vq - vj));
      delta -= (--occ[s_rj] >= 1);
      // ...and assert them under the exchange: x holds vj, j holds vx.
      const std::uint32_t s_ax = static_cast<std::uint32_t>(
          static_cast<int>(ro_x[q]) + sg_x[q] * (vq - vj));
      delta += (occ[s_ax]++ >= 1);
      const std::uint32_t s_aj = static_cast<std::uint32_t>(
          static_cast<int>(ro_j[q]) + sg_j[q] * (vq - vx));
      delta += (occ[s_aj]++ >= 1);
      rem[count] = s_rx;
      add[count] = s_ax;
      rem[count + 1] = s_rj;
      add[count + 1] = s_aj;
      count += 2;
    }
    // The {x, j} pair itself: retract once, assert its exchanged diff.
    const std::uint32_t s_rxj = xrem_slots_[j];
    delta -= (--occ[s_rxj] >= 1);
    const std::uint32_t s_axj = static_cast<std::uint32_t>(
        static_cast<int>(ro_x[j]) + sg_x[j] * (vx - vj));
    delta += (occ[s_axj]++ >= 1);
    rem[count] = s_rxj;
    add[count] = s_axj;
    ++count;
    scan.consider(j, total + delta, rng);
    for (std::size_t k = 0; k < count; ++k) {
      ++occ[rem[k]];
      --occ[add[k]];
    }
  }
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return n - 1;
}

std::uint64_t Costas::best_swap_for_simd(std::size_t x, util::Xoshiro256& rng,
                                         std::size_t& best_j, Cost& best_cost,
                                         std::size_t& ties) const {
  // Data-parallel variant of the probe-and-undo scan above.  Because the
  // per-slot surplus marginals telescope (Σ marginals = Σ_slots g(final) −
  // g(initial), independent of op order), two restructurings preserve every
  // candidate cost bit-for-bit:
  //   1. the retraction of x's pairs — common to every candidate — is folded
  //      out of the j loop and applied ONCE up front (delta0), cutting the
  //      serial occurrence-bump work per candidate from 4 ops/pair to 3;
  //   2. slot addresses are batched eight pairs at a time on the lane-padded
  //      mask tables (slot = ro + ((diff^m)−m), no multiply), then consumed
  //      by the (inherently serial, scatter-carried) bump loop.
  // Candidate costs land in cand_ and the reservoir runs through
  // SwapScan::feed_lanes, which replays the historical RNG draws exactly.
  constexpr std::size_t kL = simd::i32x8::kLanes;
  const std::size_t n = n_;
  const std::size_t pn = pstride_;
  const auto vals = values();
  const Cost total = total_cost();
  const int vx = vals[x];
  std::copy(vals.begin(), vals.end(), vals_pad_.begin());
  const std::int32_t* ro_x = rowoff_pad_.data() + x * pn;
  const std::int32_t* mk_x = sgmask_.data() + x * pn;
  const auto vxb = simd::i32x8::broadcast(vx);
  for (std::size_t q = 0; q < pn; q += kL) {
    const auto d = simd::i32x8::load(vals_pad_.data() + q) - vxb;
    const auto m = simd::i32x8::load(mk_x + q);
    const auto s = simd::i32x8::load(ro_x + q) + ((d ^ m) - m);
    s.store(xslot_.data() + q);
  }
  int* const occ = occ_.data();
  // Dummy scratch slots past the triangle (see the constructor): parking the
  // q == x / q == j lanes there makes every serial bump/undo loop below
  // branch-free.  A dummy sees exactly one op per pass, so its count moves
  // 0 → ±1 (contributing nothing to delta: −1 >= 1 and 0 >= 1 are both
  // false) and the inverse op restores it to zero.
  const auto D = static_cast<std::int32_t>((n - 1) * stride_);
  Cost delta0 = 0;
  xslot_[x] = D;
  for (std::size_t q = 0; q < n; ++q) {
    delta0 -= (--occ[xslot_[q]] >= 1);
  }
  const Cost base = total + delta0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == x) {
      cand_[j] = csp::kInfiniteCost;
      continue;
    }
    const int vj = vals[j];
    const std::int32_t* ro_j = rowoff_pad_.data() + j * pn;
    const std::int32_t* mk_j = sgmask_.data() + j * pn;
    const auto vjb = simd::i32x8::broadcast(vj);
    for (std::size_t q = 0; q < pn; q += kL) {
      const auto v = simd::i32x8::load(vals_pad_.data() + q);
      const auto mj = simd::i32x8::load(mk_j + q);
      const auto roj = simd::i32x8::load(ro_j + q);
      const auto mx = simd::i32x8::load(mk_x + q);
      const auto rox = simd::i32x8::load(ro_x + q);
      const auto dj = v - vjb;  // retractions of j's pairs + x's asserts
      (roj + ((dj ^ mj) - mj)).store(srj_.data() + q);
      (rox + ((dj ^ mx) - mx)).store(sax_.data() + q);
      const auto dx = v - vxb;  // j's asserts (j holds vx after exchange)
      (roj + ((dx ^ mj) - mj)).store(saj_.data() + q);
    }
    srj_[x] = D + 1;
    sax_[x] = D + 2;
    saj_[x] = D + 3;
    srj_[j] = D + 4;
    sax_[j] = D + 5;
    saj_[j] = D + 6;
    Cost delta = 0;
    for (std::size_t q = 0; q < n; ++q) {
      delta -= (--occ[srj_[q]] >= 1);
      delta += (occ[sax_[q]]++ >= 1);
      delta += (occ[saj_[q]]++ >= 1);
    }
    // The {x, j} pair: retracted in the delta0 fold, asserted here.
    const std::int32_t s_axj =
        ro_x[j] + (((vx - vj) ^ mk_x[j]) - mk_x[j]);
    delta += (occ[s_axj]++ >= 1);
    cand_[j] = base + delta;
    for (std::size_t q = 0; q < n; ++q) {
      ++occ[srj_[q]];
      --occ[sax_[q]];
      --occ[saj_[q]];
    }
    --occ[s_axj];
  }
  for (std::size_t q = 0; q < n; ++q) {
    ++occ[xslot_[q]];
  }
  csp::SwapScan scan(n);
  scan.feed_lanes(0, std::span<const Cost>(cand_.data(), n), x, rng);
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return n - 1;
}

bool Costas::verify(std::span<const int> vals) const {
  if (vals.size() != n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  for (std::size_t d = 1; d < n_; ++d) {
    std::vector<bool> seen(2 * n_ + 1, false);
    for (std::size_t a = 0; a + d < n_; ++a) {
      const int diff = vals[a + d] - vals[a];
      const auto idx = static_cast<std::size_t>(diff + static_cast<int>(n_));
      if (seen[idx]) return false;
      seen[idx] = true;
    }
  }
  return true;
}

csp::TuningHints Costas::tuning() const noexcept {
  csp::TuningHints hints;
  // CAP settings follow the dedicated Costas study (Diaz et al.): very
  // short freezes and frequent tiny perturbations (every second local
  // minimum shuffles two positions) — an iterated-descent regime.  Plateau
  // walking hurts here (pp = 0): the difference-triangle landscape rewards
  // strict descent plus perturbation.  Swept in scratch harnesses; n = 10
  // solves in ~60 iterations median with these settings.
  hints.freeze_loc_min = 1;
  hints.freeze_swap = 0;
  hints.reset_limit = 2;
  hints.reset_fraction = 0.05;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * n_ * 500;
  hints.prob_accept_plateau = 0.0;
  hints.prob_accept_local_min = 0.0;
  return hints;
}

}  // namespace cspls::problems
