#include "problems/costas.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cspls::problems {

using csp::Cost;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}
}  // namespace

Costas::Costas(std::size_t n)
    : PermutationProblem(canonical_values(n)),
      n_(n),
      stride_(2 * n + 1),
      occ_((n - 1) * (2 * n + 1), 0) {
  if (n < 2) {
    throw std::invalid_argument("Costas: n must be >= 2");
  }
}

const std::string& Costas::name() const noexcept { return name_; }

std::string Costas::instance_description() const {
  std::ostringstream os;
  os << "costas n=" << n_;
  return os.str();
}

std::unique_ptr<csp::Problem> Costas::clone() const {
  return std::make_unique<Costas>(*this);
}

Cost Costas::on_rebind() {
  std::fill(occ_.begin(), occ_.end(), 0);
  Cost cost = 0;
  for (std::size_t d = 1; d < n_; ++d) {
    for (std::size_t a = 0; a + d < n_; ++a) {
      const int diff = value(a + d) - value(a);
      if (occ_[slot(d, diff)]++ >= 1) ++cost;
    }
  }
  return cost;
}

Cost Costas::full_cost() const {
  std::vector<int> occ((n_ - 1) * stride_, 0);
  Cost cost = 0;
  for (std::size_t d = 1; d < n_; ++d) {
    for (std::size_t a = 0; a + d < n_; ++a) {
      const int diff = value(a + d) - value(a);
      if (occ[slot(d, diff)]++ >= 1) ++cost;
    }
  }
  return cost;
}

Cost Costas::cost_on_variable(std::size_t i) const {
  // Surplus occurrences of every difference produced by a pair through i.
  Cost err = 0;
  for (std::size_t q = 0; q < n_; ++q) {
    if (q == i) continue;
    const std::size_t a = std::min(i, q);
    const std::size_t d = (i > q) ? i - q : q - i;
    const int diff = value(a + d) - value(a);
    const int occ = occ_[slot(d, diff)];
    if (occ >= 2) err += occ - 1;
  }
  return err;
}

namespace {
/// Value at `pos` under an optional hypothetical exchange of positions i, j.
inline int view(std::span<const int> vals, std::size_t pos, bool swapped,
                std::size_t i, std::size_t j) noexcept {
  if (swapped) {
    if (pos == i) return vals[j];
    if (pos == j) return vals[i];
  }
  return vals[pos];
}
}  // namespace

Cost Costas::bump(std::size_t a, std::size_t d, int step,
                  const int* probe) const {
  // probe encodes (swapped?, i, j) packed by the callers below via the
  // three-int convention {swapped, i, j}; see for_affected_pairs call sites.
  const bool swapped = probe[0] != 0;
  const auto i = static_cast<std::size_t>(probe[1]);
  const auto j = static_cast<std::size_t>(probe[2]);
  const int diff = view(values(), a + d, swapped, i, j) -
                   view(values(), a, swapped, i, j);
  int& occ = occ_[slot(d, diff)];
  if (step > 0) {
    return occ++ >= 1 ? Cost{1} : Cost{0};
  }
  return --occ >= 1 ? Cost{-1} : Cost{0};
}

template <typename F>
void Costas::for_affected_pairs(std::size_t i, std::size_t j, F&& f) const {
  for (std::size_t q = 0; q < n_; ++q) {
    if (q == i) continue;
    f(std::min(i, q), (i > q) ? i - q : q - i);
  }
  for (std::size_t q = 0; q < n_; ++q) {
    if (q == j || q == i) continue;  // the {i, j} pair was already visited
    f(std::min(j, q), (j > q) ? j - q : q - j);
  }
}

Cost Costas::cost_if_swap(std::size_t i, std::size_t j) const {
  const int current[3] = {0, static_cast<int>(i), static_cast<int>(j)};
  const int exchanged[3] = {1, static_cast<int>(i), static_cast<int>(j)};
  Cost delta = 0;
  // Retract the differences of all affected pairs (current configuration)...
  for_affected_pairs(
      i, j, [&](std::size_t a, std::size_t d) { delta += bump(a, d, -1, current); });
  // ...assert them under the hypothetical exchange...
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    delta += bump(a, d, +1, exchanged);
  });
  const Cost result = total_cost() + delta;
  // ...and roll the probe back.
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    (void)bump(a, d, -1, exchanged);
  });
  for_affected_pairs(
      i, j, [&](std::size_t a, std::size_t d) { (void)bump(a, d, +1, current); });
  return result;
}

Cost Costas::did_swap(std::size_t i, std::size_t j) {
  // values() are post-swap; "swapped view" therefore reconstructs the
  // pre-swap configuration (exchange is involutive).
  const int pre_swap[3] = {1, static_cast<int>(i), static_cast<int>(j)};
  const int post_swap[3] = {0, static_cast<int>(i), static_cast<int>(j)};
  Cost delta = 0;
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    delta += bump(a, d, -1, pre_swap);
  });
  for_affected_pairs(i, j, [&](std::size_t a, std::size_t d) {
    delta += bump(a, d, +1, post_swap);
  });
  return total_cost() + delta;
}

bool Costas::verify(std::span<const int> vals) const {
  if (vals.size() != n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  for (std::size_t d = 1; d < n_; ++d) {
    std::vector<bool> seen(2 * n_ + 1, false);
    for (std::size_t a = 0; a + d < n_; ++a) {
      const int diff = vals[a + d] - vals[a];
      const auto idx = static_cast<std::size_t>(diff + static_cast<int>(n_));
      if (seen[idx]) return false;
      seen[idx] = true;
    }
  }
  return true;
}

csp::TuningHints Costas::tuning() const noexcept {
  csp::TuningHints hints;
  // CAP settings follow the dedicated Costas study (Diaz et al.): very
  // short freezes and frequent tiny perturbations (every second local
  // minimum shuffles two positions) — an iterated-descent regime.  Plateau
  // walking hurts here (pp = 0): the difference-triangle landscape rewards
  // strict descent plus perturbation.  Swept in scratch harnesses; n = 10
  // solves in ~60 iterations median with these settings.
  hints.freeze_loc_min = 1;
  hints.freeze_swap = 0;
  hints.reset_limit = 2;
  hints.reset_fraction = 0.05;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * n_ * 500;
  hints.prob_accept_plateau = 0.0;
  hints.prob_accept_local_min = 0.0;
  return hints;
}

}  // namespace cspls::problems
