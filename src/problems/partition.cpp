#include "problems/partition.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cspls::problems {

using csp::Cost;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}
}  // namespace

Partition::Partition(std::size_t n)
    : PermutationProblem(canonical_values(n)),
      n_(n),
      half_(n / 2),
      cand_(n, 0) {
  if (n == 0 || n % 4 != 0) {
    throw std::invalid_argument("Partition: n must be a positive multiple of 4");
  }
  for (std::size_t v = 1; v <= n_; ++v) {
    total_sum_ += static_cast<Cost>(v);
    total_sq_ += static_cast<Cost>(v) * static_cast<Cost>(v);
  }
}

const std::string& Partition::name() const noexcept { return name_; }

std::string Partition::instance_description() const {
  std::ostringstream os;
  os << "partition n=" << n_;
  return os.str();
}

std::unique_ptr<csp::Problem> Partition::clone() const {
  return std::make_unique<Partition>(*this);
}

Cost Partition::cost_from(Cost sum_a, Cost sq_a) const noexcept {
  const Cost sum_diff = 2 * sum_a - total_sum_;
  const Cost sq_diff = 2 * sq_a - total_sq_;
  return (sum_diff < 0 ? -sum_diff : sum_diff) +
         (sq_diff < 0 ? -sq_diff : sq_diff);
}

Cost Partition::on_rebind() {
  sum_a_ = 0;
  sq_a_ = 0;
  for (std::size_t p = 0; p < half_; ++p) {
    const Cost v = value(p);
    sum_a_ += v;
    sq_a_ += v * v;
  }
  return cost_from(sum_a_, sq_a_);
}

Cost Partition::full_cost() const {
  Cost sum_a = 0, sq_a = 0;
  for (std::size_t p = 0; p < half_; ++p) {
    const Cost v = value(p);
    sum_a += v;
    sq_a += v * v;
  }
  return cost_from(sum_a, sq_a);
}

Cost Partition::cost_on_variable(std::size_t i) const {
  // The halves are interchangeable, so no single variable is more guilty
  // than another a priori; the original "partit" model likewise projects the
  // global cost onto every variable, which makes the engine's worst-variable
  // selection uniform among non-tabu variables.
  (void)i;
  return total_cost();
}

Cost Partition::cost_if_swap(std::size_t i, std::size_t j) const {
  const bool i_in_a = i < half_;
  const bool j_in_a = j < half_;
  if (i_in_a == j_in_a) return total_cost();  // same side: nothing changes
  const std::size_t a_pos = i_in_a ? i : j;
  const std::size_t b_pos = i_in_a ? j : i;
  const Cost va = value(a_pos);
  const Cost vb = value(b_pos);
  const Cost sum_a = sum_a_ - va + vb;
  const Cost sq_a = sq_a_ - va * va + vb * vb;
  return cost_from(sum_a, sq_a);
}

Cost Partition::did_swap(std::size_t i, std::size_t j) {
  const bool i_in_a = i < half_;
  const bool j_in_a = j < half_;
  if (i_in_a == j_in_a) return total_cost();
  // values() are post-swap: the value now at the A-side position arrived
  // from the B side.
  const std::size_t a_pos = i_in_a ? i : j;
  const std::size_t b_pos = i_in_a ? j : i;
  const Cost incoming = value(a_pos);  // new member of side A
  const Cost outgoing = value(b_pos);  // left side A
  sum_a_ += incoming - outgoing;
  sq_a_ += incoming * incoming - outgoing * outgoing;
  return cost_from(sum_a_, sq_a_);
}

void Partition::cost_on_all_variables(std::span<Cost> out) const {
  // The model projects the global cost uniformly onto every variable.
  std::fill(out.begin(), out.end(), total_cost());
}

std::uint64_t Partition::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                       std::size_t& best_j, Cost& best_cost,
                                       std::size_t& ties) const {
  const auto vals = values();
  const Cost total = total_cost();
  const bool x_in_a = x < half_;
  const Cost vx = vals[x];
  // Same-side candidates leave the partition unchanged; cross-side ones move
  // one value each way.  Both regions are contiguous, so the fill is two
  // tight loops and the reservoir runs batched over the whole array.
  Cost* const cand = cand_.data();
  const std::size_t same_lo = x_in_a ? 0 : half_;
  const std::size_t same_hi = x_in_a ? half_ : n_;
  const std::size_t cross_lo = x_in_a ? half_ : 0;
  const std::size_t cross_hi = x_in_a ? n_ : half_;
  for (std::size_t j = same_lo; j < same_hi; ++j) cand[j] = total;
  for (std::size_t j = cross_lo; j < cross_hi; ++j) {
    const Cost va = x_in_a ? vx : vals[j];  // leaves side A
    const Cost vb = x_in_a ? vals[j] : vx;  // joins side A
    cand[j] = cost_from(sum_a_ - va + vb, sq_a_ - va * va + vb * vb);
  }
  cand[x] = csp::kInfiniteCost;
  csp::SwapScan scan(n_);
  scan.feed_lanes(0, std::span<const Cost>(cand, n_), x, rng);
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return n_ - 1;
}

bool Partition::verify(std::span<const int> vals) const {
  if (vals.size() != n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  long long sum_a = 0, sum_b = 0, sq_a = 0, sq_b = 0;
  for (std::size_t p = 0; p < n_; ++p) {
    const long long v = vals[p];
    if (p < half_) {
      sum_a += v;
      sq_a += v * v;
    } else {
      sum_b += v;
      sq_b += v * v;
    }
  }
  return sum_a == sum_b && sq_a == sq_b;
}

csp::TuningHints Partition::tuning() const noexcept {
  csp::TuningHints hints;
  // With uniform projected errors, selection is effectively random; short
  // freezes plus frequent small resets drive the search (matches "partit").
  // Swept empirically: n = 48 solves in ~7k iterations median.
  hints.freeze_loc_min = 2;
  hints.freeze_swap = 0;
  hints.reset_limit =
      static_cast<std::uint32_t>(std::max<std::size_t>(2, n_ / 4));
  hints.reset_fraction = 0.05;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * 100;
  hints.prob_accept_plateau = 0.5;
  hints.prob_accept_local_min = 0.0;
  return hints;
}

}  // namespace cspls::problems
