// Number partitioning ("partit" in the original Adaptive Search
// distribution; CSPLib prob049 family).
//
// Partition {1..n} (n a multiple of 4) into two halves of n/2 numbers such
// that both halves have the same sum and the same sum of squares.  Model:
// a permutation of 1..n; the first n/2 positions form side A.  The cost is
// |sumA - sumB| + |sqA - sqB|, zero exactly on valid partitions.  Swapping
// inside one side never changes the cost; swapping across sides is O(1).
#pragma once

#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

class Partition final : public csp::PermutationProblem {
 public:
  /// n must be a positive multiple of 4 (otherwise no solution exists).
  explicit Partition(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  [[nodiscard]] csp::Cost cost_from(csp::Cost sum_a, csp::Cost sq_a)
      const noexcept;

  std::size_t n_;
  std::size_t half_;
  std::string name_ = "partition";
  csp::Cost total_sum_ = 0;
  csp::Cost total_sq_ = 0;
  csp::Cost sum_a_ = 0;  ///< sum of the first n/2 positions
  csp::Cost sq_a_ = 0;   ///< sum of squares of the first n/2 positions
  /// Candidate costs consumed by SwapScan::feed_lanes.
  mutable std::vector<csp::Cost> cand_;
};

}  // namespace cspls::problems
