// Langford pairing L(2,n) (CSPLib prob024), from the original Adaptive
// Search distribution.
//
// Arrange two copies of each number 1..n in a sequence of length 2n such
// that the two copies of k are exactly k+1 positions apart (k numbers lie
// between them).  Model: positions 0..2n-1 hold a permutation of item ids
// 0..2n-1 where items 2k and 2k+1 are the copies of number k+1.  The cost of
// number k is | |pos(2k) - pos(2k+1)| - (k+2) | summed over k; zero exactly
// on Langford sequences.  Solutions exist iff n ≡ 0 or 3 (mod 4).
#pragma once

#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

class Langford final : public csp::PermutationProblem {
 public:
  explicit Langford(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

  /// Render as the usual number sequence, e.g. "3 1 2 1 3 2".
  [[nodiscard]] std::string sequence_to_string() const;

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  /// |pos(2k) - pos(2k+1)| - (k+2), folded to >= 0, for number index k.
  [[nodiscard]] csp::Cost number_error(std::size_t k) const noexcept;

  std::size_t n_;
  std::string name_ = "langford";
  std::vector<std::size_t> pos_;  ///< item id -> position (inverse of values)
  /// Candidate costs consumed by SwapScan::feed_lanes.
  mutable std::vector<csp::Cost> cand_;
};

}  // namespace cspls::problems
