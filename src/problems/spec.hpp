// The canonical instance-spec string shared by the CLI flags, the JSON
// solve API and the bench harnesses — one parser instead of the per-binary
// name/size plumbing each call site used to reimplement.
//
// Grammar:
//
//   spec := name [":" size] ["@" seed]
//
//   "costas:18"          Costas array of order 18
//   "queens"             n-queens at the registry's default size
//   "perfect-square:8@7" generated quadtree instance, 8 splits, seed 7
//   "perfect-square:0"   the Duijvestijn order-21 instance
//
// An omitted size resolves to problems::default_size(name); the seed only
// affects generated instances (perfect-square quadtrees) and defaults to 0.
// Rejections carry actionable messages: unknown names list every valid
// name, malformed or unusable sizes say what the problem expects.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "csp/problem.hpp"

namespace cspls::problems {

struct ProblemSpec {
  std::string name;
  std::size_t size = 0;
  std::uint64_t instance_seed = 0;  ///< generated instances only

  [[nodiscard]] bool operator==(const ProblemSpec&) const = default;
};

/// Parse a spec string; std::nullopt on rejection with the diagnostic in
/// `*error` (when non-null).  Sizes are validated against the problem's
/// structural requirements (see registry's validate_instance).
[[nodiscard]] std::optional<ProblemSpec> try_parse_spec(
    std::string_view spec, std::string* error = nullptr);

/// Parse a spec string; throws std::invalid_argument with the same
/// diagnostic try_parse_spec reports.
[[nodiscard]] ProblemSpec parse_spec(std::string_view spec);

/// Canonical rendering: "name:size", plus "@seed" when instance_seed != 0.
/// format_spec(parse_spec(s)) is a fixpoint: re-parsing it yields the same
/// ProblemSpec.
[[nodiscard]] std::string format_spec(const ProblemSpec& spec);

/// Instantiate the spec via the registry (make_problem).
[[nodiscard]] std::unique_ptr<csp::Problem> instantiate(
    const ProblemSpec& spec);

}  // namespace cspls::problems
