// N-Queens in the permutation model (from the original Adaptive Search
// distribution; not in the paper's figures but used by the validation
// benches against the complete-search baseline).
//
// V[i] = row of the queen in column i, a permutation of 0..n-1 (rows and
// columns are therefore conflict-free by construction); cost counts surplus
// occupations of the 2(2n-1) diagonals.
#pragma once

#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

class Queens final : public csp::PermutationProblem {
 public:
  explicit Queens(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  [[nodiscard]] std::size_t up_slot(std::size_t col, int row) const noexcept {
    return static_cast<std::size_t>(row) + col;  // row + col in [0, 2n-2]
  }
  [[nodiscard]] std::size_t down_slot(std::size_t col, int row) const noexcept {
    return static_cast<std::size_t>(row - static_cast<int>(col) +
                                    static_cast<int>(n_) - 1);
  }

  ///

  csp::Cost bump(std::size_t col, int row, int step) const;

  std::size_t n_;
  std::string name_ = "queens";
  mutable std::vector<int> up_;    ///< occupation of / diagonals
  mutable std::vector<int> down_;  ///< occupation of \ diagonals
};

}  // namespace cspls::problems
