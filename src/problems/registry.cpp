#include "problems/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "problems/all_interval.hpp"
#include "problems/alpha.hpp"
#include "problems/costas.hpp"
#include "problems/langford.hpp"
#include "problems/magic_square.hpp"
#include "problems/partition.hpp"
#include "problems/perfect_square.hpp"
#include "problems/queens.hpp"

namespace cspls::problems {

const std::vector<std::string>& problem_names() {
  static const std::vector<std::string> names = {
      "costas",  "all-interval", "perfect-square", "magic-square",
      "queens",  "langford",     "partition",      "alpha"};
  return names;
}

const std::vector<std::string>& paper_benchmarks() {
  static const std::vector<std::string> names = {
      "all-interval", "perfect-square", "magic-square", "costas"};
  return names;
}

namespace {

std::string valid_names_list() {
  std::string list;
  for (const auto& name : problem_names()) {
    if (!list.empty()) list += ", ";
    list += name;
  }
  return list;
}

std::string unknown_problem_message(const std::string& name) {
  return "unknown problem \"" + name + "\" (valid names: " +
         valid_names_list() + ")";
}

[[noreturn]] void throw_unknown(const std::string& name) {
  throw std::invalid_argument(unknown_problem_message(name));
}

}  // namespace

bool is_known_problem(const std::string& name) {
  const auto& names = problem_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string validate_instance(const std::string& name, std::size_t size) {
  if (!is_known_problem(name)) return unknown_problem_message(name);
  // alpha ignores the size; perfect-square treats 0 as the Duijvestijn
  // order-21 instance and any other value as the quadtree split count.
  if (name == "alpha" || name == "perfect-square") return {};
  if (size == 0) {
    return "problem \"" + name + "\" needs a size >= 1 (got 0)";
  }
  if (name == "partition" && size % 4 != 0) {
    return "partition needs a size that is a multiple of 4 (got " +
           std::to_string(size) + ")";
  }
  if (name == "langford" && size < 2) {
    return "langford needs a size >= 2 (got " + std::to_string(size) + ")";
  }
  return {};
}

std::unique_ptr<csp::Problem> make_problem(const std::string& name,
                                           std::size_t size,
                                           std::uint64_t seed) {
  if (const std::string error = validate_instance(name, size);
      !error.empty()) {
    throw std::invalid_argument(error);
  }
  if (name == "costas") return std::make_unique<Costas>(size);
  if (name == "all-interval") return std::make_unique<AllInterval>(size);
  if (name == "magic-square") return std::make_unique<MagicSquare>(size);
  if (name == "queens") return std::make_unique<Queens>(size);
  if (name == "langford") return std::make_unique<Langford>(size);
  if (name == "partition") return std::make_unique<Partition>(size);
  if (name == "alpha") return std::make_unique<Alpha>();
  if (name == "perfect-square") {
    if (size == 0) {
      return std::make_unique<PerfectSquare>(
          PerfectSquareInstance::duijvestijn21());
    }
    return std::make_unique<PerfectSquare>(
        PerfectSquareInstance::quadtree(5, static_cast<int>(size), seed));
  }
  throw_unknown(name);
}

std::size_t default_size(const std::string& name) {
  if (name == "costas") return 10;
  if (name == "all-interval") return 24;
  if (name == "perfect-square") return 5;   // quadtree splits
  if (name == "magic-square") return 10;
  if (name == "queens") return 50;
  if (name == "langford") return 16;
  if (name == "partition") return 40;
  if (name == "alpha") return 26;
  throw_unknown(name);
}

std::size_t bench_size(const std::string& name) {
  // Chosen so the median single walk sits in the 5-60 ms band on commodity
  // hardware with a pronounced heavy tail (see DESIGN.md §4) — small enough
  // that a full harness run takes minutes, large enough that the runtime
  // law has the shape that drives the paper's speedup curves.
  if (name == "costas") return 13;
  if (name == "all-interval") return 20;
  if (name == "perfect-square") return 8;   // quadtree splits (25 squares)
  if (name == "magic-square") return 12;
  if (name == "queens") return 100;
  if (name == "langford") return 24;
  if (name == "partition") return 80;
  if (name == "alpha") return 26;
  throw_unknown(name);
}

std::size_t paper_size(const std::string& name) {
  if (name == "costas") return 21;         // paper runs n=21 and n=22
  if (name == "all-interval") return 700;
  if (name == "perfect-square") return 0;  // Duijvestijn order-21
  if (name == "magic-square") return 200;
  if (name == "queens") return 1000;
  if (name == "langford") return 100;
  if (name == "partition") return 400;
  if (name == "alpha") return 26;
  throw_unknown(name);
}

}  // namespace cspls::problems
