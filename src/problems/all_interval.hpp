// All-Interval Series (CSPLib prob007), one of the paper's CSPLib benchmarks.
//
// Find a permutation V of {0..n-1} such that the n-1 absolute differences
// |V[i+1] - V[i]| are all distinct (hence a permutation of {1..n-1}).  Cost
// model (as in the original Adaptive Search library): keep an occurrence
// table of the differences; the cost is the number of *surplus* occurrences
// (sum of max(0, occ(d) - 1)), which is zero exactly on all-interval series.
// A swap touches at most 4 differences, so cost_if_swap is O(1).
#pragma once

#include <string>
#include <vector>

#include "csp/problem.hpp"

namespace cspls::problems {

class AllInterval final : public csp::PermutationProblem {
 public:
  /// Series length n (n >= 2).
  explicit AllInterval(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override;

  [[nodiscard]] csp::Cost full_cost() const override;
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override;
  void cost_on_all_variables(std::span<csp::Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] csp::TuningHints tuning() const noexcept override;

  /// Custom reset (as the original library's per-benchmark Reset hook):
  /// reverse a random segment.  A reversal disturbs only the two border
  /// differences, so it escapes the plateau without destroying the interior
  /// structure the walk has built — the subset-shuffle default is far too
  /// violent for this landscape.
  csp::Cost reset_perturbation(double fraction,
                               util::Xoshiro256& rng) override;

 protected:
  csp::Cost on_rebind() override;
  csp::Cost did_swap(std::size_t i, std::size_t j) override;

 private:
  /// Difference of adjacent pair starting at position p (p in [0, n-2]),
  /// evaluated as if positions i<->j held swapped values when swapped=true.
  [[nodiscard]] int diff_at(std::size_t p) const noexcept;
  [[nodiscard]] int diff_at_swapped(std::size_t p, std::size_t i,
                                    std::size_t j) const noexcept;

  /// Collect the (deduplicated) pair-start positions affected by swapping
  /// positions i and j into `out`; returns count (<= 4).
  std::size_t affected_pairs(std::size_t i, std::size_t j,
                             std::size_t out[4]) const noexcept;

  std::size_t n_;
  std::string name_ = "all-interval";
  /// occ_[d] = number of adjacent pairs with |difference| == d (d in 1..n-1).
  /// Mutable: cost_if_swap tweaks and rolls back entries (<= 4) in place.
  mutable std::vector<int> occ_;
  /// |V[p+1] - V[p]| per pair start, maintained incrementally by
  /// did_swap/on_rebind so the bulk scans read the current differences
  /// instead of recomputing them; cand_cost_ holds every candidate's total
  /// cost so the reservoir scan runs over a plain array after the compute
  /// pass of best_swap_for.
  mutable std::vector<int> pair_diff_;
  mutable std::vector<csp::Cost> cand_cost_;
};

}  // namespace cspls::problems
