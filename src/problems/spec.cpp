#include "problems/spec.hpp"

#include <charconv>
#include <stdexcept>

#include "problems/registry.hpp"

namespace cspls::problems {

namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

std::optional<ProblemSpec> try_parse_spec(std::string_view spec,
                                          std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<ProblemSpec> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  ProblemSpec parsed;
  std::string_view rest = spec;

  // Trailing "@seed" first, so sizes can't swallow it.
  if (const auto at = rest.rfind('@'); at != std::string_view::npos) {
    const std::string_view seed_text = rest.substr(at + 1);
    if (!parse_u64(seed_text, parsed.instance_seed)) {
      return fail("bad instance seed \"" + std::string(seed_text) +
                  "\" in spec \"" + std::string(spec) +
                  "\" (expected an unsigned integer after '@')");
    }
    rest = rest.substr(0, at);
  }

  bool has_size = false;
  std::uint64_t size = 0;
  if (const auto colon = rest.find(':'); colon != std::string_view::npos) {
    const std::string_view size_text = rest.substr(colon + 1);
    if (!parse_u64(size_text, size)) {
      return fail("bad size \"" + std::string(size_text) + "\" in spec \"" +
                  std::string(spec) +
                  "\" (expected an unsigned integer after ':')");
    }
    has_size = true;
    rest = rest.substr(0, colon);
  }
  parsed.name = std::string(rest);

  if (!has_size) {
    // Validate the name before asking the registry for its default size so
    // unknown names get the name-listing diagnostic, not a size complaint.
    if (!is_known_problem(parsed.name)) {
      return fail(validate_instance(parsed.name, 0));
    }
    parsed.size = default_size(parsed.name);
  } else {
    parsed.size = static_cast<std::size_t>(size);
  }

  if (const std::string err = validate_instance(parsed.name, parsed.size);
      !err.empty()) {
    return fail(err);
  }
  return parsed;
}

ProblemSpec parse_spec(std::string_view spec) {
  std::string error;
  auto parsed = try_parse_spec(spec, &error);
  if (!parsed.has_value()) throw std::invalid_argument(error);
  return *std::move(parsed);
}

std::string format_spec(const ProblemSpec& spec) {
  std::string out = spec.name + ":" + std::to_string(spec.size);
  if (spec.instance_seed != 0) {
    out += "@" + std::to_string(spec.instance_seed);
  }
  return out;
}

std::unique_ptr<csp::Problem> instantiate(const ProblemSpec& spec) {
  return make_problem(spec.name, spec.size, spec.instance_seed);
}

}  // namespace cspls::problems
