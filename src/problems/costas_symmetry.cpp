#include "problems/costas_symmetry.hpp"

#include <cstddef>

namespace cspls::problems {

std::vector<int> costas_reverse(const std::vector<int>& v) {
  return std::vector<int>(v.rbegin(), v.rend());
}

std::vector<int> costas_complement(const std::vector<int>& v) {
  const int n = static_cast<int>(v.size());
  std::vector<int> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = n + 1 - v[i];
  return out;
}

std::vector<int> costas_transpose(const std::vector<int>& v) {
  // V'[row-1] = column+1 where V[column] = row: the inverse permutation.
  std::vector<int> out(v.size());
  for (std::size_t col = 0; col < v.size(); ++col) {
    out[static_cast<std::size_t>(v[col] - 1)] = static_cast<int>(col) + 1;
  }
  return out;
}

std::vector<int> costas_rotate90(const std::vector<int>& v) {
  return costas_reverse(costas_transpose(v));
}

std::set<std::vector<int>> costas_symmetry_class(const std::vector<int>& v) {
  std::set<std::vector<int>> out;
  std::vector<int> r = v;
  for (int rotation = 0; rotation < 4; ++rotation) {
    out.insert(r);
    out.insert(costas_reverse(r));
    r = costas_rotate90(r);
  }
  return out;
}

}  // namespace cspls::problems
