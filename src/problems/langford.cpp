#include "problems/langford.hpp"

#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cspls::problems {

using csp::Cost;

namespace {
std::vector<int> canonical_values(std::size_t n) {
  std::vector<int> v(2 * n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}
}  // namespace

Langford::Langford(std::size_t n)
    : PermutationProblem(canonical_values(n)),
      n_(n),
      pos_(2 * n, 0),
      cand_(2 * n, 0) {
  if (n < 1) {
    throw std::invalid_argument("Langford: n must be >= 1");
  }
}

const std::string& Langford::name() const noexcept { return name_; }

std::string Langford::instance_description() const {
  std::ostringstream os;
  os << "langford L(2," << n_ << ")";
  return os.str();
}

std::unique_ptr<csp::Problem> Langford::clone() const {
  return std::make_unique<Langford>(*this);
}

Cost Langford::number_error(std::size_t k) const noexcept {
  const auto a = static_cast<std::ptrdiff_t>(pos_[2 * k]);
  const auto b = static_cast<std::ptrdiff_t>(pos_[2 * k + 1]);
  const auto gap = std::abs(a - b);
  const auto want = static_cast<std::ptrdiff_t>(k) + 2;
  return static_cast<Cost>(std::abs(gap - want));
}

Cost Langford::on_rebind() {
  const auto vals = values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    pos_[static_cast<std::size_t>(vals[p])] = p;
  }
  Cost cost = 0;
  for (std::size_t k = 0; k < n_; ++k) cost += number_error(k);
  return cost;
}

Cost Langford::full_cost() const {
  const auto vals = values();
  std::vector<std::size_t> pos(vals.size());
  for (std::size_t p = 0; p < vals.size(); ++p) {
    pos[static_cast<std::size_t>(vals[p])] = p;
  }
  Cost cost = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    const auto a = static_cast<std::ptrdiff_t>(pos[2 * k]);
    const auto b = static_cast<std::ptrdiff_t>(pos[2 * k + 1]);
    cost += static_cast<Cost>(
        std::abs(std::abs(a - b) - (static_cast<std::ptrdiff_t>(k) + 2)));
  }
  return cost;
}

Cost Langford::cost_on_variable(std::size_t i) const {
  // Blame a position for the error of the number whose copy occupies it.
  const auto item = static_cast<std::size_t>(value(i));
  return number_error(item / 2);
}

Cost Langford::cost_if_swap(std::size_t i, std::size_t j) const {
  const auto item_i = static_cast<std::size_t>(value(i));
  const auto item_j = static_cast<std::size_t>(value(j));
  const std::size_t ki = item_i / 2;
  const std::size_t kj = item_j / 2;
  if (ki == kj) return total_cost();  // both copies of one number: no change

  auto& self = const_cast<Langford&>(*this);
  const Cost before = number_error(ki) + number_error(kj);
  std::swap(self.pos_[item_i], self.pos_[item_j]);
  const Cost after = number_error(ki) + number_error(kj);
  std::swap(self.pos_[item_i], self.pos_[item_j]);
  return total_cost() - before + after;
}

Cost Langford::did_swap(std::size_t i, std::size_t j) {
  // values() are post-swap: value(i) is the item that moved *to* i.
  const auto item_to_i = static_cast<std::size_t>(value(i));
  const auto item_to_j = static_cast<std::size_t>(value(j));
  const std::size_t ka = item_to_i / 2;
  const std::size_t kb = item_to_j / 2;
  const Cost before = number_error(ka) + (ka == kb ? 0 : number_error(kb));
  pos_[item_to_i] = i;
  pos_[item_to_j] = j;
  const Cost after = number_error(ka) + (ka == kb ? 0 : number_error(kb));
  return total_cost() - before + after;
}

void Langford::cost_on_all_variables(std::span<Cost> out) const {
  // Each number's error is shared by its two copies: compute it once per
  // number and scatter through the position index.
  for (std::size_t k = 0; k < n_; ++k) {
    const Cost err = number_error(k);
    out[pos_[2 * k]] = err;
    out[pos_[2 * k + 1]] = err;
  }
}

std::uint64_t Langford::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                      std::size_t& best_j, Cost& best_cost,
                                      std::size_t& ties) const {
  const std::size_t nn = num_variables();
  const auto vals = values();
  const Cost total = total_cost();
  const auto item_x = static_cast<std::size_t>(vals[x]);
  const std::size_t kx = item_x / 2;
  const Cost ex = number_error(kx);
  const auto mate_x_pos = static_cast<std::ptrdiff_t>(pos_[item_x ^ 1U]);

  const auto gap_error = [](std::ptrdiff_t a, std::ptrdiff_t b,
                            std::size_t k) noexcept {
    const auto gap = a > b ? a - b : b - a;
    const auto miss = gap - (static_cast<std::ptrdiff_t>(k) + 2);
    return static_cast<Cost>(miss < 0 ? -miss : miss);
  };

  Cost* const cand = cand_.data();
  for (std::size_t j = 0; j < nn; ++j) {
    const auto item_j = static_cast<std::size_t>(vals[j]);
    const std::size_t kj = item_j / 2;
    if (kj == kx) {
      // Both copies of one number: the gap is symmetric, nothing changes
      // (covers j == x too; that lane is overwritten with the sentinel).
      cand[j] = total;
      continue;
    }
    // Hypothetically item_x sits at j and item_j at x; the mates stay put.
    const Cost ex_after = gap_error(static_cast<std::ptrdiff_t>(j),
                                    mate_x_pos, kx);
    const Cost ej = number_error(kj);
    const Cost ej_after =
        gap_error(static_cast<std::ptrdiff_t>(x),
                  static_cast<std::ptrdiff_t>(pos_[item_j ^ 1U]), kj);
    cand[j] = total - ex - ej + ex_after + ej_after;
  }
  cand[x] = csp::kInfiniteCost;
  csp::SwapScan scan(nn);
  scan.feed_lanes(0, std::span<const Cost>(cand, nn), x, rng);
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return nn - 1;
}

bool Langford::verify(std::span<const int> vals) const {
  if (vals.size() != 2 * n_) return false;
  if (!csp::is_permutation_of(vals, canonical_values(n_))) return false;
  std::vector<std::ptrdiff_t> pos(2 * n_);
  for (std::size_t p = 0; p < vals.size(); ++p) {
    pos[static_cast<std::size_t>(vals[p])] = static_cast<std::ptrdiff_t>(p);
  }
  for (std::size_t k = 0; k < n_; ++k) {
    const auto gap = std::abs(pos[2 * k] - pos[2 * k + 1]);
    if (gap != static_cast<std::ptrdiff_t>(k) + 2) return false;
  }
  return true;
}

csp::TuningHints Langford::tuning() const noexcept {
  csp::TuningHints hints;
  hints.freeze_loc_min = 2;
  hints.freeze_swap = 0;
  hints.reset_limit =
      static_cast<std::uint32_t>(std::max<std::size_t>(2, n_ / 2));
  hints.reset_fraction = 0.15;
  hints.restart_limit = static_cast<std::uint64_t>(n_) * n_ * 200;
  hints.prob_accept_local_min = 0.05;
  return hints;
}

std::string Langford::sequence_to_string() const {
  std::ostringstream os;
  const auto vals = values();
  for (std::size_t p = 0; p < vals.size(); ++p) {
    if (p) os << ' ';
    os << (static_cast<std::size_t>(vals[p]) / 2 + 1);
  }
  return os.str();
}

}  // namespace cspls::problems
