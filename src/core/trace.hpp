// Per-walker instrumentation record threaded through core::Hooks.
//
// A WalkerTrace is the observational counterpart of core::Result: where the
// Result reports *what* a walk concluded, the trace records *how it got
// there* — the behavioural counters plus an optional cost-over-time series
// sampled every `Hooks::trace_sample_period` iterations.  The parallel
// runtime (parallel::WalkerPool) fills one trace per walker when tracing is
// enabled; the simulator's runtime-distribution sampling (sim/) and the
// bench harnesses consume them.
//
// Recording never touches the walk's RNG stream, so enabling a trace cannot
// change the outcome of a seeded run — the property the scheduling-mode
// equivalence tests rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "csp/cost.hpp"

namespace cspls::core {

/// One point of the cost-over-time series: the total cost of the current
/// configuration at a given engine iteration.
struct TraceSample {
  std::uint64_t iteration = 0;
  csp::Cost cost = 0;

  [[nodiscard]] bool operator==(const TraceSample&) const = default;
};

/// Instrumentation record of one walk (one walker of a pool).
struct WalkerTrace {
  std::size_t walker_id = 0;

  bool solved = false;
  bool interrupted = false;  ///< cut short by the pool's stop signal

  std::uint64_t iterations = 0;
  std::uint64_t resets = 0;        ///< partial resets performed
  std::uint64_t restarts = 0;      ///< full restarts performed
  std::uint64_t local_minima = 0;  ///< local-minimum events

  double seconds = 0.0;                      ///< solo wall-clock of the walk
  csp::Cost best_cost = csp::kInfiniteCost;  ///< best cost ever reached

  /// Cost-over-time samples: one entry per `trace_sample_period` iterations
  /// (plus the initial configuration at iteration 0 and the final best), in
  /// non-decreasing iteration order.  Empty when sampling was disabled.
  std::vector<TraceSample> cost_samples;

  [[nodiscard]] bool recorded() const noexcept {
    return iterations > 0 || !cost_samples.empty();
  }

  [[nodiscard]] bool operator==(const WalkerTrace&) const = default;
};

}  // namespace cspls::core
