// Restart schedules for heavy-tailed local-search runtimes.
//
// The paper's engine restarts every walk after a fixed iteration budget.
// For heavy-tailed runtime laws — exactly what the benchmark suite measures
// — the Luby–Sinclair–Zuckerman universal sequence (1,1,2,1,1,2,4,1,1,2,...)
// is within a log factor of the optimal restart schedule without knowing
// the law; it is the standard upgrade in modern SAT/CSP engines and the
// natural single-machine counterpart of the paper's multi-walk portfolio
// (racing k walkers and restarting one walker cleverly both exploit the
// same left tail).  bench_ablation_params-style comparisons and the unit
// tests quantify when it pays.
#pragma once

#include <cstdint>

namespace cspls::core {

/// How the per-walk iteration budget evolves across restarts.
enum class RestartSchedule {
  kFixed,  ///< every walk gets restart_limit iterations (the paper's scheme)
  kLuby,   ///< walk i gets luby(i+1) * restart_limit iterations
};

/// The Luby universal sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4,
/// 8, ...  (1-based).  luby(i) = 2^(k-1) when i = 2^k - 1; otherwise
/// recurses on i - 2^(k-1) + 1 for the largest k with 2^(k-1) <= i < 2^k-1.
[[nodiscard]] constexpr std::uint64_t luby(std::uint64_t i) noexcept {
  while (true) {
    // Find k with i <= 2^k - 1.
    std::uint64_t size = 1;   // 2^k - 1
    std::uint64_t power = 1;  // 2^(k-1) at loop exit
    while (size < i) {
      size = 2 * size + 1;
      power *= 2;
    }
    if (size == i) return power == 1 ? 1 : power;
    // i lies inside the repeated prefix of length (size-1)/2.
    i -= (size - 1) / 2;
  }
}

/// Iteration budget of walk number `walk_index` (0-based) under `schedule`
/// with base budget `base`.
[[nodiscard]] constexpr std::uint64_t walk_budget(
    RestartSchedule schedule, std::uint64_t base,
    std::uint64_t walk_index) noexcept {
  if (schedule == RestartSchedule::kLuby) {
    return base * luby(walk_index + 1);
  }
  return base;
}

}  // namespace cspls::core
