#include "core/params.hpp"

#include <algorithm>
#include <sstream>

namespace cspls::core {

Params Params::from_hints(const csp::TuningHints& hints,
                          std::size_t num_variables) {
  Params p;
  const auto n = static_cast<std::uint64_t>(std::max<std::size_t>(1, num_variables));
  p.freeze_loc_min = hints.freeze_loc_min;
  p.freeze_swap = hints.freeze_swap;
  p.reset_fraction = hints.reset_fraction;
  p.prob_accept_plateau = hints.prob_accept_plateau;
  p.prob_accept_local_min = hints.prob_accept_local_min;
  // Size-derived defaults, mirroring the original library's scaling:
  // reset after ~n/10 marked variables, restart after ~n*1000 iterations.
  p.reset_limit = hints.reset_limit != 0
                      ? hints.reset_limit
                      : static_cast<std::uint32_t>(std::max<std::uint64_t>(
                            2, n / 10));
  p.restart_limit =
      hints.restart_limit != 0 ? hints.restart_limit : n * 1000;
  return p;
}

std::string Params::describe() const {
  std::ostringstream os;
  os << "target=" << target_cost << " restart_limit=" << restart_limit
     << (restart_schedule == RestartSchedule::kLuby ? " (luby)" : "")
     << " max_restarts=" << max_restarts
     << " freeze_loc_min=" << freeze_loc_min << " freeze_swap=" << freeze_swap
     << " reset_limit=" << reset_limit << " reset_fraction=" << reset_fraction
     << " p_plateau=" << prob_accept_plateau
     << " p_accept_lm=" << prob_accept_local_min;
  return os.str();
}

}  // namespace cspls::core
