// Solver configuration for the Adaptive Search engine.
#pragma once

#include <cstdint>
#include <string>

#include "core/restart_policy.hpp"
#include "csp/cost.hpp"
#include "csp/tuning.hpp"

namespace cspls::core {

/// Tuning knobs of Adaptive Search, named after the original library's
/// parameters (see csp/tuning.hpp for the per-model hints they derive from).
struct Params {
  /// Search succeeds when total cost drops to (or below) this target.
  csp::Cost target_cost = 0;

  /// Iteration budget of a single walk before a full restart
  /// (original "restart_limit").  Under RestartSchedule::kLuby this is the
  /// base unit multiplied by the Luby sequence per walk.
  std::uint64_t restart_limit = 100'000;

  /// How the walk budget evolves across restarts (fixed = paper's scheme).
  RestartSchedule restart_schedule = RestartSchedule::kFixed;

  /// Number of full restarts allowed before the run reports failure
  /// (original "restart_max").  The total iteration budget is therefore
  /// restart_limit * (max_restarts + 1).
  std::uint32_t max_restarts = 0;

  /// Iterations a variable stays tabu after a local minimum ("freeze_loc_min").
  std::uint32_t freeze_loc_min = 5;

  /// Iterations both swapped variables stay tabu after a committed swap
  /// ("freeze_swap"); 0 disables.
  std::uint32_t freeze_swap = 0;

  /// Number of simultaneously-marked variables that triggers a partial reset
  /// ("reset_limit").
  std::uint32_t reset_limit = 10;

  /// Fraction of variables re-randomized by a partial reset
  /// ("reset_percentage"), in [0,1].
  double reset_fraction = 0.1;

  /// When the best move keeps the cost *equal* (a plateau), probability of
  /// committing it instead of treating the variable as a local minimum.
  /// Plateau walking is essential on step-shaped landscapes (all-interval,
  /// magic-square).
  double prob_accept_plateau = 1.0;

  /// At a strict local minimum, probability of committing the best
  /// (worsening) move anyway instead of marking the variable
  /// ("prob_select_loc_min").
  double prob_accept_local_min = 0.0;

  /// Build engine parameters from a model's tuning hints, deriving the
  /// size-dependent defaults the original library computes per benchmark.
  static Params from_hints(const csp::TuningHints& hints,
                           std::size_t num_variables);

  /// One-line rendering for harness logs.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const Params&) const = default;
};

}  // namespace cspls::core
