// Cooperative stop signal for the Adaptive Search engine.
//
// Replaces the engine's historical `const std::atomic<bool>*` stop
// parameter with one value carrying every way a walk can be cut short:
//
//   * up to two external cancel flags (the parallel runtime combines a
//     caller-supplied cancellation flag with its own first-finisher
//     completion flag), and
//   * an optional steady-clock deadline, which is what makes time-budgeted
//     runs expressible — the runtime-distribution line of work needs
//     "best configuration after t seconds", not "after n iterations".
//
// Polling is engine-rate (once per iteration) so it must stay cheap: flag
// loads are relaxed, and the deadline only reads the clock every
// kDeadlinePollStride polls.  Each walker keeps its *own copy* of the
// token (copies are cheap), so the throttling counter is never shared
// between threads.  A default-constructed token never fires — an engine
// run with an empty token is byte-for-byte the historical unstoppable run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cspls::core {

/// What ended a walk early.  Recorded by the poll that observed the stop,
/// so interruption is attributed to its actual source — re-consulting the
/// clock or the flags after the fact would misattribute (e.g. a race that
/// finished normally just before a deadline, examined just after it).
enum class StopCause : std::uint8_t {
  kNone,       ///< not stopped
  kCancel,     ///< the token's own (primary) cancel flag
  kChained,    ///< a flag chained via also_cancelled_by (the pool's
               ///< internal first-finisher completion flag)
  kPreempted,  ///< a cooperative preemption flag chained via with_preempt:
               ///< drain to the next safe point and hand back a checkpoint
  kDeadline,   ///< the steady-clock deadline passed
  kFailed,     ///< the walk died on an exception; never produced by poll(),
               ///< recorded by the pool's crash containment with the
               ///< exception message in Result::error
};

class StopToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never fires.
  StopToken() noexcept = default;

  /// Fires when `*cancel` becomes true (nullptr = no flag).
  explicit StopToken(const std::atomic<bool>* cancel) noexcept {
    flags_[0] = cancel;
  }

  StopToken(const std::atomic<bool>* cancel, Clock::time_point deadline) noexcept
      : deadline_(deadline), has_deadline_(true) {
    flags_[0] = cancel;
  }

  [[nodiscard]] static StopToken with_deadline(
      Clock::time_point deadline) noexcept {
    return StopToken(nullptr, deadline);
  }

  /// Deadline `budget` from now.
  [[nodiscard]] static StopToken after(std::chrono::milliseconds budget) {
    return with_deadline(Clock::now() + budget);
  }

  /// This token with its deadline set to `deadline` (or tightened to it,
  /// when the existing deadline is later).  The serving layer uses this to
  /// apply a request's time budget on top of a caller token that may
  /// already carry one.
  [[nodiscard]] StopToken expiring_at(Clock::time_point deadline) const noexcept {
    StopToken combined = *this;
    if (!combined.has_deadline_ || deadline < combined.deadline_) {
      combined.deadline_ = deadline;
      combined.has_deadline_ = true;
    }
    return combined;
  }

  /// This token plus one chained cancel flag (the parallel runtime chains
  /// its internal completion flag onto the caller's external token, and the
  /// serving layer chains its watchdog flag before handing the token down).
  /// Chained flags occupy the secondary slots — polls attribute them as
  /// StopCause::kChained, distinct from the primary kCancel.  Chains stack
  /// (two secondary slots, so a watchdog chain survives the pool's
  /// first-finisher chain); a third chain overwrites the last slot.
  [[nodiscard]] StopToken also_cancelled_by(
      const std::atomic<bool>* flag) const noexcept {
    StopToken combined = *this;
    combined.flags_[combined.flags_[1] == nullptr ? 1 : 2] = flag;
    return combined;
  }

  /// This token plus a cooperative preemption flag.  A raised flag is a
  /// *request to pause*, not a cancel: the engine drains to its next safe
  /// point, captures a checkpoint when asked for one, and stops with
  /// StopCause::kPreempted.  Cancel flags outrank it; the deadline does
  /// not (a preempted walk should surrender its checkpoint even when its
  /// deadline fires on the same poll).  One slot — a second call replaces
  /// the flag.
  [[nodiscard]] StopToken with_preempt(
      const std::atomic<bool>* flag) const noexcept {
    StopToken combined = *this;
    combined.preempt_ = flag;
    return combined;
  }

  /// True when any stop source exists (fast-path gate for pollers).
  [[nodiscard]] bool can_stop() const noexcept {
    return flags_[0] != nullptr || flags_[1] != nullptr ||
           flags_[2] != nullptr || preempt_ != nullptr || has_deadline_;
  }

  /// True when any cancel flag has been raised (never consults the clock).
  [[nodiscard]] bool cancelled() const noexcept {
    return (flags_[0] != nullptr &&
            flags_[0]->load(std::memory_order_relaxed)) ||
           (flags_[1] != nullptr &&
            flags_[1]->load(std::memory_order_relaxed)) ||
           (flags_[2] != nullptr &&
            flags_[2]->load(std::memory_order_relaxed));
  }

  [[nodiscard]] bool has_deadline() const noexcept { return has_deadline_; }

  [[nodiscard]] Clock::time_point deadline() const noexcept {
    return deadline_;
  }

  /// True when a deadline is set and has passed (reads the clock).
  [[nodiscard]] bool deadline_expired() const noexcept {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Engine-rate poll: cancel flags every call, deadline every
  /// kDeadlinePollStride calls (the first call always checks).  The stride
  /// bounds how far past its deadline a walk can run: stride iterations.
  /// Returns the source that fired (kNone = keep walking); the primary
  /// cancel flag wins over the chained ones, which win over the preempt
  /// flag, which wins over the deadline.
  [[nodiscard]] StopCause poll() const noexcept {
    if (flags_[0] != nullptr && flags_[0]->load(std::memory_order_relaxed)) {
      return StopCause::kCancel;
    }
    if (flags_[1] != nullptr && flags_[1]->load(std::memory_order_relaxed)) {
      return StopCause::kChained;
    }
    if (flags_[2] != nullptr && flags_[2]->load(std::memory_order_relaxed)) {
      return StopCause::kChained;
    }
    if (preempt_ != nullptr && preempt_->load(std::memory_order_relaxed)) {
      return StopCause::kPreempted;
    }
    if (!has_deadline_) return StopCause::kNone;
    if (polls_until_clock_ != 0) {
      --polls_until_clock_;
      return StopCause::kNone;
    }
    polls_until_clock_ = kDeadlinePollStride - 1;
    return Clock::now() >= deadline_ ? StopCause::kDeadline
                                     : StopCause::kNone;
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return poll() != StopCause::kNone;
  }

  static constexpr std::uint32_t kDeadlinePollStride = 64;

 private:
  const std::atomic<bool>* flags_[3] = {nullptr, nullptr, nullptr};
  const std::atomic<bool>* preempt_ = nullptr;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  /// Per-copy clock-read throttle; mutable so polling stays const.  Tokens
  /// are copied per walker, so this never races.
  mutable std::uint32_t polls_until_clock_ = 0;
};

}  // namespace cspls::core
