// The Adaptive Search constraint-based local-search engine.
//
// Re-implementation of the method of Codognet & Diaz (SAGA'01, MIC'03) that
// the paper parallelizes.  One iteration:
//
//   1. if total cost reached the target, stop (solution found);
//   2. select the non-tabu variable with the highest projected error
//      (one bulk cost_on_all_variables call; tabu filter fused into the
//      scan), breaking ties uniformly at random;
//   3. evaluate every swap of that variable with another position and keep
//      the best (one bulk best_swap_for call), ties broken uniformly at
//      random;
//   4. if the best swap strictly improves the total cost, commit it
//      (optionally freezing both variables for freeze_swap iterations);
//   5. otherwise the variable sits at a local minimum: with probability
//      prob_accept_local_min commit the best non-improving move anyway
//      (plateau escape), else mark the variable tabu for freeze_loc_min
//      iterations; once reset_limit variables are simultaneously marked,
//      partially reset the configuration (shuffle a reset_fraction subset);
//   6. after restart_limit iterations, restart from a fresh random
//      configuration (up to max_restarts times).
//
// The engine is deliberately single-threaded and share-nothing; parallelism
// lives one layer up (parallel/multi_walk.hpp) exactly as in the paper, where
// "each process is an independent search engine and there is no communication
// between the simultaneous computations" except for completion.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <span>

#include "core/checkpoint.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "core/stop_token.hpp"
#include "core/trace.hpp"
#include "csp/problem.hpp"
#include "util/rng.hpp"

namespace cspls::util::fault {
class Session;
}  // namespace cspls::util::fault

namespace cspls::core {

/// Optional extension points (all disabled by default).  They implement the
/// paper's "future work" section — dependent multi-walk with inter-process
/// communication — and passive instrumentation, without contaminating the
/// independent-walk hot path.
struct Hooks {
  /// Called when a partial reset is about to happen.  If it returns true the
  /// hook has replaced the configuration itself (e.g. adopted an elite
  /// configuration) and the default random partial reset is skipped.
  std::function<bool(csp::Problem&, util::Xoshiro256&)> on_reset;

  /// Asynchronous gossip: called every `mid_walk_period` iterations *while
  /// walking* (before that iteration's variable selection), not only when
  /// the reset policy fires.  If it returns true the hook has replaced the
  /// configuration wholesale (adopted a neighbour's configuration); the
  /// engine then recomputes the total cost, invalidates its error-vector
  /// cache and clears the tabu/marking state exactly as after a reset-time
  /// adoption — without counting a reset — so the next scan observes the
  /// adopted configuration consistently.  A false return must leave the
  /// configuration untouched (the caches stay valid).
  std::function<bool(csp::Problem&, util::Xoshiro256&)> mid_walk;
  std::uint64_t mid_walk_period = 0;  ///< 0 disables mid-walk adoption

  /// Observation callback fired every `observer_period` iterations with the
  /// current iteration count, cost and configuration.
  std::function<void(std::uint64_t, csp::Cost, std::span<const int>)> observer;
  std::uint64_t observer_period = 0;  ///< 0 disables the observer

  /// Live anytime sampling for the serving tier: called with (iteration,
  /// cost) at iteration 0 and every `sample_period` iterations after —
  /// exactly where trace samples are recorded, but pushed to a callback
  /// while the walk runs instead of collected for after.  Kept separate
  /// from `observer`, which the communication policies claim for publish
  /// traffic (comm_hooks) and which carries the configuration; a sample is
  /// cost-only and purely observational.  Never consumes the walk's RNG
  /// stream, so streaming cannot change the outcome of a seeded run.
  std::function<void(std::uint64_t, csp::Cost)> sample;
  std::uint64_t sample_period = 0;  ///< 0 disables live sampling

  /// When non-null, the engine fills this instrumentation record: final
  /// counters always, plus (iteration, cost) samples every
  /// `trace_sample_period` iterations when the period is non-zero.  Purely
  /// observational — never consumes the walk's RNG stream.
  WalkerTrace* trace = nullptr;
  std::uint64_t trace_sample_period = 0;  ///< 0 = counters only

  /// Armed fault-injection session for this walk (null = no injection).
  /// Probed once per iteration at the `walker_iteration` site; a kCorrupt
  /// action scrambles the configuration (detected corruption), kThrow
  /// propagates out of solve() for the pool's containment to record.  In
  /// builds without CSPLS_FAULT_INJECTION the probe is an inline no-op.
  util::fault::Session* fault = nullptr;

  /// Liveness signal for the serving layer's watchdog: bumped at the start
  /// of every walk and every 1024 iterations.  A stalled walker (wedged in
  /// a bulk cost hook, an injected stall, a scheduler pathology) stops
  /// bumping, which is exactly what the watchdog detects.
  std::atomic<std::uint64_t>* heartbeat = nullptr;

  /// When non-null, the first walk starts from this configuration instead
  /// of the initial random one (retry-with-checkpoint: the service reseeds
  /// a retried job from the best configuration of the failed attempt).
  /// The initial randomize(rng) still runs first, so the walk's RNG stream
  /// position — and therefore every later draw — is unchanged by warm
  /// starting.  Restarts (step 6) randomize as usual.
  const std::vector<int>* warm_start = nullptr;

  /// When non-null, the walk *resumes* from this checkpoint instead of
  /// starting fresh: the initial randomize is skipped, the configuration,
  /// best-so-far, tabu state, counters and RNG position are restored, and
  /// the walk continues byte-identically to the run that was never
  /// interrupted.  Overrides warm_start (exact resume subsumes reseeding).
  const Checkpoint* resume = nullptr;

  /// When non-null and the stop poll fires with StopCause::kPreempted, the
  /// engine captures its state at that safe point (before any draw of the
  /// pending iteration) and emplaces it here before returning the
  /// interrupted result.  Left untouched for every other stop cause, and
  /// on a capture failure (the `checkpoint_capture` fault site) — callers
  /// treat a missing checkpoint as a plain cancel.
  std::optional<Checkpoint>* checkpoint_out = nullptr;
};

class AdaptiveSearch {
 public:
  explicit AdaptiveSearch(Params params) noexcept : params_(params) {}

  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Run one (restarted) walk on `problem` using `rng`.
  ///
  /// `stop` is polled once per iteration; when it fires — an external
  /// cancel flag flipped (first-finisher termination of the parallel
  /// engine, or a service-level cancel) or a steady-clock deadline passed
  /// (time-budgeted runs) — the walk returns early with Result::interrupted
  /// set.  The problem is left bound to the best configuration found, so an
  /// interrupted run is still a valid anytime result.  A default
  /// (never-firing) token reproduces the historical unstoppable run
  /// byte-for-byte.
  Result solve(csp::Problem& problem, util::Xoshiro256& rng, StopToken stop,
               const Hooks& hooks = {}) const;

  /// Legacy entry point (pre-StopToken): a raw first-finisher completion
  /// flag.  Kept as a wrapper because external callers and tests still pass
  /// `&stop` / nullptr directly.
  Result solve(csp::Problem& problem, util::Xoshiro256& rng,
               const std::atomic<bool>* stop = nullptr,
               const Hooks& hooks = {}) const {
    return solve(problem, rng, StopToken(stop), hooks);
  }

  /// Convenience: build an engine with the model's own tuning defaults.
  static AdaptiveSearch with_defaults(const csp::Problem& problem) {
    return AdaptiveSearch(
        Params::from_hints(problem.tuning(), problem.num_variables()));
  }

 private:
  Params params_;
};

}  // namespace cspls::core
