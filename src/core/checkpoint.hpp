// First-class, serializable walker state: everything the Adaptive Search
// engine needs to pause a walk at a safe point and later continue it
// *byte-identically* to the run that was never interrupted.
//
// The safe point is the engine's existing stop-poll site — the top of the
// iteration loop, before any RNG draw of that iteration — so a checkpoint
// is always a consistent between-iterations snapshot.  The captured state
// is exactly the mutable run state: the current and best configurations,
// the tabu/marking bookkeeping, the RNG stream position (xoshiro256**
// state words), the per-run counters, and the walk/restart position.  The
// per-variable error cache is deliberately NOT captured: it is a pure
// function of the configuration, so resume recomputes it on first use —
// the values the scan sees are identical either way.
//
// The JSON schema is strict and versioned ("cspls-checkpoint/1"): unknown
// members reject, missing members reject, and sizes must be mutually
// consistent.  This is the unit the parallel layer aggregates into a
// PoolCheckpoint and the serving tier round-trips through a SolveRequest's
// `resume_from` member — the migration payload of the distributed-pool
// roadmap item.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/result.hpp"
#include "core/trace.hpp"
#include "csp/cost.hpp"
#include "util/json.hpp"

namespace cspls::core {

struct Checkpoint {
  static constexpr std::string_view kSchema = "cspls-checkpoint/1";

  std::vector<int> values;       ///< current configuration
  csp::Cost cost = 0;            ///< its total cost (validated on resume)
  std::vector<int> best;         ///< best configuration across restarts
  csp::Cost best_cost = 0;
  std::vector<std::uint64_t> tabu_until;  ///< absolute-iteration freezes
  std::uint32_t marks_since_reset = 0;
  std::array<std::uint64_t, 4> rng_state{};  ///< xoshiro256** position
  RunStats stats;                ///< counters so far (seconds accumulated)
  std::uint64_t iter_in_walk = 0;
  std::uint32_t restarts_done = 0;
  /// Trace samples recorded so far (pre-finalization, so the resumed walk
  /// keeps appending as if never interrupted).  Empty when not tracing.
  std::vector<TraceSample> trace_samples;

  [[nodiscard]] util::Json to_json() const;
  /// Strict decode: rejects a wrong/missing schema tag, unknown members,
  /// missing members, and internally inconsistent sizes.
  [[nodiscard]] static Checkpoint from_json(const util::Json& json);

  [[nodiscard]] bool operator==(const Checkpoint&) const = default;
};

}  // namespace cspls::core
