#include "core/adaptive_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/fault.hpp"
#include "util/timer.hpp"

namespace cspls::core {

namespace {

using csp::Cost;

/// Mutable per-walk working state, reset on every restart.  All scratch is
/// preallocated here once: the steady-state iteration below performs zero
/// heap allocations.
struct WalkState {
  explicit WalkState(std::size_t n) : tabu_until(n, 0), errors(n, 0) {}

  void clear_tabu() {
    std::fill(tabu_until.begin(), tabu_until.end(), std::uint64_t{0});
    marks_since_reset = 0;
  }

  std::vector<std::uint64_t> tabu_until;  ///< variable frozen while > iter
  std::vector<Cost> errors;               ///< cost_on_all_variables scratch
  /// Local-minimum markings since the last (partial or full) reset; the
  /// original library's nb_var_marked counter: it accumulates until the
  /// reset_limit triggers a partial reset, it is *not* a count of currently
  /// frozen variables.
  std::uint32_t marks_since_reset = 0;
};

}  // namespace

Result AdaptiveSearch::solve(csp::Problem& problem, util::Xoshiro256& rng,
                             StopToken stop, const Hooks& hooks) const {
  const std::size_t n = problem.num_variables();
  util::Stopwatch watch;

  Result result;
  WalkState state(n);

  const Checkpoint* resume = hooks.resume;
  if (resume != nullptr && (resume->values.size() != n ||
                            resume->best.size() != n ||
                            resume->tabu_until.size() != n)) {
    throw std::invalid_argument(
        "AdaptiveSearch: checkpoint does not match the problem size");
  }

  Cost cost;
  if (resume != nullptr) {
    // Exact resume: restore the configuration and the RNG stream position
    // captured at the safe point; the initial randomize never happens (its
    // draws were consumed by the original run before capture).
    problem.assign(resume->values);
    cost = problem.total_cost();
    if (cost != resume->cost) {
      throw std::invalid_argument(
          "AdaptiveSearch: checkpoint cost does not match its configuration");
    }
    rng = util::Xoshiro256::from_state(resume->rng_state);
  } else {
    cost = problem.randomize(rng);
    if (hooks.warm_start != nullptr && hooks.warm_start->size() == n) {
      // Retry checkpoint: adopt the supplied configuration.  The randomize
      // above already consumed its draws, so the RNG stream position — and
      // every subsequent draw — is identical to a cold start.
      problem.assign(*hooks.warm_start);
      cost = problem.total_cost();
    }
  }

  WalkerTrace* trace = hooks.trace;
  if (resume != nullptr) {
    // The iteration-0 sample was recorded (and streamed) by the original
    // run; carry the accumulated series forward so the resumed trace reads
    // as one uninterrupted walk.
    if (trace != nullptr && hooks.trace_sample_period != 0) {
      trace->cost_samples = resume->trace_samples;
    }
  } else {
    if (trace != nullptr && hooks.trace_sample_period != 0) {
      trace->cost_samples.push_back(TraceSample{0, cost});
    }
    if (hooks.sample && hooks.sample_period != 0) hooks.sample(0, cost);
  }

  // Track the best configuration ever seen (across restarts) so the run
  // reports something useful even when it fails.
  Cost best_cost = cost;
  std::vector<int> best(problem.values().begin(), problem.values().end());
  if (resume != nullptr) {
    best_cost = resume->best_cost;
    best = resume->best;
    state.tabu_until = resume->tabu_until;
    state.marks_since_reset = resume->marks_since_reset;
    result.stats = resume->stats;
  }
  const double resumed_seconds = resume != nullptr ? resume->stats.seconds : 0.0;
  const auto note_best = [&](Cost c) {
    if (c < best_cost) {
      best_cost = c;
      const auto vals = problem.values();
      std::copy(vals.begin(), vals.end(), best.begin());
    }
  };

  // The error vector only depends on the configuration: iterations that end
  // in a tabu marking leave it untouched, so the bulk recomputation is
  // skipped until the next swap/reset/restart invalidates it.  (Purely an
  // engine-side cache — the values the scan sees are identical either way.)
  bool errors_valid = false;

  const auto partial_reset = [&] {
    ++result.stats.resets;
    if (hooks.on_reset && hooks.on_reset(problem, rng)) {
      // The hook replaced the configuration wholesale (dependent multi-walk).
      cost = problem.total_cost();
    } else {
      // Model-specific diversification (default: shuffle a random subset of
      // positions); see csp::Problem::reset_perturbation.
      cost = problem.reset_perturbation(params_.reset_fraction, rng);
    }
    errors_valid = false;
    state.clear_tabu();
    note_best(cost);
  };

  std::uint32_t restarts_done = resume != nullptr ? resume->restarts_done : 0;
  // Consumed by the first outer iteration only: the resumed walk re-enters
  // mid-walk at the captured iteration; later walks start at zero as usual.
  std::uint64_t resume_iter_in_walk =
      resume != nullptr ? resume->iter_in_walk : 0;
  bool done = false;
  while (!done) {
    if (hooks.heartbeat != nullptr) {
      hooks.heartbeat->fetch_add(1, std::memory_order_relaxed);
    }
    note_best(cost);
    std::uint64_t iter_in_walk = std::exchange(resume_iter_in_walk, 0);
    const std::uint64_t budget = walk_budget(
        params_.restart_schedule, params_.restart_limit, restarts_done);

    while (cost > params_.target_cost) {
      if (const StopCause cause = stop.poll(); cause != StopCause::kNone) {
        if (cause == StopCause::kPreempted &&
            hooks.checkpoint_out != nullptr) {
          // Safe-point capture: no draw of the pending iteration has
          // happened, so the checkpoint is a consistent between-iterations
          // snapshot.  A capture failure (the `checkpoint_capture` fault
          // site, or any allocation failure while copying state) degrades
          // to a plain interrupt with no checkpoint — never a torn one.
          try {
            const bool corrupt =
                util::fault::probe(hooks.fault,
                                   util::fault::Site::kCheckpointCapture) ==
                util::fault::Action::kCorrupt;
            Checkpoint cp;
            const auto vals = problem.values();
            cp.values.assign(vals.begin(), vals.end());
            cp.cost = cost;
            cp.best = best;
            cp.best_cost = best_cost;
            cp.tabu_until = state.tabu_until;
            cp.marks_since_reset = state.marks_since_reset;
            cp.rng_state = rng.state();
            cp.stats = result.stats;
            cp.stats.seconds = resumed_seconds + watch.elapsed_seconds();
            cp.iter_in_walk = iter_in_walk;
            cp.restarts_done = restarts_done;
            if (trace != nullptr && hooks.trace_sample_period != 0) {
              cp.trace_samples = trace->cost_samples;
            }
            if (corrupt) cp.cost += 1;  // torn capture: fails validation
            hooks.checkpoint_out->emplace(std::move(cp));
          } catch (...) {
            hooks.checkpoint_out->reset();
          }
        }
        result.interrupted = true;
        result.stop_cause = cause;
        done = true;
        break;
      }
      if (iter_in_walk >= budget) break;  // walk exhausted
      ++iter_in_walk;
      const std::uint64_t iter = ++result.stats.iterations;

      if (hooks.heartbeat != nullptr && (iter & 1023) == 0) {
        hooks.heartbeat->fetch_add(1, std::memory_order_relaxed);
      }
      if (util::fault::probe(hooks.fault, util::fault::Site::kWalkerIteration) ==
          util::fault::Action::kCorrupt) {
        // Detected corruption: the configuration is untrusted, recover by
        // scrambling it wholesale and rebuilding every cache.
        cost = problem.reset_perturbation(1.0, rng);
        errors_valid = false;
        state.clear_tabu();
        note_best(cost);
      }

      if (hooks.observer && hooks.observer_period != 0 &&
          iter % hooks.observer_period == 0) {
        hooks.observer(iter, cost, problem.values());
      }
      if (trace != nullptr && hooks.trace_sample_period != 0 &&
          iter % hooks.trace_sample_period == 0) {
        trace->cost_samples.push_back(TraceSample{iter, cost});
      }
      if (hooks.sample && hooks.sample_period != 0 &&
          iter % hooks.sample_period == 0) {
        hooks.sample(iter, cost);
      }

      // Asynchronous gossip gate: pull a neighbour's configuration mid-walk.
      // The hook owns its RNG discipline (e.g. one chance() draw per gate);
      // on adoption the engine re-enters exactly as after a reset-time
      // adoption — recomputed cost, invalidated error cache, cleared tabu
      // state — except no reset is counted.
      if (hooks.mid_walk && hooks.mid_walk_period != 0 &&
          iter % hooks.mid_walk_period == 0 && hooks.mid_walk(problem, rng)) {
        cost = problem.total_cost();
        errors_valid = false;
        state.clear_tabu();
        note_best(cost);
        if (cost <= params_.target_cost) break;  // adopted a solution
      }

      // --- Step 2: pick the worst non-tabu variable (random tie-break). ---
      // One bulk virtual call fills the preallocated error vector (reused
      // while the configuration is unchanged); the tabu filter is fused into
      // the scan.  The bulk hook never consumes RNG, so the reservoir draws
      // below happen in the exact order of the historical per-variable loop.
      if (!errors_valid) {
        problem.cost_on_all_variables(std::span<Cost>(state.errors));
        errors_valid = true;
      }
      Cost worst_err = -1;
      std::size_t x = n;  // n = none found
      std::size_t ties = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (state.tabu_until[i] > iter) continue;
        const Cost err = state.errors[i];
        if (err < worst_err) continue;  // common case: one compare
        if (err > worst_err) {
          worst_err = err;
          x = i;
          ties = 1;
        } else {
          ++ties;
          if (rng.below(ties) == 0) x = i;
        }
      }
      if (x == n) {
        // Every variable is frozen: unblock with a partial reset.
        partial_reset();
        continue;
      }

      // --- Step 3: best swap for x (random tie-break). ---
      // Second bulk virtual call; candidate evaluations are counted inside
      // the kernel so the stats stay comparable across paths.
      Cost best_move = csp::kInfiniteCost;
      std::size_t best_j = n;
      std::size_t move_ties = 0;
      result.stats.cost_evaluations +=
          problem.best_swap_for(x, rng, best_j, best_move, move_ties);

      if (best_j != n && best_move < cost) {
        // --- Step 4: improving move. ---
        cost = problem.swap(x, best_j);
        errors_valid = false;
        ++result.stats.swaps;
        note_best(cost);
        if (params_.freeze_swap > 0) {
          state.tabu_until[x] = iter + params_.freeze_swap;
          state.tabu_until[best_j] = iter + params_.freeze_swap;
        }
        continue;
      }

      // --- Step 4b: plateau — the best move leaves the cost unchanged. ---
      if (best_j != n && best_move == cost &&
          rng.chance(params_.prob_accept_plateau)) {
        cost = problem.swap(x, best_j);
        errors_valid = false;
        ++result.stats.plateau_moves;
        if (params_.freeze_swap > 0) {
          state.tabu_until[x] = iter + params_.freeze_swap;
          state.tabu_until[best_j] = iter + params_.freeze_swap;
        }
        continue;
      }

      // --- Step 5: local minimum on x. ---
      ++result.stats.local_minima;
      if (best_j != n && params_.prob_accept_local_min > 0.0 &&
          rng.chance(params_.prob_accept_local_min)) {
        cost = problem.swap(x, best_j);
        errors_valid = false;
        note_best(cost);
        continue;
      }
      state.tabu_until[x] = iter + params_.freeze_loc_min;
      if (++state.marks_since_reset >= params_.reset_limit) {
        partial_reset();
      }
    }

    if (done || cost <= params_.target_cost) break;
    // --- Step 6: walk budget exhausted; restart if allowed. ---
    if (restarts_done >= params_.max_restarts) break;
    ++restarts_done;
    ++result.stats.restarts;
    cost = problem.randomize(rng);
    errors_valid = false;
    state.clear_tabu();
  }

  note_best(cost);
  result.solved = best_cost <= params_.target_cost;
  result.cost = best_cost;
  result.solution = std::move(best);
  // Leave the problem bound to the reported configuration.
  if (cost != best_cost) {
    problem.assign(result.solution);
  }
  result.stats.seconds = resumed_seconds + watch.elapsed_seconds();
  if (trace != nullptr) {
    trace->solved = result.solved;
    trace->interrupted = result.interrupted;
    trace->iterations = result.stats.iterations;
    trace->resets = result.stats.resets;
    trace->restarts = result.stats.restarts;
    trace->local_minima = result.stats.local_minima;
    trace->seconds = result.stats.seconds;
    trace->best_cost = best_cost;
    if (hooks.trace_sample_period != 0) {
      // When the walk ended exactly on a sampling boundary, fold the final
      // best into that sample instead of duplicating the iteration.
      if (!trace->cost_samples.empty() &&
          trace->cost_samples.back().iteration == result.stats.iterations) {
        trace->cost_samples.back().cost = best_cost;
      } else {
        trace->cost_samples.push_back(
            TraceSample{result.stats.iterations, best_cost});
      }
    }
  }
  return result;
}

}  // namespace cspls::core
