// Outcome of one Adaptive Search run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stop_token.hpp"
#include "csp/cost.hpp"

namespace cspls::core {

/// Per-run counters.  These are the numbers the paper's companion study
/// (EvoCOP'11) tabulates: iterations to solution, local minima encountered,
/// partial resets, full restarts.
struct RunStats {
  std::uint64_t iterations = 0;      ///< move-selection steps across restarts
  std::uint64_t swaps = 0;           ///< committed improving moves
  std::uint64_t plateau_moves = 0;   ///< committed non-improving moves
  std::uint64_t local_minima = 0;    ///< times the selected variable had none
  std::uint64_t resets = 0;          ///< partial resets performed
  std::uint64_t restarts = 0;        ///< full restarts performed
  std::uint64_t cost_evaluations = 0;///< swap candidates evaluated (counted
                                     ///< inside Problem::best_swap_for)
  double seconds = 0.0;              ///< wall-clock of the walk

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool operator==(const RunStats&) const = default;
};

/// Result of a (possibly restarted) walk.
struct Result {
  bool solved = false;
  csp::Cost cost = csp::kInfiniteCost;  ///< best cost reached
  std::vector<int> solution;            ///< best configuration reached
  RunStats stats;

  /// True when the run was cut short by a stop signal (another walker
  /// finished first, a cancellation, or a deadline) rather than by its own
  /// budget.
  bool interrupted = false;

  /// Which stop source cut the run short (kNone when not interrupted).
  /// Recorded by the poll that observed the stop, so attribution is exact.
  StopCause stop_cause = StopCause::kNone;

  /// Non-empty iff stop_cause == StopCause::kFailed: the message of the
  /// exception that killed the walk (captured by the pool's containment).
  std::string error;

  [[nodiscard]] bool operator==(const Result&) const = default;
};

inline std::string RunStats::to_string() const {
  std::string out;
  out += "iters=" + std::to_string(iterations);
  out += " swaps=" + std::to_string(swaps);
  out += " plateau=" + std::to_string(plateau_moves);
  out += " locmin=" + std::to_string(local_minima);
  out += " resets=" + std::to_string(resets);
  out += " restarts=" + std::to_string(restarts);
  out += " probes=" + std::to_string(cost_evaluations);
  return out;
}

}  // namespace cspls::core
