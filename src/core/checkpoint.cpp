#include "core/checkpoint.hpp"

#include <stdexcept>
#include <string>

namespace cspls::core {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument("core::Checkpoint: " + message);
}

void require_known_members(const util::Json& json,
                           std::initializer_list<std::string_view> allowed,
                           std::string_view where) {
  for (const auto& [key, value] : json.members()) {
    (void)value;
    bool known = false;
    for (const std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      bad("unknown member '" + key + "' in " + std::string(where));
    }
  }
}

const util::Json& member(const util::Json& json, std::string_view name) {
  const util::Json* value = json.find(name);
  if (value == nullptr) bad("missing member '" + std::string(name) + "'");
  return *value;
}

std::vector<int> int_vector(const util::Json& json, std::string_view name) {
  std::vector<int> out;
  out.reserve(json.elements().size());
  for (const util::Json& element : json.elements()) {
    out.push_back(static_cast<int>(element.as_int64()));
  }
  (void)name;
  return out;
}

util::Json to_json_array(const std::vector<int>& values) {
  util::Json array = util::Json::array();
  for (const int v : values) array.push_back(static_cast<std::int64_t>(v));
  return array;
}

}  // namespace

util::Json Checkpoint::to_json() const {
  util::Json json = util::Json::object();
  json.set("schema", kSchema);
  json.set("values", to_json_array(values));
  json.set("cost", static_cast<std::int64_t>(cost));
  json.set("best", to_json_array(best));
  json.set("best_cost", static_cast<std::int64_t>(best_cost));
  util::Json tabu = util::Json::array();
  for (const std::uint64_t t : tabu_until) tabu.push_back(t);
  json.set("tabu_until", std::move(tabu));
  json.set("marks_since_reset", static_cast<std::uint64_t>(marks_since_reset));
  util::Json rng = util::Json::array();
  for (const std::uint64_t word : rng_state) rng.push_back(word);
  json.set("rng_state", std::move(rng));
  util::Json stats_json = util::Json::object();
  stats_json.set("iterations", stats.iterations)
      .set("swaps", stats.swaps)
      .set("plateau_moves", stats.plateau_moves)
      .set("local_minima", stats.local_minima)
      .set("resets", stats.resets)
      .set("restarts", stats.restarts)
      .set("cost_evaluations", stats.cost_evaluations)
      .set("seconds", stats.seconds);
  json.set("stats", std::move(stats_json));
  json.set("iter_in_walk", iter_in_walk);
  json.set("restarts_done", static_cast<std::uint64_t>(restarts_done));
  util::Json samples = util::Json::array();
  for (const TraceSample& sample : trace_samples) {
    util::Json pair = util::Json::array();
    pair.push_back(sample.iteration);
    pair.push_back(static_cast<std::int64_t>(sample.cost));
    samples.push_back(std::move(pair));
  }
  json.set("trace_samples", std::move(samples));
  return json;
}

Checkpoint Checkpoint::from_json(const util::Json& json) {
  if (!json.is_object()) bad("document is not an object");
  require_known_members(json,
                        {"schema", "values", "cost", "best", "best_cost",
                         "tabu_until", "marks_since_reset", "rng_state",
                         "stats", "iter_in_walk", "restarts_done",
                         "trace_samples"},
                        "checkpoint");
  if (member(json, "schema").as_string() != kSchema) {
    bad("unsupported schema '" + member(json, "schema").as_string() + "'");
  }

  Checkpoint cp;
  cp.values = int_vector(member(json, "values"), "values");
  cp.cost = member(json, "cost").as_int64();
  cp.best = int_vector(member(json, "best"), "best");
  cp.best_cost = member(json, "best_cost").as_int64();
  for (const util::Json& t : member(json, "tabu_until").elements()) {
    cp.tabu_until.push_back(t.as_uint64());
  }
  cp.marks_since_reset =
      static_cast<std::uint32_t>(member(json, "marks_since_reset").as_uint64());
  const auto& rng = member(json, "rng_state").elements();
  if (rng.size() != cp.rng_state.size()) bad("rng_state must hold 4 words");
  for (std::size_t i = 0; i < cp.rng_state.size(); ++i) {
    cp.rng_state[i] = rng[i].as_uint64();
  }

  const util::Json& stats = member(json, "stats");
  if (!stats.is_object()) bad("stats is not an object");
  require_known_members(stats,
                        {"iterations", "swaps", "plateau_moves",
                         "local_minima", "resets", "restarts",
                         "cost_evaluations", "seconds"},
                        "stats");
  cp.stats.iterations = member(stats, "iterations").as_uint64();
  cp.stats.swaps = member(stats, "swaps").as_uint64();
  cp.stats.plateau_moves = member(stats, "plateau_moves").as_uint64();
  cp.stats.local_minima = member(stats, "local_minima").as_uint64();
  cp.stats.resets = member(stats, "resets").as_uint64();
  cp.stats.restarts = member(stats, "restarts").as_uint64();
  cp.stats.cost_evaluations = member(stats, "cost_evaluations").as_uint64();
  cp.stats.seconds = member(stats, "seconds").as_double();

  cp.iter_in_walk = member(json, "iter_in_walk").as_uint64();
  cp.restarts_done =
      static_cast<std::uint32_t>(member(json, "restarts_done").as_uint64());
  for (const util::Json& pair : member(json, "trace_samples").elements()) {
    if (pair.elements().size() != 2) bad("trace sample must be [iter, cost]");
    cp.trace_samples.push_back(TraceSample{pair.elements()[0].as_uint64(),
                                           pair.elements()[1].as_int64()});
  }

  // Internal consistency: both configurations exist and the tabu vector
  // covers the same variables — a checkpoint never describes a run that
  // the engine could not actually have been in.
  if (cp.values.empty()) bad("empty configuration");
  if (cp.best.size() != cp.values.size()) {
    bad("best/values size mismatch");
  }
  if (cp.tabu_until.size() != cp.values.size()) {
    bad("tabu_until/values size mismatch");
  }
  return cp;
}

}  // namespace cspls::core
