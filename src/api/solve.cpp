#include "api/solve.hpp"

#include <stdexcept>

namespace cspls::api {

// ---------------------------------------------------------------------------
// Decode helpers — every accessor names the member it was decoding so a
// malformed document fails with an actionable message.
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_member(std::string_view member,
                             const std::string& detail) {
  throw std::invalid_argument("bad \"" + std::string(member) +
                              "\": " + detail);
}

/// Unknown members are rejected, not ignored: a misspelled "deadline-ms"
/// silently degrading to "no deadline" is exactly the failure a wire
/// format must not have.
void require_known_members(
    const util::Json& json,
    std::initializer_list<std::string_view> allowed,
    std::string_view context) {
  for (const auto& member : json.members()) {
    bool known = false;
    for (const std::string_view name : allowed) {
      if (member.first == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument(std::string(context) +
                                  ": unknown member \"" + member.first +
                                  "\"");
    }
  }
}

std::uint64_t get_u64(const util::Json& json, std::string_view member,
                      std::uint64_t fallback) {
  const util::Json* found = json.find(member);
  if (found == nullptr) return fallback;
  try {
    return found->as_uint64();
  } catch (const std::exception& e) {
    bad_member(member, e.what());
  }
}

double get_double(const util::Json& json, std::string_view member,
                  double fallback) {
  const util::Json* found = json.find(member);
  if (found == nullptr) return fallback;
  try {
    return found->as_double();
  } catch (const std::exception& e) {
    bad_member(member, e.what());
  }
}

bool get_bool(const util::Json& json, std::string_view member, bool fallback) {
  const util::Json* found = json.find(member);
  if (found == nullptr) return fallback;
  try {
    return found->as_bool();
  } catch (const std::exception& e) {
    bad_member(member, e.what());
  }
}

std::string get_string(const util::Json& json, std::string_view member,
                       const std::string& fallback) {
  const util::Json* found = json.find(member);
  if (found == nullptr) return fallback;
  try {
    return found->as_string();
  } catch (const std::exception& e) {
    bad_member(member, e.what());
  }
}

template <typename Enum>
Enum get_policy(const util::Json& json, std::string_view member,
                std::optional<Enum> (*parse)(std::string_view),
                Enum fallback) {
  const std::string name = get_string(json, member, std::string(name_of(fallback)));
  const std::optional<Enum> value = parse(name);
  if (!value.has_value()) {
    bad_member(member, "unknown policy name \"" + name + "\" (" +
                           policy_names_hint() + ")");
  }
  return *value;
}

util::Json params_to_json(const core::Params& params) {
  util::Json json = util::Json::object();
  json.set("target_cost", static_cast<std::int64_t>(params.target_cost))
      .set("restart_limit", params.restart_limit)
      .set("restart_schedule", std::string(name_of(params.restart_schedule)))
      .set("max_restarts", static_cast<std::uint64_t>(params.max_restarts))
      .set("freeze_loc_min", static_cast<std::uint64_t>(params.freeze_loc_min))
      .set("freeze_swap", static_cast<std::uint64_t>(params.freeze_swap))
      .set("reset_limit", static_cast<std::uint64_t>(params.reset_limit))
      .set("reset_fraction", params.reset_fraction)
      .set("prob_accept_plateau", params.prob_accept_plateau)
      .set("prob_accept_local_min", params.prob_accept_local_min);
  return json;
}

core::Params params_from_json(const util::Json& json) {
  if (!json.is_object()) bad_member("params", "expected an object");
  require_known_members(
      json,
      {"target_cost", "restart_limit", "restart_schedule", "max_restarts",
       "freeze_loc_min", "freeze_swap", "reset_limit", "reset_fraction",
       "prob_accept_plateau", "prob_accept_local_min"},
      "SolveRequest.params");
  core::Params params;
  const util::Json* target = json.find("target_cost");
  if (target != nullptr) {
    try {
      params.target_cost = target->as_int64();
    } catch (const std::exception& e) {
      bad_member("params.target_cost", e.what());
    }
  }
  params.restart_limit =
      get_u64(json, "restart_limit", params.restart_limit);
  params.restart_schedule =
      get_policy(json, "restart_schedule", restart_schedule_from_name,
                 params.restart_schedule);
  params.max_restarts = static_cast<std::uint32_t>(
      get_u64(json, "max_restarts", params.max_restarts));
  params.freeze_loc_min = static_cast<std::uint32_t>(
      get_u64(json, "freeze_loc_min", params.freeze_loc_min));
  params.freeze_swap = static_cast<std::uint32_t>(
      get_u64(json, "freeze_swap", params.freeze_swap));
  params.reset_limit = static_cast<std::uint32_t>(
      get_u64(json, "reset_limit", params.reset_limit));
  params.reset_fraction =
      get_double(json, "reset_fraction", params.reset_fraction);
  params.prob_accept_plateau =
      get_double(json, "prob_accept_plateau", params.prob_accept_plateau);
  params.prob_accept_local_min =
      get_double(json, "prob_accept_local_min", params.prob_accept_local_min);
  return params;
}

util::Json retry_to_json(const RetryPolicy& retry) {
  util::Json json = util::Json::object();
  json.set("max_attempts", static_cast<std::uint64_t>(retry.max_attempts))
      .set("base_backoff_ms", retry.base_backoff_ms)
      .set("multiplier", retry.multiplier)
      .set("jitter", retry.jitter);
  return json;
}

RetryPolicy retry_from_json(const util::Json& json) {
  if (!json.is_object()) bad_member("retry", "expected an object");
  require_known_members(
      json, {"max_attempts", "base_backoff_ms", "multiplier", "jitter"},
      "SolveRequest.retry");
  RetryPolicy retry;
  retry.max_attempts = static_cast<std::uint32_t>(
      get_u64(json, "max_attempts", retry.max_attempts));
  retry.base_backoff_ms =
      get_u64(json, "base_backoff_ms", retry.base_backoff_ms);
  retry.multiplier = get_double(json, "multiplier", retry.multiplier);
  retry.jitter = get_double(json, "jitter", retry.jitter);
  // Mirror Solver::solve's validation at the wire boundary, so a malformed
  // policy is rejected where it is decoded, not attempts later.
  if (retry.max_attempts == 0) {
    bad_member("retry", "max_attempts must be >= 1 (the first attempt counts)");
  }
  if (!(retry.multiplier >= 1.0)) {
    bad_member("retry", "multiplier must be >= 1 (backoff never shrinks)");
  }
  if (!(retry.jitter >= 0.0 && retry.jitter <= 1.0)) {
    bad_member("retry", "jitter must be in [0, 1]");
  }
  return retry;
}

}  // namespace

// ---------------------------------------------------------------------------
// SolveRequest
// ---------------------------------------------------------------------------

parallel::WalkerPoolOptions SolveRequest::to_pool_options() const {
  parallel::WalkerPoolOptions options;
  options.num_walkers = walkers;
  options.master_seed = seed;
  options.params = params;
  options.max_threads = max_threads;
  options.scheduling = scheduling;
  options.communication.neighborhood = neighborhood;
  options.communication.exchange = exchange;
  options.communication.mode = comm_mode;
  options.communication.period = comm_period;
  options.communication.adopt_probability = comm_adopt_probability;
  options.communication.decay = comm_decay;
  options.termination = termination;
  options.trace.enabled = trace;
  options.trace.sample_period = trace_sample_period;
  options.faults = faults;
  options.warm_start = warm_start;
  options.resume = resume_from;
  return options;
}

util::Json SolveRequest::to_json() const {
  util::Json json = util::Json::object();
  json.set("problem", problem)
      .set("walkers", static_cast<std::uint64_t>(walkers))
      .set("seed", seed)
      .set("scheduling", std::string(name_of(scheduling)))
      .set("neighborhood", std::string(name_of(neighborhood)))
      .set("exchange", std::string(name_of(exchange)))
      .set("comm_mode", std::string(name_of(comm_mode)))
      .set("termination", std::string(name_of(termination)))
      .set("comm_period", comm_period)
      .set("comm_adopt_probability", comm_adopt_probability)
      .set("comm_decay", comm_decay)
      .set("max_threads", static_cast<std::uint64_t>(max_threads))
      .set("deadline_ms", deadline_ms);
  if (params.has_value()) json.set("params", params_to_json(*params));
  json.set("trace", trace).set("trace_sample_period", trace_sample_period);
  json.set("retry", retry_to_json(retry))
      .set("watchdog_stall_ms", watchdog_stall_ms);
  if (warm_start.has_value()) {
    util::Json values = util::Json::array();
    for (const int v : *warm_start) values.push_back(v);
    json.set("warm_start", std::move(values));
  }
  if (!faults.empty()) {
    util::Json plans = util::Json::array();
    for (const util::fault::FaultPlan& plan : faults) {
      plans.push_back(plan.to_json());
    }
    json.set("faults", std::move(plans));
  }
  if (resume_from.has_value()) {
    json.set("resume_from", resume_from->to_json());
  }
  return json;
}

std::string SolveRequest::to_json_string(int indent) const {
  return to_json().dump(indent);
}

SolveRequest SolveRequest::from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("SolveRequest: expected a JSON object");
  }
  require_known_members(
      json,
      {"problem", "walkers", "seed", "scheduling", "neighborhood", "exchange",
       "comm_mode", "topology", "termination", "comm_period",
       "comm_adopt_probability", "comm_decay", "max_threads", "deadline_ms",
       "params", "trace", "trace_sample_period", "retry", "watchdog_stall_ms",
       "warm_start", "faults", "resume_from"},
      "SolveRequest");
  SolveRequest request;
  request.problem = get_string(json, "problem", "");
  if (request.problem.empty()) {
    bad_member("problem", "missing or empty instance spec "
                          "(e.g. \"costas:18\")");
  }
  request.walkers = static_cast<std::size_t>(
      get_u64(json, "walkers", request.walkers));
  request.seed = get_u64(json, "seed", request.seed);
  request.scheduling = get_policy(json, "scheduling", scheduling_from_name,
                                  request.scheduling);
  if (json.find("topology") != nullptr) {
    // Deprecated alias for the three legacy communication pairs; a document
    // mixing it with the members it aliases is ambiguous, not mergeable.
    if (json.find("neighborhood") != nullptr ||
        json.find("exchange") != nullptr) {
      bad_member("topology",
                 "deprecated alias for neighborhood x exchange; a request "
                 "may name either spelling, not both");
    }
    const parallel::CommunicationPolicy aliased(get_policy(
        json, "topology", topology_from_name, parallel::Topology::kIndependent));
    request.neighborhood = aliased.neighborhood;
    request.exchange = aliased.exchange;
  } else {
    request.neighborhood = get_policy(json, "neighborhood",
                                      neighborhood_from_name,
                                      request.neighborhood);
    request.exchange =
        get_policy(json, "exchange", exchange_from_name, request.exchange);
  }
  request.comm_mode = get_policy(json, "comm_mode", comm_mode_from_name,
                                 request.comm_mode);
  request.termination = get_policy(json, "termination", termination_from_name,
                                   request.termination);
  request.comm_period = get_u64(json, "comm_period", request.comm_period);
  request.comm_adopt_probability = get_double(
      json, "comm_adopt_probability", request.comm_adopt_probability);
  request.comm_decay = get_u64(json, "comm_decay", request.comm_decay);
  request.max_threads = static_cast<std::size_t>(
      get_u64(json, "max_threads", request.max_threads));
  request.deadline_ms = get_u64(json, "deadline_ms", request.deadline_ms);
  if (const util::Json* params = json.find("params"); params != nullptr) {
    request.params = params_from_json(*params);
  }
  request.trace = get_bool(json, "trace", request.trace);
  request.trace_sample_period =
      get_u64(json, "trace_sample_period", request.trace_sample_period);
  if (const util::Json* retry = json.find("retry"); retry != nullptr) {
    request.retry = retry_from_json(*retry);
  }
  request.watchdog_stall_ms =
      get_u64(json, "watchdog_stall_ms", request.watchdog_stall_ms);
  if (const util::Json* warm = json.find("warm_start"); warm != nullptr) {
    if (!warm->is_array()) bad_member("warm_start", "expected an array");
    std::vector<int> values;
    values.reserve(warm->size());
    for (const util::Json& v : warm->elements()) {
      try {
        values.push_back(static_cast<int>(v.as_int64()));
      } catch (const std::exception& e) {
        bad_member("warm_start", e.what());
      }
    }
    request.warm_start = std::move(values);
  }
  if (const util::Json* faults = json.find("faults"); faults != nullptr) {
    if (!faults->is_array()) bad_member("faults", "expected an array");
    request.faults.reserve(faults->size());
    for (const util::Json& plan : faults->elements()) {
      try {
        request.faults.push_back(util::fault::FaultPlan::from_json(plan));
      } catch (const std::exception& e) {
        bad_member("faults", e.what());
      }
    }
  }
  if (const util::Json* resume = json.find("resume_from");
      resume != nullptr) {
    try {
      request.resume_from = parallel::PoolCheckpoint::from_json(*resume);
    } catch (const std::exception& e) {
      bad_member("resume_from", e.what());
    }
    if (request.warm_start.has_value()) {
      bad_member("resume_from",
                 "mutually exclusive with warm_start (a checkpoint already "
                 "fixes every walker's configuration)");
    }
  }
  return request;
}

SolveRequest SolveRequest::from_json_string(std::string_view text) {
  std::string error;
  const std::optional<util::Json> json = util::Json::parse(text, &error);
  if (!json.has_value()) {
    throw std::invalid_argument("SolveRequest: malformed JSON: " + error);
  }
  return from_json(*json);
}

// ---------------------------------------------------------------------------
// SolveReport
// ---------------------------------------------------------------------------

util::Json SolveReport::to_json() const {
  util::Json json = util::Json::object();
  json.set("problem", problem)
      .set("solved", solved)
      .set("cancelled", cancelled)
      .set("deadline_expired", deadline_expired)
      .set("preempted", preempted)
      // kNoWinner crosses the wire as -1 (size_t max would not survive
      // readers that parse winners as signed integers).
      .set("winner", has_winner() ? static_cast<std::int64_t>(winner)
                                  : std::int64_t{-1})
      .set("cost", static_cast<std::int64_t>(cost))
      .set("wall_seconds", wall_seconds)
      .set("time_to_solution_seconds", time_to_solution_seconds)
      .set("total_iterations", total_iterations)
      .set("comm_publishes", comm_publishes)
      .set("elite_accepted", elite_accepted)
      .set("comm_adoptions", comm_adoptions)
      .set("failed_walkers", static_cast<std::uint64_t>(failed_walkers))
      .set("attempts", static_cast<std::uint64_t>(attempts))
      .set("degraded", degraded);
  util::Json solution_json = util::Json::array();
  for (const int v : solution) solution_json.push_back(v);
  json.set("solution", std::move(solution_json));
  util::Json walkers_json = util::Json::array();
  for (const WalkerReport& w : walkers) {
    util::Json wj = util::Json::object();
    wj.set("id", static_cast<std::uint64_t>(w.id))
        .set("solved", w.solved)
        .set("interrupted", w.interrupted)
        .set("cost", static_cast<std::int64_t>(w.cost))
        .set("iterations", w.iterations)
        .set("swaps", w.swaps)
        .set("plateau_moves", w.plateau_moves)
        .set("local_minima", w.local_minima)
        .set("resets", w.resets)
        .set("restarts", w.restarts)
        .set("cost_evaluations", w.cost_evaluations)
        .set("seconds", w.seconds)
        .set("failed", w.failed);
    if (!w.error.empty()) wj.set("error", w.error);
    walkers_json.push_back(std::move(wj));
  }
  json.set("walkers", std::move(walkers_json));
  return json;
}

std::string SolveReport::to_json_string(int indent) const {
  return to_json().dump(indent);
}

SolveReport SolveReport::from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("SolveReport: expected a JSON object");
  }
  require_known_members(
      json,
      {"problem", "solved", "cancelled", "deadline_expired", "preempted",
       "winner", "cost",
       "wall_seconds", "time_to_solution_seconds", "total_iterations",
       "comm_publishes", "elite_accepted", "comm_adoptions", "failed_walkers",
       "attempts", "degraded", "solution", "walkers"},
      "SolveReport");
  SolveReport report;
  report.problem = get_string(json, "problem", "");
  report.solved = get_bool(json, "solved", false);
  report.cancelled = get_bool(json, "cancelled", false);
  report.deadline_expired = get_bool(json, "deadline_expired", false);
  report.preempted = get_bool(json, "preempted", false);
  try {
    const std::int64_t winner = json.at("winner").as_int64();
    report.winner = winner < 0 ? parallel::kNoWinner
                               : static_cast<std::size_t>(winner);
  } catch (const std::exception& e) {
    bad_member("winner", e.what());
  }
  try {
    report.cost = json.at("cost").as_int64();
  } catch (const std::exception& e) {
    bad_member("cost", e.what());
  }
  report.wall_seconds = get_double(json, "wall_seconds", 0.0);
  report.time_to_solution_seconds =
      get_double(json, "time_to_solution_seconds", 0.0);
  report.total_iterations = get_u64(json, "total_iterations", 0);
  report.comm_publishes = get_u64(json, "comm_publishes", 0);
  report.elite_accepted = get_u64(json, "elite_accepted", 0);
  report.comm_adoptions = get_u64(json, "comm_adoptions", 0);
  report.failed_walkers =
      static_cast<std::size_t>(get_u64(json, "failed_walkers", 0));
  report.attempts = static_cast<std::uint32_t>(get_u64(json, "attempts", 1));
  report.degraded = get_bool(json, "degraded", false);
  if (const util::Json* solution = json.find("solution");
      solution != nullptr) {
    if (!solution->is_array()) bad_member("solution", "expected an array");
    report.solution.reserve(solution->size());
    for (const util::Json& v : solution->elements()) {
      try {
        report.solution.push_back(static_cast<int>(v.as_int64()));
      } catch (const std::exception& e) {
        bad_member("solution", e.what());
      }
    }
  }
  if (const util::Json* walkers = json.find("walkers"); walkers != nullptr) {
    if (!walkers->is_array()) bad_member("walkers", "expected an array");
    report.walkers.reserve(walkers->size());
    for (const util::Json& wj : walkers->elements()) {
      if (!wj.is_object()) bad_member("walkers", "expected objects");
      WalkerReport w;
      w.id = static_cast<std::size_t>(get_u64(wj, "id", 0));
      w.solved = get_bool(wj, "solved", false);
      w.interrupted = get_bool(wj, "interrupted", false);
      try {
        w.cost = wj.at("cost").as_int64();
      } catch (const std::exception& e) {
        bad_member("walkers[].cost", e.what());
      }
      w.iterations = get_u64(wj, "iterations", 0);
      w.swaps = get_u64(wj, "swaps", 0);
      w.plateau_moves = get_u64(wj, "plateau_moves", 0);
      w.local_minima = get_u64(wj, "local_minima", 0);
      w.resets = get_u64(wj, "resets", 0);
      w.restarts = get_u64(wj, "restarts", 0);
      w.cost_evaluations = get_u64(wj, "cost_evaluations", 0);
      w.seconds = get_double(wj, "seconds", 0.0);
      w.failed = get_bool(wj, "failed", false);
      w.error = get_string(wj, "error", "");
      report.walkers.push_back(w);
    }
  }
  return report;
}

SolveReport SolveReport::from_json_string(std::string_view text) {
  std::string error;
  const std::optional<util::Json> json = util::Json::parse(text, &error);
  if (!json.has_value()) {
    throw std::invalid_argument("SolveReport: malformed JSON: " + error);
  }
  return from_json(*json);
}

}  // namespace cspls::api
