// Asynchronous solve service: submit(SolveRequest) -> JobHandle, with
// wait() / status() / cancel(), FIFO admission and a bounded global thread
// budget shared by every concurrent job — the serving story on top of the
// api::Solver façade.
//
// Thread accounting: the budget counts *walker* threads.  A queued job is
// admitted when it reaches the head of the queue and at least one budget
// slot is free; it then leases min(its desired parallelism, free slots)
// and its WalkerPool is capped to that lease (walkers beyond the lease run
// in waves, exactly WalkerPoolOptions::max_threads semantics).  Sequential
// and emulated-race jobs lease one slot.  Leases return to the pool when
// the job finishes, waking the next queued job.
//
// OS threads are bounded by the budget, not the queue depth: submission
// only enqueues; one dispatcher thread admits jobs and spawns a worker per
// *running* job (each holds >= 1 lease, so running jobs <= budget).  A
// client may queue thousands of requests without growing the thread count.
//
// Cancellation: cancel() flips the job's flag.  A queued job finishes
// immediately (kCancelled, empty report); a running job stops within one
// engine polling period and its report carries the best configuration
// reached so far (the anytime contract) with `cancelled` set.  Destroying
// the service cancels every outstanding job and joins all workers.
//
// Self-healing: an attempt that crashes wholesale (every walker failed, or
// the dispatch path threw) or stalls (no engine heartbeat for the
// request's watchdog_stall_ms) is retried under the request's RetryPolicy
// — exponential backoff with seeded jitter (kRetrying while backing off),
// walkers reseeded from the failed attempt's best configuration, and
// stalled jobs degraded to half the walkers (kDegraded) instead of
// hanging.  A job whose every attempt crashed resolves as kFailed with a
// structured report (JobHandle::report()); it never takes the process
// down.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "api/solve.hpp"
#include "api/solver.hpp"

namespace cspls::api {

/// Point-in-time view of a SolverService — what a transport's /stats
/// endpoint and a load generator need: the live queue state plus lifetime
/// counters (monotone since construction).
struct ServiceStats {
  std::size_t queued = 0;        ///< jobs admitted to the FIFO, not yet run
  std::size_t running = 0;       ///< jobs currently holding a thread lease
  std::uint64_t submitted = 0;   ///< successful submit() calls
  std::uint64_t completed = 0;   ///< jobs finished kDone
  std::uint64_t cancelled = 0;   ///< jobs finished kCancelled
  std::uint64_t preempted = 0;   ///< jobs finished kPreempted (checkpoint held)
  std::uint64_t failed = 0;      ///< jobs finished kFailed
  std::uint64_t retried = 0;     ///< retry backoffs entered (kRetrying)
  std::uint64_t degraded = 0;    ///< jobs the watchdog degraded at least once
  std::uint64_t fused_batches = 0;  ///< fused launches (>= 2 jobs sharing one
                                    ///< resident team)
  std::uint64_t fused_jobs = 0;  ///< jobs executed inside fused launches
  std::size_t thread_budget = 0;
  std::size_t free_threads = 0;

  /// {"queued":..,"running":..,...} — member order fixed, so the encoding
  /// is deterministic for a given snapshot.
  [[nodiscard]] util::Json to_json() const;

  [[nodiscard]] bool operator==(const ServiceStats&) const = default;
};

/// Streaming subscription for a submitted job: `on_sample` receives
/// (walker_id, iteration, cost) from walker threads while attempts run (see
/// SolveCallbacks::sample_sink) — the transport lifts nonincreasing
/// best-cost events out of it.  Retried attempts stream too, so a consumer
/// wanting monotone output must filter (samples restart at the retry's
/// starting cost).  Empty on_sample or zero period disables streaming.
struct JobStream {
  std::function<void(std::size_t, std::uint64_t, csp::Cost)> on_sample;
  std::uint64_t sample_period = 0;
};

enum class JobStatus {
  kQueued,     ///< admitted to the FIFO, waiting for budget
  kRunning,    ///< leased threads, walkers executing
  kRetrying,   ///< a crashed/stalled attempt is backing off before a rerun
  kDegraded,   ///< running again after the watchdog shrank the walker pool
  kDone,       ///< finished on its own (solved or budget exhausted)
  kCancelled,  ///< stopped by cancel() or service shutdown
  kPreempted,  ///< suspended at a safe point by suspend(); the captured
               ///< PoolCheckpoint is waiting in JobHandle::take_checkpoint()
               ///< and the report carries the best configuration reached
  kFailed,     ///< every attempt crashed wholesale (or an internal error);
               ///< JobHandle::wait() rethrows it, report() still returns
               ///< the structured last-attempt report
};

[[nodiscard]] constexpr bool is_terminal(JobStatus status) noexcept {
  return status == JobStatus::kDone || status == JobStatus::kCancelled ||
         status == JobStatus::kPreempted || status == JobStatus::kFailed;
}

[[nodiscard]] std::string_view name_of(JobStatus status);

namespace detail {
struct JobState;
struct ServiceCore;
}  // namespace detail

/// Shared handle to a submitted job.  Copyable; outlives the service (a
/// handle held past the service's destruction sees the job cancelled).
/// All accessors on a default-constructed (invalid) handle throw
/// std::logic_error rather than dereferencing nothing.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] std::uint64_t id() const;
  [[nodiscard]] JobStatus status() const;

  /// Block until the job reaches a terminal status and return its report.
  /// Cancelled jobs return normally (report.cancelled set, best-effort
  /// contents); kFailed rethrows the job's error as std::runtime_error.
  const SolveReport& wait() const;

  /// Bounded wait; true when the job is terminal before the timeout.
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const;

  /// The terminal report without wait()'s kFailed rethrow — the structured
  /// view of a failed job (e.g. an all-walkers-crashed report with every
  /// walker's error).  Throws std::logic_error while the job is still
  /// live; call after wait_for()/wait() observed a terminal status.
  [[nodiscard]] const SolveReport& report() const;

  /// The job's error message ("" unless kFailed).
  [[nodiscard]] std::string error() const;

  /// Request cancellation.  Returns true when the job was still queued or
  /// running (the request will take effect), false when already terminal.
  bool cancel() const;

  /// Request suspension to a checkpoint.  A running job stops at its next
  /// safe point and — when the capture succeeds — finishes kPreempted with
  /// the PoolCheckpoint retrievable via take_checkpoint(); a failed capture
  /// degrades the job to a plain kCancelled.  A still-queued job finishes
  /// kPreempted immediately with *no* checkpoint (nothing ran, so the
  /// original request resubmitted verbatim is the exact resume).  Returns
  /// true when the job was still live, false when already terminal.
  bool suspend() const;

  /// Move the captured checkpoint out of a terminal job (empties the slot:
  /// a second call returns nullopt).  nullopt for any job that is not
  /// kPreempted, and for a kPreempted job that never started running.
  /// Throws std::logic_error while the job is still live.
  [[nodiscard]] std::optional<parallel::PoolCheckpoint> take_checkpoint() const;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class SolverService;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] detail::JobState& state() const;  ///< throws when !valid()

  std::shared_ptr<detail::JobState> state_;
};

class SolverService {
 public:
  struct Options {
    /// Global walker-thread budget; 0 = std::thread::hardware_concurrency()
    /// (at least 1).
    std::size_t thread_budget = 0;
    /// Per-job lease cap; 0 = no extra cap (a job may lease the whole free
    /// budget).  Lower it to keep head-of-line jobs from starving the queue.
    std::size_t max_threads_per_job = 0;
  };

  SolverService() : SolverService(Options{}) {}
  explicit SolverService(Options options);
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Validate and enqueue `request`.  Throws std::invalid_argument on a
  /// malformed request (unknown problem / unusable size — the message lists
  /// the valid names); admission itself never blocks.  After shutdown()
  /// every submission — malformed or not — throws std::runtime_error
  /// ("submit after shutdown"): the shutdown check runs *before*
  /// validation, so a closed service never misreports itself as a parse
  /// error.
  [[nodiscard]] JobHandle submit(SolveRequest request) {
    return submit(std::move(request), JobStream{});
  }

  /// Same, with a streaming subscription: `stream.on_sample` is invoked
  /// from walker threads while the job's attempts run.  The callback must
  /// be thread-safe and must stay valid until the job is terminal.
  [[nodiscard]] JobHandle submit(SolveRequest request, JobStream stream);

  /// Validate and enqueue a whole batch under one lock (one dispatcher
  /// wake-up).  All-or-nothing: every request is validated before any is
  /// enqueued, so a malformed member throws with no sibling submitted.
  /// Adjacent small members of the batch are natural fusion candidates —
  /// the dispatcher fuses runs of single-lease jobs at the FIFO head into
  /// one parallel::FusedRun launch (see ServiceStats::fused_batches).
  [[nodiscard]] std::vector<JobHandle> submit_batch(
      std::vector<SolveRequest> requests);

  /// Stop accepting submissions, cancel every queued and running job and
  /// join all workers (blocking).  Idempotent; also run by the destructor.
  /// Outstanding JobHandles stay valid and observe kCancelled.
  void shutdown();

  [[nodiscard]] std::size_t thread_budget() const noexcept { return budget_; }

  /// Jobs not yet terminal (queued + running).
  [[nodiscard]] std::size_t pending_jobs() const;

  /// Snapshot of the queue state and lifetime counters.  Cheap (one lock);
  /// safe to poll from a transport's /stats endpoint under load.
  [[nodiscard]] ServiceStats stats() const;

 private:
  void dispatch_loop();

  std::size_t budget_ = 1;
  std::size_t per_job_cap_ = 0;
  std::shared_ptr<detail::ServiceCore> core_;
};

}  // namespace cspls::api
