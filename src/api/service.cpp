#include "api/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/stop_token.hpp"
#include "problems/spec.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace cspls::api {

util::Json ServiceStats::to_json() const {
  util::Json json = util::Json::object();
  json.set("queued", static_cast<std::uint64_t>(queued));
  json.set("running", static_cast<std::uint64_t>(running));
  json.set("submitted", submitted);
  json.set("completed", completed);
  json.set("cancelled", cancelled);
  json.set("preempted", preempted);
  json.set("failed", failed);
  json.set("retried", retried);
  json.set("degraded", degraded);
  json.set("fused_batches", fused_batches);
  json.set("fused_jobs", fused_jobs);
  json.set("thread_budget", static_cast<std::uint64_t>(thread_budget));
  json.set("free_threads", static_cast<std::uint64_t>(free_threads));
  return json;
}

std::string_view name_of(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kRetrying:
      return "retrying";
    case JobStatus::kDegraded:
      return "degraded";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kPreempted:
      return "preempted";
    case JobStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

namespace detail {

struct ServiceCore;

struct JobState {
  std::uint64_t id = 0;
  SolveRequest request;
  JobStream stream;
  /// Back-reference so JobHandle::cancel can wake the dispatcher even
  /// after the service object is gone (the core outlives both).
  std::shared_ptr<ServiceCore> core;
  std::atomic<bool> cancel{false};
  /// Suspend-to-checkpoint request (JobHandle::suspend); observed by the
  /// engine's stop poll via SolveCallbacks::preempt.
  std::atomic<bool> preempt{false};

  mutable std::mutex m;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;  // guarded by m
  SolveReport report;                     // immutable once terminal
  std::string error;
  /// The captured PoolCheckpoint of a kPreempted job; guarded by m, written
  /// (before the terminal transition) only by the worker that ran the job,
  /// moved out by JobHandle::take_checkpoint.
  std::optional<parallel::PoolCheckpoint> checkpoint;
};

/// A worker thread exists only for *running* jobs (admitted by the
/// dispatcher with >= 1 leased slot each), so live worker threads never
/// exceed the thread budget.  A solo worker carries one job; a fused worker
/// carries every member of its batch (each holding its own lease).  The
/// dispatcher's own entry carries none.
struct Worker {
  std::jthread thread;
  std::vector<std::shared_ptr<JobState>> jobs;
};

struct ServiceCore {
  std::mutex m;
  std::condition_variable cv;  ///< submissions, cancels, budget returns
  std::deque<std::shared_ptr<JobState>> fifo;
  std::size_t free_threads = 0;
  std::uint64_t next_id = 1;
  bool shutdown = false;
  std::vector<Worker> workers;  ///< running/unreaped jobs only

  // Lifetime counters for ServiceStats — atomics so the terminal-status
  // bumps in finish() need no extra locking discipline.
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> preempted{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> fused_batches{0};
  std::atomic<std::uint64_t> fused_jobs{0};
};

namespace {

/// Lock order everywhere: core.m before job.m, never the reverse.
void finish(const std::shared_ptr<JobState>& job, JobStatus status,
            SolveReport report, std::string error) {
  bool first_finish = false;
  {
    std::lock_guard<std::mutex> guard(job->m);
    first_finish = !is_terminal(job->status);
    job->report = std::move(report);
    job->error = std::move(error);
    job->status = status;
  }
  if (first_finish && job->core != nullptr) {
    // Lifetime counters for ServiceStats; only the first terminal
    // transition counts (shutdown may re-finish an already-drained job).
    switch (status) {
      case JobStatus::kDone:
        job->core->completed.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobStatus::kCancelled:
        job->core->cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobStatus::kPreempted:
        job->core->preempted.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobStatus::kFailed:
        job->core->failed.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;
    }
  }
  job->cv.notify_all();
}

void finish_cancelled(const std::shared_ptr<JobState>& job) {
  SolveReport report;
  report.cancelled = true;
  finish(job, JobStatus::kCancelled, std::move(report), {});
}

bool terminal(const std::shared_ptr<JobState>& job) {
  std::lock_guard<std::mutex> guard(job->m);
  return is_terminal(job->status);
}

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

detail::JobState& JobHandle::state() const {
  if (state_ == nullptr) {
    throw std::logic_error("JobHandle: default-constructed (invalid) handle");
  }
  return *state_;
}

std::uint64_t JobHandle::id() const { return state().id; }

JobStatus JobHandle::status() const {
  detail::JobState& job = state();
  std::lock_guard<std::mutex> guard(job.m);
  return job.status;
}

const SolveReport& JobHandle::wait() const {
  detail::JobState& job = state();
  std::unique_lock<std::mutex> lock(job.m);
  job.cv.wait(lock, [&] { return is_terminal(job.status); });
  if (job.status == JobStatus::kFailed) {
    throw std::runtime_error("SolverService job " + std::to_string(job.id) +
                             " failed: " + job.error);
  }
  return job.report;
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  detail::JobState& job = state();
  std::unique_lock<std::mutex> lock(job.m);
  return job.cv.wait_for(lock, timeout,
                         [&] { return is_terminal(job.status); });
}

const SolveReport& JobHandle::report() const {
  detail::JobState& job = state();
  std::lock_guard<std::mutex> guard(job.m);
  if (!is_terminal(job.status)) {
    throw std::logic_error("JobHandle::report: job " + std::to_string(job.id) +
                           " is still " + std::string(name_of(job.status)));
  }
  return job.report;
}

std::string JobHandle::error() const {
  detail::JobState& job = state();
  std::lock_guard<std::mutex> guard(job.m);
  return job.error;
}

bool JobHandle::cancel() const {
  detail::JobState& job = state();
  {
    std::lock_guard<std::mutex> guard(job.m);
    if (is_terminal(job.status)) return false;
  }
  job.cancel.store(true, std::memory_order_relaxed);
  if (job.core != nullptr) job.core->cv.notify_all();
  return true;
}

bool JobHandle::suspend() const {
  detail::JobState& job = state();
  {
    std::lock_guard<std::mutex> guard(job.m);
    if (is_terminal(job.status)) return false;
  }
  job.preempt.store(true, std::memory_order_relaxed);
  // Wake the dispatcher so a still-queued job resolves promptly (a running
  // job observes the flag through its engine polls instead).
  if (job.core != nullptr) job.core->cv.notify_all();
  return true;
}

std::optional<parallel::PoolCheckpoint> JobHandle::take_checkpoint() const {
  detail::JobState& job = state();
  std::lock_guard<std::mutex> guard(job.m);
  if (!is_terminal(job.status)) {
    throw std::logic_error("JobHandle::take_checkpoint: job " +
                           std::to_string(job.id) + " is still " +
                           std::string(name_of(job.status)));
  }
  return std::exchange(job.checkpoint, std::nullopt);
}

// ---------------------------------------------------------------------------
// SolverService
// ---------------------------------------------------------------------------

namespace {

/// Parallelism a request asks for: its walker count under kThreads (capped
/// by its own max_threads), one slot otherwise.
std::size_t desired_threads(const SolveRequest& request,
                            std::size_t per_job_cap) {
  std::size_t desired = 1;
  if (request.scheduling == parallel::Scheduling::kThreads) {
    desired = std::max<std::size_t>(1, request.walkers);
    if (request.max_threads != 0) {
      desired = std::min(desired, request.max_threads);
    }
  }
  if (per_job_cap != 0) desired = std::min(desired, per_job_cap);
  return desired;
}

void set_status(const std::shared_ptr<detail::JobState>& job,
                JobStatus status) {
  {
    std::lock_guard<std::mutex> guard(job->m);
    if (is_terminal(job->status)) return;  // never un-finish a job
    job->status = status;
  }
  job->cv.notify_all();
}

/// Supervises one attempt: fires `stalled` when `heartbeat` does not move
/// for `stall_ms` milliseconds.  The jthread destructor (stop + join) is
/// the disarm path, so the watchdog can never outlive its attempt.
std::jthread spawn_watchdog(std::uint64_t stall_ms,
                            const std::atomic<std::uint64_t>* heartbeat,
                            std::atomic<bool>* stalled) {
  return std::jthread([stall_ms, heartbeat, stalled](std::stop_token stop) {
    using Clock = std::chrono::steady_clock;
    const auto budget = std::chrono::milliseconds(stall_ms);
    // Poll in small chunks so disarming (and firing) stays prompt even
    // against multi-second budgets.
    const auto chunk = std::chrono::milliseconds(
        std::clamp<std::uint64_t>(stall_ms / 8, 1, 50));
    std::uint64_t last = heartbeat->load(std::memory_order_relaxed);
    Clock::time_point last_progress = Clock::now();
    while (!stop.stop_requested()) {
      std::this_thread::sleep_for(chunk);
      const std::uint64_t beats = heartbeat->load(std::memory_order_relaxed);
      if (beats != last) {
        last = beats;
        last_progress = Clock::now();
        continue;
      }
      if (Clock::now() - last_progress >= budget) {
        stalled->store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
}

/// One attempt's verdict, inspected by the retry loop.
struct AttemptOutcome {
  SolveReport report;
  std::string error;   ///< non-empty when the dispatch path threw
  bool threw = false;  ///< the dispatch path threw (error holds the message)
  bool stalled = false;  ///< the watchdog cut this attempt short
  /// The PoolCheckpoint a preempted attempt surrendered (empty when the
  /// capture failed — the preemption then degrades to a plain cancel).
  std::optional<parallel::PoolCheckpoint> checkpoint;

  [[nodiscard]] bool all_failed() const noexcept {
    return !report.walkers.empty() &&
           report.failed_walkers == report.walkers.size();
  }
  /// A retryable attempt: crashed wholesale or stalled — never a run that
  /// merely failed to solve, and never one the caller cancelled.
  [[nodiscard]] bool bad() const noexcept {
    return threw || all_failed() || stalled;
  }
};

AttemptOutcome run_attempt(const std::shared_ptr<detail::JobState>& job,
                           SolveRequest attempt_request, std::size_t leased,
                           util::fault::Session& dispatch_faults) {
  AttemptOutcome outcome;
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<bool> watchdog_cancel{false};
  try {
    if (util::fault::probe(&dispatch_faults,
                           util::fault::Site::kServiceDispatch) ==
        util::fault::Action::kCorrupt) {
      throw std::runtime_error("injected fault: corrupt service_dispatch");
    }
    if (attempt_request.scheduling == parallel::Scheduling::kThreads) {
      // The lease caps this job's concurrency; walkers beyond it run in
      // waves (WalkerPoolOptions::max_threads semantics).
      attempt_request.max_threads = leased;
    }
    // The watchdog flag rides a chained slot: walkers it stops record
    // StopCause::kChained, so a watchdog cut is never misreported as a
    // caller cancellation (and survives the pool's first-finisher chain).
    const core::StopToken token =
        core::StopToken(&job->cancel).also_cancelled_by(&watchdog_cancel);
    SolveCallbacks callbacks;
    callbacks.heartbeat = &heartbeat;
    if (job->stream.on_sample && job->stream.sample_period != 0) {
      callbacks.sample_sink = job->stream.on_sample;
      callbacks.sample_period = job->stream.sample_period;
    }
    callbacks.preempt = &job->preempt;
    callbacks.checkpoint_out = &outcome.checkpoint;
    {
      std::jthread watchdog;
      if (attempt_request.watchdog_stall_ms != 0) {
        watchdog = spawn_watchdog(attempt_request.watchdog_stall_ms,
                                  &heartbeat, &watchdog_cancel);
      }
      outcome.report = Solver::solve(attempt_request, token, callbacks);
    }  // watchdog disarmed (stopped + joined) here, throw or return
  } catch (const std::exception& e) {
    outcome.threw = true;
    outcome.error = e.what();
  } catch (...) {
    outcome.threw = true;
    outcome.error = "unknown exception";
  }
  outcome.stalled = watchdog_cancel.load(std::memory_order_relaxed);
  return outcome;
}

/// Backoff in milliseconds before the retry following failing attempt
/// `attempt` (1-based).  `rng` is seeded from the job's master seed, so
/// jittered retry timing is reproducible.
std::uint64_t backoff_ms_for(const RetryPolicy& retry, std::uint32_t attempt,
                             util::Xoshiro256& rng) {
  double ms = static_cast<double>(retry.base_backoff_ms);
  for (std::uint32_t i = 1; i < attempt; ++i) ms *= retry.multiplier;
  ms *= 1.0 + retry.jitter * rng.uniform01();
  return static_cast<std::uint64_t>(ms);
}

/// Cancellation-aware backoff sleep; true when the job was cancelled.
bool backoff_sleep(const std::shared_ptr<detail::JobState>& job,
                   std::uint64_t ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point until = Clock::now() + std::chrono::milliseconds(ms);
  while (Clock::now() < until) {
    if (job->cancel.load(std::memory_order_relaxed)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return job->cancel.load(std::memory_order_relaxed);
}

void run_admitted_job(const std::shared_ptr<detail::ServiceCore>& core,
                      const std::shared_ptr<detail::JobState>& job,
                      std::size_t leased) {
  // The whole job body is contained: nothing may escape a worker thread
  // (an escape would std::terminate the service).  Inner per-attempt
  // containment lives in run_attempt; this shell catches everything else —
  // a malformed CSPLS_FAULTS spec, a bad_alloc while copying the request.
  JobStatus status = JobStatus::kFailed;
  SolveReport report;
  std::string error;
  std::optional<parallel::PoolCheckpoint> checkpoint;
  try {
    // One session across all attempts, counting `service_dispatch` probes:
    // a plan with at_count=n fires on the n-th attempt, which is what
    // makes retry-then-succeed trajectories scriptable.
    const util::fault::Schedule fault_schedule =
        util::fault::kCompiledIn
            ? util::fault::Schedule::with_env(job->request.faults)
            : util::fault::Schedule{};
    util::fault::Session dispatch_faults(&fault_schedule,
                                         util::fault::kAnyWalker);
    const RetryPolicy& retry = job->request.retry;
    const std::uint32_t max_attempts =
        std::max<std::uint32_t>(1, retry.max_attempts);
    // Deterministic jitter: the stream is derived from the job's seed, not
    // from global entropy, so a fixed-seed retry trajectory is replayable.
    util::Xoshiro256 backoff_rng(job->request.seed ^ 0x5afe'b0ff'd1ce'5eedULL);

    SolveRequest attempt_request = job->request;
    attempt_request.walkers = std::max<std::size_t>(1, job->request.walkers);
    bool degraded = false;
    bool cancelled_between_attempts = false;
    AttemptOutcome outcome;
    std::uint32_t attempts_run = 0;

    for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      set_status(job, degraded ? JobStatus::kDegraded : JobStatus::kRunning);
      outcome = run_attempt(job, attempt_request, leased, dispatch_faults);
      attempts_run = attempt;
      if (!outcome.bad() || outcome.report.cancelled) break;
      if (job->cancel.load(std::memory_order_relaxed)) {
        cancelled_between_attempts = true;
        break;
      }
      if (attempt == max_attempts) break;  // attempts exhausted

      // Prepare the retry: degrade stalled jobs to half the walkers, and
      // reseed from the failed attempt's best configuration when it
      // produced one (all-failed attempts leave no checkpoint).
      core->retried.fetch_add(1, std::memory_order_relaxed);
      if (outcome.stalled) {
        if (!degraded) core->degraded.fetch_add(1, std::memory_order_relaxed);
        degraded = true;
        attempt_request.walkers =
            std::max<std::size_t>(1, attempt_request.walkers / 2);
      }
      if (!outcome.report.solution.empty()) {
        attempt_request.warm_start = outcome.report.solution;
      }
      const std::uint64_t backoff =
          backoff_ms_for(retry, attempt, backoff_rng);
      if (backoff != 0) {
        set_status(job, JobStatus::kRetrying);
        if (backoff_sleep(job, backoff)) {
          cancelled_between_attempts = true;
          break;
        }
      }
    }

    // Read the verdict before the move empties outcome.report.
    const bool last_attempt_all_failed = outcome.all_failed();
    report = std::move(outcome.report);
    report.attempts = attempts_run;
    report.degraded = degraded;
    if (cancelled_between_attempts) {
      report.cancelled = true;
      status = JobStatus::kCancelled;
    } else if (outcome.threw) {
      status = JobStatus::kFailed;
      error = std::move(outcome.error);
    } else if (report.cancelled) {
      // Status mirrors what the run actually observed (report.cancelled),
      // not a re-read of the flag — a cancel landing after normal
      // completion must not produce a kCancelled status around a solved,
      // uncancelled report.
      status = JobStatus::kCancelled;
    } else if (report.preempted) {
      if (outcome.checkpoint.has_value()) {
        status = JobStatus::kPreempted;
        checkpoint = std::move(outcome.checkpoint);
      } else {
        // Degradation contract: a preemption whose capture failed (torn
        // write, injected checkpoint_capture fault) is a plain cancel —
        // the caller requeues the original request instead of resuming.
        report.preempted = false;
        report.cancelled = true;
        status = JobStatus::kCancelled;
      }
    } else if (last_attempt_all_failed) {
      // Structured failure: the report (with each walker's error) stays
      // readable via JobHandle::report(); wait() rethrows this summary.
      status = JobStatus::kFailed;
      error = "all " + std::to_string(report.walkers.size()) +
              " walkers failed on every attempt (" +
              std::to_string(report.attempts) + " of " +
              std::to_string(std::max<std::uint32_t>(
                  1, job->request.retry.max_attempts)) +
              "); walker 0: " +
              (report.walkers.empty() ? std::string("<no detail>")
                                      : report.walkers.front().error);
    } else {
      // Includes a final stalled attempt: the anytime contract applies —
      // the report carries the best configuration the attempt reached.
      status = JobStatus::kDone;
    }
  } catch (const std::exception& e) {
    status = JobStatus::kFailed;
    error = e.what();
  } catch (...) {
    status = JobStatus::kFailed;
    error = "unknown exception";
  }

  {
    std::lock_guard<std::mutex> guard(core->m);
    core->free_threads += leased;
  }
  core->cv.notify_all();

  if (checkpoint.has_value()) {
    // Stash before the terminal transition: take_checkpoint() only reads
    // after observing a terminal status under the same lock.
    std::lock_guard<std::mutex> guard(job->m);
    job->checkpoint = std::move(checkpoint);
  }
  detail::finish(job, status, std::move(report), std::move(error));
}

/// Largest run of fusible jobs admitted as one batch — bounds a fused
/// worker's memory footprint and how long one launch can monopolize the
/// budget; the dispatcher starts another batch as soon as this one ends.
constexpr std::size_t kMaxFusedBatch = 32;

/// A request the dispatcher may fuse into a shared batch launch: one
/// thread lease (sequential/emulated scheduling, or a threaded pool
/// already collapsed to one thread), a single attempt and no watchdog —
/// the retry/supervision loop stays a per-worker affair.
bool fusible(const SolveRequest& request, std::size_t per_job_cap) {
  return desired_threads(request, per_job_cap) == 1 &&
         request.retry.max_attempts <= 1 && request.watchdog_stall_ms == 0;
}

/// Fused worker body: one Solver::solve_fused launch for the whole batch.
/// Each member holds its own single-slot lease; the resident team is sized
/// to the batch, so thread accounting matches running the members solo.
/// Per-member status transitions mirror run_admitted_job's single-attempt
/// tail — a member's report lands (and its waiters wake) the moment it
/// finishes, while siblings keep running.
void run_fused_jobs(const std::shared_ptr<detail::ServiceCore>& core,
                    const std::vector<std::shared_ptr<detail::JobState>>& jobs) {
  try {
    std::vector<Solver::FusedSolveJob> members;
    std::vector<std::shared_ptr<detail::JobState>> live;
    members.reserve(jobs.size());
    live.reserve(jobs.size());
    for (const auto& job : jobs) {
      set_status(job, JobStatus::kRunning);
      // The solo path's first act, per member: the service_dispatch fault
      // probe.  A corrupt plan fails this member before launch; siblings
      // still run.
      try {
        const util::fault::Schedule fault_schedule =
            util::fault::kCompiledIn
                ? util::fault::Schedule::with_env(job->request.faults)
                : util::fault::Schedule{};
        util::fault::Session dispatch_faults(&fault_schedule,
                                             util::fault::kAnyWalker);
        if (util::fault::probe(&dispatch_faults,
                               util::fault::Site::kServiceDispatch) ==
            util::fault::Action::kCorrupt) {
          throw std::runtime_error(
              "injected fault: corrupt service_dispatch");
        }
      } catch (const std::exception& e) {
        SolveReport failed;
        failed.attempts = 1;
        detail::finish(job, JobStatus::kFailed, std::move(failed), e.what());
        continue;
      }

      Solver::FusedSolveJob member;
      member.request = job->request;
      member.request.walkers =
          std::max<std::size_t>(1, job->request.walkers);
      if (member.request.scheduling == parallel::Scheduling::kThreads) {
        member.request.max_threads = 1;  // the member's single-slot lease
      }
      member.token = core::StopToken(&job->cancel);
      if (job->stream.on_sample && job->stream.sample_period != 0) {
        member.callbacks.sample_sink = job->stream.on_sample;
        member.callbacks.sample_period = job->stream.sample_period;
      }
      members.push_back(std::move(member));
      live.push_back(job);
    }

    // Per-member preemption channels: slot addresses must stay stable
    // through the launch, so wire them only after the build loop is done
    // growing `members`.
    std::vector<std::optional<parallel::PoolCheckpoint>> checkpoints(
        members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      members[i].callbacks.preempt = &live[i]->preempt;
      members[i].callbacks.checkpoint_out = &checkpoints[i];
    }

    Solver::FusedSolveOptions options;
    options.num_threads = jobs.size();  // one team thread per leased slot
    (void)Solver::solve_fused(
        members, options, [&](std::size_t i, SolveReport report) {
          const auto& job = live[i];
          report.attempts = 1;
          JobStatus status = JobStatus::kDone;
          std::string error;
          const bool all_failed =
              !report.walkers.empty() &&
              report.failed_walkers == report.walkers.size();
          if (report.cancelled) {
            status = JobStatus::kCancelled;
          } else if (report.preempted) {
            if (checkpoints[i].has_value()) {
              status = JobStatus::kPreempted;
              std::lock_guard<std::mutex> guard(job->m);
              job->checkpoint = std::move(checkpoints[i]);
            } else {
              // Failed capture degrades to a plain cancel (see
              // run_admitted_job).
              report.preempted = false;
              report.cancelled = true;
              status = JobStatus::kCancelled;
            }
          } else if (all_failed) {
            status = JobStatus::kFailed;
            error = "all " + std::to_string(report.walkers.size()) +
                    " walkers failed on every attempt (1 of 1); walker 0: " +
                    report.walkers.front().error;
          }
          detail::finish(job, status, std::move(report), std::move(error));
        });
  } catch (const std::exception& e) {
    for (const auto& job : jobs) {
      if (!detail::terminal(job)) {
        detail::finish(job, JobStatus::kFailed, {},
                       std::string("fused dispatch failed: ") + e.what());
      }
    }
  } catch (...) {
    for (const auto& job : jobs) {
      if (!detail::terminal(job)) {
        detail::finish(job, JobStatus::kFailed, {},
                       "fused dispatch failed: unknown exception");
      }
    }
  }

  {
    std::lock_guard<std::mutex> guard(core->m);
    core->free_threads += jobs.size();
  }
  core->cv.notify_all();
}

}  // namespace

SolverService::SolverService(Options options)
    : per_job_cap_(options.max_threads_per_job),
      core_(std::make_shared<detail::ServiceCore>()) {
  budget_ = options.thread_budget != 0
                ? options.thread_budget
                : std::max(1u, std::thread::hardware_concurrency());
  core_->free_threads = budget_;
  // One long-lived scheduler thread; workers exist per running job only.
  core_->workers.push_back(
      detail::Worker{std::jthread([this] { dispatch_loop(); }), {}});
}

SolverService::~SolverService() { shutdown(); }

void SolverService::shutdown() {
  std::vector<detail::Worker> workers;
  std::vector<std::shared_ptr<detail::JobState>> queued;
  {
    std::lock_guard<std::mutex> guard(core_->m);
    core_->shutdown = true;
    workers.swap(core_->workers);
    queued.assign(core_->fifo.begin(), core_->fifo.end());
    core_->fifo.clear();
  }
  for (const detail::Worker& worker : workers) {
    for (const auto& job : worker.jobs) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  core_->cv.notify_all();
  // Jobs never admitted finish as cancelled here (the dispatcher may
  // already be gone from the FIFO's point of view).
  for (const auto& job : queued) detail::finish_cancelled(job);
  // jthread destructors join the dispatcher and every worker as `workers`
  // goes out of scope; a second call finds everything already drained.
}

JobHandle SolverService::submit(SolveRequest request, JobStream stream) {
  // Shutdown is checked *before* validation: "submit after shutdown" is
  // the caller's actual mistake, and reporting a parse/validation error
  // for a request a closed service would never run is misleading.
  const auto throw_if_shutdown = [this] {
    if (core_->shutdown) {
      throw std::runtime_error("SolverService: submit after shutdown");
    }
  };
  {
    std::lock_guard<std::mutex> guard(core_->m);
    throw_if_shutdown();
  }

  // Validate the instance and the pool configuration now so the caller
  // gets the diagnostic (with the valid problem names / the offending
  // knob) at the submission site, not from a failed job.
  (void)problems::parse_spec(request.problem);
  parallel::validate_options(request.to_pool_options());

  auto job = std::make_shared<detail::JobState>();
  job->request = std::move(request);
  job->stream = std::move(stream);
  job->core = core_;
  {
    std::lock_guard<std::mutex> guard(core_->m);
    throw_if_shutdown();  // closed while we were validating
    job->id = core_->next_id++;
    core_->fifo.push_back(job);
  }
  core_->submitted.fetch_add(1, std::memory_order_relaxed);
  core_->cv.notify_all();
  return JobHandle(job);
}

std::vector<JobHandle> SolverService::submit_batch(
    std::vector<SolveRequest> requests) {
  const auto throw_if_shutdown = [this] {
    if (core_->shutdown) {
      throw std::runtime_error("SolverService: submit after shutdown");
    }
  };
  {
    std::lock_guard<std::mutex> guard(core_->m);
    throw_if_shutdown();
  }

  // All-or-nothing validation before any member is enqueued.
  for (const SolveRequest& request : requests) {
    (void)problems::parse_spec(request.problem);
    parallel::validate_options(request.to_pool_options());
  }

  std::vector<std::shared_ptr<detail::JobState>> jobs;
  jobs.reserve(requests.size());
  for (SolveRequest& request : requests) {
    auto job = std::make_shared<detail::JobState>();
    job->request = std::move(request);
    job->core = core_;
    jobs.push_back(std::move(job));
  }
  {
    std::lock_guard<std::mutex> guard(core_->m);
    throw_if_shutdown();  // closed while we were validating
    for (const auto& job : jobs) {
      job->id = core_->next_id++;
      core_->fifo.push_back(job);
    }
  }
  core_->submitted.fetch_add(jobs.size(), std::memory_order_relaxed);
  // One wake-up for the whole batch: the dispatcher sees every member at
  // once, which is what lets it fuse them into a single launch.
  core_->cv.notify_all();

  std::vector<JobHandle> handles;
  handles.reserve(jobs.size());
  for (auto& job : jobs) handles.push_back(JobHandle(std::move(job)));
  return handles;
}

ServiceStats SolverService::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> guard(core_->m);
    snapshot.queued = core_->fifo.size();
    for (const detail::Worker& worker : core_->workers) {
      for (const auto& job : worker.jobs) {
        if (!detail::terminal(job)) ++snapshot.running;
      }
    }
    snapshot.free_threads = core_->free_threads;
  }
  snapshot.submitted = core_->submitted.load(std::memory_order_relaxed);
  snapshot.completed = core_->completed.load(std::memory_order_relaxed);
  snapshot.cancelled = core_->cancelled.load(std::memory_order_relaxed);
  snapshot.preempted = core_->preempted.load(std::memory_order_relaxed);
  snapshot.failed = core_->failed.load(std::memory_order_relaxed);
  snapshot.retried = core_->retried.load(std::memory_order_relaxed);
  snapshot.degraded = core_->degraded.load(std::memory_order_relaxed);
  snapshot.fused_batches =
      core_->fused_batches.load(std::memory_order_relaxed);
  snapshot.fused_jobs = core_->fused_jobs.load(std::memory_order_relaxed);
  snapshot.thread_budget = budget_;
  return snapshot;
}

std::size_t SolverService::pending_jobs() const {
  std::lock_guard<std::mutex> guard(core_->m);
  std::size_t pending = core_->fifo.size();
  for (const detail::Worker& worker : core_->workers) {
    for (const auto& job : worker.jobs) {
      if (!detail::terminal(job)) ++pending;
    }
  }
  return pending;
}

void SolverService::dispatch_loop() {
  detail::ServiceCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.m);
  while (true) {
    core.cv.wait(lock, [&] {
      if (core.shutdown) return true;
      if (core.fifo.empty()) return false;
      if (core.free_threads > 0) return true;
      // No budget: still wake to drain cancelled/suspended queued jobs
      // promptly.
      return std::any_of(
          core.fifo.begin(), core.fifo.end(), [](const auto& job) {
            return job->cancel.load(std::memory_order_relaxed) ||
                   job->preempt.load(std::memory_order_relaxed);
          });
    });
    if (core.shutdown) return;

    // Drain cancellations and suspensions anywhere in the queue first: a
    // cancelled or suspended queued job must become terminal without
    // waiting for budget.  A suspended queued job never ran, so it resolves
    // kPreempted with *no* checkpoint — resubmitting the original request
    // verbatim is its exact resume (cancel wins when both flags are up).
    for (auto it = core.fifo.begin(); it != core.fifo.end();) {
      if ((*it)->cancel.load(std::memory_order_relaxed)) {
        const auto job = *it;
        it = core.fifo.erase(it);
        detail::finish_cancelled(job);
      } else if ((*it)->preempt.load(std::memory_order_relaxed)) {
        const auto job = *it;
        it = core.fifo.erase(it);
        SolveReport report;
        report.preempted = true;
        detail::finish(job, JobStatus::kPreempted, std::move(report), {});
      } else {
        ++it;
      }
    }

    // Reap workers whose jobs are terminal (status is published before the
    // worker returns, so these joins only wait out the return path).
    std::erase_if(core.workers, [](detail::Worker& worker) {
      if (worker.jobs.empty()) return false;  // the dispatcher's own entry
      for (const auto& job : worker.jobs) {
        if (!detail::terminal(job)) return false;
      }
      if (worker.thread.joinable()) worker.thread.join();
      return true;
    });

    // FIFO admission.  A run of >= 2 fusible jobs at the head is admitted
    // as ONE fused worker sharing one resident team (one launch for the
    // whole batch); the scan stops at the first non-fusible job, so FIFO
    // order is preserved.  Otherwise the head job gets a dedicated worker.
    // Spawning is part of the contained dispatch path: if the worker cannot
    // be created (thread exhaustion, bad_alloc) the lease is refunded and
    // the job(s) resolve kFailed — an exception here would take down the
    // dispatcher and hang every outstanding handle.
    if (!core.fifo.empty() && core.free_threads > 0) {
      std::size_t prefix = 0;
      while (prefix < core.fifo.size() && prefix < kMaxFusedBatch &&
             prefix < core.free_threads &&
             fusible(core.fifo[prefix]->request, per_job_cap_)) {
        ++prefix;
      }
      if (prefix >= 2) {
        const std::vector<std::shared_ptr<detail::JobState>> batch(
            core.fifo.begin(),
            core.fifo.begin() + static_cast<std::ptrdiff_t>(prefix));
        core.fifo.erase(core.fifo.begin(),
                        core.fifo.begin() + static_cast<std::ptrdiff_t>(prefix));
        core.free_threads -= prefix;  // one lease per member
        core.fused_batches.fetch_add(1, std::memory_order_relaxed);
        core.fused_jobs.fetch_add(prefix, std::memory_order_relaxed);
        try {
          core.workers.push_back(detail::Worker{
              std::jthread([core = core_, batch] {
                run_fused_jobs(core, batch);
              }),
              batch});
        } catch (const std::exception& e) {
          core.free_threads += prefix;
          for (const auto& job : batch) {
            detail::finish(job, JobStatus::kFailed, {},
                           std::string("dispatch failed: ") + e.what());
          }
        }
      } else {
        const auto job = core.fifo.front();
        core.fifo.pop_front();
        const std::size_t leased = std::min(
            desired_threads(job->request, per_job_cap_), core.free_threads);
        core.free_threads -= leased;
        try {
          core.workers.push_back(detail::Worker{
              std::jthread([core = core_, job, leased] {
                run_admitted_job(core, job, leased);
              }),
              {job}});
        } catch (const std::exception& e) {
          core.free_threads += leased;
          detail::finish(job, JobStatus::kFailed, {},
                         std::string("dispatch failed: ") + e.what());
        }
      }
    }
  }
}

}  // namespace cspls::api
