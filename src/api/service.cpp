#include "api/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "problems/spec.hpp"

namespace cspls::api {

std::string_view name_of(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

namespace detail {

struct ServiceCore;

struct JobState {
  std::uint64_t id = 0;
  SolveRequest request;
  /// Back-reference so JobHandle::cancel can wake the dispatcher even
  /// after the service object is gone (the core outlives both).
  std::shared_ptr<ServiceCore> core;
  std::atomic<bool> cancel{false};

  mutable std::mutex m;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;  // guarded by m
  SolveReport report;                     // immutable once terminal
  std::string error;
};

/// A worker thread exists only for a *running* job (admitted by the
/// dispatcher with >= 1 leased slot), so live workers never exceed the
/// thread budget.
struct Worker {
  std::jthread thread;
  std::shared_ptr<JobState> job;
};

struct ServiceCore {
  std::mutex m;
  std::condition_variable cv;  ///< submissions, cancels, budget returns
  std::deque<std::shared_ptr<JobState>> fifo;
  std::size_t free_threads = 0;
  std::uint64_t next_id = 1;
  bool shutdown = false;
  std::vector<Worker> workers;  ///< running/unreaped jobs only
};

namespace {

/// Lock order everywhere: core.m before job.m, never the reverse.
void finish(const std::shared_ptr<JobState>& job, JobStatus status,
            SolveReport report, std::string error) {
  {
    std::lock_guard<std::mutex> guard(job->m);
    job->report = std::move(report);
    job->error = std::move(error);
    job->status = status;
  }
  job->cv.notify_all();
}

void finish_cancelled(const std::shared_ptr<JobState>& job) {
  SolveReport report;
  report.cancelled = true;
  finish(job, JobStatus::kCancelled, std::move(report), {});
}

bool terminal(const std::shared_ptr<JobState>& job) {
  std::lock_guard<std::mutex> guard(job->m);
  return is_terminal(job->status);
}

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

detail::JobState& JobHandle::state() const {
  if (state_ == nullptr) {
    throw std::logic_error("JobHandle: default-constructed (invalid) handle");
  }
  return *state_;
}

std::uint64_t JobHandle::id() const { return state().id; }

JobStatus JobHandle::status() const {
  detail::JobState& job = state();
  std::lock_guard<std::mutex> guard(job.m);
  return job.status;
}

const SolveReport& JobHandle::wait() const {
  detail::JobState& job = state();
  std::unique_lock<std::mutex> lock(job.m);
  job.cv.wait(lock, [&] { return is_terminal(job.status); });
  if (job.status == JobStatus::kFailed) {
    throw std::runtime_error("SolverService job " + std::to_string(job.id) +
                             " failed: " + job.error);
  }
  return job.report;
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  detail::JobState& job = state();
  std::unique_lock<std::mutex> lock(job.m);
  return job.cv.wait_for(lock, timeout,
                         [&] { return is_terminal(job.status); });
}

bool JobHandle::cancel() const {
  detail::JobState& job = state();
  {
    std::lock_guard<std::mutex> guard(job.m);
    if (is_terminal(job.status)) return false;
  }
  job.cancel.store(true, std::memory_order_relaxed);
  if (job.core != nullptr) job.core->cv.notify_all();
  return true;
}

// ---------------------------------------------------------------------------
// SolverService
// ---------------------------------------------------------------------------

namespace {

/// Parallelism a request asks for: its walker count under kThreads (capped
/// by its own max_threads), one slot otherwise.
std::size_t desired_threads(const SolveRequest& request,
                            std::size_t per_job_cap) {
  std::size_t desired = 1;
  if (request.scheduling == parallel::Scheduling::kThreads) {
    desired = std::max<std::size_t>(1, request.walkers);
    if (request.max_threads != 0) {
      desired = std::min(desired, request.max_threads);
    }
  }
  if (per_job_cap != 0) desired = std::min(desired, per_job_cap);
  return desired;
}

void run_admitted_job(const std::shared_ptr<detail::ServiceCore>& core,
                      const std::shared_ptr<detail::JobState>& job,
                      std::size_t leased) {
  {
    std::lock_guard<std::mutex> guard(job->m);
    job->status = JobStatus::kRunning;
  }
  job->cv.notify_all();

  SolveReport report;
  std::string error;
  bool failed = false;
  try {
    SolveRequest capped = job->request;
    if (capped.scheduling == parallel::Scheduling::kThreads) {
      // The lease caps this job's concurrency; walkers beyond it run in
      // waves (WalkerPoolOptions::max_threads semantics).
      capped.max_threads = leased;
    }
    report = Solver::solve(capped, &job->cancel);
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  {
    std::lock_guard<std::mutex> guard(core->m);
    core->free_threads += leased;
  }
  core->cv.notify_all();

  // Status mirrors what the run actually observed (report.cancelled), not
  // a re-read of the flag — a cancel landing after normal completion must
  // not produce a kCancelled status around a solved, uncancelled report.
  const JobStatus status = failed            ? JobStatus::kFailed
                           : report.cancelled ? JobStatus::kCancelled
                                              : JobStatus::kDone;
  detail::finish(job, status, std::move(report), std::move(error));
}

}  // namespace

SolverService::SolverService(Options options)
    : per_job_cap_(options.max_threads_per_job),
      core_(std::make_shared<detail::ServiceCore>()) {
  budget_ = options.thread_budget != 0
                ? options.thread_budget
                : std::max(1u, std::thread::hardware_concurrency());
  core_->free_threads = budget_;
  // One long-lived scheduler thread; workers exist per running job only.
  core_->workers.push_back(
      detail::Worker{std::jthread([this] { dispatch_loop(); }), nullptr});
}

SolverService::~SolverService() { shutdown(); }

void SolverService::shutdown() {
  std::vector<detail::Worker> workers;
  std::vector<std::shared_ptr<detail::JobState>> queued;
  {
    std::lock_guard<std::mutex> guard(core_->m);
    core_->shutdown = true;
    workers.swap(core_->workers);
    queued.assign(core_->fifo.begin(), core_->fifo.end());
    core_->fifo.clear();
  }
  for (const detail::Worker& worker : workers) {
    if (worker.job != nullptr) {
      worker.job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  core_->cv.notify_all();
  // Jobs never admitted finish as cancelled here (the dispatcher may
  // already be gone from the FIFO's point of view).
  for (const auto& job : queued) detail::finish_cancelled(job);
  // jthread destructors join the dispatcher and every worker as `workers`
  // goes out of scope; a second call finds everything already drained.
}

JobHandle SolverService::submit(SolveRequest request) {
  // Shutdown is checked *before* validation: "submit after shutdown" is
  // the caller's actual mistake, and reporting a parse/validation error
  // for a request a closed service would never run is misleading.
  const auto throw_if_shutdown = [this] {
    if (core_->shutdown) {
      throw std::runtime_error("SolverService: submit after shutdown");
    }
  };
  {
    std::lock_guard<std::mutex> guard(core_->m);
    throw_if_shutdown();
  }

  // Validate the instance and the pool configuration now so the caller
  // gets the diagnostic (with the valid problem names / the offending
  // knob) at the submission site, not from a failed job.
  (void)problems::parse_spec(request.problem);
  parallel::validate_options(request.to_pool_options());

  auto job = std::make_shared<detail::JobState>();
  job->request = std::move(request);
  job->core = core_;
  {
    std::lock_guard<std::mutex> guard(core_->m);
    throw_if_shutdown();  // closed while we were validating
    job->id = core_->next_id++;
    core_->fifo.push_back(job);
  }
  core_->cv.notify_all();
  return JobHandle(job);
}

std::size_t SolverService::pending_jobs() const {
  std::lock_guard<std::mutex> guard(core_->m);
  std::size_t pending = core_->fifo.size();
  for (const detail::Worker& worker : core_->workers) {
    if (worker.job != nullptr && !detail::terminal(worker.job)) ++pending;
  }
  return pending;
}

void SolverService::dispatch_loop() {
  detail::ServiceCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.m);
  while (true) {
    core.cv.wait(lock, [&] {
      if (core.shutdown) return true;
      if (core.fifo.empty()) return false;
      if (core.free_threads > 0) return true;
      // No budget: still wake to drain cancelled queued jobs promptly.
      return std::any_of(core.fifo.begin(), core.fifo.end(),
                         [](const auto& job) {
                           return job->cancel.load(std::memory_order_relaxed);
                         });
    });
    if (core.shutdown) return;

    // Drain cancellations anywhere in the queue first: a cancelled queued
    // job must become terminal without waiting for budget.
    for (auto it = core.fifo.begin(); it != core.fifo.end();) {
      if ((*it)->cancel.load(std::memory_order_relaxed)) {
        const auto job = *it;
        it = core.fifo.erase(it);
        detail::finish_cancelled(job);
      } else {
        ++it;
      }
    }

    // Reap workers whose jobs are terminal (status is published before the
    // worker returns, so these joins only wait out the return path).
    std::erase_if(core.workers, [](detail::Worker& worker) {
      if (worker.job == nullptr || !detail::terminal(worker.job)) {
        return false;
      }
      if (worker.thread.joinable()) worker.thread.join();
      return true;
    });

    // FIFO admission: lease threads for the head job and hand it to a
    // dedicated worker.
    if (!core.fifo.empty() && core.free_threads > 0) {
      const auto job = core.fifo.front();
      core.fifo.pop_front();
      const std::size_t leased = std::min(
          desired_threads(job->request, per_job_cap_), core.free_threads);
      core.free_threads -= leased;
      core.workers.push_back(detail::Worker{
          std::jthread([core = core_, job, leased] {
            run_admitted_job(core, job, leased);
          }),
          job});
    }
  }
}

}  // namespace cspls::api
