// The declarative solve API: a solve expressed as a *value*.
//
// SolveRequest names everything a run needs — the instance (a spec string
// like "costas:18"), the walker population, the WalkerPool policies by
// name, optional engine-parameter overrides, a master seed and an optional
// wall-clock deadline.  SolveReport is the full outcome: accepted result,
// timings, termination cause and per-walker statistics.  Both round-trip
// through util::Json, so requests and reports can cross a process boundary
// (files, pipes, HTTP bodies) and re-encode byte-identically.
//
// Determinism contract: a request with no deadline and no cancellation,
// executed by api::Solver, reproduces the equivalent direct
// WalkerPool::run byte-for-byte for a fixed master seed (winner,
// per-walker iterations, costs, solutions) — the API layer adds naming and
// transport, never behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "csp/cost.hpp"
#include "parallel/checkpoint.hpp"
#include "parallel/policy_names.hpp"
#include "parallel/walker_pool.hpp"
#include "util/json.hpp"

namespace cspls::api {

// --- Policy names -----------------------------------------------------
//
// The wire names of the WalkerPool policy enums (README's policy table)
// live in parallel/policy_names.hpp — the single source of truth shared
// with the bench harnesses — and are re-exported here so API users need
// not reach below the api/ layer.  `name_of` is total; the `*_from_name`
// parsers return std::nullopt for unknown names — callers attach the valid
// alternatives via `policy_names_hint`.

using parallel::name_of;
using parallel::scheduling_from_name;
using parallel::neighborhood_from_name;
using parallel::exchange_from_name;
using parallel::comm_mode_from_name;
using parallel::topology_from_name;
using parallel::termination_from_name;
using parallel::restart_schedule_from_name;

// --- SolveRequest -----------------------------------------------------

/// Per-job retry discipline for api::SolverService ("retry" on the wire).
/// An attempt is retried when it crashes wholesale (every walker failed, or
/// the dispatch path threw) or the watchdog declared it stalled — never
/// when it merely failed to solve.  Backoff before attempt n (n >= 2) is
///
///   base_backoff_ms * multiplier^(n-2) * (1 + jitter * u),  u ~ U[0,1)
///
/// with u drawn from an RNG seeded by the job's master seed, so retry
/// timing is as reproducible as the walks themselves.
struct RetryPolicy {
  /// Total attempts, the first included (1 = never retry, the default).
  std::uint32_t max_attempts = 1;
  std::uint64_t base_backoff_ms = 0;  ///< backoff before the first retry
  double multiplier = 2.0;            ///< exponential growth per retry
  double jitter = 0.0;                ///< uniform jitter fraction in [0, 1]

  [[nodiscard]] bool operator==(const RetryPolicy&) const = default;
};

struct SolveRequest {
  /// Instance spec, e.g. "costas:18" (problems::parse_spec grammar).
  std::string problem;

  /// Walker population (the paper's "number of cores").
  std::size_t walkers = 4;

  /// Master seed; walker i uses RNG stream i.
  std::uint64_t seed = 0x5eedULL;

  parallel::Scheduling scheduling = parallel::Scheduling::kThreads;
  /// The communication pair: who talks to whom (`neighborhood`) and what
  /// flows over the edges (`exchange`).  The wire also accepts the
  /// deprecated "topology" member as an alias for the three legacy pairs.
  parallel::Neighborhood neighborhood = parallel::Neighborhood::kIsolated;
  parallel::Exchange exchange = parallel::Exchange::kNone;
  /// When adoption may happen ("comm_mode" on the wire): "on_reset" = only
  /// when a partial reset fires (the historical semantics), "async" = also
  /// through a staleness-bounded pull every `comm_period` iterations while
  /// walking (asynchronous gossip).  Requires an exchanging strategy.
  parallel::CommMode comm_mode = parallel::CommMode::kOnReset;
  parallel::Termination termination = parallel::Termination::kFirstFinisher;

  /// Exchange knobs (ignored under Exchange::kNone): publish period in
  /// iterations, adopt-on-reset probability, staleness bound in publish
  /// ticks (required for "decay-elite", optional for "migration").
  std::uint64_t comm_period = 1000;
  double comm_adopt_probability = 0.5;
  std::uint64_t comm_decay = 0;

  /// Cap on concurrently running OS threads (0 = one per walker).
  std::size_t max_threads = 0;

  /// Wall-clock budget in milliseconds; 0 = none.  When it expires the run
  /// stops within one engine polling period and the report carries the best
  /// configuration reached (deadline_expired is set).
  std::uint64_t deadline_ms = 0;

  /// Engine-parameter overrides; absent = the model's tuning defaults.
  std::optional<core::Params> params;

  /// Per-walker WalkerTrace instrumentation.
  bool trace = false;
  std::uint64_t trace_sample_period = 0;

  /// Retry discipline for jobs run through api::SolverService (ignored by
  /// the synchronous api::Solver, which runs exactly one attempt).
  RetryPolicy retry;

  /// Watchdog budget in milliseconds for api::SolverService: when a
  /// running attempt makes no engine progress (no heartbeat) for this long
  /// it is declared stalled, cut short, and retried degraded (half the
  /// walkers).  0 disables the watchdog.
  std::uint64_t watchdog_stall_ms = 0;

  /// Start every walker's first walk from this configuration instead of a
  /// random one (a checkpoint; RNG streams are unaffected).  The service
  /// fills this on retries with the failed attempt's best configuration.
  std::optional<std::vector<int>> warm_start;

  /// Fault-injection plans ("faults" on the wire), merged with the
  /// CSPLS_FAULTS env schedule.  Carried in every build; armed only when
  /// the binary was compiled with CSPLS_FAULT_INJECTION.
  std::vector<util::fault::FaultPlan> faults;

  /// Resume a previously preempted run from its PoolCheckpoint
  /// ("resume_from" on the wire, the strict "cspls-pool-checkpoint/1"
  /// document).  The request's problem/walkers/seed/policies must match the
  /// preempted run's — the checkpoint carries *state*, not configuration —
  /// and the resumed run then reproduces the uninterrupted run byte-for-byte
  /// (trajectories, RNG positions, counters).  Mutually exclusive with
  /// warm_start.
  std::optional<parallel::PoolCheckpoint> resume_from;

  /// The equivalent WalkerPool configuration.
  [[nodiscard]] parallel::WalkerPoolOptions to_pool_options() const;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] std::string to_json_string(int indent = 0) const;
  /// Throws std::invalid_argument naming the offending member on a
  /// malformed document (unknown policy name, wrong type, bad number).
  [[nodiscard]] static SolveRequest from_json(const util::Json& json);
  [[nodiscard]] static SolveRequest from_json_string(std::string_view text);

  [[nodiscard]] bool operator==(const SolveRequest&) const = default;
};

// --- SolveReport ------------------------------------------------------

/// Per-walker statistics (core::RunStats plus identity/termination bits).
struct WalkerReport {
  std::size_t id = 0;
  bool solved = false;
  bool interrupted = false;
  csp::Cost cost = csp::kInfiniteCost;
  std::uint64_t iterations = 0;
  std::uint64_t swaps = 0;
  std::uint64_t plateau_moves = 0;
  std::uint64_t local_minima = 0;
  std::uint64_t resets = 0;
  std::uint64_t restarts = 0;
  std::uint64_t cost_evaluations = 0;
  double seconds = 0.0;
  /// Crash containment: this walker died on an exception; `error` holds
  /// the message and the counters describe the walk up to nothing — a
  /// failed walker reports zero work and an infinite cost.
  bool failed = false;
  std::string error;

  [[nodiscard]] bool operator==(const WalkerReport&) const = default;
};

struct SolveReport {
  /// Echo of the request's instance spec (canonical form).
  std::string problem;

  bool solved = false;
  /// The run was stopped by the caller's cancellation flag.
  bool cancelled = false;
  /// The run was cut short by the request's deadline.  Exactly one of the
  /// paper's termination causes applies per run: solved (a walker hit the
  /// target), budget exhausted (all walkers ran dry), cancelled, or
  /// deadline_expired; the latter two still carry the best configuration
  /// reached (the anytime contract).
  bool deadline_expired = false;
  /// The run was suspended at a safe point by a preemption request and a
  /// PoolCheckpoint was captured (handed out-of-band — via
  /// SolveCallbacks::checkpoint_out or the service job handle — never
  /// embedded here).  A preemption whose capture failed degrades to a plain
  /// cancel: `cancelled` is set instead and no checkpoint exists.
  bool preempted = false;

  /// Winning walker id, or parallel::kNoWinner.
  std::size_t winner = parallel::kNoWinner;
  /// Best cost reached (0 = solved).
  csp::Cost cost = csp::kInfiniteCost;
  /// Wall-clock from launch to the last walker stopping; on cancelled or
  /// deadline-expired runs, the time the pool actually had.
  double wall_seconds = 0.0;
  /// Wall-clock from launch to the accepted solution (= wall_seconds when
  /// nobody solved).
  double time_to_solution_seconds = 0.0;

  std::uint64_t total_iterations = 0;
  /// Exchange-traffic counters: publish events of any kind, improving
  /// keep-best accepts, and configurations actually adopted from an
  /// in-neighbour slot (reset-time or mid-walk).
  std::uint64_t comm_publishes = 0;
  std::uint64_t elite_accepted = 0;
  std::uint64_t comm_adoptions = 0;
  /// Walkers that died on an exception (each carries failed + error in its
  /// WalkerReport); survivors are unaffected.
  std::size_t failed_walkers = 0;
  /// Attempts the serving layer ran to produce this report (1 = first try;
  /// always 1 from the synchronous api::Solver).
  std::uint32_t attempts = 1;
  /// True when the watchdog degraded the job (fewer walkers) on a retry.
  bool degraded = false;

  /// The accepted configuration (winner's solution, or best reached).
  std::vector<int> solution;
  std::vector<WalkerReport> walkers;

  [[nodiscard]] bool has_winner() const noexcept {
    return winner != parallel::kNoWinner;
  }

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] std::string to_json_string(int indent = 0) const;
  [[nodiscard]] static SolveReport from_json(const util::Json& json);
  [[nodiscard]] static SolveReport from_json_string(std::string_view text);

  [[nodiscard]] bool operator==(const SolveReport&) const = default;
};

/// "scheduling: threads | sequential | emulated-race" — one line per policy,
/// for error messages and --help text.
using parallel::policy_names_hint;

}  // namespace cspls::api
