#include "api/solver.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/stop_token.hpp"
#include "parallel/fused.hpp"
#include "problems/spec.hpp"

namespace cspls::api {

namespace {

WalkerReport walker_report_of(const parallel::WalkerOutcome& outcome) {
  WalkerReport report;
  report.id = outcome.walker_id;
  report.solved = outcome.result.solved;
  report.interrupted = outcome.result.interrupted;
  report.cost = outcome.result.cost;
  report.iterations = outcome.result.stats.iterations;
  report.swaps = outcome.result.stats.swaps;
  report.plateau_moves = outcome.result.stats.plateau_moves;
  report.local_minima = outcome.result.stats.local_minima;
  report.resets = outcome.result.stats.resets;
  report.restarts = outcome.result.stats.restarts;
  report.cost_evaluations = outcome.result.stats.cost_evaluations;
  report.seconds = outcome.result.stats.seconds;
  report.failed = outcome.failed();
  report.error = outcome.result.error;
  return report;
}

/// MultiWalkReport -> SolveReport conversion shared by the solo and fused
/// paths (identical interpretation is what makes the fused byte-identity
/// guarantee meaningful at this layer).
SolveReport report_of(const problems::ProblemSpec& spec,
                      const parallel::MultiWalkReport& pool_report) {
  SolveReport report;
  report.problem = problems::format_spec(spec);
  report.solved = pool_report.solved;
  // Exactly one termination cause per run, taken from what the walkers'
  // polls actually observed — not from re-reading the flag or the clock
  // here, which would misreport a run that completed normally just before
  // a late cancel / deadline crossing.
  report.cancelled = pool_report.interrupt_cause == core::StopCause::kCancel;
  report.deadline_expired =
      pool_report.interrupt_cause == core::StopCause::kDeadline;
  report.preempted =
      pool_report.interrupt_cause == core::StopCause::kPreempted;
  report.winner = pool_report.winner;
  report.cost = pool_report.best.cost;
  report.wall_seconds = pool_report.wall_seconds;
  report.time_to_solution_seconds = pool_report.time_to_solution_seconds;
  report.total_iterations = pool_report.total_iterations();
  report.comm_publishes = pool_report.comm_publishes;
  report.elite_accepted = pool_report.elite_accepted;
  report.comm_adoptions = pool_report.comm_adoptions;
  report.failed_walkers = pool_report.failed_walkers;
  report.solution = pool_report.best.solution;
  report.walkers.reserve(pool_report.walkers.size());
  for (const parallel::WalkerOutcome& outcome : pool_report.walkers) {
    report.walkers.push_back(walker_report_of(outcome));
  }
  return report;
}

void validate_retry(const RetryPolicy& retry) {
  if (retry.max_attempts == 0) {
    throw std::invalid_argument(
        "SolveRequest: retry.max_attempts must be at least 1 (the first "
        "attempt counts)");
  }
  if (!(retry.multiplier >= 1.0)) {
    throw std::invalid_argument(
        "SolveRequest: retry.multiplier must be >= 1 (backoff never "
        "shrinks)");
  }
  if (!(retry.jitter >= 0.0 && retry.jitter <= 1.0)) {
    throw std::invalid_argument(
        "SolveRequest: retry.jitter must be in [0, 1]");
  }
}

}  // namespace

SolveReport Solver::solve(const SolveRequest& request, core::StopToken token,
                          const SolveCallbacks& callbacks) {
  validate_retry(request.retry);
  const problems::ProblemSpec spec = problems::parse_spec(request.problem);
  const std::unique_ptr<csp::Problem> problem = problems::instantiate(spec);

  if (request.deadline_ms != 0) {
    token = token.expiring_at(
        core::StopToken::Clock::now() +
        std::chrono::milliseconds(request.deadline_ms));
  }

  parallel::WalkerPoolOptions options = request.to_pool_options();
  options.heartbeat = callbacks.heartbeat;
  if (callbacks.sample_sink && callbacks.sample_period != 0) {
    options.sample_sink = callbacks.sample_sink;
    options.sample_sink_period = callbacks.sample_period;
  }
  options.preempt = callbacks.preempt;
  options.checkpoint_out = callbacks.checkpoint_out;
  const parallel::WalkerPool pool(std::move(options));
  const parallel::MultiWalkReport pool_report = pool.run(*problem, token);
  return report_of(spec, pool_report);
}

std::vector<std::size_t> Solver::solve_fused(
    std::span<const FusedSolveJob> jobs, const FusedSolveOptions& options,
    const FusedSolveSink& sink) {
  // Validate and instantiate the whole batch before any member runs: a
  // malformed request throws here, with no sibling half-solved.  The
  // instances must outlive the fused run (prototypes are borrowed).
  std::vector<problems::ProblemSpec> specs;
  std::vector<std::unique_ptr<csp::Problem>> problems;
  std::vector<parallel::FusedJob> fused;
  specs.reserve(jobs.size());
  problems.reserve(jobs.size());
  fused.reserve(jobs.size());
  const auto launch = core::StopToken::Clock::now();
  for (const FusedSolveJob& job : jobs) {
    validate_retry(job.request.retry);
    specs.push_back(problems::parse_spec(job.request.problem));
    problems.push_back(problems::instantiate(specs.back()));

    parallel::FusedJob member;
    member.prototype = problems.back().get();
    member.options = job.request.to_pool_options();
    member.options.heartbeat = job.callbacks.heartbeat;
    if (job.callbacks.sample_sink && job.callbacks.sample_period != 0) {
      member.options.sample_sink = job.callbacks.sample_sink;
      member.options.sample_sink_period = job.callbacks.sample_period;
    }
    member.options.preempt = job.callbacks.preempt;
    member.options.checkpoint_out = job.callbacks.checkpoint_out;
    // Each member's time budget runs from the batch launch — the fused
    // analogue of the solo path stamping the deadline at solve() entry.
    member.stop = job.request.deadline_ms != 0
                      ? job.token.expiring_at(
                            launch + std::chrono::milliseconds(
                                         job.request.deadline_ms))
                      : job.token;
    fused.push_back(std::move(member));
  }

  parallel::FusedOptions fused_options;
  fused_options.num_threads = options.num_threads;
  fused_options.admit = options.admit;
  const parallel::FusedRun runner(std::move(fused_options));
  return runner.run(
      fused, [&](std::size_t member, parallel::MultiWalkReport pool_report) {
        if (sink) sink(member, report_of(specs[member], pool_report));
      });
}

}  // namespace cspls::api
