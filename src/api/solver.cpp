#include "api/solver.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/stop_token.hpp"
#include "problems/spec.hpp"

namespace cspls::api {

namespace {

WalkerReport walker_report_of(const parallel::WalkerOutcome& outcome) {
  WalkerReport report;
  report.id = outcome.walker_id;
  report.solved = outcome.result.solved;
  report.interrupted = outcome.result.interrupted;
  report.cost = outcome.result.cost;
  report.iterations = outcome.result.stats.iterations;
  report.swaps = outcome.result.stats.swaps;
  report.plateau_moves = outcome.result.stats.plateau_moves;
  report.local_minima = outcome.result.stats.local_minima;
  report.resets = outcome.result.stats.resets;
  report.restarts = outcome.result.stats.restarts;
  report.cost_evaluations = outcome.result.stats.cost_evaluations;
  report.seconds = outcome.result.stats.seconds;
  report.failed = outcome.failed();
  report.error = outcome.result.error;
  return report;
}

void validate_retry(const RetryPolicy& retry) {
  if (retry.max_attempts == 0) {
    throw std::invalid_argument(
        "SolveRequest: retry.max_attempts must be at least 1 (the first "
        "attempt counts)");
  }
  if (!(retry.multiplier >= 1.0)) {
    throw std::invalid_argument(
        "SolveRequest: retry.multiplier must be >= 1 (backoff never "
        "shrinks)");
  }
  if (!(retry.jitter >= 0.0 && retry.jitter <= 1.0)) {
    throw std::invalid_argument(
        "SolveRequest: retry.jitter must be in [0, 1]");
  }
}

}  // namespace

SolveReport Solver::solve(const SolveRequest& request, core::StopToken token,
                          const SolveCallbacks& callbacks) {
  validate_retry(request.retry);
  const problems::ProblemSpec spec = problems::parse_spec(request.problem);
  const std::unique_ptr<csp::Problem> problem = problems::instantiate(spec);

  if (request.deadline_ms != 0) {
    token = token.expiring_at(
        core::StopToken::Clock::now() +
        std::chrono::milliseconds(request.deadline_ms));
  }

  parallel::WalkerPoolOptions options = request.to_pool_options();
  options.heartbeat = callbacks.heartbeat;
  if (callbacks.sample_sink && callbacks.sample_period != 0) {
    options.sample_sink = callbacks.sample_sink;
    options.sample_sink_period = callbacks.sample_period;
  }
  const parallel::WalkerPool pool(std::move(options));
  const parallel::MultiWalkReport pool_report = pool.run(*problem, token);

  SolveReport report;
  report.problem = problems::format_spec(spec);
  report.solved = pool_report.solved;
  // Exactly one termination cause per run, taken from what the walkers'
  // polls actually observed — not from re-reading the flag or the clock
  // here, which would misreport a run that completed normally just before
  // a late cancel / deadline crossing.
  report.cancelled = pool_report.interrupt_cause == core::StopCause::kCancel;
  report.deadline_expired =
      pool_report.interrupt_cause == core::StopCause::kDeadline;
  report.winner = pool_report.winner;
  report.cost = pool_report.best.cost;
  report.wall_seconds = pool_report.wall_seconds;
  report.time_to_solution_seconds = pool_report.time_to_solution_seconds;
  report.total_iterations = pool_report.total_iterations();
  report.comm_publishes = pool_report.comm_publishes;
  report.elite_accepted = pool_report.elite_accepted;
  report.comm_adoptions = pool_report.comm_adoptions;
  report.failed_walkers = pool_report.failed_walkers;
  report.solution = pool_report.best.solution;
  report.walkers.reserve(pool_report.walkers.size());
  for (const parallel::WalkerOutcome& outcome : pool_report.walkers) {
    report.walkers.push_back(walker_report_of(outcome));
  }
  return report;
}

}  // namespace cspls::api
