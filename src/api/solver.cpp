#include "api/solver.hpp"

#include <chrono>
#include <memory>

#include "core/stop_token.hpp"
#include "problems/spec.hpp"

namespace cspls::api {

namespace {

WalkerReport walker_report_of(const parallel::WalkerOutcome& outcome) {
  WalkerReport report;
  report.id = outcome.walker_id;
  report.solved = outcome.result.solved;
  report.interrupted = outcome.result.interrupted;
  report.cost = outcome.result.cost;
  report.iterations = outcome.result.stats.iterations;
  report.swaps = outcome.result.stats.swaps;
  report.plateau_moves = outcome.result.stats.plateau_moves;
  report.local_minima = outcome.result.stats.local_minima;
  report.resets = outcome.result.stats.resets;
  report.restarts = outcome.result.stats.restarts;
  report.cost_evaluations = outcome.result.stats.cost_evaluations;
  report.seconds = outcome.result.stats.seconds;
  return report;
}

}  // namespace

SolveReport Solver::solve(const SolveRequest& request,
                          const std::atomic<bool>* cancel) {
  const problems::ProblemSpec spec = problems::parse_spec(request.problem);
  const std::unique_ptr<csp::Problem> problem = problems::instantiate(spec);

  core::StopToken token(cancel);
  if (request.deadline_ms != 0) {
    token = core::StopToken(
        cancel, core::StopToken::Clock::now() +
                    std::chrono::milliseconds(request.deadline_ms));
  }

  const parallel::WalkerPool pool(request.to_pool_options());
  const parallel::MultiWalkReport pool_report = pool.run(*problem, token);

  SolveReport report;
  report.problem = problems::format_spec(spec);
  report.solved = pool_report.solved;
  // Exactly one termination cause per run, taken from what the walkers'
  // polls actually observed — not from re-reading the flag or the clock
  // here, which would misreport a run that completed normally just before
  // a late cancel / deadline crossing.
  report.cancelled = pool_report.interrupt_cause == core::StopCause::kCancel;
  report.deadline_expired =
      pool_report.interrupt_cause == core::StopCause::kDeadline;
  report.winner = pool_report.winner;
  report.cost = pool_report.best.cost;
  report.wall_seconds = pool_report.wall_seconds;
  report.time_to_solution_seconds = pool_report.time_to_solution_seconds;
  report.total_iterations = pool_report.total_iterations();
  report.comm_publishes = pool_report.comm_publishes;
  report.elite_accepted = pool_report.elite_accepted;
  report.comm_adoptions = pool_report.comm_adoptions;
  report.solution = pool_report.best.solution;
  report.walkers.reserve(pool_report.walkers.size());
  for (const parallel::WalkerOutcome& outcome : pool_report.walkers) {
    report.walkers.push_back(walker_report_of(outcome));
  }
  return report;
}

}  // namespace cspls::api
