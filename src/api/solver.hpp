// Synchronous façade over the full stack: spec string -> problem instance,
// SolveRequest -> WalkerPool policies, StopToken -> cancellation/deadline,
// MultiWalkReport -> SolveReport.  One call replaces the hand-assembled
// registry + WalkerPoolOptions + report-interpretation plumbing every
// harness and example used to reimplement.
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "api/solve.hpp"

namespace cspls::api {

/// Out-of-band observation channels for a solve run by the serving layer:
/// a liveness counter for watchdog supervision and a live cost-sample sink
/// for streaming anytime responses.  All observational — wiring them cannot
/// change the outcome of a seeded run.
struct SolveCallbacks {
  /// Bumped by every walker (see core::Hooks::heartbeat); null disables.
  std::atomic<std::uint64_t>* heartbeat = nullptr;
  /// Called with (walker_id, iteration, cost) at iteration 0 and every
  /// `sample_period` iterations of each walk; invoked from walker threads,
  /// so it must be thread-safe.  Empty disables.
  std::function<void(std::size_t, std::uint64_t, csp::Cost)> sample_sink;
  std::uint64_t sample_period = 0;
  /// Cooperative preemption: flip `*preempt` to true and every walker stops
  /// at its next safe point; when `checkpoint_out` is also wired the run
  /// surrenders a PoolCheckpoint there (SolveReport::preempted set) that a
  /// later request can hand back via SolveRequest::resume_from.  A capture
  /// failure leaves *checkpoint_out empty and the run reports a plain
  /// cancel.  Unlike the observation channels these do affect the outcome —
  /// but only the stopping point, never the trajectory up to it.
  const std::atomic<bool>* preempt = nullptr;
  std::optional<parallel::PoolCheckpoint>* checkpoint_out = nullptr;
};

class Solver {
 public:
  /// Run `request` to completion.  Throws std::invalid_argument on a
  /// malformed request (unknown problem name, unusable size) — the message
  /// lists the valid problem names.
  ///
  /// Determinism: with no deadline the run is exactly the equivalent
  /// direct WalkerPool::run for the request's master seed.
  [[nodiscard]] static SolveReport solve(const SolveRequest& request) {
    return solve(request, nullptr);
  }

  /// Same, with a caller-owned cancellation flag: flip `*cancel` to true
  /// and the run stops within one engine polling period, reporting the
  /// best configuration reached (SolveReport::cancelled set).  This is the
  /// primitive SolverService builds on.
  [[nodiscard]] static SolveReport solve(const SolveRequest& request,
                                         const std::atomic<bool>* cancel) {
    return solve(request, core::StopToken(cancel), nullptr);
  }

  /// Full-control overload for the serving layer: an arbitrary StopToken
  /// (the request's deadline_ms is applied on top, tightening any deadline
  /// the token already carries) and an optional liveness counter bumped by
  /// every walker (see core::Hooks::heartbeat) for watchdog supervision.
  /// Validates the retry/warm-start knobs along with the rest of the
  /// request.
  [[nodiscard]] static SolveReport solve(
      const SolveRequest& request, core::StopToken token,
      std::atomic<std::uint64_t>* heartbeat) {
    SolveCallbacks callbacks;
    callbacks.heartbeat = heartbeat;
    return solve(request, token, callbacks);
  }

  /// The serving tier's entry point: full StopToken control plus the
  /// observation channels (watchdog heartbeat, streaming sample sink).
  [[nodiscard]] static SolveReport solve(const SolveRequest& request,
                                         core::StopToken token,
                                         const SolveCallbacks& callbacks);

  /// One member of a fused batch solve: a complete request plus its own
  /// stop token and observation channels, exactly what the solo overload
  /// takes.
  struct FusedSolveJob {
    SolveRequest request;
    core::StopToken token;
    SolveCallbacks callbacks;
  };

  struct FusedSolveOptions {
    /// Resident team size shared by the whole batch (0 = hardware
    /// concurrency, 1 = run the batch inline on the calling thread).
    std::size_t num_threads = 0;
    /// Admission gate consulted once per member just before its first
    /// walker runs (see parallel::FusedOptions::admit); returning false
    /// withdraws the member without running it.  Null admits everything.
    std::function<bool(std::size_t member)> admit;
  };

  /// Per-member completion callback: called exactly once per admitted
  /// member, from a team thread, while sibling members may still be
  /// running.  Must be thread-safe.
  using FusedSolveSink = std::function<void(std::size_t, SolveReport)>;

  /// Batch entry point over parallel::FusedRun: every member is validated
  /// and instantiated up front (throwing std::invalid_argument before any
  /// work), then the whole batch executes on one resident thread team —
  /// one launch instead of N.  Each member's fixed-seed SolveReport is
  /// byte-identical to its solo solve() (timing fields excepted); each
  /// member's deadline_ms is applied from the moment the batch launches.
  /// Blocks until every admitted member's sink has returned; returns the
  /// indices of withdrawn members in ascending order.
  static std::vector<std::size_t> solve_fused(
      std::span<const FusedSolveJob> jobs, const FusedSolveOptions& options,
      const FusedSolveSink& sink);
};

}  // namespace cspls::api
