// Synchronous façade over the full stack: spec string -> problem instance,
// SolveRequest -> WalkerPool policies, StopToken -> cancellation/deadline,
// MultiWalkReport -> SolveReport.  One call replaces the hand-assembled
// registry + WalkerPoolOptions + report-interpretation plumbing every
// harness and example used to reimplement.
#pragma once

#include <atomic>

#include "api/solve.hpp"

namespace cspls::api {

class Solver {
 public:
  /// Run `request` to completion.  Throws std::invalid_argument on a
  /// malformed request (unknown problem name, unusable size) — the message
  /// lists the valid problem names.
  ///
  /// Determinism: with no deadline the run is exactly the equivalent
  /// direct WalkerPool::run for the request's master seed.
  [[nodiscard]] static SolveReport solve(const SolveRequest& request) {
    return solve(request, nullptr);
  }

  /// Same, with a caller-owned cancellation flag: flip `*cancel` to true
  /// and the run stops within one engine polling period, reporting the
  /// best configuration reached (SolveReport::cancelled set).  This is the
  /// primitive SolverService builds on.
  [[nodiscard]] static SolveReport solve(const SolveRequest& request,
                                         const std::atomic<bool>* cancel) {
    return solve(request, core::StopToken(cancel), nullptr);
  }

  /// Full-control overload for the serving layer: an arbitrary StopToken
  /// (the request's deadline_ms is applied on top, tightening any deadline
  /// the token already carries) and an optional liveness counter bumped by
  /// every walker (see core::Hooks::heartbeat) for watchdog supervision.
  /// Validates the retry/warm-start knobs along with the rest of the
  /// request.
  [[nodiscard]] static SolveReport solve(const SolveRequest& request,
                                         core::StopToken token,
                                         std::atomic<std::uint64_t>* heartbeat);
};

}  // namespace cspls::api
