#include "csp/scalar_path.hpp"

#include <stdexcept>

namespace cspls::csp {

ScalarPathProblem::ScalarPathProblem(std::unique_ptr<Problem> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("ScalarPathProblem: null inner problem");
  }
}

const std::string& ScalarPathProblem::name() const noexcept {
  return inner_->name();
}

std::string ScalarPathProblem::instance_description() const {
  return inner_->instance_description() + " [scalar path]";
}

std::size_t ScalarPathProblem::num_variables() const noexcept {
  return inner_->num_variables();
}

std::unique_ptr<Problem> ScalarPathProblem::clone() const {
  return std::make_unique<ScalarPathProblem>(inner_->clone());
}

std::span<const int> ScalarPathProblem::values() const noexcept {
  return inner_->values();
}

Cost ScalarPathProblem::randomize(util::Xoshiro256& rng) {
  return inner_->randomize(rng);
}

Cost ScalarPathProblem::assign(std::span<const int> values) {
  return inner_->assign(values);
}

Cost ScalarPathProblem::total_cost() const noexcept {
  return inner_->total_cost();
}

Cost ScalarPathProblem::full_cost() const { return inner_->full_cost(); }

Cost ScalarPathProblem::cost_on_variable(std::size_t i) const {
  return inner_->cost_on_variable(i);
}

Cost ScalarPathProblem::cost_if_swap(std::size_t i, std::size_t j) const {
  return inner_->cost_if_swap(i, j);
}

Cost ScalarPathProblem::swap(std::size_t i, std::size_t j) {
  return inner_->swap(i, j);
}

Cost ScalarPathProblem::reset_perturbation(double fraction,
                                           util::Xoshiro256& rng) {
  return inner_->reset_perturbation(fraction, rng);
}

bool ScalarPathProblem::verify(std::span<const int> values) const {
  return inner_->verify(values);
}

TuningHints ScalarPathProblem::tuning() const noexcept {
  return inner_->tuning();
}

void ScalarPathProblem::cost_on_all_variables(std::span<Cost> out) const {
  detail::scalar_cost_on_all_variables(*inner_, out);
}

std::uint64_t ScalarPathProblem::best_swap_for(std::size_t x,
                                               util::Xoshiro256& rng,
                                               std::size_t& best_j,
                                               Cost& best_cost,
                                               std::size_t& ties) const {
  return detail::scalar_best_swap_for(*inner_, x, rng, best_j, best_cost,
                                      ties);
}

}  // namespace cspls::csp
