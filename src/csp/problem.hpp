// The constraint-model abstraction consumed by the Adaptive Search engine.
//
// This is a faithful C++ rendering of the hook contract of the original
// Adaptive Search C library (Codognet & Diaz, freeware at
// cri-dist.univ-paris1.fr/diaz/adaptive/): a model provides
//
//   Cost_Of_Solution  -> full_cost()         (recompute from scratch)
//   Cost_On_Variable  -> cost_on_variable()  (projected error of one variable)
//   Cost_If_Swap      -> cost_if_swap()      (total cost after a hypothetical
//                                             swap, usually incremental)
//   Executed_Swap     -> did_swap()          (commit notification so the model
//                                             can update cached aggregates)
//   Reset             -> randomize()/on_rebind()
//
// All benchmarks of the paper (and of the original library) are *permutation*
// problems: the search state is a permutation of a fixed multiset of values
// and the only move is a swap of two positions.  PermutationProblem owns that
// state; concrete models layer incremental cost structures on top.
//
// Instances are stateful and deliberately *not* thread-safe: the paper's
// parallel scheme is share-nothing (one independent search engine per
// process), so each parallel walker clones its own instance (see clone()).
#pragma once

#include <cassert>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "csp/cost.hpp"
#include "csp/tuning.hpp"
#include "util/rng.hpp"

namespace cspls::csp {

class Problem {
 public:
  virtual ~Problem() = default;

  /// Identifier used by the registry, the harness tables and CSV output.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Human-readable instance description (e.g. "magic-square 20x20").
  [[nodiscard]] virtual std::string instance_description() const = 0;

  /// Number of decision variables.
  [[nodiscard]] virtual std::size_t num_variables() const noexcept = 0;

  /// Deep copy for share-nothing parallel walkers.
  [[nodiscard]] virtual std::unique_ptr<Problem> clone() const = 0;

  /// Current assignment (one value per variable).
  [[nodiscard]] virtual std::span<const int> values() const noexcept = 0;

  /// Draw a fresh random configuration and rebuild incremental state.
  /// Returns the full cost of the new configuration.
  virtual Cost randomize(util::Xoshiro256& rng) = 0;

  /// Replace the configuration wholesale (e.g. adopting an elite
  /// configuration in dependent multi-walk) and rebuild incremental state.
  virtual Cost assign(std::span<const int> values) = 0;

  /// Cached total cost of the current configuration (kept in sync by swaps).
  [[nodiscard]] virtual Cost total_cost() const noexcept = 0;

  /// Full recomputation of the total cost, ignoring caches.  The engine never
  /// needs this on the hot path; tests use it to validate incrementality.
  [[nodiscard]] virtual Cost full_cost() const = 0;

  /// Projected error of variable `i` under the current configuration: how
  /// much variable `i` "contributes" to the total cost.  Higher = worse.
  [[nodiscard]] virtual Cost cost_on_variable(std::size_t i) const = 0;

  /// Total cost the configuration would have after swapping positions i, j.
  /// Must not mutate observable state.
  [[nodiscard]] virtual Cost cost_if_swap(std::size_t i, std::size_t j) const = 0;

  /// Commit the swap of positions i and j, update cached structures, and
  /// return the new total cost (must equal what cost_if_swap(i, j) returned).
  virtual Cost swap(std::size_t i, std::size_t j) = 0;

  /// Model-specific partial reset (the original library lets every
  /// benchmark override its Reset hook).  Perturbs roughly `fraction` of the
  /// configuration, rebuilds incremental state, and returns the new total
  /// cost.  Default (PermutationProblem): shuffle a random subset of
  /// positions.  Models may substitute a structure-preserving move (e.g.
  /// all-interval reverses a random segment, which disturbs only two
  /// adjacent differences).
  virtual Cost reset_perturbation(double fraction, util::Xoshiro256& rng) = 0;

  /// Independent feasibility check of an arbitrary assignment.  Shares *no*
  /// code with the cost model; used to cross-validate `cost == 0`.
  [[nodiscard]] virtual bool verify(std::span<const int> values) const = 0;

  /// Solver tuning defaults for this model (mirrors the per-benchmark
  /// parameter choices shipped with the original library).
  [[nodiscard]] virtual TuningHints tuning() const noexcept {
    return TuningHints{};
  }
};

/// Base class handling permutation state, generic randomize/assign/swap and a
/// (slow but always-correct) default cost_if_swap.  Concrete models:
///   - supply the canonical value multiset via the constructor,
///   - implement full_cost() / cost_on_variable(),
///   - override cost_if_swap()/did_swap() with incremental versions, and
///   - implement verify().
class PermutationProblem : public Problem {
 public:
  [[nodiscard]] std::size_t num_variables() const noexcept override {
    return values_.size();
  }

  [[nodiscard]] std::span<const int> values() const noexcept override {
    return values_;
  }

  Cost randomize(util::Xoshiro256& rng) override;
  Cost assign(std::span<const int> values) override;

  [[nodiscard]] Cost total_cost() const noexcept override { return cost_; }

  [[nodiscard]] Cost cost_if_swap(std::size_t i, std::size_t j) const override;

  Cost swap(std::size_t i, std::size_t j) override;

  Cost reset_perturbation(double fraction, util::Xoshiro256& rng) override;

 protected:
  /// `canonical` is the value multiset the search permutes (e.g. 1..n²).
  explicit PermutationProblem(std::vector<int> canonical);

  /// Rebuild every incremental structure from values_ and return full cost.
  /// Called after randomize()/assign(); default recomputes via full_cost().
  virtual Cost on_rebind() { return full_cost(); }

  /// Commit notification: positions i and j have just been exchanged in
  /// values_; update incremental aggregates and return the new total cost.
  /// Default recomputes from scratch.
  virtual Cost did_swap(std::size_t i, std::size_t j);

  [[nodiscard]] int value(std::size_t i) const { return values_[i]; }

  /// Mutable access for did_swap implementations needing scratch edits.
  [[nodiscard]] std::vector<int>& mutable_values() noexcept { return values_; }

  void set_cached_cost(Cost cost) noexcept { cost_ = cost; }

 private:
  std::vector<int> values_;
  Cost cost_ = 0;
};

/// True iff `values` is a permutation of `canonical` (order-insensitive).
[[nodiscard]] bool is_permutation_of(std::span<const int> values,
                                     std::span<const int> canonical);

}  // namespace cspls::csp
