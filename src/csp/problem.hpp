// The constraint-model abstraction consumed by the Adaptive Search engine.
//
// This is a faithful C++ rendering of the hook contract of the original
// Adaptive Search C library (Codognet & Diaz, freeware at
// cri-dist.univ-paris1.fr/diaz/adaptive/): a model provides
//
//   Cost_Of_Solution  -> full_cost()         (recompute from scratch)
//   Cost_On_Variable  -> cost_on_variable()  (projected error of one variable)
//   Cost_If_Swap      -> cost_if_swap()      (total cost after a hypothetical
//                                             swap, usually incremental)
//   Executed_Swap     -> did_swap()          (commit notification so the model
//                                             can update cached aggregates)
//   Reset             -> randomize()/on_rebind()
//
// All benchmarks of the paper (and of the original library) are *permutation*
// problems: the search state is a permutation of a fixed multiset of values
// and the only move is a swap of two positions.  PermutationProblem owns that
// state; concrete models layer incremental cost structures on top.
//
// Instances are stateful and deliberately *not* thread-safe: the paper's
// parallel scheme is share-nothing (one independent search engine per
// process), so each parallel walker clones its own instance (see clone()).
#pragma once

#include <cassert>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "csp/cost.hpp"
#include "csp/tuning.hpp"
#include "util/rng.hpp"

namespace cspls::csp {

class Problem {
 public:
  virtual ~Problem() = default;

  /// Identifier used by the registry, the harness tables and CSV output.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Human-readable instance description (e.g. "magic-square 20x20").
  [[nodiscard]] virtual std::string instance_description() const = 0;

  /// Number of decision variables.
  [[nodiscard]] virtual std::size_t num_variables() const noexcept = 0;

  /// Deep copy for share-nothing parallel walkers.
  [[nodiscard]] virtual std::unique_ptr<Problem> clone() const = 0;

  /// Current assignment (one value per variable).
  [[nodiscard]] virtual std::span<const int> values() const noexcept = 0;

  /// Draw a fresh random configuration and rebuild incremental state.
  /// Returns the full cost of the new configuration.
  virtual Cost randomize(util::Xoshiro256& rng) = 0;

  /// Replace the configuration wholesale (e.g. adopting an elite
  /// configuration in dependent multi-walk) and rebuild incremental state.
  virtual Cost assign(std::span<const int> values) = 0;

  /// Cached total cost of the current configuration (kept in sync by swaps).
  [[nodiscard]] virtual Cost total_cost() const noexcept = 0;

  /// Full recomputation of the total cost, ignoring caches.  The engine never
  /// needs this on the hot path; tests use it to validate incrementality.
  [[nodiscard]] virtual Cost full_cost() const = 0;

  /// Projected error of variable `i` under the current configuration: how
  /// much variable `i` "contributes" to the total cost.  Higher = worse.
  [[nodiscard]] virtual Cost cost_on_variable(std::size_t i) const = 0;

  /// Total cost the configuration would have after swapping positions i, j.
  /// Must not mutate observable state.
  [[nodiscard]] virtual Cost cost_if_swap(std::size_t i, std::size_t j) const = 0;

  // --- Batched hot-path hooks -------------------------------------------
  //
  // One Adaptive Search iteration needs (a) the projected error of *every*
  // variable and (b) the argmin over *every* swap partner of the selected
  // variable.  Driving those through the scalar virtuals above costs 2n-1
  // virtual calls per iteration; the engine instead calls the two bulk hooks
  // below (two virtual calls total) and kernels override them with versions
  // that share work across the whole scan.  The defaults loop the scalar
  // virtuals, so a model is complete without overriding anything.

  /// Fill `out[i] = cost_on_variable(i)` for every variable
  /// (`out.size() == num_variables()`).  Must not consume RNG and must not
  /// mutate observable state; overrides must produce bit-identical values to
  /// the scalar virtual so search trajectories are path-independent.
  virtual void cost_on_all_variables(std::span<Cost> out) const;

  /// Scan the candidate swaps (x, j) for j = 0..n-1, j != x, in ascending j
  /// order, and select the minimum of cost_if_swap(x, j) with reservoir
  /// tie-breaking (`rng.below(ties) == 0` adopts the newcomer) — exactly the
  /// engine's historical inline loop, so a fixed seed walks the identical
  /// trajectory through the default and through any override.  Outputs the
  /// chosen partner in `best_j` (num_variables() when no candidate exists),
  /// its total cost in `best_cost` (kInfiniteCost when none) and the number
  /// of cost-optimal ties in `ties`; returns the number of candidate cost
  /// evaluations performed (the engine accounts them as cost_evaluations).
  virtual std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                      std::size_t& best_j, Cost& best_cost,
                                      std::size_t& ties) const;

  /// Commit the swap of positions i and j, update cached structures, and
  /// return the new total cost (must equal what cost_if_swap(i, j) returned).
  virtual Cost swap(std::size_t i, std::size_t j) = 0;

  /// Model-specific partial reset (the original library lets every
  /// benchmark override its Reset hook).  Perturbs roughly `fraction` of the
  /// configuration, rebuilds incremental state, and returns the new total
  /// cost.  Default (PermutationProblem): shuffle a random subset of
  /// positions.  Models may substitute a structure-preserving move (e.g.
  /// all-interval reverses a random segment, which disturbs only two
  /// adjacent differences).
  virtual Cost reset_perturbation(double fraction, util::Xoshiro256& rng) = 0;

  /// Independent feasibility check of an arbitrary assignment.  Shares *no*
  /// code with the cost model; used to cross-validate `cost == 0`.
  [[nodiscard]] virtual bool verify(std::span<const int> values) const = 0;

  /// Solver tuning defaults for this model (mirrors the per-benchmark
  /// parameter choices shipped with the original library).
  [[nodiscard]] virtual TuningHints tuning() const noexcept {
    return TuningHints{};
  }
};

/// Base class handling permutation state, generic randomize/assign/swap and a
/// (slow but always-correct) default cost_if_swap.  Concrete models:
///   - supply the canonical value multiset via the constructor,
///   - implement full_cost() / cost_on_variable(),
///   - override cost_if_swap()/did_swap() with incremental versions, and
///   - implement verify().
class PermutationProblem : public Problem {
 public:
  [[nodiscard]] std::size_t num_variables() const noexcept override {
    return values_.size();
  }

  [[nodiscard]] std::span<const int> values() const noexcept override {
    return values_;
  }

  Cost randomize(util::Xoshiro256& rng) override;
  Cost assign(std::span<const int> values) override;

  [[nodiscard]] Cost total_cost() const noexcept override { return cost_; }

  [[nodiscard]] Cost cost_if_swap(std::size_t i, std::size_t j) const override;

  Cost swap(std::size_t i, std::size_t j) override;

  Cost reset_perturbation(double fraction, util::Xoshiro256& rng) override;

 protected:
  /// `canonical` is the value multiset the search permutes (e.g. 1..n²).
  explicit PermutationProblem(std::vector<int> canonical);

  /// Rebuild every incremental structure from values_ and return full cost.
  /// Called after randomize()/assign(); default recomputes via full_cost().
  virtual Cost on_rebind() { return full_cost(); }

  /// Commit notification: positions i and j have just been exchanged in
  /// values_; update incremental aggregates and return the new total cost.
  /// Default recomputes from scratch.
  virtual Cost did_swap(std::size_t i, std::size_t j);

  [[nodiscard]] int value(std::size_t i) const { return values_[i]; }

  /// Mutable access for did_swap implementations needing scratch edits.
  [[nodiscard]] std::vector<int>& mutable_values() noexcept { return values_; }

  void set_cached_cost(Cost cost) noexcept { cost_ = cost; }

 private:
  std::vector<int> values_;
  Cost cost_ = 0;
};

/// Reservoir argmin used by best_swap_for implementations.  Replicates the
/// engine's historical tie-breaking byte-for-byte: strict improvement resets
/// the tie count, an exact tie draws `rng.below(ties)` and adopts on zero.
/// Overrides MUST funnel every candidate through consider() in ascending j
/// order or fixed-seed trajectories diverge between kernels.
struct SwapScan {
  Cost best_cost = kInfiniteCost;
  std::size_t best_j;
  std::size_t ties = 0;

  /// `none` is the "no candidate" sentinel (the engine passes n).
  explicit SwapScan(std::size_t none) noexcept : best_j(none) {}

  void consider(std::size_t j, Cost cost, util::Xoshiro256& rng) noexcept {
    // Single compare on the common no-improvement path; the branch split is
    // draw-for-draw identical to the historical < / == cascade.
    if (cost > best_cost) [[likely]] return;
    if (cost < best_cost) {
      best_cost = cost;
      best_j = j;
      ties = 1;
    } else {
      ++ties;
      if (rng.below(ties) == 0) best_j = j;
    }
  }

  /// Batched reservoir step: feed candidates j = base_j .. base_j+cand.size()-1
  /// with costs cand[j - base_j], in order, skipping j == skip — equivalent
  /// draw-for-draw to calling consider() on each candidate individually.
  /// When SIMD is active, whole lanes of candidates that all sit strictly
  /// above best_cost are discarded with one vector compare; a lane that
  /// contains a <= candidate replays scalar consider() so the reservoir RNG
  /// draws land byte-for-byte where the historical loop put them.  Pass
  /// `skip = base_j + cand.size()` (or anything outside the range) to skip
  /// nothing.  Kernels that store kInfiniteCost at the skipped position must
  /// STILL pass `skip`: when best_cost itself is still kInfiniteCost, a fed
  /// sentinel would tie and consume an RNG draw the scalar loop never made.
  void feed_lanes(std::size_t base_j, std::span<const Cost> cand,
                  std::size_t skip, util::Xoshiro256& rng) noexcept;
};

namespace detail {

/// The scalar reference loops behind the Problem bulk-hook defaults, shared
/// with ScalarPathProblem so the A/B baseline costs exactly one virtual call
/// per variable/candidate (like the pre-batched engine), never two.
void scalar_cost_on_all_variables(const Problem& problem, std::span<Cost> out);
std::uint64_t scalar_best_swap_for(const Problem& problem, std::size_t x,
                                   util::Xoshiro256& rng, std::size_t& best_j,
                                   Cost& best_cost, std::size_t& ties);

}  // namespace detail

/// True iff `values` is a permutation of `canonical` (order-insensitive).
[[nodiscard]] bool is_permutation_of(std::span<const int> values,
                                     std::span<const int> canonical);

}  // namespace cspls::csp
