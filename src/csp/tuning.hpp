// Per-model solver tuning hints.
//
// The original Adaptive Search distribution ships a tuned parameter set with
// every benchmark (tabu tenure, reset trigger, reset fraction, restart
// budget).  Models expose equivalent hints here; core::Params is built from
// them (core/ depends on csp/, not vice versa).
#pragma once

#include <cstdint>

namespace cspls::csp {

struct TuningHints {
  /// Iterations a variable stays tabu after being identified as a local
  /// minimum (Adaptive Search "freeze_loc_min").
  std::uint32_t freeze_loc_min = 5;

  /// Iterations both variables stay tabu after a committed swap
  /// ("freeze_swap"); 0 disables.
  std::uint32_t freeze_swap = 0;

  /// Number of simultaneously-tabu variables that triggers a partial reset
  /// ("reset_limit"), as an absolute count; 0 means "derive from size".
  std::uint32_t reset_limit = 0;

  /// Fraction of variables re-randomized by a partial reset
  /// ("reset_percentage"), in [0,1].
  double reset_fraction = 0.1;

  /// Iteration budget of one walk before a full restart ("restart_limit");
  /// 0 means "derive from size".
  std::uint64_t restart_limit = 0;

  /// Probability of walking a plateau: committing the best move when it
  /// leaves the cost unchanged (instead of declaring a local minimum).
  double prob_accept_plateau = 1.0;

  /// Probability of, at a strict local minimum, accepting the best
  /// (worsening) move anyway instead of marking the variable tabu
  /// ("prob_select_loc_min").
  double prob_accept_local_min = 0.0;
};

}  // namespace cspls::csp
