// Cost arithmetic shared by the CSP models and the solver.
#pragma once

#include <cstdint>

namespace cspls::csp {

/// Global/projected constraint-violation cost.  Zero means "solution".
/// 64-bit: magic-square line errors at paper scale (n=200, values up to
/// 40000) sum far beyond 32 bits.
using Cost = std::int64_t;

/// Sentinel for "no move evaluated yet".
inline constexpr Cost kInfiniteCost = INT64_MAX;

}  // namespace cspls::csp
