// A deliberate de-optimizer: wraps any Problem and pins the bulk hot-path
// hooks (cost_on_all_variables / best_swap_for) to their scalar defaults,
// looping the wrapped model's per-variable virtuals exactly the way the
// engine's historical inline loops did before the batched API existed.
//
// Two consumers:
//   - bench_micro_solver measures the same kernel through both paths in one
//     binary, so the batched-vs-scalar speedup is an apples-to-apples ratio;
//   - the trajectory-equivalence tests pin that both paths draw the RNG in
//     the same order and therefore walk the identical search trajectory.
#pragma once

#include <memory>

#include "csp/problem.hpp"

namespace cspls::csp {

class ScalarPathProblem final : public Problem {
 public:
  /// Takes ownership of the wrapped model.
  explicit ScalarPathProblem(std::unique_ptr<Problem> inner);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::string instance_description() const override;
  [[nodiscard]] std::size_t num_variables() const noexcept override;
  [[nodiscard]] std::unique_ptr<Problem> clone() const override;
  [[nodiscard]] std::span<const int> values() const noexcept override;
  Cost randomize(util::Xoshiro256& rng) override;
  Cost assign(std::span<const int> values) override;
  [[nodiscard]] Cost total_cost() const noexcept override;
  [[nodiscard]] Cost full_cost() const override;
  [[nodiscard]] Cost cost_on_variable(std::size_t i) const override;
  [[nodiscard]] Cost cost_if_swap(std::size_t i, std::size_t j) const override;
  Cost swap(std::size_t i, std::size_t j) override;
  Cost reset_perturbation(double fraction, util::Xoshiro256& rng) override;
  [[nodiscard]] bool verify(std::span<const int> values) const override;
  [[nodiscard]] TuningHints tuning() const noexcept override;

  /// Scalar reference paths: loop the wrapped model's per-variable virtuals
  /// directly (one virtual call per variable/candidate, like the pre-batched
  /// engine), bypassing any bulk override the model provides.
  void cost_on_all_variables(std::span<Cost> out) const override;
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, Cost& best_cost,
                              std::size_t& ties) const override;

 private:
  std::unique_ptr<Problem> inner_;
};

}  // namespace cspls::csp
