#include "csp/problem.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/simd.hpp"

namespace cspls::csp {

namespace detail {

void scalar_cost_on_all_variables(const Problem& problem,
                                  std::span<Cost> out) {
  assert(out.size() == problem.num_variables());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = problem.cost_on_variable(i);
  }
}

std::uint64_t scalar_best_swap_for(const Problem& problem, std::size_t x,
                                   util::Xoshiro256& rng, std::size_t& best_j,
                                   Cost& best_cost, std::size_t& ties) {
  const std::size_t n = problem.num_variables();
  SwapScan scan(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == x) continue;
    scan.consider(j, problem.cost_if_swap(x, j), rng);
  }
  best_j = scan.best_j;
  best_cost = scan.best_cost;
  ties = scan.ties;
  return n - 1;
}

}  // namespace detail

void SwapScan::feed_lanes(std::size_t base_j, std::span<const Cost> cand,
                          std::size_t skip, util::Xoshiro256& rng) noexcept {
  namespace simd = util::simd;
  const std::size_t n = cand.size();
  std::size_t k = 0;
  if (simd::runtime_enabled()) {
    // Vector fast path: one compare per lane-block; a block whose candidates
    // are all strictly worse than the incumbent can neither improve nor tie,
    // so discarding it wholesale consumes no RNG and is draw-for-draw
    // identical to considering each member.  Blocks containing a <= lane
    // replay the scalar cascade to keep the reservoir draws exact.
    constexpr std::size_t kL = simd::i64x4::kLanes;
    static_assert(sizeof(Cost) == sizeof(std::int64_t));
    Cost incumbent = best_cost;
    simd::i64x4 best = simd::i64x4::broadcast(incumbent);
    for (; k + kL <= n; k += kL) {
      const auto lane = simd::i64x4::load(&cand[k]);
      if (!simd::any(simd::cmp_le(lane, best))) continue;
      for (std::size_t t = 0; t < kL; ++t) {
        const std::size_t j = base_j + k + t;
        if (j == skip) continue;
        consider(j, cand[k + t], rng);
      }
      if (best_cost != incumbent) {
        incumbent = best_cost;
        best = simd::i64x4::broadcast(incumbent);
      }
    }
  }
  for (; k < n; ++k) {
    const std::size_t j = base_j + k;
    if (j == skip) continue;
    consider(j, cand[k], rng);
  }
}

void Problem::cost_on_all_variables(std::span<Cost> out) const {
  detail::scalar_cost_on_all_variables(*this, out);
}

std::uint64_t Problem::best_swap_for(std::size_t x, util::Xoshiro256& rng,
                                     std::size_t& best_j, Cost& best_cost,
                                     std::size_t& ties) const {
  return detail::scalar_best_swap_for(*this, x, rng, best_j, best_cost, ties);
}

PermutationProblem::PermutationProblem(std::vector<int> canonical)
    : values_(std::move(canonical)) {
  if (values_.empty()) {
    throw std::invalid_argument("PermutationProblem: empty value set");
  }
}

Cost PermutationProblem::randomize(util::Xoshiro256& rng) {
  rng.shuffle(std::span<int>(values_));
  cost_ = on_rebind();
  return cost_;
}

Cost PermutationProblem::assign(std::span<const int> values) {
  if (values.size() != values_.size()) {
    throw std::invalid_argument("assign: size mismatch");
  }
  std::copy(values.begin(), values.end(), values_.begin());
  cost_ = on_rebind();
  return cost_;
}

Cost PermutationProblem::cost_if_swap(std::size_t i, std::size_t j) const {
  // Always-correct fallback: temporarily apply the swap and recompute.
  // Concrete models override with O(affected-constraints) versions; tests
  // compare the two (see tests/problems_property_test.cpp).
  auto& self = const_cast<PermutationProblem&>(*this);
  std::swap(self.values_[i], self.values_[j]);
  const Cost cost = full_cost();
  std::swap(self.values_[i], self.values_[j]);
  return cost;
}

Cost PermutationProblem::swap(std::size_t i, std::size_t j) {
  assert(i < values_.size() && j < values_.size());
  std::swap(values_[i], values_[j]);
  cost_ = did_swap(i, j);
  return cost_;
}

Cost PermutationProblem::did_swap(std::size_t /*i*/, std::size_t /*j*/) {
  return full_cost();
}

Cost PermutationProblem::reset_perturbation(double fraction,
                                            util::Xoshiro256& rng) {
  // Shuffle the values of a random `fraction` subset of the positions among
  // themselves.  Routed through swap() so models keep their incremental
  // structures consistent.
  const std::size_t n = values_.size();
  const auto k = std::min(
      n, std::max<std::size_t>(
             2, static_cast<std::size_t>(static_cast<double>(n) * fraction)));
  // Reservoir-select k positions into a scratch prefix.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t t = 0; t < k; ++t) {
    const auto r = t + static_cast<std::size_t>(rng.below(n - t));
    std::swap(pool[t], pool[r]);
  }
  // Fisher–Yates over the selected positions.
  for (std::size_t t = k; t > 1; --t) {
    const auto r = static_cast<std::size_t>(rng.below(t));
    if (pool[t - 1] != pool[r]) {
      (void)swap(pool[t - 1], pool[r]);
    }
  }
  return total_cost();
}

bool is_permutation_of(std::span<const int> values,
                       std::span<const int> canonical) {
  if (values.size() != canonical.size()) return false;
  std::vector<int> a(values.begin(), values.end());
  std::vector<int> b(canonical.begin(), canonical.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace cspls::csp
