#include "serve/stdio_server.hpp"

#include <istream>
#include <mutex>
#include <ostream>
#include <string>

namespace cspls::serve {

StdioServer::StdioServer(Scheduler& scheduler, std::istream& in,
                         std::ostream& out, Session::Options options)
    : scheduler_(scheduler), in_(in), out_(out), options_(options) {}

void StdioServer::run(bool cancel_on_eof) {
  std::mutex out_m;
  Session session(
      scheduler_,
      [this, &out_m](std::string_view line) {
        // The session already serializes emits; this lock only pairs the
        // write with its flush against a racing final flush.
        std::lock_guard lock(out_m);
        out_ << line << std::flush;
      },
      options_);

  std::string line;
  while (std::getline(in_, line)) {
    session.handle_line(line);
  }
  if (cancel_on_eof) session.cancel_all();
  session.drain();
}

}  // namespace cspls::serve
