#include "serve/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "serve/protocol.hpp"

namespace cspls::serve {

namespace {

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

std::string hex_of(std::size_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%zx", value);
  return buffer;
}

/// One event line as an HTTP/1.1 chunk.
bool send_chunk(int fd, std::string_view line) {
  std::string chunk = hex_of(line.size());
  chunk += "\r\n";
  chunk.append(line);
  chunk += "\r\n";
  return send_all(fd, chunk);
}

bool send_simple(int fd, int code, std::string_view reason,
                 std::string_view body, bool keep_alive) {
  std::string response = "HTTP/1.1 " + std::to_string(code) + " ";
  response.append(reason);
  response +=
      "\r\nContent-Type: application/x-ndjson\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: ";
  response += keep_alive ? "keep-alive" : "close";
  response += "\r\n\r\n";
  response.append(body);
  return send_all(fd, response);
}

struct Request {
  std::string method;
  std::string path;
  std::string body;
  bool keep_alive = true;
};

std::string lowercased(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

/// Read one request (start line, headers, Content-Length body) from the
/// socket, consuming it from `buffer` — which persists across requests on
/// a keep-alive connection, so bytes of a pipelined next request are kept,
/// not dropped.  Returns false on a connection-level failure (peer gone);
/// protocol-level problems come back as `error_code`/`error_message` with
/// ok == true.
bool read_request(int fd, std::size_t max_body, std::string& buffer,
                  Request& request, std::string_view& error_code,
                  std::string& error_message) {
  char io[4096];
  std::size_t header_end = buffer.find("\r\n\r\n");
  while (header_end == std::string::npos) {
    if (buffer.size() > max_body + 8192) {
      error_code = kErrOversized;
      error_message = "request headers exceed the size limit";
      return true;
    }
    const ssize_t got = ::recv(fd, io, sizeof io, 0);
    if (got <= 0) return false;
    buffer.append(io, static_cast<std::size_t>(got));
    header_end = buffer.find("\r\n\r\n");
  }

  const std::string head = buffer.substr(0, header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string start_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    error_code = kErrBadEnvelope;
    error_message = "malformed HTTP request line";
    return true;
  }
  request.method = start_line.substr(0, sp1);
  request.path = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Persistence default by version: 1.1 keeps alive unless told otherwise,
  // 1.0 closes unless the client opts in.
  request.keep_alive = start_line.substr(sp2 + 1) != "HTTP/1.0";

  std::size_t content_length = 0;
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      const std::string name = lowercased(line.substr(0, colon));
      std::size_t value_at = colon + 1;
      while (value_at < line.size() && line[value_at] == ' ') ++value_at;
      if (name == "content-length") {
        try {
          content_length = std::stoul(line.substr(value_at));
        } catch (const std::exception&) {
          error_code = kErrBadEnvelope;
          error_message = "unparsable Content-Length";
          return true;
        }
      } else if (name == "connection") {
        const std::string value = lowercased(line.substr(value_at));
        if (value.find("close") != std::string::npos) {
          request.keep_alive = false;
        } else if (value.find("keep-alive") != std::string::npos) {
          request.keep_alive = true;
        }
      }
    }
    pos = next + 2;
  }
  if (content_length > max_body) {
    error_code = kErrOversized;
    error_message = "request body of " + std::to_string(content_length) +
                    " bytes exceeds the " + std::to_string(max_body) +
                    "-byte limit";
    return true;
  }

  const std::size_t total = header_end + 4 + content_length;
  while (buffer.size() < total) {
    const ssize_t got = ::recv(fd, io, sizeof io, 0);
    if (got <= 0) return false;
    buffer.append(io, static_cast<std::size_t>(got));
  }
  request.body = buffer.substr(header_end + 4, content_length);
  buffer.erase(0, total);
  return true;
}

}  // namespace

HttpServer::HttpServer(Scheduler& scheduler, Options options)
    : scheduler_(scheduler), options_(options) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("HttpServer: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" +
                             std::to_string(options_.port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR), ::close(fd);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard lock(conn_m_);
    connections.swap(connections_);
    // Break connections parked in a keep-alive recv(): shutdown wakes the
    // read with EOF and the handler loop exits.  The handler owns close();
    // fds leave this set before closing, so no reused descriptor is hit.
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
}

void HttpServer::accept_loop() {
  for (;;) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    std::lock_guard lock(conn_m_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    live_fds_.insert(fd);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void HttpServer::handle_connection(int fd) {
  std::string buffer;  ///< unconsumed bytes, carried across requests
  bool keep_open = true;
  while (keep_open && !stopping_.load()) {
    Request request;
    std::string_view error_code;
    std::string error_message;
    if (!read_request(fd, options_.max_body_bytes, buffer, request,
                      error_code, error_message)) {
      break;
    }
    if (!error_code.empty()) {
      // The HTTP framing itself is broken: after answering, the byte
      // stream is unsynchronized, so the connection cannot persist.
      send_simple(fd, 400, "Bad Request",
                  encode_error(error_code, error_message) + "\n",
                  /*keep_alive=*/false);
      break;
    }
    keep_open = request.keep_alive;

    if (request.method == "GET" && request.path == "/stats") {
      if (!send_simple(fd, 200, "OK",
                       encode_stats(scheduler_.stats().to_json(),
                                    scheduler_.service_stats().to_json()) +
                           "\n",
                       keep_open)) {
        break;
      }
      continue;
    }
    if (request.path != "/api") {
      if (!send_simple(fd, 404, "Not Found",
                       encode_error(kErrUnknownOp,
                                    "no such path (POST /api, GET /stats)") +
                           "\n",
                       keep_open)) {
        break;
      }
      continue;
    }
    if (request.method != "POST") {
      if (!send_simple(fd, 405, "Method Not Allowed",
                       encode_error(kErrUnknownOp,
                                    "POST the command to /api") +
                           "\n",
                       keep_open)) {
        break;
      }
      continue;
    }

    // Parse before answering so protocol errors get a 400 status; the
    // session would only see them after the 200 header was on the wire.
    Command parsed_command;
    try {
      parsed_command = parse_command(request.body, options_.max_body_bytes);
    } catch (const ProtocolError& error) {
      if (!send_simple(fd, 400, "Bad Request",
                       encode_error(error.code(), error.what()) + "\n",
                       keep_open)) {
        break;
      }
      continue;
    }
    // Admission pre-check, also before the 200 header: a solve aimed at a
    // full lane answers 429 with the stable `overloaded` code (the session
    // path can only report it as an in-stream error event).
    if (const auto* solve = std::get_if<SolveCommand>(&parsed_command);
        solve != nullptr && scheduler_.reject_overloaded(solve->priority)) {
      if (!send_simple(fd, 429, "Too Many Requests",
                       encode_error(kErrOverloaded,
                                    "lane \"" +
                                        std::string(name_of(solve->priority)) +
                                        "\" is at its depth bound") +
                           "\n",
                       keep_open)) {
        break;
      }
      continue;
    }

    std::string header =
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n"
        "Transfer-Encoding: chunked\r\nConnection: ";
    header += keep_open ? "keep-alive" : "close";
    header += "\r\n\r\n";
    if (!send_all(fd, header)) break;

    std::atomic<bool> broken{false};
    Session session(
        scheduler_,
        [fd, &broken](std::string_view line) {
          if (broken.load(std::memory_order_relaxed)) return;
          if (!send_chunk(fd, line)) {
            broken.store(true, std::memory_order_relaxed);
          }
        },
        Session::Options{options_.max_body_bytes});
    session.handle_line(request.body);
    if (broken.load() || stopping_.load()) session.cancel_all();
    session.drain();
    // The zero-length chunk delimits the stream; the next request may
    // follow on the same socket.
    if (broken.load() || !send_all(fd, "0\r\n\r\n")) break;
  }
  {
    std::lock_guard lock(conn_m_);
    live_fds_.erase(fd);
  }
  ::close(fd);
}

}  // namespace cspls::serve
