#include "serve/protocol.hpp"

#include <utility>

namespace cspls::serve {

std::string_view name_of(Priority priority) noexcept {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "normal";
}

std::optional<Priority> priority_from_name(std::string_view name) noexcept {
  if (name == "high") return Priority::kHigh;
  if (name == "normal") return Priority::kNormal;
  if (name == "low") return Priority::kLow;
  return std::nullopt;
}

namespace {

[[noreturn]] void bad_envelope(const std::string& message) {
  throw ProtocolError(kErrBadEnvelope, message);
}

SolveCommand parse_solve(const util::Json& envelope) {
  SolveCommand command;
  bool saw_request = false;
  for (const auto& [key, value] : envelope.members()) {
    if (key == "op") {
      continue;
    } else if (key == "request") {
      try {
        command.request = api::SolveRequest::from_json(value);
      } catch (const std::exception& error) {
        throw ProtocolError(kErrBadRequest, error.what());
      }
      saw_request = true;
    } else if (key == "priority") {
      if (!value.is_string()) {
        bad_envelope("solve: \"priority\" must be a string");
      }
      const std::optional<Priority> priority =
          priority_from_name(value.as_string());
      if (!priority) {
        bad_envelope("solve: unknown priority \"" + value.as_string() +
                     "\" (valid: high | normal | low)");
      }
      command.priority = *priority;
    } else if (key == "stream") {
      if (!value.is_bool()) {
        bad_envelope("solve: \"stream\" must be a boolean");
      }
      command.stream = value.as_bool();
    } else if (key == "sample_period") {
      if (!value.is_number()) {
        bad_envelope("solve: \"sample_period\" must be a number");
      }
      command.sample_period = value.as_uint64();
    } else if (key == "tag") {
      if (!value.is_string()) {
        bad_envelope("solve: \"tag\" must be a string");
      }
      command.tag = value.as_string();
    } else {
      bad_envelope("solve: unknown member \"" + key + "\"");
    }
  }
  if (!saw_request) {
    bad_envelope("solve: missing \"request\"");
  }
  return command;
}

CancelCommand parse_cancel(const util::Json& envelope) {
  CancelCommand command;
  bool saw_id = false;
  for (const auto& [key, value] : envelope.members()) {
    if (key == "op") {
      continue;
    } else if (key == "id") {
      if (!value.is_number()) {
        bad_envelope("cancel: \"id\" must be a number");
      }
      command.id = value.as_uint64();
      saw_id = true;
    } else {
      bad_envelope("cancel: unknown member \"" + key + "\"");
    }
  }
  if (!saw_id) {
    bad_envelope("cancel: missing \"id\"");
  }
  return command;
}

void reject_extra_members(const util::Json& envelope, const char* op) {
  for (const auto& [key, value] : envelope.members()) {
    (void)value;
    if (key != "op") {
      bad_envelope(std::string(op) + ": unknown member \"" + key + "\"");
    }
  }
}

}  // namespace

Command parse_command(std::string_view line, std::size_t max_line_bytes) {
  if (max_line_bytes != 0 && line.size() > max_line_bytes) {
    throw ProtocolError(
        kErrOversized, "request line of " + std::to_string(line.size()) +
                           " bytes exceeds the " +
                           std::to_string(max_line_bytes) + "-byte limit");
  }
  std::string parse_error;
  const std::optional<util::Json> parsed = util::Json::parse(line, &parse_error);
  if (!parsed) {
    throw ProtocolError(kErrBadJson, parse_error);
  }
  if (!parsed->is_object()) {
    bad_envelope("request must be a JSON object");
  }
  const util::Json* op = parsed->find("op");
  if (op == nullptr) {
    bad_envelope("missing \"op\"");
  }
  if (!op->is_string()) {
    bad_envelope("\"op\" must be a string");
  }
  const std::string& name = op->as_string();
  if (name == "solve") {
    return parse_solve(*parsed);
  }
  if (name == "stats") {
    reject_extra_members(*parsed, "stats");
    return StatsCommand{};
  }
  if (name == "cancel") {
    return parse_cancel(*parsed);
  }
  throw ProtocolError(kErrUnknownOp, "unknown op \"" + name +
                                         "\" (valid: solve | stats | cancel)");
}

std::string encode_accepted(std::uint64_t id, std::string_view tag,
                            Priority priority) {
  util::Json event = util::Json::object();
  event.set("event", "accepted")
      .set("id", id)
      .set("tag", tag)
      .set("priority", name_of(priority));
  return event.dump(0);
}

std::string encode_sample(std::uint64_t id, std::size_t walker,
                          std::uint64_t iteration, csp::Cost best_cost) {
  util::Json event = util::Json::object();
  event.set("event", "sample")
      .set("id", id)
      .set("walker", static_cast<std::uint64_t>(walker))
      .set("iteration", iteration)
      .set("best_cost", static_cast<std::int64_t>(best_cost));
  return event.dump(0);
}

std::string encode_preempted(std::uint64_t id) {
  util::Json event = util::Json::object();
  event.set("event", "preempted").set("id", id);
  return event.dump(0);
}

std::string encode_report(std::uint64_t id, std::string_view tag,
                          std::string_view status,
                          const api::SolveReport& report,
                          std::string_view error) {
  util::Json event = util::Json::object();
  event.set("event", "report").set("id", id).set("tag", tag).set("status",
                                                                 status);
  event.set("report", report.to_json());
  if (!error.empty()) {
    event.set("error", error);
  }
  return event.dump(0);
}

std::string encode_cancel_ack(std::uint64_t id, bool ok) {
  util::Json event = util::Json::object();
  event.set("event", "cancel").set("id", id).set("ok", ok);
  return event.dump(0);
}

std::string encode_stats(util::Json scheduler, util::Json service) {
  util::Json event = util::Json::object();
  event.set("event", "stats")
      .set("scheduler", std::move(scheduler))
      .set("service", std::move(service));
  return event.dump(0);
}

std::string encode_error(std::string_view code, std::string_view message,
                         std::string_view tag) {
  util::Json event = util::Json::object();
  event.set("event", "error").set("code", code).set("message", message);
  if (!tag.empty()) {
    event.set("tag", tag);
  }
  return event.dump(0);
}

}  // namespace cspls::serve
