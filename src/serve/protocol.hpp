// Wire protocol of the serving tier: JSON-lines framing over any byte
// stream (stdio pipes, HTTP/1.1 bodies), speaking the byte-stable
// SolveRequest/SolveReport schema of api/solve.hpp.
//
// Client -> server, one JSON object per line:
//
//   {"op":"solve","request":{...SolveRequest...},
//    "priority":"high"|"normal"|"low","stream":true,
//    "sample_period":500,"tag":"client-tag"}
//   {"op":"stats"}
//   {"op":"cancel","id":7}
//
// Server -> client, one JSON object per line (the event grammar):
//
//   {"event":"accepted","id":7,"tag":"...","priority":"high"}
//   {"event":"sample","id":7,"walker":2,"iteration":4000,"best_cost":12}
//   {"event":"preempted","id":7}       (running job suspended, will resume)
//   {"event":"report","id":7,"tag":"...","status":"done",
//    "report":{...SolveReport...}}            (+ "error" when status=failed)
//   {"event":"cancel","id":7,"ok":true}
//   {"event":"stats","scheduler":{...},"service":{...}}
//   {"event":"error","code":"bad_json","message":"..."}
//
// Per job the stream is: one `accepted`, zero or more `sample` /
// `preempted` events — samples carry strictly decreasing best_cost (the
// anytime payload — a deadline-bound client can act on the latest sample),
// a `preempted` marks a running job suspended to a checkpoint and requeued
// (it resumes where it left off) — then exactly one `report`.
//
// The envelope parser is strict, mirroring SolveRequest::from_json: a
// malformed line, an unknown member, a wrong type or an oversized line each
// raise a ProtocolError carrying a stable machine-readable code — the
// transport encodes it as an `error` event and keeps serving.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>

#include "api/solve.hpp"
#include "util/json.hpp"

namespace cspls::serve {

/// Admission lanes, strongest first (the numeric value is the lane index).
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kNumLanes = 3;

[[nodiscard]] std::string_view name_of(Priority priority) noexcept;
[[nodiscard]] std::optional<Priority> priority_from_name(
    std::string_view name) noexcept;

// Stable error codes of the `error` event.
inline constexpr std::string_view kErrOversized = "oversized";
inline constexpr std::string_view kErrBadJson = "bad_json";
inline constexpr std::string_view kErrBadEnvelope = "bad_envelope";
inline constexpr std::string_view kErrUnknownOp = "unknown_op";
inline constexpr std::string_view kErrBadRequest = "bad_request";
inline constexpr std::string_view kErrUnknownJob = "unknown_job";
inline constexpr std::string_view kErrShutdown = "shutdown";
/// Admission control: the job's priority lane is at its configured depth
/// bound.  The request was rejected *before* `accepted` — resubmit later.
/// The HTTP transport maps this code to status 429.
inline constexpr std::string_view kErrOverloaded = "overloaded";

/// A wire-boundary failure: `code()` is one of the kErr* constants above,
/// what() the human diagnostic.  Raised by parse_command, caught by the
/// transport, never propagated past the session loop.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string_view code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] std::string_view code() const noexcept { return code_; }

 private:
  std::string_view code_;  ///< always one of the static kErr* constants
};

struct SolveCommand {
  api::SolveRequest request;
  Priority priority = Priority::kNormal;
  bool stream = false;            ///< push `sample` events while running
  std::uint64_t sample_period = 0;  ///< 0 = transport default
  std::string tag;                ///< echoed verbatim in accepted/report
};

struct StatsCommand {};

struct CancelCommand {
  std::uint64_t id = 0;
};

using Command = std::variant<SolveCommand, StatsCommand, CancelCommand>;

/// Parse one client line.  Throws ProtocolError on any malformed input:
/// oversized (> max_line_bytes), unparsable JSON, a non-object envelope,
/// unknown/mistyped envelope members, an unknown op, or a `request` that
/// SolveRequest::from_json rejects.
[[nodiscard]] Command parse_command(std::string_view line,
                                    std::size_t max_line_bytes);

// --- Event encoders ----------------------------------------------------
// Each returns one complete JSON line (no trailing newline).  Member order
// is fixed, so encodings are deterministic.

[[nodiscard]] std::string encode_accepted(std::uint64_t id,
                                          std::string_view tag,
                                          Priority priority);
[[nodiscard]] std::string encode_sample(std::uint64_t id, std::size_t walker,
                                        std::uint64_t iteration,
                                        csp::Cost best_cost);
/// Mid-stream notice that a *running* job was suspended to a checkpoint to
/// make room for stronger work and requeued at the front of its lane; the
/// job is still live and will resume (samples continue, report still comes
/// exactly once).  Emitted only for streaming jobs.
[[nodiscard]] std::string encode_preempted(std::uint64_t id);
[[nodiscard]] std::string encode_report(std::uint64_t id, std::string_view tag,
                                        std::string_view status,
                                        const api::SolveReport& report,
                                        std::string_view error);
[[nodiscard]] std::string encode_cancel_ack(std::uint64_t id, bool ok);
[[nodiscard]] std::string encode_stats(util::Json scheduler,
                                       util::Json service);
[[nodiscard]] std::string encode_error(std::string_view code,
                                       std::string_view message,
                                       std::string_view tag = {});

}  // namespace cspls::serve
