#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/solver.hpp"
#include "core/stop_token.hpp"
#include "problems/spec.hpp"
#include "util/fault.hpp"

namespace cspls::serve {

namespace detail {

/// One admitted job, shared between the lanes, the workers/dispatcher and
/// any cancel() caller.  Queue membership, phase and the service handle
/// are guarded by the scheduler mutex; the sample filter has its own lock
/// because walker threads hit it while the scheduler lock is busy.
struct ServeJob {
  std::uint64_t id = 0;
  SolveCommand command;
  JobEvents events;
  bool warm_path = false;

  std::atomic<bool> cancel{false};

  // Guarded by Scheduler::m_.
  api::JobHandle handle;         ///< service path, once submitted
  bool in_service = false;
  bool preempt_pending = false;  ///< cancelled to make room, requeue on reap
  bool started_recorded = false;

  // Sample/report serialization: on_sample fires under this lock so best
  // cost is strictly decreasing on the wire and nothing follows on_report.
  std::mutex sample_m;
  csp::Cost best_seen = csp::kInfiniteCost;
  bool reported = false;

  void offer_sample(std::size_t walker, std::uint64_t iteration,
                    csp::Cost cost) {
    std::lock_guard lock(sample_m);
    if (reported || cost >= best_seen) return;
    best_seen = cost;
    if (events.on_sample) events.on_sample(id, walker, iteration, cost);
  }

  void emit_report(std::string_view status, const api::SolveReport& report,
                   std::string_view error) {
    std::lock_guard lock(sample_m);
    if (reported) return;
    reported = true;
    if (events.on_report) events.on_report(id, status, report, error);
  }

  /// Running-preemption notice: the job is suspended and requeued, still
  /// live.  Shares the sample lock so it can never follow the report.
  void emit_preempted() {
    std::lock_guard lock(sample_m);
    if (reported) return;
    if (events.on_preempted) events.on_preempted(id);
  }
};

}  // namespace detail

namespace {

constexpr std::string_view kDone = "done";
constexpr std::string_view kCancelled = "cancelled";
constexpr std::string_view kFailed = "failed";

std::size_t lane_of(const detail::ServeJob& job) {
  return static_cast<std::size_t>(job.command.priority);
}

/// Walker threads the job would lease — the service's accounting, mirrored
/// so path selection matches what the budget would actually see.
std::size_t lease_estimate(const api::SolveRequest& request) {
  if (request.scheduling != parallel::Scheduling::kThreads) return 1;
  std::size_t want = std::max<std::size_t>(1, request.walkers);
  if (request.max_threads != 0) want = std::min(want, request.max_threads);
  return want;
}

api::SolveReport cancelled_report(const detail::ServeJob& job) {
  api::SolveReport report;
  report.problem = job.command.request.problem;
  report.cancelled = true;
  return report;
}

std::string_view status_of(api::JobStatus status) {
  switch (status) {
    case api::JobStatus::kDone:
      return kDone;
    case api::JobStatus::kCancelled:
      return kCancelled;
    default:
      return kFailed;
  }
}

}  // namespace

util::Json SchedulerStats::to_json() const {
  util::Json json = util::Json::object();
  json.set("queued_high", static_cast<std::uint64_t>(queued[0]))
      .set("queued_normal", static_cast<std::uint64_t>(queued[1]))
      .set("queued_low", static_cast<std::uint64_t>(queued[2]))
      .set("inflight", static_cast<std::uint64_t>(inflight))
      .set("warm_active", static_cast<std::uint64_t>(warm_active))
      .set("submitted", submitted)
      .set("completed", completed)
      .set("cancelled", cancelled)
      .set("failed", failed)
      .set("preempted_queued", preempted_queued)
      .set("preempted_running", preempted_running)
      .set("resumed", resumed)
      .set("rejected_overload", rejected_overload)
      .set("givebacks", givebacks)
      .set("batches", batches)
      .set("batched_jobs", batched_jobs)
      .set("fused_batches", fused_batches)
      .set("fused_jobs", fused_jobs);
  return json;
}

Scheduler::Scheduler(SchedulerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  if (options_.warm_workers == 0) options_.warm_workers = 1;
  if (options_.warm_batch_max == 0) options_.warm_batch_max = 1;
  if (options_.service_inflight == 0) options_.service_inflight = 1;
  warm_threads_.reserve(options_.warm_workers);
  for (std::size_t i = 0; i < options_.warm_workers; ++i) {
    warm_threads_.emplace_back([this] { warm_loop(); });
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Scheduler::~Scheduler() { shutdown(); }

std::uint64_t Scheduler::submit(SolveCommand command, JobEvents events) {
  // Same submission-site validation as the service: the caller gets the
  // diagnostic now, not a failed job later.
  (void)problems::parse_spec(command.request.problem);
  parallel::validate_options(command.request.to_pool_options());

  auto job = std::make_shared<detail::ServeJob>();
  job->command = std::move(command);
  if (job->command.sample_period == 0) {
    job->command.sample_period = options_.default_sample_period;
  }
  job->events = std::move(events);
  job->warm_path =
      lease_estimate(job->command.request) <= options_.warm_lease_threshold;
  const std::size_t lane_idx = lane_of(*job);
  {
    std::lock_guard lock(m_);
    if (stopping_) {
      throw std::runtime_error("serve::Scheduler: submit after shutdown");
    }
    // Admission control, before `accepted` can fire: a full lane rejects
    // with the stable `overloaded` code.  The in-admission count holds the
    // slot across the unlock below, so concurrent submits cannot overshoot
    // the bound.
    if (options_.max_lane_depth != 0 &&
        warm_lanes_[lane_idx].size() + service_lanes_[lane_idx].size() +
                admitting_[lane_idx] >=
            options_.max_lane_depth) {
      ++rejected_overload_;
      throw ProtocolError(
          kErrOverloaded,
          "lane \"" + std::string(name_of(job->command.priority)) +
              "\" is at its depth bound of " +
              std::to_string(options_.max_lane_depth) + " queued jobs");
    }
    ++admitting_[lane_idx];
    job->id = next_id_++;
  }

  // Fired before the job is visible to any worker, with no lock held:
  // `accepted` always precedes the first `sample`.
  if (job->events.on_accepted) job->events.on_accepted(job->id);

  bool raced_shutdown = false;
  {
    std::lock_guard lock(m_);
    --admitting_[lane_idx];
    if (stopping_) {
      raced_shutdown = true;
    } else {
      jobs_.emplace(job->id, job);
      auto& lanes = job->warm_path ? warm_lanes_ : service_lanes_;
      lanes[lane_idx].push_back(job);
      ++submitted_;
    }
  }
  if (raced_shutdown) {
    // Accepted already went out; close the job's stream honestly.
    job->emit_report(kCancelled, cancelled_report(*job), {});
    return job->id;
  }
  if (job->warm_path) warm_cv_.notify_one();
  return job->id;
}

Scheduler::CancelResult Scheduler::cancel(std::uint64_t id) {
  JobPtr dequeued;
  CancelResult result;
  {
    std::lock_guard lock(m_);
    if (id == 0 || id >= next_id_) return CancelResult::kUnknown;
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return CancelResult::kAlreadyTerminal;
    const JobPtr job = it->second;
    job->cancel.store(true, std::memory_order_relaxed);
    if (job->in_service) {
      // A client cancel outranks a pending preemption requeue.
      job->preempt_pending = false;
      (void)job->handle.cancel();
    } else {
      auto& lanes = job->warm_path ? warm_lanes_ : service_lanes_;
      auto& lane = lanes[lane_of(*job)];
      const auto pos = std::find(lane.begin(), lane.end(), job);
      if (pos != lane.end()) {
        // Still queued here: finalize directly, nobody else owns it.
        lane.erase(pos);
        jobs_.erase(it);
        ++cancelled_;
        dequeued = job;
      }
      // Otherwise a warm worker holds it; the flag stops the solve and the
      // worker finalizes with status "cancelled".
    }
    result = CancelResult::kCancelled;
  }
  if (dequeued) dequeued->emit_report(kCancelled, cancelled_report(*dequeued), {});
  return result;
}

bool Scheduler::reject_overloaded(Priority priority) {
  const auto lane_idx = static_cast<std::size_t>(priority);
  std::lock_guard lock(m_);
  if (options_.max_lane_depth == 0 ||
      warm_lanes_[lane_idx].size() + service_lanes_[lane_idx].size() +
              admitting_[lane_idx] <
          options_.max_lane_depth) {
    return false;
  }
  ++rejected_overload_;
  return true;
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard lock(m_);
  SchedulerStats stats;
  for (std::size_t i = 0; i < kNumLanes; ++i) {
    stats.queued[i] = warm_lanes_[i].size() + service_lanes_[i].size();
  }
  stats.inflight = inflight_.size();
  stats.warm_active = warm_active_;
  stats.submitted = submitted_;
  stats.completed = completed_;
  stats.cancelled = cancelled_;
  stats.failed = failed_;
  stats.preempted_queued = preempted_queued_;
  stats.preempted_running = preempted_running_;
  stats.resumed = resumed_;
  stats.rejected_overload = rejected_overload_;
  stats.givebacks = givebacks_;
  stats.batches = batches_;
  stats.batched_jobs = batched_jobs_;
  stats.fused_batches = fused_batches_;
  stats.fused_jobs = fused_jobs_;
  return stats;
}

api::ServiceStats Scheduler::service_stats() const { return service_.stats(); }

std::vector<std::uint64_t> Scheduler::started_order() const {
  std::lock_guard lock(m_);
  return started_order_;
}

bool Scheduler::warm_lanes_empty() const {
  for (const auto& lane : warm_lanes_) {
    if (!lane.empty()) return false;
  }
  return true;
}

void Scheduler::finalize(const Finalization& f) {
  f.job->emit_report(f.status, f.report, f.error);
}

std::string Scheduler::run_warm(detail::ServeJob& job) {
  api::SolveReport report;
  std::string status{kDone};
  std::string error;
  try {
    // The warm path shares the service path's dispatch failure model: one
    // `service_dispatch` probe per job, so the same fault plans script
    // crashes on either path.  No retry here — small jobs rerun cheaply
    // from the client; self-healing is the service path's job.
    const util::fault::Schedule schedule =
        util::fault::kCompiledIn
            ? util::fault::Schedule::with_env(job.command.request.faults)
            : util::fault::Schedule{};
    util::fault::Session dispatch_faults(&schedule, util::fault::kAnyWalker);
    if (util::fault::probe(&dispatch_faults,
                           util::fault::Site::kServiceDispatch) ==
        util::fault::Action::kCorrupt) {
      throw std::runtime_error("injected fault: corrupt service_dispatch");
    }

    const core::StopToken token(&job.cancel);
    api::SolveCallbacks callbacks;
    if (job.command.stream && job.command.sample_period != 0) {
      callbacks.sample_sink = [&job](std::size_t walker,
                                     std::uint64_t iteration, csp::Cost cost) {
        job.offer_sample(walker, iteration, cost);
      };
      callbacks.sample_period = job.command.sample_period;
    }
    report = api::Solver::solve(job.command.request, token, callbacks);
    if (report.cancelled) status = kCancelled;
  } catch (const std::exception& ex) {
    status = kFailed;
    error = ex.what();
    report = api::SolveReport{};
    report.problem = job.command.request.problem;
  }
  job.emit_report(status, report, error);
  return status;
}

/// Run a claimed warm batch as ONE fused launch (api::Solver::solve_fused
/// over parallel::FusedRun) instead of back-to-back solo launches.  The
/// fused admission gate reproduces the legacy loop's per-job checks under
/// m_, just before each member's first walker runs: shutdown or a client
/// cancel withdraws the member for a terminal "cancelled" report without
/// running it, a stronger non-empty lane withdraws it for give-back, and
/// an admitted member records its start.  Completions are per member and
/// independent — a finished member reports while siblings still run.
void Scheduler::run_warm_fused(std::vector<JobPtr>& batch,
                               std::size_t lane_idx) {
  enum class Withdraw { kNone, kCancelled, kGiveBack };

  // Per-member dispatch-fault probe, the same failure model as run_warm: a
  // member whose probe fires finalizes "failed" right here and never joins
  // the launch; siblings are unaffected.
  std::vector<JobPtr> members;
  std::vector<api::Solver::FusedSolveJob> fused;
  members.reserve(batch.size());
  fused.reserve(batch.size());
  for (const JobPtr& job : batch) {
    std::string probe_error;
    try {
      const util::fault::Schedule schedule =
          util::fault::kCompiledIn
              ? util::fault::Schedule::with_env(job->command.request.faults)
              : util::fault::Schedule{};
      util::fault::Session dispatch_faults(&schedule,
                                           util::fault::kAnyWalker);
      if (util::fault::probe(&dispatch_faults,
                             util::fault::Site::kServiceDispatch) ==
          util::fault::Action::kCorrupt) {
        throw std::runtime_error("injected fault: corrupt service_dispatch");
      }
    } catch (const std::exception& ex) {
      probe_error = ex.what();
      if (probe_error.empty()) probe_error = "dispatch probe failed";
    }
    if (!probe_error.empty()) {
      api::SolveReport report;
      report.problem = job->command.request.problem;
      job->emit_report(kFailed, report, probe_error);
      std::lock_guard lock(m_);
      jobs_.erase(job->id);
      --warm_active_;
      ++failed_;
      continue;
    }

    api::Solver::FusedSolveJob member;
    member.request = job->command.request;
    member.token = core::StopToken(&job->cancel);
    if (job->command.stream && job->command.sample_period != 0) {
      const JobPtr sink = job;
      member.callbacks.sample_sink = [sink](std::size_t walker,
                                            std::uint64_t iteration,
                                            csp::Cost cost) {
        sink->offer_sample(walker, iteration, cost);
      };
      member.callbacks.sample_period = job->command.sample_period;
    }
    members.push_back(job);
    fused.push_back(std::move(member));
  }
  if (members.empty()) return;

  std::vector<Withdraw> withdraw(members.size(), Withdraw::kNone);

  api::Solver::FusedSolveOptions options;
  options.num_threads =
      options_.warm_fused_threads != 0
          ? options_.warm_fused_threads
          : std::max<std::size_t>(
                1, std::thread::hardware_concurrency() /
                       std::max<std::size_t>(1, options_.warm_workers));
  options.admit = [&](std::size_t index) {
    std::lock_guard lock(m_);
    const JobPtr& job = members[index];
    if (stopping_ || job->cancel.load(std::memory_order_relaxed)) {
      withdraw[index] = Withdraw::kCancelled;
      return false;
    }
    for (std::size_t stronger = 0; stronger < lane_idx; ++stronger) {
      if (!warm_lanes_[stronger].empty()) {
        withdraw[index] = Withdraw::kGiveBack;
        return false;
      }
    }
    if (!job->started_recorded) {
      job->started_recorded = true;
      started_order_.push_back(job->id);
    }
    return true;
  };

  {
    std::lock_guard lock(m_);
    ++fused_batches_;
    fused_jobs_ += members.size();
  }

  try {
    (void)api::Solver::solve_fused(
        fused, options, [&](std::size_t index, api::SolveReport report) {
          const JobPtr& job = members[index];
          const std::string_view status =
              report.cancelled ? kCancelled : kDone;
          job->emit_report(status, report, {});
          std::lock_guard lock(m_);
          jobs_.erase(job->id);
          --warm_active_;
          if (report.cancelled) {
            ++cancelled_;
          } else {
            ++completed_;
          }
        });
  } catch (const std::exception& ex) {
    // The launch itself failed.  Members were validated at submission, so
    // this is exceptional — fail every member the sink never reached
    // (withdrawn ones are finalized below with their real disposition).
    std::vector<JobPtr> broken;
    {
      std::lock_guard lock(m_);
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (withdraw[i] != Withdraw::kNone) continue;
        if (jobs_.erase(members[i]->id) == 0) continue;  // sink already ran
        --warm_active_;
        ++failed_;
        broken.push_back(members[i]);
      }
    }
    for (const JobPtr& job : broken) {
      api::SolveReport report;
      report.problem = job->command.request.problem;
      job->emit_report(kFailed, report, ex.what());
    }
  }

  // Withdrawn members: give-backs return to the front of their lane in
  // FIFO order for a fresh claim after the stronger work; shutdown/cancel
  // withdrawals finalize with a terminal cancel event — they never ran.
  std::vector<JobPtr> requeue;
  std::vector<JobPtr> cut;
  {
    std::lock_guard lock(m_);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (withdraw[i] == Withdraw::kGiveBack) {
        requeue.push_back(members[i]);
      } else if (withdraw[i] == Withdraw::kCancelled) {
        cut.push_back(members[i]);
      }
    }
    for (auto rit = requeue.rbegin(); rit != requeue.rend(); ++rit) {
      warm_lanes_[lane_idx].push_front(*rit);
    }
    givebacks_ += requeue.size();
    warm_active_ -= requeue.size();
    for (const JobPtr& job : cut) {
      jobs_.erase(job->id);
      --warm_active_;
      ++cancelled_;
    }
    if (!requeue.empty()) warm_cv_.notify_one();
  }
  for (const JobPtr& job : cut) {
    job->emit_report(kCancelled, cancelled_report(*job), {});
  }
}

void Scheduler::warm_loop() {
  std::vector<JobPtr> batch;
  for (;;) {
    std::size_t lane_idx = 0;
    {
      std::unique_lock lock(m_);
      warm_cv_.wait(lock, [this] { return stopping_ || !warm_lanes_empty(); });
      if (stopping_ && warm_lanes_empty()) return;
      while (warm_lanes_[lane_idx].empty()) ++lane_idx;
      auto& lane = warm_lanes_[lane_idx];
      const std::size_t take = std::min(options_.warm_batch_max, lane.size());
      batch.assign(lane.begin(), lane.begin() + static_cast<std::ptrdiff_t>(take));
      lane.erase(lane.begin(), lane.begin() + static_cast<std::ptrdiff_t>(take));
      warm_active_ += take;
      ++batches_;
      batched_jobs_ += take;
    }

    if (options_.fuse_warm_batches && batch.size() >= 2) {
      run_warm_fused(batch, lane_idx);
      batch.clear();
      continue;
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      bool gave_back = false;
      JobPtr cut;  ///< claimed but cancelled/shut down before starting
      {
        std::unique_lock lock(m_);
        // Give-back preemption: a stronger lane filled while this batch
        // was in hand — return the unstarted tail and re-claim from the
        // top.  Skipped during shutdown (everything is cancelled anyway).
        if (!stopping_) {
          for (std::size_t stronger = 0; stronger < lane_idx; ++stronger) {
            if (!warm_lanes_[stronger].empty()) {
              for (std::size_t j = batch.size(); j > i; --j) {
                warm_lanes_[lane_idx].push_front(batch[j - 1]);
              }
              const std::size_t returned = batch.size() - i;
              givebacks_ += returned;
              warm_active_ -= returned;
              batch.resize(i);
              gave_back = true;
              warm_cv_.notify_one();
              break;
            }
          }
        }
        if (!gave_back) {
          if (stopping_ ||
              batch[i]->cancel.load(std::memory_order_relaxed)) {
            // Shutdown (or a client cancel) caught this claim before it
            // started: finalize with a terminal cancel event without
            // paying the solve's start-up.  It never ran, so it records
            // no start.
            jobs_.erase(batch[i]->id);
            --warm_active_;
            ++cancelled_;
            cut = batch[i];
          } else if (!batch[i]->started_recorded) {
            batch[i]->started_recorded = true;
            started_order_.push_back(batch[i]->id);
          }
        }
      }
      if (gave_back) break;
      if (cut) {
        cut->emit_report(kCancelled, cancelled_report(*cut), {});
        continue;
      }

      const std::string status = run_warm(*batch[i]);

      {
        std::lock_guard lock(m_);
        jobs_.erase(batch[i]->id);
        --warm_active_;
        if (status == kDone) {
          ++completed_;
        } else if (status == kCancelled) {
          ++cancelled_;
        } else {
          ++failed_;
        }
      }
    }
    batch.clear();
  }
}

void Scheduler::dispatch_loop() {
  for (;;) {
    std::vector<Finalization> done;
    std::vector<JobPtr> suspended;  ///< running-preempted: notify off-lock
    bool exit_after = false;
    {
      std::unique_lock lock(m_);

      // Reap: probe every in-flight handle without blocking.
      std::vector<JobPtr> requeue;  ///< preempted, in original FIFO order
      for (auto it = inflight_.begin(); it != inflight_.end();) {
        const JobPtr& job = *it;
        // Record a start only on an observed kRunning: a preempted job's
        // handle jumps kQueued -> kCancelled without ever executing.
        const api::JobStatus status = job->handle.status();
        if (!job->started_recorded && status == api::JobStatus::kRunning) {
          job->started_recorded = true;
          started_order_.push_back(job->id);
        }
        if (!job->handle.wait_for(std::chrono::milliseconds(0))) {
          ++it;
          continue;
        }
        const api::JobStatus terminal = job->handle.status();
        if (job->preempt_pending &&
            terminal == api::JobStatus::kCancelled &&
            !job->cancel.load(std::memory_order_relaxed) && !stopping_) {
          // Preempted while still queued in the service (or a suspended
          // run whose capture failed and degraded to a cancel): back to
          // the front of its lane for a fresh from-scratch submission
          // after the stronger job.
          job->preempt_pending = false;
          job->in_service = false;
          job->handle = api::JobHandle{};
          requeue.push_back(job);
          ++preempted_queued_;
        } else if (terminal == api::JobStatus::kPreempted &&
                   !job->cancel.load(std::memory_order_relaxed) &&
                   !stopping_) {
          // Suspended mid-run: carry the checkpoint back to the front of
          // the lane — the next claim resumes the walk where it stopped.
          job->preempt_pending = false;
          job->in_service = false;
          job->command.request.resume_from = job->handle.take_checkpoint();
          job->handle = api::JobHandle{};
          requeue.push_back(job);
          ++preempted_running_;
          suspended.push_back(job);
        } else if (terminal == api::JobStatus::kPreempted) {
          // Suspended, but the client cancelled (or the scheduler is
          // stopping) before the requeue: the checkpoint is moot — the
          // job resolves as a plain cancel.
          done.push_back(Finalization{job, std::string(kCancelled),
                                      cancelled_report(*job),
                                      std::string{}});
          jobs_.erase(job->id);
          ++cancelled_;
          it = inflight_.erase(it);
          continue;
        } else {
          // A job that reached done/failed necessarily ran, even if it was
          // too quick for a kRunning probe to catch it in flight.
          if (!job->started_recorded &&
              terminal != api::JobStatus::kCancelled) {
            job->started_recorded = true;
            started_order_.push_back(job->id);
          }
          const std::string_view status_name = status_of(terminal);
          done.push_back(Finalization{job, std::string(status_name),
                                      job->handle.report(),
                                      job->handle.error()});
          jobs_.erase(job->id);
          if (terminal == api::JobStatus::kDone) {
            ++completed_;
          } else if (terminal == api::JobStatus::kCancelled) {
            ++cancelled_;
          } else {
            ++failed_;
          }
        }
        it = inflight_.erase(it);
      }
      // Requeue preempted jobs at the front of their lanes, preserving
      // their relative FIFO order (reverse iteration + push_front).
      for (auto rit = requeue.rbegin(); rit != requeue.rend(); ++rit) {
        service_lanes_[lane_of(**rit)].push_front(*rit);
      }

      // Preempt: a stronger lane is waiting while weaker in-flight jobs
      // are still queued inside the service — cancel them to make room.
      if (!stopping_) {
        std::size_t strongest_waiting = kNumLanes;
        for (std::size_t i = 0; i < kNumLanes; ++i) {
          if (!service_lanes_[i].empty()) {
            strongest_waiting = i;
            break;
          }
        }
        if (strongest_waiting < kNumLanes) {
          bool queued_victim = false;
          for (const JobPtr& job : inflight_) {
            if (!job->preempt_pending && lane_of(*job) > strongest_waiting &&
                job->handle.status() == api::JobStatus::kQueued) {
              if (job->handle.cancel()) {
                job->preempt_pending = true;
                queued_victim = true;
              }
            }
          }
          // No queued victim and no room to just submit the stronger job:
          // suspend the weakest *running* job to a checkpoint.  Its
          // preempt_pending marks the suspension in flight; the reap above
          // requeues it (checkpoint in hand, or degraded to a plain
          // cancel-requeue when the capture failed).
          if (options_.preempt_running && !queued_victim &&
              inflight_.size() >= options_.service_inflight) {
            JobPtr victim;
            for (const JobPtr& job : inflight_) {
              if (job->preempt_pending) continue;
              if (lane_of(*job) <= strongest_waiting) continue;
              const api::JobStatus status = job->handle.status();
              if (status != api::JobStatus::kRunning &&
                  status != api::JobStatus::kDegraded) {
                continue;
              }
              if (!victim || lane_of(*job) > lane_of(*victim)) victim = job;
            }
            if (victim && victim->handle.suspend()) {
              victim->preempt_pending = true;
            }
          }
        }

        // Submit: fill the service up to the in-flight cap, strongest
        // lane first.
        while (inflight_.size() < options_.service_inflight) {
          JobPtr job;
          for (auto& lane : service_lanes_) {
            if (!lane.empty()) {
              job = lane.front();
              lane.pop_front();
              break;
            }
          }
          if (!job) break;
          if (job->cancel.load(std::memory_order_relaxed)) {
            done.push_back(
                Finalization{job, std::string(kCancelled),
                             cancelled_report(*job), std::string{}});
            jobs_.erase(job->id);
            ++cancelled_;
            continue;
          }
          api::JobStream stream;
          if (job->command.stream && job->command.sample_period != 0) {
            const JobPtr sink = job;
            stream.on_sample = [sink](std::size_t walker,
                                      std::uint64_t iteration,
                                      csp::Cost cost) {
              sink->offer_sample(walker, iteration, cost);
            };
            stream.sample_period = job->command.sample_period;
          }
          try {
            job->handle = service_.submit(job->command.request,
                                          std::move(stream));
          } catch (const std::exception& ex) {
            done.push_back(Finalization{job, std::string(kFailed),
                                        api::SolveReport{}, ex.what()});
            jobs_.erase(job->id);
            ++failed_;
            continue;
          }
          if (job->command.request.resume_from.has_value()) ++resumed_;
          job->in_service = true;
          inflight_.push_back(job);
        }
      }

      if (stopping_ && inflight_.empty()) {
        // Drain anything still laned (shutdown raced a requeue).
        for (auto& lane : service_lanes_) {
          while (!lane.empty()) {
            const JobPtr job = lane.front();
            lane.pop_front();
            done.push_back(Finalization{job, std::string(kCancelled),
                                        cancelled_report(*job),
                                        std::string{}});
            jobs_.erase(job->id);
            ++cancelled_;
          }
        }
        exit_after = true;
      }
    }

    for (const JobPtr& job : suspended) job->emit_preempted();
    for (const Finalization& f : done) finalize(f);
    if (exit_after) return;
    std::this_thread::sleep_for(options_.poll_period);
  }
}

void Scheduler::shutdown() {
  std::vector<Finalization> done;
  {
    std::lock_guard lock(m_);
    if (joined_) return;
    stopping_ = true;
    // Drain the lanes: queued jobs finalize as cancelled right here.
    for (auto* lanes : {&warm_lanes_, &service_lanes_}) {
      for (auto& lane : *lanes) {
        while (!lane.empty()) {
          const JobPtr job = lane.front();
          lane.pop_front();
          done.push_back(Finalization{job, std::string(kCancelled),
                                      cancelled_report(*job), std::string{}});
          jobs_.erase(job->id);
          ++cancelled_;
        }
      }
    }
    // Anything still live is held by a worker or the service: flag it.
    for (const auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
      if (job->in_service) (void)job->handle.cancel();
    }
  }
  warm_cv_.notify_all();
  for (const Finalization& f : done) finalize(f);
  for (std::thread& thread : warm_threads_) {
    if (thread.joinable()) thread.join();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  service_.shutdown();
  {
    std::lock_guard lock(m_);
    joined_ = true;
  }
}

}  // namespace cspls::serve
