#include "serve/session.hpp"

#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace cspls::serve {

Session::Session(Scheduler& scheduler,
                 std::function<void(std::string_view)> write_line,
                 Options options)
    : scheduler_(scheduler),
      write_line_(std::move(write_line)),
      options_(options) {}

void Session::emit(std::string_view line) {
  std::lock_guard lock(write_m_);
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  write_line_(framed);
}

void Session::handle_line(std::string_view line) {
  // Tolerate CRLF transports and blank keep-alive lines.
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  if (line.find_first_not_of(" \t") == std::string_view::npos) return;

  Command command;
  try {
    command = parse_command(line, options_.max_line_bytes);
  } catch (const ProtocolError& error) {
    emit(encode_error(error.code(), error.what()));
    return;
  }

  if (auto* solve = std::get_if<SolveCommand>(&command)) {
    dispatch_solve(std::move(*solve));
  } else if (std::get_if<StatsCommand>(&command) != nullptr) {
    emit(encode_stats(scheduler_.stats().to_json(),
                      scheduler_.service_stats().to_json()));
  } else {
    const auto& cancel = std::get<CancelCommand>(command);
    switch (scheduler_.cancel(cancel.id)) {
      case Scheduler::CancelResult::kCancelled:
        emit(encode_cancel_ack(cancel.id, true));
        break;
      case Scheduler::CancelResult::kAlreadyTerminal:
        emit(encode_cancel_ack(cancel.id, false));
        break;
      case Scheduler::CancelResult::kUnknown:
        emit(encode_error(kErrUnknownJob,
                          "no job with id " + std::to_string(cancel.id)));
        break;
    }
  }
}

void Session::dispatch_solve(SolveCommand command) {
  // The command is moved into the scheduler; keep what the events echo.
  const std::string tag = command.tag;
  const Priority priority = command.priority;
  const bool stream = command.stream;

  JobEvents events;
  events.on_accepted = [this, tag, priority](std::uint64_t id) {
    {
      std::lock_guard lock(pending_m_);
      pending_jobs_.insert(id);
    }
    emit(encode_accepted(id, tag, priority));
  };
  if (stream) {
    events.on_sample = [this](std::uint64_t id, std::size_t walker,
                              std::uint64_t iteration, csp::Cost cost) {
      emit(encode_sample(id, walker, iteration, cost));
    };
    events.on_preempted = [this](std::uint64_t id) {
      emit(encode_preempted(id));
    };
  }
  events.on_report = [this, tag](std::uint64_t id, std::string_view status,
                                 const api::SolveReport& report,
                                 std::string_view error) {
    emit(encode_report(id, tag, status, report, error));
    // Notify under the lock: once a drain()ing thread can observe the set
    // empty, this callback has finished touching the condition variable,
    // so the Session may be destroyed the moment drain() returns.
    std::lock_guard lock(pending_m_);
    pending_jobs_.erase(id);
    pending_cv_.notify_all();
  };

  try {
    (void)scheduler_.submit(std::move(command), std::move(events));
  } catch (const ProtocolError& error) {
    // Admission control (`overloaded`): rejected before on_accepted fired.
    emit(encode_error(error.code(), error.what(), tag));
  } catch (const std::invalid_argument& error) {
    // Rejected before on_accepted fired: nothing is pending.
    emit(encode_error(kErrBadRequest, error.what(), tag));
  } catch (const std::exception& error) {
    emit(encode_error(kErrShutdown, error.what(), tag));
  }
}

void Session::drain() {
  std::unique_lock lock(pending_m_);
  pending_cv_.wait(lock, [this] { return pending_jobs_.empty(); });
}

void Session::cancel_all() {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard lock(pending_m_);
    ids.assign(pending_jobs_.begin(), pending_jobs_.end());
  }
  for (const std::uint64_t id : ids) (void)scheduler_.cancel(id);
}

std::size_t Session::pending() const {
  std::lock_guard lock(pending_m_);
  return pending_jobs_.size();
}

}  // namespace cspls::serve
