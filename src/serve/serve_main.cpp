// cspls_serve — the serving-tier front door.
//
// Default mode is stdio JSON-lines: requests on stdin, events on stdout,
// exit at EOF once every job reported.  --http additionally opens the
// HTTP/1.1 listener (see http_server.hpp); with it, stdin EOF does not
// end the process — the listener keeps serving until SIGINT/SIGTERM, so
// `cspls_serve --http &` works as a daemon even where background jobs
// get /dev/null stdin.  Run `cspls_serve --help` for the knobs; with no
// arguments it serves stdio with production defaults, so
//
//   printf '%s\n' '{"op":"solve","request":{"problem":"costas:8"}}' \
//     | cspls_serve
//
// prints `accepted` and `report` lines and exits.
#include <csignal>
#include <iostream>
#include <string>

#include "serve/http_server.hpp"
#include "serve/scheduler.hpp"
#include "serve/stdio_server.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("cspls_serve",
                       "JSON-lines solve server (stdio, optional HTTP)");
  args.add_uint64("threads", 0,
                  "walker-thread budget of the service path (0 = hardware "
                  "concurrency)");
  args.add_uint64("warm-workers", 2, "warm-pool worker threads");
  args.add_uint64("warm-threshold", 1,
                  "thread-lease estimate at or below which a job runs on "
                  "the warm path");
  args.add_uint64("batch", 8, "most jobs a warm worker claims per visit");
  args.add_uint64("inflight", 4,
                  "most service-path jobs inside the service at once");
  args.add_uint64("sample-period", 256,
                  "default sample period (iterations) for streaming jobs");
  args.add_uint64("max-line-bytes", 1 << 20, "request line/body size limit");
  args.add_flag("http", "also serve HTTP/1.1 on --port");
  args.add_uint64("port", 0, "HTTP port (0 = ephemeral, printed on stderr)");
  args.add_flag("cancel-on-eof",
                "cancel outstanding jobs at stdin EOF instead of finishing "
                "them");
  if (!args.parse(argc, argv)) {
    return args.help_requested() ? 0 : 2;
  }

  // In HTTP mode the listener outlives stdin, ended by SIGINT/SIGTERM via
  // sigwait.  Block the signals before any thread exists so every thread
  // inherits the mask and no default handler fires elsewhere.
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGINT);
  sigaddset(&stop_signals, SIGTERM);
  if (args.flag("http")) {
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);
  }

  serve::SchedulerOptions options;
  options.warm_workers = static_cast<std::size_t>(args.get_uint64("warm-workers"));
  options.warm_lease_threshold =
      static_cast<std::size_t>(args.get_uint64("warm-threshold"));
  options.warm_batch_max = static_cast<std::size_t>(args.get_uint64("batch"));
  options.service_inflight =
      static_cast<std::size_t>(args.get_uint64("inflight"));
  options.default_sample_period = args.get_uint64("sample-period");
  options.service.thread_budget =
      static_cast<std::size_t>(args.get_uint64("threads"));
  serve::Scheduler scheduler(options);

  serve::Session::Options session_options;
  session_options.max_line_bytes =
      static_cast<std::size_t>(args.get_uint64("max-line-bytes"));

  serve::HttpServer http(
      scheduler, serve::HttpServer::Options{
                     static_cast<std::uint16_t>(args.get_uint64("port")),
                     session_options.max_line_bytes});
  if (args.flag("http")) {
    http.start();
    std::cerr << "cspls_serve: http on 127.0.0.1:" << http.port() << "\n";
  }

  serve::StdioServer stdio(scheduler, std::cin, std::cout, session_options);
  stdio.run(args.flag("cancel-on-eof"));

  if (args.flag("http")) {
    std::cerr << "cspls_serve: stdin closed, http serving until "
                 "SIGINT/SIGTERM\n";
    int signal_number = 0;
    sigwait(&stop_signals, &signal_number);
  }

  // Order matters: shutting the scheduler down first resolves any jobs
  // still streaming over HTTP (their sessions drain), so stop() can join
  // connection threads without waiting out a long solve.
  scheduler.shutdown();
  http.stop();
  return 0;
}
