// One client's view of the serving tier: a Session binds a Scheduler to a
// line-oriented byte sink.  The transport (stdio loop, HTTP connection)
// feeds complete request lines into handle_line(); the session parses,
// dispatches, and pushes event lines — `accepted`, `sample`, `report`,
// `cancel`, `stats`, `error` — through the sink, each terminated with
// '\n' and serialized under a write lock (event lines from concurrent
// walker threads never interleave).
//
// Wire-boundary containment: every malformed line turns into exactly one
// `error` event (stable code, human message) and the session keeps
// serving — a parse failure never tears down the connection, let alone
// the scheduler behind it.
//
// Lifetime: jobs submitted here hold callbacks into the session, so the
// transport must drain() (block until every submitted job has reported)
// before destroying it; cancel_all() first makes that prompt when the
// client disconnected mid-stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <unordered_set>

#include "serve/scheduler.hpp"

namespace cspls::serve {

class Session {
 public:
  struct Options {
    std::size_t max_line_bytes = 1 << 20;  ///< request-line size limit
  };

  /// `write_line` receives complete event lines (trailing '\n' included),
  /// already serialized; it may block (backpressure) but must not call
  /// back into the session.  It outlives the session.
  Session(Scheduler& scheduler,
          std::function<void(std::string_view)> write_line)
      : Session(scheduler, std::move(write_line), Options{}) {}
  Session(Scheduler& scheduler,
          std::function<void(std::string_view)> write_line, Options options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Dispatch one request line (no trailing newline; blank lines are
  /// ignored).  Never throws on client input — malformed lines emit an
  /// `error` event instead.
  void handle_line(std::string_view line);

  /// Block until every job submitted through this session has reported.
  void drain();

  /// Cancel this session's outstanding jobs (client went away); their
  /// `report` events still fire (status "cancelled"), so drain() returns.
  void cancel_all();

  /// Jobs submitted here that have not reported yet.
  [[nodiscard]] std::size_t pending() const;

 private:
  void dispatch_solve(SolveCommand command);
  void emit(std::string_view line);  ///< serialize, append '\n', write

  Scheduler& scheduler_;
  std::function<void(std::string_view)> write_line_;
  Options options_;

  std::mutex write_m_;
  mutable std::mutex pending_m_;
  std::condition_variable pending_cv_;
  std::unordered_set<std::uint64_t> pending_jobs_;
};

}  // namespace cspls::serve
