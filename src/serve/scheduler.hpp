// The serving tier's admission scheduler: three priority lanes in front of
// two execution paths, chosen per job by its thread-lease estimate.
//
// Warm path (lease <= warm_lease_threshold): a fixed pool of warm worker
// threads claims *batches* of small jobs off the strongest non-empty lane.
// A claimed batch of two or more jobs runs as ONE fused launch
// (api::Solver::solve_fused over parallel::FusedRun): one resident team
// executes every member's walkers, one spawn/join per batch instead of one
// per job, with each member's fixed-seed report byte-identical to its solo
// run — a thousand one-walker solves cost `warm_workers` long-lived
// threads plus one team per batch, not a thousand service workers.
// Preemption stays cooperative give-back: the fused admission gate
// re-checks the stronger lanes just before each member's first walker
// runs, and withdraws still-unstarted members back to the front of their
// lane when one filled up.  Shutdown (or a client cancel) reaching a
// claimed-but-unstarted member withdraws it the same way and finalizes it
// with a terminal "cancelled" event — it never runs and never records a
// start.
//
// Service path (bigger leases): jobs flow through an api::SolverService —
// inheriting its thread budget, retry/backoff self-healing and watchdog —
// kept shallow (at most `service_inflight` submitted at a time) so lane
// order, not the service's FIFO, decides who runs next.  When a stronger
// lane has a job waiting, in-flight weaker jobs that are still *queued*
// inside the service are preempted: cancelled and requeued at the front of
// their lane, to be resubmitted after the stronger job — they still
// terminate with their real status once re-run.  When no queued victim
// exists and the service is at its in-flight cap, the weakest *running*
// job is suspended instead: the engine stops it at a safe point,
// surrenders a PoolCheckpoint, and the job returns to the front of its
// lane carrying the checkpoint (SolveRequest::resume_from) — its next
// claim resumes the walk exactly where it stopped, byte-identical to never
// having been interrupted.  A capture failure degrades to plain
// cancel-and-requeue (the job restarts from scratch, losing only work).
//
// Admission control: `max_lane_depth` bounds each priority lane; a submit
// to a full lane is rejected with the stable `overloaded` protocol error
// (HTTP 429) before `accepted` fires, so clients see backpressure instead
// of unbounded queueing.
//
// Streaming: a job submitted with `stream` pushes (walker, iteration, cost)
// samples through JobEvents::on_sample, filtered to strictly decreasing
// best cost (the anytime payload) and serialized so no sample follows the
// terminal report.  Event callbacks are never invoked while the scheduler
// lock is held, and `on_accepted` fires before the job becomes visible to
// any worker — `accepted` always precedes the first `sample` on the wire.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/service.hpp"
#include "serve/protocol.hpp"

namespace cspls::serve {

namespace detail {
struct ServeJob;
}  // namespace detail

struct SchedulerOptions {
  /// Warm worker threads (each runs one job at a time, in-thread).
  std::size_t warm_workers = 2;
  /// Jobs whose thread-lease estimate (walkers capped by max_threads;
  /// 1 for non-threaded scheduling) is <= this run on the warm path.
  std::size_t warm_lease_threshold = 1;
  /// Most jobs a warm worker claims per lane visit.
  std::size_t warm_batch_max = 8;
  /// Run claimed batches of >= 2 jobs as one fused launch (see header
  /// comment).  false = the legacy back-to-back per-job loop, kept as the
  /// unfused baseline for benchmarking.
  bool fuse_warm_batches = true;
  /// Resident team size for each warm worker's fused launches.  1
  /// (default) runs the batch inline on the claiming worker thread,
  /// preserving deterministic intra-batch start order; > 1 runs members
  /// concurrently on that many threads (start order becomes
  /// scheduling-dependent); 0 = auto, hardware threads / warm_workers
  /// (at least 1).
  std::size_t warm_fused_threads = 1;
  /// Most service-path jobs submitted into the SolverService at once; the
  /// rest wait in lanes where priority order (and preemption) applies.
  std::size_t service_inflight = 4;
  /// Admission control: most jobs queued per priority lane (warm + service
  /// lanes of one priority counted together, in-flight/claimed jobs not
  /// counted).  A submit to a full lane is rejected with the stable
  /// `overloaded` protocol error (HTTP 429) before `accepted` fires.
  /// 0 = unbounded (the default).
  std::size_t max_lane_depth = 0;
  /// Suspend a *running* weaker-lane job to a PoolCheckpoint when a
  /// stronger job is waiting, the service is at its in-flight cap and no
  /// still-queued weaker job could be preempted instead.  The suspended job
  /// returns to the front of its lane carrying the checkpoint and resumes
  /// exactly where it stopped on its next claim.  false falls back to
  /// queued-only preemption (the stronger job waits out the running walk).
  bool preempt_running = true;
  /// Sample period for streaming jobs that did not pick one.
  std::uint64_t default_sample_period = 256;
  /// Dispatcher poll period for reaping / preempting / submitting.
  std::chrono::milliseconds poll_period{2};
  /// The service path's knobs (thread budget, per-job cap).
  api::SolverService::Options service;
};

/// Per-job event sinks; all fired off the submitting thread (workers, the
/// dispatcher) except on_accepted, which fires synchronously inside
/// submit() — before the job is visible to any worker.  Must be
/// thread-safe; must stay valid until on_report has fired.
struct JobEvents {
  std::function<void(std::uint64_t id)> on_accepted;
  /// Strictly decreasing best-cost samples; never fired after on_report.
  std::function<void(std::uint64_t id, std::size_t walker,
                     std::uint64_t iteration, csp::Cost cost)>
      on_sample;
  /// A *running* job was suspended to a checkpoint and requeued; it is
  /// still live and resumes from where it stopped.  May fire several times
  /// per job; never after on_report.
  std::function<void(std::uint64_t id)> on_preempted;
  /// Exactly once per job; status is "done" | "cancelled" | "failed"
  /// (error is non-empty only for "failed").
  std::function<void(std::uint64_t id, std::string_view status,
                     const api::SolveReport& report, std::string_view error)>
      on_report;
};

/// Point-in-time scheduler counters (the service path's own counters live
/// in api::ServiceStats, reported alongside).
struct SchedulerStats {
  std::array<std::size_t, kNumLanes> queued{};  ///< per lane, both paths
  std::size_t inflight = 0;     ///< submitted into the service, not reaped
  std::size_t warm_active = 0;  ///< claimed by warm workers, not finalized
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t preempted_queued = 0;   ///< still-queued service jobs requeued
  std::uint64_t preempted_running = 0;  ///< running jobs suspended to a
                                        ///< checkpoint and requeued
  std::uint64_t resumed = 0;            ///< checkpoint-carrying resubmissions
  std::uint64_t rejected_overload = 0;  ///< submits refused: lane at depth cap
  std::uint64_t givebacks = 0;      ///< warm jobs returned unstarted
  std::uint64_t batches = 0;        ///< warm batch claims
  std::uint64_t batched_jobs = 0;   ///< warm jobs claimed across batches
  std::uint64_t fused_batches = 0;  ///< warm batches run as one fused launch
  std::uint64_t fused_jobs = 0;     ///< jobs entering those fused launches

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] bool operator==(const SchedulerStats&) const = default;
};

class Scheduler {
 public:
  enum class CancelResult {
    kCancelled,        ///< the job existed and cancellation will take effect
    kAlreadyTerminal,  ///< known id, but the job already reported
    kUnknown,          ///< no such id was ever assigned
  };

  explicit Scheduler(SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Validate and enqueue.  Throws std::invalid_argument on a malformed
  /// request (unknown problem, bad pool configuration), ProtocolError with
  /// code `overloaded` when the priority lane is at its depth bound
  /// (counted in SchedulerStats::rejected_overload; on_accepted has NOT
  /// fired), and std::runtime_error after shutdown().  Returns the job id;
  /// by return, events.on_accepted has already fired.
  std::uint64_t submit(SolveCommand command, JobEvents events);

  CancelResult cancel(std::uint64_t id);

  /// Admission pre-check for transports that must answer before streaming
  /// (HTTP's 429): true when `priority`'s lane is at its depth bound — the
  /// rejection is counted (SchedulerStats::rejected_overload), so a caller
  /// returning the error to the client must not also call submit().
  [[nodiscard]] bool reject_overloaded(Priority priority);

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] api::ServiceStats service_stats() const;

  /// Cancel everything outstanding (each job still gets its on_report,
  /// status "cancelled"), join workers and the dispatcher, shut the
  /// service down.  Idempotent; also run by the destructor.
  void shutdown();

  /// Job ids in the order their solve actually started (warm: the worker
  /// picked it up; service: first observed out of the service's queue) —
  /// the observable priority/preemption order, for tests.
  [[nodiscard]] std::vector<std::uint64_t> started_order() const;

 private:
  using JobPtr = std::shared_ptr<detail::ServeJob>;
  struct Finalization {
    JobPtr job;
    std::string status;
    api::SolveReport report;
    std::string error;
  };

  void warm_loop();
  void dispatch_loop();
  std::string run_warm(detail::ServeJob& job);
  void run_warm_fused(std::vector<JobPtr>& batch, std::size_t lane_idx);
  [[nodiscard]] bool warm_lanes_empty() const;  ///< caller holds m_
  void finalize(const Finalization& f);

  SchedulerOptions options_;
  api::SolverService service_;

  mutable std::mutex m_;
  std::condition_variable warm_cv_;
  std::array<std::deque<JobPtr>, kNumLanes> warm_lanes_;
  std::array<std::deque<JobPtr>, kNumLanes> service_lanes_;
  std::unordered_map<std::uint64_t, JobPtr> jobs_;  ///< live (non-terminal)
  std::vector<JobPtr> inflight_;
  std::vector<std::uint64_t> started_order_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  bool joined_ = false;

  std::size_t warm_active_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t preempted_queued_ = 0;
  std::uint64_t preempted_running_ = 0;
  std::uint64_t resumed_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t givebacks_ = 0;
  /// Submissions past the depth check but not yet laned (submit drops m_
  /// to fire on_accepted); counted by the admission bound so concurrent
  /// submits cannot overshoot it.
  std::array<std::size_t, kNumLanes> admitting_{};
  std::uint64_t batches_ = 0;
  std::uint64_t batched_jobs_ = 0;
  std::uint64_t fused_batches_ = 0;
  std::uint64_t fused_jobs_ = 0;

  std::vector<std::thread> warm_threads_;
  std::thread dispatcher_;
};

}  // namespace cspls::serve
