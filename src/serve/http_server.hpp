// Minimal dependency-free HTTP/1.1 front door over the same wire schema
// as the stdio transport: POST one command envelope, stream event lines
// back.
//
//   POST /api HTTP/1.1            body: one command object (no newline
//   Content-Length: ...           framing needed — the body IS the line)
//
//   -> 200, Content-Type: application/x-ndjson, Transfer-Encoding:
//      chunked; each event line is one chunk, flushed as it happens, so
//      `curl -N` shows accepted/sample events live and the final `report`
//      ends the stream.
//
//   GET /stats                    -> 200, one `stats` event line.
//
// Protocol errors (bad JSON, unknown op, oversized body) answer 400 with
// one `error` event line; unknown paths/methods answer 404/405.
//
// Connections are persistent (HTTP/1.1 keep-alive): after a response —
// including a chunked stream, whose 0-length terminator delimits it — the
// handler loops for the next request on the same socket, so a client can
// POST many commands and poll /stats without paying a TCP handshake per
// call.  `Connection: close` (or HTTP/1.0 without keep-alive) closes
// after the response; a request whose HTTP framing itself is malformed
// always closes, since the byte stream is no longer synchronized.
//
// A client that disconnects mid-stream cancels its jobs: the write
// failure flips the connection's broken flag and the handler cancels
// before draining, so walkers never grind for a departed curl.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/session.hpp"

namespace cspls::serve {

class HttpServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start()
    std::size_t max_body_bytes = 1 << 20;
  };

  explicit HttpServer(Scheduler& scheduler)
      : HttpServer(scheduler, Options{}) {}
  HttpServer(Scheduler& scheduler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind 127.0.0.1 and start accepting.  Throws std::runtime_error when
  /// the socket cannot be bound.
  void start();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stop accepting, close the listener and join all connections
  /// (outstanding streams are cancelled).  Idempotent.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  Scheduler& scheduler_;
  Options options_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_m_;
  std::vector<std::thread> connections_;
  std::unordered_set<int> live_fds_;  ///< open sockets, for stop() to break
                                      ///< idle keep-alive reads
};

}  // namespace cspls::serve
