// The stdio transport: JSON-lines over a byte stream pair — the front
// door for `printf '{"op":...}' | cspls_serve` pipelines and for tests
// (any std::istream/std::ostream pair works, stringstreams included).
//
// run() reads request lines until EOF, dispatching each through one
// Session; events stream to the output as they happen (flushed per line,
// so a consumer sees `sample` events live, not on exit).  At EOF it
// drains — every submitted job still gets its `report` — then returns.
#pragma once

#include <iosfwd>

#include "serve/session.hpp"

namespace cspls::serve {

class StdioServer {
 public:
  StdioServer(Scheduler& scheduler, std::istream& in, std::ostream& out,
              Session::Options options = {});

  /// Serve until EOF on the input, then drain and return.  When
  /// `cancel_on_eof` is set, outstanding jobs are cancelled at EOF
  /// instead of run to completion.
  void run(bool cancel_on_eof = false);

 private:
  Scheduler& scheduler_;
  std::istream& in_;
  std::ostream& out_;
  Session::Options options_;
};

}  // namespace cspls::serve
