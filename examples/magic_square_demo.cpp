// Magic square demo with live search narration.
//
// Solves an n x n magic square and uses the engine's observer hook to show
// the cost trajectory while the search runs — a compact illustration of how
// Adaptive Search behaves on a plateau-heavy landscape (fast descent, long
// plateau phases punctuated by partial resets), finishing with the board.
#include <cstdio>

#include "core/adaptive_search.hpp"
#include "problems/magic_square.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("magic_square_demo",
                       "Watch Adaptive Search build a magic square");
  args.add_int("side", 12, "board side n (values 1..n^2)");
  args.add_uint64("seed", 7, "random seed");
  args.add_int("trace-every", 2000, "observer period in iterations");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  const auto side = static_cast<std::size_t>(args.get_int("side"));
  problems::MagicSquare problem(side);
  std::printf("%s — magic constant M = %lld\n",
              problem.instance_description().c_str(),
              static_cast<long long>(problem.magic_constant()));

  auto params = core::Params::from_hints(problem.tuning(),
                                         problem.num_variables());
  params.max_restarts = 100;
  const core::AdaptiveSearch engine(params);
  std::printf("engine: %s\n\n", engine.params().describe().c_str());

  core::Hooks hooks;
  hooks.observer_period =
      static_cast<std::uint64_t>(args.get_int("trace-every"));
  csp::Cost best_seen = csp::kInfiniteCost;
  hooks.observer = [&](std::uint64_t iter, csp::Cost cost,
                       std::span<const int>) {
    if (cost < best_seen) best_seen = cost;
    std::printf("  iter %8llu   cost %6lld   best %6lld\n",
                static_cast<unsigned long long>(iter),
                static_cast<long long>(cost),
                static_cast<long long>(best_seen));
  };

  util::Xoshiro256 rng(args.get_uint64("seed"));
  const core::Result result = engine.solve(problem, rng, nullptr, hooks);

  std::printf("\n%s after %llu iterations (%llu resets, %llu restarts, "
              "%.3fs)\n\n",
              result.solved ? "SOLVED" : "best effort",
              static_cast<unsigned long long>(result.stats.iterations),
              static_cast<unsigned long long>(result.stats.resets),
              static_cast<unsigned long long>(result.stats.restarts),
              result.stats.seconds);
  std::printf("%s", problem.board_to_string().c_str());
  if (result.solved) {
    std::printf("\nverified: %s\n",
                problem.verify(result.solution) ? "yes" : "NO (bug!)");
  }
  return result.solved ? 0 : 1;
}
