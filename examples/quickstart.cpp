// Quickstart: the declarative solve API in 30 seconds.
//
//   $ ./quickstart [--problem costas] [--size 12] [--walkers 4] [--seed 1]
//                  [--deadline-ms 0]
//
//   1. describe the whole solve as a value: api::SolveRequest names the
//      instance ("costas:12"), the walker population and the WalkerPool
//      policies by name — the same JSON document a service client would
//      send across a process boundary;
//   2. run one sequential walk through api::Solver (walkers=1);
//   3. race `walkers` independent engines (the paper's parallel scheme),
//      optionally under a wall-clock deadline;
//   4. verify the winning solution with the model's independent checker.
#include <cstdio>

#include "api/solver.hpp"
#include "problems/spec.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("quickstart", "Sequential vs multi-walk Adaptive Search");
  args.add_string("problem", "costas", "benchmark name (see problems/registry.hpp)");
  args.add_int("size", 12, "instance size");
  args.add_int("walkers", 4, "parallel walkers for the multi-walk run");
  args.add_uint64("seed", 1, "master seed");
  args.add_uint64("deadline-ms", 0, "wall-clock budget for the race (0 = none)");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  // 1. The solve as a value.  parse_spec/format_spec give the canonical
  //    instance spelling; Solver::solve rejects unknown names with a
  //    message listing every valid one.
  api::SolveRequest request;
  request.problem = problems::format_spec(problems::ProblemSpec{
      args.get_string("problem"),
      static_cast<std::size_t>(args.get_int("size")), 0});
  request.walkers = static_cast<std::size_t>(args.get_int("walkers"));
  request.seed = args.get_uint64("seed");
  request.scheduling = parallel::Scheduling::kThreads;
  request.neighborhood = parallel::Neighborhood::kIsolated;  // no communication
  request.exchange = parallel::Exchange::kNone;
  request.termination = parallel::Termination::kFirstFinisher;
  request.deadline_ms = args.get_uint64("deadline-ms");
  std::printf("SolveRequest:\n%s\n", request.to_json_string(2).c_str());

  // 2. One sequential walk: the same request, one walker, run to budget.
  api::SolveRequest sequential = request;
  sequential.walkers = 1;
  sequential.scheduling = parallel::Scheduling::kSequential;
  sequential.termination = parallel::Termination::kBestAfterBudget;
  sequential.deadline_ms = 0;
  const api::SolveReport seq = api::Solver::solve(sequential);
  std::printf("\nSequential walk:  solved=%s  cost=%lld  iters=%llu  (%.3fs)\n",
              seq.solved ? "yes" : "no", static_cast<long long>(seq.cost),
              static_cast<unsigned long long>(seq.total_iterations),
              seq.wall_seconds);
  if (seq.solved) {
    const auto problem =
        problems::instantiate(problems::parse_spec(seq.problem));
    std::printf("  verified: %s\n",
                problem->verify(seq.solution) ? "yes" : "NO (bug!)");
  }

  // 3. The paper's parallel scheme: real threads x independent walkers x
  //    first finisher wins — no communication except completion.
  const api::SolveReport report = api::Solver::solve(request);
  const std::string winner =
      report.has_winner() ? "#" + std::to_string(report.winner) : "none";
  std::printf("\nMulti-walk (%zu walkers):  solved=%s  winner=%s  "
              "time-to-solution=%.3fs  total-work=%llu iters%s\n",
              request.walkers, report.solved ? "yes" : "no", winner.c_str(),
              report.time_to_solution_seconds,
              static_cast<unsigned long long>(report.total_iterations),
              report.deadline_expired ? "  [deadline expired]" : "");

  // 4. Independent verification, through the same spec the API used.
  if (report.solved) {
    const auto problem =
        problems::instantiate(problems::parse_spec(report.problem));
    std::printf("  verified: %s\n",
                problem->verify(report.solution) ? "yes" : "NO (bug!)");
    std::printf("  solution:");
    for (const int v : report.solution) std::printf(" %d", v);
    std::printf("\n");
  }
  return report.solved ? 0 : 1;
}
