// Quickstart: solve a CSP with Adaptive Search, then solve it faster with
// parallel independent multi-walk.
//
//   $ ./quickstart [--problem costas] [--size 12] [--walkers 4] [--seed 1]
//
// This is the 30-second tour of the public API:
//   1. instantiate a benchmark model from the registry,
//   2. run one sequential Adaptive Search walk,
//   3. race `walkers` independent engines (the paper's parallel scheme),
//   4. verify both solutions with the model's independent checker.
#include <cstdio>

#include "core/adaptive_search.hpp"
#include "parallel/walker_pool.hpp"
#include "problems/registry.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("quickstart", "Sequential vs multi-walk Adaptive Search");
  args.add_string("problem", "costas", "benchmark name (see problems/registry.hpp)");
  args.add_int("size", 12, "instance size");
  args.add_int("walkers", 4, "parallel walkers for the multi-walk run");
  args.add_int("seed", 1, "master seed");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  const auto name = args.get_string("problem");
  const auto size = static_cast<std::size_t>(args.get_int("size"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // 1. A problem instance.  Each model ships its cost function, incremental
  //    swap accounting, verifier and tuned solver parameters.
  auto problem = problems::make_problem(name, size);
  std::printf("Instance: %s (%zu variables)\n",
              problem->instance_description().c_str(),
              problem->num_variables());

  // 2. One sequential walk.
  auto engine = core::AdaptiveSearch::with_defaults(*problem);
  util::Xoshiro256 rng(seed);
  const core::Result seq = engine.solve(*problem, rng);
  std::printf("\nSequential walk:  solved=%s  cost=%lld  %s  (%.3fs)\n",
              seq.solved ? "yes" : "no", static_cast<long long>(seq.cost),
              seq.stats.to_string().c_str(), seq.stats.seconds);
  if (seq.solved) {
    std::printf("  verified: %s\n",
                problem->verify(seq.solution) ? "yes" : "NO (bug!)");
  }

  // 3. The paper's parallel scheme as one point of the WalkerPool policy
  //    matrix: real threads x independent walkers x first finisher wins —
  //    no communication except completion.
  parallel::WalkerPoolOptions options;
  options.num_walkers = static_cast<std::size_t>(args.get_int("walkers"));
  options.master_seed = seed;
  options.scheduling = parallel::Scheduling::kThreads;
  options.communication.topology = parallel::Topology::kIndependent;
  options.termination = parallel::Termination::kFirstFinisher;
  const parallel::WalkerPool solver(options);
  const parallel::MultiWalkReport report = solver.run(*problem);
  std::printf("\nMulti-walk (%zu walkers):  solved=%s  winner=#%zu  "
              "time-to-solution=%.3fs  total-work=%llu iters\n",
              options.num_walkers, report.solved ? "yes" : "no",
              report.winner, report.time_to_solution_seconds,
              static_cast<unsigned long long>(report.total_iterations()));

  // 4. Independent verification.
  if (report.solved) {
    std::printf("  verified: %s\n",
                problem->verify(report.best.solution) ? "yes" : "NO (bug!)");
    std::printf("  solution:");
    for (const int v : report.best.solution) std::printf(" %d", v);
    std::printf("\n");
  }
  return report.solved ? 0 : 1;
}
