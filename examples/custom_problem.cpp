// Defining your own constraint model against the public API.
//
// The library is not limited to the built-in benchmarks: any permutation
// CSP becomes solvable (sequentially and in parallel) by subclassing
// csp::PermutationProblem.  This example models a round-robin seating
// problem: n guests at a round table, each pair of neighbours must differ
// in "temperament" by at least `min_gap` — a toy version of scheduling
// constraints, with an O(1) incremental cost.
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/adaptive_search.hpp"
#include "csp/problem.hpp"
#include "parallel/walker_pool.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using cspls::csp::Cost;

/// Seat guests 0..n-1 (temperament = guest id) around a circular table so
/// that adjacent temperaments differ by at least `min_gap`.
/// Cost = total shortfall of adjacent gaps below min_gap.
class RoundTable final : public cspls::csp::PermutationProblem {
 public:
  RoundTable(std::size_t guests, int min_gap)
      : PermutationProblem(make_guests(guests)),
        n_(guests),
        min_gap_(min_gap) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::string instance_description() const override {
    return "round-table n=" + std::to_string(n_) +
           " min_gap=" + std::to_string(min_gap_);
  }
  [[nodiscard]] std::unique_ptr<Problem> clone() const override {
    return std::make_unique<RoundTable>(*this);
  }

  [[nodiscard]] Cost full_cost() const override {
    Cost cost = 0;
    for (std::size_t s = 0; s < n_; ++s) cost += shortfall(s);
    return cost;
  }

  /// A seat is blamed for the shortfalls of its two adjacencies.
  [[nodiscard]] Cost cost_on_variable(std::size_t seat) const override {
    return shortfall(prev(seat)) + shortfall(seat);
  }

  [[nodiscard]] bool verify(std::span<const int> vals) const override {
    if (vals.size() != n_) return false;
    for (std::size_t s = 0; s < n_; ++s) {
      const int gap =
          std::abs(vals[s] - vals[(s + 1) % n_]);
      if (gap < min_gap_) return false;
    }
    return true;
  }

  [[nodiscard]] cspls::csp::TuningHints tuning() const noexcept override {
    cspls::csp::TuningHints hints;
    hints.freeze_loc_min = 2;
    hints.reset_limit = 4;
    hints.reset_fraction = 0.2;
    hints.restart_limit = n_ * n_ * 200;
    return hints;
  }

  // The base class provides randomize/assign/swap and always-correct (if
  // O(n)) defaults for cost_if_swap/did_swap — plenty for a few dozen
  // seats.  For production-scale models, override them with incremental
  // accounting; every built-in model under src/problems/ shows the pattern.

 private:
  static std::vector<int> make_guests(std::size_t n) {
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    return v;
  }
  [[nodiscard]] std::size_t prev(std::size_t seat) const noexcept {
    return (seat + n_ - 1) % n_;
  }
  /// Shortfall of the adjacency (seat, seat+1).
  [[nodiscard]] Cost shortfall(std::size_t seat) const noexcept {
    const int gap = std::abs(value(seat) - value((seat + 1) % n_));
    return gap < min_gap_ ? min_gap_ - gap : 0;
  }

  std::size_t n_;
  int min_gap_;
  std::string name_ = "round-table";
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("custom_problem",
                       "Solve a user-defined permutation CSP");
  args.add_int("guests", 24, "number of guests");
  args.add_int("min-gap", 8, "minimum temperament gap between neighbours");
  args.add_int("walkers", 4, "parallel walkers");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  RoundTable problem(static_cast<std::size_t>(args.get_int("guests")),
                     static_cast<int>(args.get_int("min-gap")));
  std::printf("Instance: %s\n", problem.instance_description().c_str());

  parallel::WalkerPoolOptions options;
  options.num_walkers = static_cast<std::size_t>(args.get_int("walkers"));
  options.master_seed = 99;
  const auto report = parallel::WalkerPool(options).run(problem);

  if (!report.solved) {
    std::printf("No seating found within budget (cost reached %lld).\n",
                static_cast<long long>(report.best.cost));
    return 1;
  }
  std::printf("Seating (guest ids around the table):\n  ");
  for (const int guest : report.best.solution) std::printf("%d ", guest);
  std::printf("\nverified: %s  (%llu iterations across %zu walkers)\n",
              problem.verify(report.best.solution) ? "yes" : "NO (bug!)",
              static_cast<unsigned long long>(report.total_iterations()),
              options.num_walkers);
  return 0;
}
