// Costas array hunt — the paper's flagship workload.
//
// Finds Costas arrays of increasing order with the multi-walk solver and
// prints each as the n x n grid of the paper's illustration, with per-order
// effort statistics.  Run with --max-order 16+ for a longer session; the
// paper notes that "finding big instances ... such as n = 22, takes many
// hours" sequentially — effort here visibly explodes order by order.
#include <cstdio>

#include "parallel/walker_pool.hpp"
#include "problems/costas.hpp"
#include "problems/costas_symmetry.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("costas_hunt", "Find Costas arrays of growing order");
  args.add_int("min-order", 6, "first order to solve");
  args.add_int("max-order", 14, "last order to solve");
  args.add_int("walkers", 4, "parallel walkers");
  args.add_uint64("seed", 2024, "master seed");
  args.add_flag("print-grids", "draw each array as a grid of marks");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  const auto lo = static_cast<std::size_t>(args.get_int("min-order"));
  const auto hi = static_cast<std::size_t>(args.get_int("max-order"));
  const bool grids = args.flag("print-grids") || hi <= 10;

  std::printf("order |   time    iterations  resets  | permutation\n");
  std::printf("------+---------------------------------+------------\n");
  for (std::size_t n = lo; n <= hi; ++n) {
    problems::Costas prototype(n);
    parallel::WalkerPoolOptions options;
    options.num_walkers = static_cast<std::size_t>(args.get_int("walkers"));
    options.master_seed = args.get_uint64("seed") + n;
    const parallel::WalkerPool solver(options);

    util::Stopwatch watch;
    const auto report = solver.run(prototype);
    if (!report.solved) {
      std::printf("%5zu | FAILED within budget\n", n);
      continue;
    }
    const auto symmetry_class =
        problems::costas_symmetry_class(report.best.solution);
    std::printf("%5zu | %8s  %10llu  %6llu | ", n,
                util::format_duration(watch.elapsed_seconds()).c_str(),
                static_cast<unsigned long long>(report.best.stats.iterations),
                static_cast<unsigned long long>(report.best.stats.resets));
    for (const int v : report.best.solution) std::printf("%d ", v);
    std::printf(" (+%zu more by symmetry)\n", symmetry_class.size() - 1);

    if (grids) {
      // The paper's figure: one mark per row/column, all inter-mark
      // vectors distinct.
      for (std::size_t row = n; row > 0; --row) {
        std::printf("      | ");
        for (std::size_t col = 0; col < n; ++col) {
          std::printf("%c",
                      report.best.solution[col] == static_cast<int>(row)
                          ? 'X'
                          : '.');
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
