// Miniature speedup study: the paper's whole experimental method on one
// benchmark, end to end, in one short program.
//
//   1. sample the single-walk runtime law of the real solver,
//   2. show the law (quantiles + ASCII histogram: the heavy tail is the
//      fuel of multi-walk parallelism),
//   3. predict the multi-walk speedup curve on the paper's three platform
//      models via exact order statistics,
//   4. cross-check the prediction with real threaded races at small k.
#include <cstdio>

#include "api/solver.hpp"
#include "problems/registry.hpp"
#include "problems/spec.hpp"
#include "sim/platform.hpp"
#include "sim/sampling.hpp"
#include "sim/speedup.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cspls;

  util::ArgParser args("speedup_study",
                       "Single-benchmark multi-walk speedup study");
  args.add_string("problem", "costas", "benchmark name");
  args.add_int("size", 12, "instance size");
  args.add_int("samples", 80, "single-walk samples");
  args.add_uint64("seed", 11, "master seed");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  const auto name = args.get_string("problem");
  const auto size = static_cast<std::size_t>(args.get_int("size"));
  const problems::ProblemSpec spec{name, size, 0};
  auto prototype = problems::instantiate(spec);

  // 1. The law.
  sim::SamplingOptions sampling;
  sampling.num_samples = static_cast<std::size_t>(args.get_int("samples"));
  sampling.master_seed = args.get_uint64("seed");
  const auto set = sim::collect_walk_samples(*prototype, sampling);
  const auto law = set.seconds_distribution();
  std::printf("Sampled %zu walks of %s  (solve rate %.2f)\n",
              sampling.num_samples, prototype->instance_description().c_str(),
              set.solve_rate());

  // 2. Show it.
  std::printf("\nruntime law (seconds): med=%.4f  mean=%.4f  q90=%.4f  "
              "max=%.4f\n",
              law.median(), law.mean(), law.quantile(0.9), law.max());
  const auto hist = util::Histogram::from_data(law.sorted_samples(), 10);
  std::printf("%s\n", hist.render(44).c_str());
  std::printf("mean >> median  =>  heavy tail  =>  min-of-k shrinks fast.\n");

  // 3. Predict.  Rescale the law's median to a paper-era sequential hour so
  //    that the platform models' fixed overheads keep realistic proportions
  //    (a 5 ms toy walk would otherwise drown in job-startup costs that the
  //    paper's hour-long runs never noticed).
  std::vector<double> scaled(law.sorted_samples().begin(),
                             law.sorted_samples().end());
  const double scale = 3600.0 / law.median();
  for (auto& s : scaled) s *= scale;
  const sim::EmpiricalDistribution paper_law(std::move(scaled));
  std::printf("\n(speedup prediction at paper scale: median walk -> 1h)\n");

  const std::vector<std::size_t> cores{1, 2, 4, 8, 16, 32, 64, 128, 256};
  util::Table table({"cores", "HA8000", "Suno", "Helios", "ideal"});
  const auto ha =
      sim::compute_speedup_curve(paper_law, sim::ha8000(), cores, name);
  const auto suno =
      sim::compute_speedup_curve(paper_law, sim::grid5000_suno(), cores, name);
  const auto helios = sim::compute_speedup_curve(
      paper_law, sim::grid5000_helios(), cores, name);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    table.add_row({std::to_string(cores[i]),
                   util::Table::num(ha.points[i].speedup, 1),
                   util::Table::num(suno.points[i].speedup, 1),
                   util::Table::num(helios.points[i].speedup, 1),
                   std::to_string(cores[i])});
  }
  std::printf("\n%s", table.render("Predicted multi-walk speedup").c_str());
  std::printf(
      "(empirical min-of-k turns optimistic once cores approach the sample\n"
      " count — the bench_fig* harnesses add shifted-exponential fits for\n"
      " the stable continuation)\n");

  // 4. Cross-check with real threads at small k, through the declarative
  //    API: one SolveRequest per race instead of hand-assembled pool
  //    options.
  std::printf("\nReal races on this host (median of 9):\n");
  api::SolveRequest request;
  request.problem = problems::format_spec(spec);
  for (const std::size_t k : {1u, 2u, 4u}) {
    std::vector<double> times;
    request.walkers = k;
    for (int rep = 0; rep < 9; ++rep) {
      request.seed =
          sampling.master_seed + 17u + static_cast<std::uint64_t>(rep);
      const api::SolveReport report = api::Solver::solve(request);
      if (report.solved) times.push_back(report.time_to_solution_seconds);
    }
    std::printf("  k=%zu  median time-to-solution %.4fs\n", k,
                util::quantile(times, 0.5));
  }
  return 0;
}
