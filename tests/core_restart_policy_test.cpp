// Luby restart schedule tests.
#include "core/restart_policy.hpp"

#include <gtest/gtest.h>

#include "core/adaptive_search.hpp"
#include "problems/costas.hpp"
#include "util/rng.hpp"

namespace cspls::core {
namespace {

TEST(Luby, MatchesTheCanonicalPrefix) {
  const std::uint64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1,
                                    1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(luby(i + 1), expected[i]) << "index " << i + 1;
  }
}

TEST(Luby, PowersAtCompleteBlocks) {
  // luby(2^k - 1) = 2^(k-1).
  EXPECT_EQ(luby(1), 1u);
  EXPECT_EQ(luby(3), 2u);
  EXPECT_EQ(luby(7), 4u);
  EXPECT_EQ(luby(15), 8u);
  EXPECT_EQ(luby(31), 16u);
  EXPECT_EQ(luby(63), 32u);
  EXPECT_EQ(luby(1023), 512u);
}

TEST(Luby, ValuesArePowersOfTwo) {
  for (std::uint64_t i = 1; i <= 2000; ++i) {
    const std::uint64_t v = luby(i);
    EXPECT_EQ(v & (v - 1), 0u) << i;
    EXPECT_GE(v, 1u);
  }
}

TEST(Luby, CumulativeSumGrowthIsQuasiLinear) {
  // sum_{i<=m} luby(i) = Theta(m log m); sanity-check the constant stays
  // tame (regression guard for the recursion).
  std::uint64_t sum = 0;
  for (std::uint64_t i = 1; i <= 1023; ++i) sum += luby(i);
  // 1023 = 2^10 - 1 completes a block; S(k) = 2 S(k-1) + 2^(k-1) = k 2^(k-1),
  // so S(10) = 10 * 512.
  EXPECT_EQ(sum, 5120u);
}

TEST(WalkBudget, FixedScheduleIsConstant) {
  for (std::uint64_t walk = 0; walk < 20; ++walk) {
    EXPECT_EQ(walk_budget(RestartSchedule::kFixed, 500, walk), 500u);
  }
}

TEST(WalkBudget, LubyScheduleScalesTheBase) {
  EXPECT_EQ(walk_budget(RestartSchedule::kLuby, 500, 0), 500u);
  EXPECT_EQ(walk_budget(RestartSchedule::kLuby, 500, 2), 1000u);
  EXPECT_EQ(walk_budget(RestartSchedule::kLuby, 500, 6), 2000u);
  EXPECT_EQ(walk_budget(RestartSchedule::kLuby, 500, 14), 4000u);
}

TEST(LubyEngine, RespectsScheduleBudgets) {
  // With an unreachable target the engine must burn exactly the scheduled
  // budgets: base * (luby(1) + luby(2) + ... + luby(restarts+1)).
  problems::Costas costas(10);
  Params params = Params::from_hints(costas.tuning(), costas.num_variables());
  params.target_cost = -1;  // unreachable
  params.restart_limit = 50;
  params.max_restarts = 6;
  params.restart_schedule = RestartSchedule::kLuby;
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(1);
  const Result result = engine.solve(costas, rng);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 1; i <= 7; ++i) expected += 50 * luby(i);
  EXPECT_EQ(result.stats.iterations, expected);
  EXPECT_EQ(result.stats.restarts, 6u);
}

TEST(LubyEngine, SolvesWithLubySchedule) {
  problems::Costas costas(11);
  Params params = Params::from_hints(costas.tuning(), costas.num_variables());
  params.restart_limit = 200;  // deliberately small base: Luby grows it
  params.max_restarts = 200;
  params.restart_schedule = RestartSchedule::kLuby;
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(2);
  const Result result = engine.solve(costas, rng);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(costas.verify(result.solution));
}

TEST(LubyEngine, DescribeMentionsLuby) {
  Params params;
  params.restart_schedule = RestartSchedule::kLuby;
  EXPECT_NE(params.describe().find("luby"), std::string::npos);
  params.restart_schedule = RestartSchedule::kFixed;
  EXPECT_EQ(params.describe().find("luby"), std::string::npos);
}

}  // namespace
}  // namespace cspls::core
