// Order-statistics estimator tests: the mathematical core of the cluster
// simulator (DESIGN.md §3).
#include "sim/order_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace cspls::sim {
namespace {

TEST(EmpiricalDistribution, BasicMoments) {
  const EmpiricalDistribution d({4, 1, 3, 2});
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.median(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
}

TEST(EmpiricalDistribution, RejectsNegativeSamples) {
  EXPECT_THROW(EmpiricalDistribution({1.0, -0.5}), std::invalid_argument);
}

TEST(EmpiricalDistribution, EmptyIsWellBehaved) {
  const EmpiricalDistribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.expected_min_of_k(4), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
}

TEST(EmpiricalDistribution, CdfIsAStepFunction) {
  const EmpiricalDistribution d({1, 2, 2, 4});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.9), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(ExpectedMinOfK, KOneIsTheMean) {
  const EmpiricalDistribution d({1, 5, 9, 13});
  EXPECT_NEAR(d.expected_min_of_k(1), d.mean(), 1e-12);
}

TEST(ExpectedMinOfK, HandComputedTwoSampleCase) {
  // Samples {1, 2}, k = 2: P(min = 1) = 3/4, P(min = 2) = 1/4 -> 1.25.
  const EmpiricalDistribution d({1, 2});
  EXPECT_NEAR(d.expected_min_of_k(2), 1.25, 1e-12);
}

TEST(ExpectedMinOfK, MonotoneNonIncreasingInK) {
  util::Xoshiro256 rng(1);
  const EmpiricalDistribution d(exponential_samples(0.1, 400, rng));
  double prev = d.expected_min_of_k(1);
  for (const std::size_t k : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    const double cur = d.expected_min_of_k(k);
    EXPECT_LE(cur, prev + 1e-12) << "k=" << k;
    prev = cur;
  }
}

TEST(ExpectedMinOfK, ConvergesToSampleMinimum) {
  const EmpiricalDistribution d({3, 7, 11});
  EXPECT_NEAR(d.expected_min_of_k(100000), 3.0, 1e-6);
}

TEST(ExpectedMinOfK, ConstantDistributionGivesNoParallelGain) {
  const EmpiricalDistribution d(std::vector<double>(50, 2.5));
  for (const std::size_t k : {1u, 2u, 64u, 1024u}) {
    EXPECT_NEAR(d.expected_min_of_k(k), 2.5, 1e-12);
  }
}

TEST(ExpectedMinOfK, ExponentialGivesLinearSpeedup) {
  // For Exp(lambda), E[min of k] = 1/(k*lambda): the memoryless ideal the
  // paper's CAP curves approach.  The empirical estimator must reproduce it
  // within sampling error.
  util::Xoshiro256 rng(7);
  const double lambda = 0.5;
  const EmpiricalDistribution d(exponential_samples(lambda, 20000, rng));
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    const double expected = 1.0 / (static_cast<double>(k) * lambda);
    EXPECT_NEAR(d.expected_min_of_k(k), expected, expected * 0.1) << k;
  }
}

TEST(ExpectedMinOfK, ShiftedExponentialSaturates) {
  // t0 + Exp(lambda): speedup is bounded by (t0 + 1/lambda)/t0.
  util::Xoshiro256 rng(8);
  const EmpiricalDistribution d(
      shifted_exponential_samples(1.0, 1.0, 20000, rng));
  const double t1 = d.expected_min_of_k(1);
  const double t_huge = d.expected_min_of_k(4096);
  EXPECT_NEAR(t1, 2.0, 0.1);
  EXPECT_NEAR(t_huge, 1.0, 0.05);  // converges to the shift, not to zero
  EXPECT_LT(t1 / t_huge, 2.2);     // bounded speedup
}

TEST(QuantileMinOfK, IdentityForKOne) {
  util::Xoshiro256 rng(9);
  const EmpiricalDistribution d(exponential_samples(1.0, 5000, rng));
  for (const double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(d.quantile_min_of_k(1, p), d.quantile(p), 1e-9);
  }
}

TEST(QuantileMinOfK, MedianOfMinShrinksWithK) {
  util::Xoshiro256 rng(10);
  const EmpiricalDistribution d(exponential_samples(1.0, 5000, rng));
  double prev = d.quantile_min_of_k(1, 0.5);
  for (const std::size_t k : {2u, 8u, 32u}) {
    const double cur = d.quantile_min_of_k(k, 0.5);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(SampleMinOfK, StaysWithinSupportAndShrinks) {
  util::Xoshiro256 rng(11);
  const EmpiricalDistribution d(exponential_samples(1.0, 2000, rng));
  double sum1 = 0.0, sum16 = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double a = d.sample_min_of_k(1, rng);
    const double b = d.sample_min_of_k(16, rng);
    EXPECT_GE(a, d.min());
    EXPECT_LE(a, d.max());
    sum1 += a;
    sum16 += b;
  }
  EXPECT_LT(sum16, sum1);
}

TEST(ExponentialSamples, MatchTheoreticalMean) {
  util::Xoshiro256 rng(12);
  const auto xs = exponential_samples(2.0, 40000, rng);
  double sum = 0.0;
  for (const double x : xs) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / static_cast<double>(xs.size()), 0.5, 0.02);
}

TEST(ExponentialSamples, RejectsBadLambda) {
  util::Xoshiro256 rng(13);
  EXPECT_THROW(exponential_samples(0.0, 10, rng), std::invalid_argument);
  EXPECT_THROW(exponential_samples(-1.0, 10, rng), std::invalid_argument);
}

/// Property: for any (k, sample size), the probability masses used by the
/// exact estimator sum to one — checked indirectly: E[min_k] of a shifted
/// dataset shifts by exactly the same amount.
class MinOfKShiftInvariance
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MinOfKShiftInvariance, ShiftEquivariance) {
  const auto [k, n] = GetParam();
  util::Xoshiro256 rng(99);
  auto xs = exponential_samples(1.0, n, rng);
  const EmpiricalDistribution base(xs);
  for (auto& x : xs) x += 10.0;
  const EmpiricalDistribution shifted(xs);
  EXPECT_NEAR(shifted.expected_min_of_k(k), base.expected_min_of_k(k) + 10.0,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinOfKShiftInvariance,
    ::testing::Combine(::testing::Values(1u, 3u, 17u, 256u),
                       ::testing::Values(10u, 101u, 1000u)));

}  // namespace
}  // namespace cspls::sim
