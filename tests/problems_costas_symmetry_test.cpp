// Costas symmetry-group tests: closure of the Costas property under the
// dihedral group, and consistency with the complete-search counts.
#include "problems/costas_symmetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "baseline/backtracker.hpp"
#include "baseline/checkers.hpp"
#include "problems/costas.hpp"

namespace cspls::problems {
namespace {

const std::vector<int> kPaperExample = {3, 4, 2, 1, 5};  // from the paper

TEST(CostasSymmetry, GeneratorsAreInvolutions) {
  EXPECT_EQ(costas_reverse(costas_reverse(kPaperExample)), kPaperExample);
  EXPECT_EQ(costas_complement(costas_complement(kPaperExample)),
            kPaperExample);
  EXPECT_EQ(costas_transpose(costas_transpose(kPaperExample)),
            kPaperExample);
}

TEST(CostasSymmetry, Rotate90HasOrderFour) {
  auto r = kPaperExample;
  for (int i = 0; i < 4; ++i) r = costas_rotate90(r);
  EXPECT_EQ(r, kPaperExample);
  EXPECT_NE(costas_rotate90(kPaperExample), kPaperExample);
}

TEST(CostasSymmetry, TransposeIsTheInversePermutation) {
  const auto t = costas_transpose(kPaperExample);
  for (std::size_t col = 0; col < kPaperExample.size(); ++col) {
    const auto row = static_cast<std::size_t>(kPaperExample[col] - 1);
    EXPECT_EQ(t[row], static_cast<int>(col) + 1);
  }
}

TEST(CostasSymmetry, ClassMembersAreAllCostasArrays) {
  Costas model(5);
  ASSERT_TRUE(model.verify(kPaperExample));
  const auto cls = costas_symmetry_class(kPaperExample);
  EXPECT_GE(cls.size(), 1u);
  EXPECT_LE(cls.size(), 8u);
  EXPECT_EQ(8u % cls.size(), 0u);  // class size divides the group order
  for (const auto& member : cls) {
    EXPECT_TRUE(model.verify(member));
  }
  EXPECT_EQ(cls.count(kPaperExample), 1u);
}

TEST(CostasSymmetry, ClassesPartitionTheFullEnumeration) {
  // Union of the symmetry classes of all order-4 Costas arrays must be the
  // full set of 12, and classes must not overlap partially.
  baseline::CostasChecker checker(4);
  baseline::SearchLimits limits;
  limits.count_all = true;
  // Enumerate all arrays by brute force through the model.
  Costas model(4);
  std::vector<int> perm{1, 2, 3, 4};
  std::set<std::vector<int>> all;
  std::sort(perm.begin(), perm.end());
  do {
    if (model.verify(perm)) all.insert(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(all.size(), 12u);

  std::set<std::vector<int>> covered;
  std::size_t num_classes = 0;
  for (const auto& array : all) {
    if (covered.count(array)) continue;
    ++num_classes;
    const auto cls = costas_symmetry_class(array);
    for (const auto& member : cls) {
      EXPECT_TRUE(all.count(member)) << "symmetry left the solution set";
      EXPECT_FALSE(covered.count(member)) << "classes overlap";
      covered.insert(member);
    }
  }
  EXPECT_EQ(covered.size(), all.size());
  // Known: the 12 order-4 Costas arrays form 2 equivalence classes.
  EXPECT_EQ(num_classes, 2u);
}

TEST(CostasSymmetry, ClassExpansionFindsNewArraysForFree) {
  // The practical use: one solver hit expands to its whole class.
  Costas model(6);
  // Find one array by brute force.
  std::vector<int> perm{1, 2, 3, 4, 5, 6};
  std::vector<int> found;
  do {
    if (model.verify(perm)) {
      found = perm;
      break;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  ASSERT_FALSE(found.empty());
  const auto cls = costas_symmetry_class(found);
  EXPECT_GT(cls.size(), 1u);
  for (const auto& member : cls) {
    EXPECT_TRUE(model.verify(member));
  }
}

}  // namespace
}  // namespace cspls::problems
