// Crash containment and deterministic fault injection in the WalkerPool:
// a seeded plan kills walker k at probe N under every scheduling mode with
// survivors byte-identical to the no-fault run; an all-failed population
// still yields a structured report (never process death); corrupt and
// stall kinds degrade without failing.  The schedule-driven tests skip in
// builds without -DCSPLS_FAULT_INJECTION=ON (the sites are no-ops there —
// asserted by util_fault_test's gate test); the genuine-crash containment
// tests run in every build through a throwing Problem wrapper.
#include "parallel/walker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "parallel/fused.hpp"
#include "problems/costas.hpp"
#include "util/fault.hpp"

namespace cspls::parallel {
namespace {

using util::fault::FaultPlan;
using util::fault::Kind;
using util::fault::Site;

WalkerPoolOptions budget_options(Scheduling scheduling,
                                 std::size_t num_walkers,
                                 std::uint64_t master_seed) {
  WalkerPoolOptions options;
  options.num_walkers = num_walkers;
  options.master_seed = master_seed;
  options.scheduling = scheduling;
  // Full-budget termination: walkers are mutually independent, so
  // trajectories are seed-deterministic under every scheduling mode and
  // survivor byte-identity is assertable even under real threads.
  options.termination = Termination::kBestAfterBudget;
  return options;
}

void expect_same_walk(const WalkerOutcome& a, const WalkerOutcome& b) {
  EXPECT_EQ(a.result.solved, b.result.solved);
  EXPECT_EQ(a.result.cost, b.result.cost);
  EXPECT_EQ(a.result.solution, b.result.solution);
  EXPECT_EQ(a.result.stats.iterations, b.result.stats.iterations);
  EXPECT_EQ(a.result.stats.swaps, b.result.stats.swaps);
  EXPECT_EQ(a.result.stats.resets, b.result.stats.resets);
  EXPECT_EQ(a.result.stats.restarts, b.result.stats.restarts);
}

TEST(FaultInjection, SeededPlanKillsOneWalkerSurvivorsAreByteIdentical) {
  if (!util::fault::kCompiledIn) {
    GTEST_SKIP() << "build without CSPLS_FAULT_INJECTION";
  }
  const problems::Costas costas(9);
  for (const Scheduling scheduling :
       {Scheduling::kSequential, Scheduling::kEmulatedRace,
        Scheduling::kThreads}) {
    WalkerPoolOptions options = budget_options(scheduling, 3, 42);
    const MultiWalkReport reference = WalkerPool(options).run(costas);
    ASSERT_EQ(reference.failed_walkers, 0u);

    FaultPlan kill;
    kill.site = Site::kWalkerIteration;
    kill.walker = 1;
    kill.at_count = 10;
    kill.kind = Kind::kThrow;
    options.faults = {kill};
    const MultiWalkReport faulted = WalkerPool(options).run(costas);

    EXPECT_EQ(faulted.failed_walkers, 1u);
    EXPECT_GE(faulted.faults_injected, 1u);
    EXPECT_FALSE(faulted.all_failed());
    ASSERT_EQ(faulted.walkers.size(), 3u);
    const WalkerOutcome& victim = faulted.walkers[1];
    EXPECT_TRUE(victim.failed());
    EXPECT_EQ(victim.result.stop_cause, core::StopCause::kFailed);
    EXPECT_NE(victim.result.error.find("walker_iteration"),
              std::string::npos);
    EXPECT_EQ(victim.injected_faults, 1u);
    // The crash is invisible to the survivors: byte-identical walks.
    expect_same_walk(faulted.walkers[0], reference.walkers[0]);
    expect_same_walk(faulted.walkers[2], reference.walkers[2]);
    EXPECT_EQ(faulted.walkers[0].injected_faults, 0u);
  }
}

TEST(FaultInjection, AllWalkersCrashingStillYieldsAStructuredReport) {
  if (!util::fault::kCompiledIn) {
    GTEST_SKIP() << "build without CSPLS_FAULT_INJECTION";
  }
  const problems::Costas costas(9);
  for (const Scheduling scheduling :
       {Scheduling::kSequential, Scheduling::kEmulatedRace,
        Scheduling::kThreads}) {
    WalkerPoolOptions options = budget_options(scheduling, 3, 7);
    options.termination = Termination::kFirstFinisher;
    FaultPlan kill_all;
    kill_all.site = Site::kWalkerIteration;
    kill_all.walker = util::fault::kAnyWalker;
    kill_all.at_count = 1;
    kill_all.kind = Kind::kThrow;
    options.faults = {kill_all};

    const MultiWalkReport report = WalkerPool(options).run(costas);
    EXPECT_TRUE(report.all_failed());
    EXPECT_EQ(report.failed_walkers, 3u);
    EXPECT_FALSE(report.solved);
    EXPECT_FALSE(report.has_winner());
    EXPECT_FALSE(report.interrupted);  // failure is not interruption
    for (const WalkerOutcome& walker : report.walkers) {
      EXPECT_TRUE(walker.failed());
      EXPECT_NE(walker.result.error.find("injected fault"),
                std::string::npos);
    }
  }
}

TEST(FaultInjection, CorruptionIsReportedAndTheWalkerRecovers) {
  if (!util::fault::kCompiledIn) {
    GTEST_SKIP() << "build without CSPLS_FAULT_INJECTION";
  }
  const problems::Costas costas(9);
  WalkerPoolOptions options = budget_options(Scheduling::kSequential, 1, 3);
  FaultPlan scramble;
  scramble.site = Site::kWalkerIteration;
  scramble.walker = 0;
  scramble.at_count = 5;
  scramble.kind = Kind::kCorrupt;
  options.faults = {scramble};

  const MultiWalkReport report = WalkerPool(options).run(costas);
  // Corrupt-and-report: the configuration was scrambled (and the event
  // counted), but the walker keeps walking and the run stays healthy.
  EXPECT_EQ(report.failed_walkers, 0u);
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.walkers[0].injected_faults, 1u);
  EXPECT_TRUE(report.solved);
}

TEST(FaultInjection, StallsDelayButNeverFail) {
  if (!util::fault::kCompiledIn) {
    GTEST_SKIP() << "build without CSPLS_FAULT_INJECTION";
  }
  const problems::Costas costas(9);
  WalkerPoolOptions options = budget_options(Scheduling::kSequential, 2, 5);
  FaultPlan stall;
  stall.site = Site::kWalkerIteration;
  stall.walker = 0;
  stall.at_count = 3;
  stall.kind = Kind::kStall;
  stall.stall_ms = 1;
  options.faults = {stall};

  const MultiWalkReport report = WalkerPool(options).run(costas);
  EXPECT_EQ(report.failed_walkers, 0u);
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_TRUE(report.solved);
}

TEST(FaultInjection, ExchangeSitesDropCorruptedTraffic) {
  if (!util::fault::kCompiledIn) {
    GTEST_SKIP() << "build without CSPLS_FAULT_INJECTION";
  }
  const problems::Costas costas(9);
  WalkerPoolOptions options = budget_options(Scheduling::kSequential, 3, 11);
  options.communication.neighborhood = Neighborhood::kComplete;
  options.communication.exchange = Exchange::kElite;
  // Publish often enough that walks actually reach the site before solving.
  options.communication.period = 25;
  const MultiWalkReport reference = WalkerPool(options).run(costas);

  // Drop every publish: the pool must run exactly like Exchange::kNone
  // traffic-wise (nothing ever lands in a slot), yet stay healthy.
  FaultPlan drop;
  drop.site = Site::kElitePublish;
  drop.walker = util::fault::kAnyWalker;
  drop.at_count = 1;
  drop.kind = Kind::kCorrupt;
  std::vector<FaultPlan> drops;
  for (std::uint64_t at = 1; at <= 10'000; at *= 2) {
    drop.at_count = at;  // geometric cover; cheap approximation of "all"
    drops.push_back(drop);
  }
  options.faults = drops;
  const MultiWalkReport faulted = WalkerPool(options).run(costas);
  EXPECT_EQ(faulted.failed_walkers, 0u);
  EXPECT_LE(faulted.elite_accepted, reference.comm_publishes);
  EXPECT_GE(faulted.faults_injected, 1u);
}

// --- Genuine-crash containment (every build) --------------------------

/// Wrapper over a real model whose armed clones throw after a fixed number
/// of committed swaps — a reproducible stand-in for a genuinely buggy cost
/// model.  Which clones arm is decided by clone order (deterministic under
/// sequential scheduling; kEveryClone is order-independent), counted
/// through a shared atomic so the prototype can be cloned from any thread.
class CrashingProblem final : public csp::Problem {
 public:
  static constexpr std::size_t kEveryClone = static_cast<std::size_t>(-1);

  CrashingProblem(std::unique_ptr<csp::Problem> inner,
                  std::size_t crash_clone, std::uint64_t crash_after_swaps)
      : inner_(std::move(inner)),
        crash_clone_(crash_clone),
        crash_after_(crash_after_swaps),
        clones_(std::make_shared<std::atomic<std::size_t>>(0)) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return inner_->name();
  }
  [[nodiscard]] std::string instance_description() const override {
    return inner_->instance_description();
  }
  [[nodiscard]] std::size_t num_variables() const noexcept override {
    return inner_->num_variables();
  }
  [[nodiscard]] std::unique_ptr<csp::Problem> clone() const override {
    auto copy = std::make_unique<CrashingProblem>(inner_->clone(),
                                                  crash_clone_, crash_after_);
    copy->clones_ = clones_;
    const std::size_t index = clones_->fetch_add(1);
    copy->armed_ = crash_clone_ == kEveryClone || index == crash_clone_;
    return copy;
  }
  [[nodiscard]] std::span<const int> values() const noexcept override {
    return inner_->values();
  }
  csp::Cost randomize(util::Xoshiro256& rng) override {
    return inner_->randomize(rng);
  }
  csp::Cost assign(std::span<const int> values) override {
    return inner_->assign(values);
  }
  [[nodiscard]] csp::Cost total_cost() const noexcept override {
    return inner_->total_cost();
  }
  [[nodiscard]] csp::Cost full_cost() const override {
    return inner_->full_cost();
  }
  [[nodiscard]] csp::Cost cost_on_variable(std::size_t i) const override {
    return inner_->cost_on_variable(i);
  }
  [[nodiscard]] csp::Cost cost_if_swap(std::size_t i,
                                       std::size_t j) const override {
    return inner_->cost_if_swap(i, j);
  }
  void cost_on_all_variables(std::span<csp::Cost> out) const override {
    inner_->cost_on_all_variables(out);
  }
  std::uint64_t best_swap_for(std::size_t x, util::Xoshiro256& rng,
                              std::size_t& best_j, csp::Cost& best_cost,
                              std::size_t& ties) const override {
    return inner_->best_swap_for(x, rng, best_j, best_cost, ties);
  }
  csp::Cost swap(std::size_t i, std::size_t j) override {
    if (armed_ && ++swaps_ > crash_after_) {
      throw std::runtime_error("synthetic walker crash");
    }
    return inner_->swap(i, j);
  }
  csp::Cost reset_perturbation(double fraction,
                               util::Xoshiro256& rng) override {
    return inner_->reset_perturbation(fraction, rng);
  }
  [[nodiscard]] bool verify(std::span<const int> values) const override {
    return inner_->verify(values);
  }
  [[nodiscard]] csp::TuningHints tuning() const noexcept override {
    return inner_->tuning();
  }

 private:
  std::unique_ptr<csp::Problem> inner_;
  std::size_t crash_clone_ = kEveryClone;
  std::uint64_t crash_after_ = 0;
  std::shared_ptr<std::atomic<std::size_t>> clones_;
  bool armed_ = false;
  std::uint64_t swaps_ = 0;
};

TEST(CrashContainment, SequentialPoolContainsAGenuineCrash) {
  // No fault schedule involved: a cost model that throws mid-search is
  // contained in every build, and survivors match the unwrapped run.
  const problems::Costas costas(9);
  const WalkerPoolOptions options =
      budget_options(Scheduling::kSequential, 3, 21);
  const MultiWalkReport reference = WalkerPool(options).run(costas);

  const CrashingProblem crasher(std::make_unique<problems::Costas>(9),
                                /*crash_clone=*/1, /*crash_after_swaps=*/5);
  const MultiWalkReport report = WalkerPool(options).run(crasher);
  EXPECT_EQ(report.failed_walkers, 1u);
  ASSERT_EQ(report.walkers.size(), 3u);
  EXPECT_TRUE(report.walkers[1].failed());
  EXPECT_EQ(report.walkers[1].result.error, "synthetic walker crash");
  EXPECT_FALSE(report.walkers[1].result.interrupted);
  expect_same_walk(report.walkers[0], reference.walkers[0]);
  expect_same_walk(report.walkers[2], reference.walkers[2]);
}

TEST(CrashContainment, ThreadedAllCrashPoolNeverTerminatesTheProcess) {
  const CrashingProblem crasher(std::make_unique<problems::Costas>(9),
                                CrashingProblem::kEveryClone,
                                /*crash_after_swaps=*/3);
  WalkerPoolOptions options = budget_options(Scheduling::kThreads, 4, 13);
  options.termination = Termination::kFirstFinisher;
  // An escaped exception on a jthread would std::terminate the whole test
  // binary — reaching the assertions below IS the containment proof.
  const MultiWalkReport report = WalkerPool(options).run(crasher);
  EXPECT_TRUE(report.all_failed());
  EXPECT_EQ(report.failed_walkers, 4u);
  EXPECT_FALSE(report.solved);
  EXPECT_FALSE(report.has_winner());
  for (const WalkerOutcome& walker : report.walkers) {
    EXPECT_EQ(walker.result.error, "synthetic walker crash");
    EXPECT_EQ(walker.result.stop_cause, core::StopCause::kFailed);
  }
}

TEST(CrashContainment, FusedBatchContainsACrashingMemberSiblingsUnaffected) {
  // One member's cost model throws mid-walk inside a fused launch: that
  // member fails exactly as it would solo, and its sibling members' reports
  // stay byte-identical to their own solo runs — the crash never escapes
  // the member that owns it.
  const problems::Costas left(9);
  const problems::Costas right(10);
  const CrashingProblem crasher(std::make_unique<problems::Costas>(9),
                                /*crash_clone=*/1, /*crash_after_swaps=*/5);

  std::vector<FusedJob> jobs;
  jobs.push_back(
      {&left, budget_options(Scheduling::kSequential, 2, 31), {}});
  jobs.push_back(
      {&crasher, budget_options(Scheduling::kSequential, 3, 21), {}});
  jobs.push_back(
      {&right, budget_options(Scheduling::kEmulatedRace, 2, 8), {}});

  std::mutex m;
  std::vector<std::unique_ptr<MultiWalkReport>> reports(jobs.size());
  const auto withdrawn =
      FusedRun(FusedOptions{.num_threads = 2})
          .run(jobs, [&](std::size_t member, MultiWalkReport report) {
            const std::lock_guard lock(m);
            reports[member] =
                std::make_unique<MultiWalkReport>(std::move(report));
          });
  EXPECT_TRUE(withdrawn.empty());
  for (const auto& report : reports) ASSERT_NE(report, nullptr);

  // The crashing member matches its own solo run, fault and all.  (A fresh
  // wrapper: the clone-order counter is shared per instance, and the fused
  // run already consumed this one's first clones.)
  const CrashingProblem solo_crasher(std::make_unique<problems::Costas>(9),
                                     /*crash_clone=*/1,
                                     /*crash_after_swaps=*/5);
  const MultiWalkReport solo = WalkerPool(jobs[1].options).run(solo_crasher);
  EXPECT_EQ(reports[1]->failed_walkers, 1u);
  ASSERT_EQ(reports[1]->walkers.size(), 3u);
  EXPECT_TRUE(reports[1]->walkers[1].failed());
  EXPECT_EQ(reports[1]->walkers[1].result.error, "synthetic walker crash");
  for (std::size_t w = 0; w < solo.walkers.size(); ++w) {
    expect_same_walk(reports[1]->walkers[w], solo.walkers[w]);
  }

  // Siblings are untouched: byte-identical to their solo runs.
  const MultiWalkReport solo_left = WalkerPool(jobs[0].options).run(left);
  EXPECT_EQ(reports[0]->failed_walkers, 0u);
  for (std::size_t w = 0; w < solo_left.walkers.size(); ++w) {
    expect_same_walk(reports[0]->walkers[w], solo_left.walkers[w]);
  }
  const MultiWalkReport solo_right = WalkerPool(jobs[2].options).run(right);
  EXPECT_EQ(reports[2]->failed_walkers, 0u);
  for (std::size_t w = 0; w < solo_right.walkers.size(); ++w) {
    expect_same_walk(reports[2]->walkers[w], solo_right.walkers[w]);
  }
}

TEST(CrashContainment, FailedWalkersLoseBestAfterBudgetSelection) {
  // The selection comparator prefers any finished walker over a failed
  // one, whatever the costs: a failed walker's result carries no usable
  // configuration.
  const CrashingProblem crasher(std::make_unique<problems::Costas>(9),
                                /*crash_clone=*/0, /*crash_after_swaps=*/2);
  const WalkerPoolOptions options =
      budget_options(Scheduling::kSequential, 2, 9);
  const MultiWalkReport report = WalkerPool(options).run(crasher);
  EXPECT_EQ(report.failed_walkers, 1u);
  EXPECT_FALSE(report.best.stop_cause == core::StopCause::kFailed);
}

}  // namespace
}  // namespace cspls::parallel
