// Adaptive Search engine tests: correctness, determinism, budgets, hooks.
#include "core/adaptive_search.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "problems/costas.hpp"
#include "problems/queens.hpp"
#include "util/rng.hpp"

namespace cspls::core {
namespace {

Params quick_params(const csp::Problem& p) {
  Params params = Params::from_hints(p.tuning(), p.num_variables());
  params.max_restarts = 50;
  return params;
}

TEST(AdaptiveSearch, SolvesQueensAndSolutionVerifies) {
  problems::Queens queens(30);
  const AdaptiveSearch engine(quick_params(queens));
  util::Xoshiro256 rng(1);
  const Result result = engine.solve(queens, rng);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.cost, 0);
  EXPECT_TRUE(queens.verify(result.solution));
  EXPECT_FALSE(result.interrupted);
  EXPECT_GT(result.stats.iterations, 0u);
}

TEST(AdaptiveSearch, ProblemLeftBoundToReportedSolution) {
  problems::Costas costas(9);
  const AdaptiveSearch engine(quick_params(costas));
  util::Xoshiro256 rng(2);
  const Result result = engine.solve(costas, rng);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(std::equal(result.solution.begin(), result.solution.end(),
                         costas.values().begin()));
  EXPECT_EQ(costas.total_cost(), result.cost);
}

TEST(AdaptiveSearch, DeterministicGivenSeed) {
  problems::Costas costas(10);
  const AdaptiveSearch engine(quick_params(costas));
  util::Xoshiro256 rng_a(77);
  util::Xoshiro256 rng_b(77);
  auto clone_a = costas.clone();
  auto clone_b = costas.clone();
  const Result a = engine.solve(*clone_a, rng_a);
  const Result b = engine.solve(*clone_b, rng_b);
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.swaps, b.stats.swaps);
  EXPECT_EQ(a.stats.resets, b.stats.resets);
  EXPECT_EQ(a.solution, b.solution);
}

TEST(AdaptiveSearch, DifferentSeedsExploreDifferently) {
  problems::Costas costas(11);
  const AdaptiveSearch engine(quick_params(costas));
  util::Xoshiro256 rng_a(1);
  util::Xoshiro256 rng_b(2);
  auto clone_a = costas.clone();
  auto clone_b = costas.clone();
  const Result a = engine.solve(*clone_a, rng_a);
  const Result b = engine.solve(*clone_b, rng_b);
  EXPECT_NE(a.stats.iterations, b.stats.iterations);
}

TEST(AdaptiveSearch, RelaxedTargetCostStopsImmediately) {
  problems::Queens queens(20);
  Params params = quick_params(queens);
  params.target_cost = 1'000'000;  // any random configuration qualifies
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(3);
  const Result result = engine.solve(queens, rng);
  EXPECT_TRUE(result.solved);
  EXPECT_EQ(result.stats.iterations, 0u);
  EXPECT_LE(result.cost, params.target_cost);
}

TEST(AdaptiveSearch, PresetStopFlagInterruptsBeforeWork) {
  problems::Costas costas(12);
  const AdaptiveSearch engine(quick_params(costas));
  util::Xoshiro256 rng(4);
  std::atomic<bool> stop{true};
  const Result result = engine.solve(costas, rng, &stop);
  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.stats.iterations, 0u);
}

TEST(AdaptiveSearch, RestartBudgetIsHonoured) {
  problems::Costas costas(13);
  Params params = quick_params(costas);
  params.restart_limit = 10;  // absurdly small walks
  params.max_restarts = 7;
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(5);
  const Result result = engine.solve(costas, rng);
  EXPECT_LE(result.stats.restarts, 7u);
  EXPECT_LE(result.stats.iterations, 10u * 8u);
  if (!result.solved) {
    EXPECT_EQ(result.stats.restarts, 7u);
  }
}

TEST(AdaptiveSearch, ZeroRestartsMeansSingleWalk) {
  problems::Costas costas(13);
  Params params = quick_params(costas);
  params.restart_limit = 5;
  params.max_restarts = 0;
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(6);
  const Result result = engine.solve(costas, rng);
  EXPECT_EQ(result.stats.restarts, 0u);
  EXPECT_LE(result.stats.iterations, 5u);
}

TEST(AdaptiveSearch, ResetsFireAtResetLimit) {
  problems::Costas costas(10);
  Params params = quick_params(costas);
  params.reset_limit = 1;  // every local minimum triggers a reset
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(7);
  const Result result = engine.solve(costas, rng);
  EXPECT_EQ(result.stats.resets, result.stats.local_minima);
}

TEST(AdaptiveSearch, StatsAreInternallyConsistent) {
  problems::Costas costas(10);
  const AdaptiveSearch engine(quick_params(costas));
  util::Xoshiro256 rng(8);
  const Result result = engine.solve(costas, rng);
  const auto& s = result.stats;
  EXPECT_LE(s.swaps + s.plateau_moves, s.iterations);
  EXPECT_LE(s.resets, s.local_minima + 1);
  // Each iteration probes at most n-1 moves.
  EXPECT_LE(s.cost_evaluations, s.iterations * (costas.order() - 1));
  EXPECT_GE(s.seconds, 0.0);
}

TEST(AdaptiveSearch, BestCostIsNeverWorseThanReported) {
  problems::Costas costas(14);
  Params params = quick_params(costas);
  params.restart_limit = 200;  // likely fails: check best tracking
  params.max_restarts = 2;
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(9);
  const Result result = engine.solve(costas, rng);
  EXPECT_EQ(costas.total_cost(), result.cost);
  EXPECT_EQ(costas.full_cost(), result.cost);
  EXPECT_GE(result.cost, 0);
}

TEST(AdaptiveSearch, ObserverFiresAtRequestedPeriod) {
  problems::Costas costas(12);
  Params params = quick_params(costas);
  params.restart_limit = 5000;
  params.max_restarts = 0;
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(10);

  std::uint64_t calls = 0;
  std::uint64_t last_iter = 0;
  Hooks hooks;
  hooks.observer_period = 100;
  hooks.observer = [&](std::uint64_t iter, csp::Cost cost,
                       std::span<const int> values) {
    ++calls;
    EXPECT_EQ(iter % 100, 0u);
    EXPECT_GT(iter, last_iter);
    last_iter = iter;
    EXPECT_GE(cost, 0);
    EXPECT_EQ(values.size(), costas.num_variables());
  };
  const Result result = engine.solve(costas, rng, nullptr, hooks);
  EXPECT_EQ(calls, result.stats.iterations / 100);
}

TEST(AdaptiveSearch, OnResetHookCanAdoptConfiguration) {
  problems::Costas costas(10);
  Params params = quick_params(costas);
  params.reset_limit = 1;
  params.restart_limit = 2000;
  params.max_restarts = 0;
  const AdaptiveSearch engine(params);
  util::Xoshiro256 rng(11);

  // The hook plants a fixed configuration at every reset.
  auto planted = costas.clone();
  util::Xoshiro256 plant_rng(1234);
  planted->randomize(plant_rng);
  const std::vector<int> plant(planted->values().begin(),
                               planted->values().end());

  std::uint64_t adoptions = 0;
  Hooks hooks;
  hooks.on_reset = [&](csp::Problem& problem, util::Xoshiro256&) {
    ++adoptions;
    problem.assign(plant);
    return true;
  };
  const Result result = engine.solve(costas, rng, nullptr, hooks);
  (void)result;
  EXPECT_GT(adoptions, 0u);
}

TEST(Params, FromHintsDerivesSizeDependentDefaults) {
  csp::TuningHints hints;  // all defaults: derive from size
  const Params p = Params::from_hints(hints, 100);
  EXPECT_EQ(p.reset_limit, 10u);
  EXPECT_EQ(p.restart_limit, 100'000u);
  const Params tiny = Params::from_hints(hints, 3);
  EXPECT_GE(tiny.reset_limit, 2u);
}

TEST(Params, ExplicitHintsPassThrough) {
  csp::TuningHints hints;
  hints.reset_limit = 42;
  hints.restart_limit = 777;
  hints.freeze_loc_min = 9;
  hints.prob_accept_plateau = 0.25;
  const Params p = Params::from_hints(hints, 50);
  EXPECT_EQ(p.reset_limit, 42u);
  EXPECT_EQ(p.restart_limit, 777u);
  EXPECT_EQ(p.freeze_loc_min, 9u);
  EXPECT_DOUBLE_EQ(p.prob_accept_plateau, 0.25);
}

TEST(Params, DescribeMentionsKeyFields) {
  const Params p;
  const std::string s = p.describe();
  EXPECT_NE(s.find("restart_limit"), std::string::npos);
  EXPECT_NE(s.find("reset_limit"), std::string::npos);
}

TEST(RunStats, ToStringMentionsCounters) {
  RunStats s;
  s.iterations = 5;
  const std::string out = s.to_string();
  EXPECT_NE(out.find("iters=5"), std::string::npos);
}

/// Determinism sweep across seeds and problems sizes: the engine is a pure
/// function of (problem, params, seed).
class EngineDeterminismSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(EngineDeterminismSweep, SameSeedSameTrace) {
  const auto [seed, n] = GetParam();
  problems::Queens queens(n);
  const AdaptiveSearch engine(quick_params(queens));
  util::Xoshiro256 rng_a(seed);
  util::Xoshiro256 rng_b(seed);
  auto a = queens.clone();
  auto b = queens.clone();
  const Result ra = engine.solve(*a, rng_a);
  const Result rb = engine.solve(*b, rng_b);
  EXPECT_EQ(ra.stats.iterations, rb.stats.iterations);
  EXPECT_EQ(ra.solution, rb.solution);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineDeterminismSweep,
    ::testing::Combine(::testing::Values(1ULL, 99ULL, 4242ULL),
                       ::testing::Values(8u, 20u, 40u)));

}  // namespace
}  // namespace cspls::core
