// CSP substrate tests: PermutationProblem base behaviour via a tiny model.
#include "csp/problem.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace cspls::csp {
namespace {

/// Minimal concrete model: cost = number of positions where value != index
/// ("fixed-point distance" to the identity permutation).  Exercises every
/// default implementation of the base class.
class SortProblem final : public PermutationProblem {
 public:
  explicit SortProblem(std::size_t n) : PermutationProblem(iota_values(n)) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::string instance_description() const override {
    return "sort n=" + std::to_string(num_variables());
  }
  [[nodiscard]] std::unique_ptr<Problem> clone() const override {
    return std::make_unique<SortProblem>(*this);
  }
  [[nodiscard]] Cost full_cost() const override {
    Cost c = 0;
    const auto vals = values();
    for (std::size_t i = 0; i < vals.size(); ++i) {
      c += vals[i] != static_cast<int>(i) ? 1 : 0;
    }
    return c;
  }
  [[nodiscard]] Cost cost_on_variable(std::size_t i) const override {
    return values()[i] != static_cast<int>(i) ? 1 : 0;
  }
  [[nodiscard]] bool verify(std::span<const int> vals) const override {
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (vals[i] != static_cast<int>(i)) return false;
    }
    return vals.size() == num_variables();
  }

 private:
  static std::vector<int> iota_values(std::size_t n) {
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    return v;
  }
  std::string name_ = "sort";
};

TEST(PermutationProblem, ConstructorRejectsEmpty) {
  EXPECT_THROW(SortProblem(0), std::invalid_argument);
}

TEST(PermutationProblem, RandomizeKeepsMultisetAndBindsCost) {
  SortProblem p(20);
  util::Xoshiro256 rng(1);
  const Cost cost = p.randomize(rng);
  EXPECT_EQ(cost, p.total_cost());
  EXPECT_EQ(cost, p.full_cost());
  std::vector<int> sorted(p.values().begin(), p.values().end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int>(i));
  }
}

TEST(PermutationProblem, AssignValidatesSize) {
  SortProblem p(4);
  const std::vector<int> wrong{0, 1, 2};
  EXPECT_THROW(p.assign(wrong), std::invalid_argument);
  const std::vector<int> right{3, 2, 1, 0};
  EXPECT_EQ(p.assign(right), 4);
}

TEST(PermutationProblem, SwapUpdatesCachedCost) {
  SortProblem p(4);
  const std::vector<int> start{1, 0, 2, 3};
  EXPECT_EQ(p.assign(start), 2);
  EXPECT_EQ(p.swap(0, 1), 0);  // fixes both positions
  EXPECT_EQ(p.total_cost(), 0);
  EXPECT_TRUE(p.verify(p.values()));
}

TEST(PermutationProblem, DefaultCostIfSwapMatchesCommitted) {
  SortProblem p(8);
  util::Xoshiro256 rng(3);
  p.randomize(rng);
  for (int step = 0; step < 200; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(8));
    auto j = static_cast<std::size_t>(rng.below(8));
    if (i == j) j = (j + 1) % 8;
    const Cost probed = p.cost_if_swap(i, j);
    const auto before = std::vector<int>(p.values().begin(), p.values().end());
    const Cost committed = p.swap(i, j);
    EXPECT_EQ(probed, committed);
    // cost_if_swap must not have mutated observable state beforehand.
    p.swap(i, j);  // undo
    EXPECT_TRUE(std::equal(before.begin(), before.end(), p.values().begin()));
    p.swap(i, j);  // redo for the walk
  }
}

TEST(PermutationProblem, ResetPerturbationKeepsMultiset) {
  SortProblem p(30);
  util::Xoshiro256 rng(5);
  p.randomize(rng);
  for (double fraction : {0.0, 0.1, 0.5, 1.0}) {
    const Cost cost = p.reset_perturbation(fraction, rng);
    EXPECT_EQ(cost, p.full_cost());
    EXPECT_EQ(cost, p.total_cost());
    std::vector<int> sorted(p.values().begin(), p.values().end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      ASSERT_EQ(sorted[i], static_cast<int>(i));
    }
  }
}

TEST(PermutationProblem, ResetPerturbationActuallyPerturbs) {
  SortProblem p(40);
  util::Xoshiro256 rng(7);
  p.randomize(rng);
  const std::vector<int> before(p.values().begin(), p.values().end());
  p.reset_perturbation(0.5, rng);
  const std::vector<int> after(p.values().begin(), p.values().end());
  EXPECT_NE(before, after);
}

TEST(PermutationProblem, CloneIsIndependent) {
  SortProblem p(10);
  util::Xoshiro256 rng(9);
  p.randomize(rng);
  auto clone = p.clone();
  const Cost clone_cost = clone->total_cost();
  const std::vector<int> clone_vals(clone->values().begin(),
                                    clone->values().end());
  p.reset_perturbation(1.0, rng);  // mutate the original heavily
  EXPECT_EQ(clone->total_cost(), clone_cost);
  EXPECT_TRUE(std::equal(clone_vals.begin(), clone_vals.end(),
                         clone->values().begin()));
}

TEST(PermutationProblem, DefaultTuningHintsAreSane) {
  SortProblem p(10);
  const TuningHints hints = p.tuning();
  EXPECT_GT(hints.freeze_loc_min, 0u);
  EXPECT_GE(hints.reset_fraction, 0.0);
  EXPECT_LE(hints.reset_fraction, 1.0);
}

TEST(IsPermutationOf, AcceptsAndRejects) {
  const std::vector<int> canon{1, 2, 3, 3};
  EXPECT_TRUE(is_permutation_of(std::vector<int>{3, 1, 3, 2}, canon));
  EXPECT_FALSE(is_permutation_of(std::vector<int>{3, 1, 2, 2}, canon));
  EXPECT_FALSE(is_permutation_of(std::vector<int>{1, 2, 3}, canon));
  EXPECT_TRUE(is_permutation_of(std::vector<int>{}, std::vector<int>{}));
}

TEST(Cost, InfiniteSentinelIsLarge) {
  EXPECT_GT(kInfiniteCost, Cost{1} << 62);
}

}  // namespace
}  // namespace cspls::csp
