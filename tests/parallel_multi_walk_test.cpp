// Independent multi-walk engine tests: first-finisher protocol, stream
// seeding, determinism of the sequential paths, elite-pool semantics.
#include "parallel/multi_walk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "parallel/elite_pool.hpp"
#include "problems/costas.hpp"
#include "problems/langford.hpp"
#include "problems/registry.hpp"
#include "util/rng.hpp"

namespace cspls::parallel {
namespace {

TEST(MultiWalkSolver, SolvesAndWinnerIsWellFormed) {
  problems::Costas costas(10);
  MultiWalkOptions options;
  options.num_walkers = 4;
  options.master_seed = 1;
  const MultiWalkSolver solver(options);
  const MultiWalkReport report = solver.solve(costas);
  ASSERT_TRUE(report.solved);
  ASSERT_LT(report.winner, 4u);
  EXPECT_TRUE(report.best.solved);
  EXPECT_EQ(report.best.cost, 0);
  EXPECT_TRUE(costas.verify(report.best.solution));
  EXPECT_EQ(report.walkers.size(), 4u);
  EXPECT_GT(report.total_iterations(), 0u);
  EXPECT_GE(report.wall_seconds, report.time_to_solution_seconds);
}

TEST(MultiWalkSolver, EveryWalkerEitherFinishedOrWasInterrupted) {
  problems::Costas costas(11);
  MultiWalkOptions options;
  options.num_walkers = 6;
  options.master_seed = 2;
  const MultiWalkSolver solver(options);
  const MultiWalkReport report = solver.solve(costas);
  ASSERT_TRUE(report.solved);
  for (const auto& w : report.walkers) {
    EXPECT_TRUE(w.result.solved || w.result.interrupted)
        << "walker " << w.walker_id;
  }
  // The winner must have finished on its own.
  EXPECT_FALSE(report.walkers[report.winner].result.interrupted);
}

TEST(MultiWalkSolver, SingleWalkerDegeneratesToSequential) {
  problems::Costas costas(9);
  MultiWalkOptions options;
  options.num_walkers = 1;
  options.master_seed = 3;
  const MultiWalkSolver solver(options);
  const MultiWalkReport report = solver.solve(costas);
  ASSERT_TRUE(report.solved);
  EXPECT_EQ(report.winner, 0u);
}

TEST(MultiWalkSolver, ThreadCapStillCompletesAllWalkers) {
  problems::Costas costas(9);
  MultiWalkOptions options;
  options.num_walkers = 8;
  options.master_seed = 4;
  options.max_threads = 2;
  const MultiWalkSolver solver(options);
  const MultiWalkReport report = solver.solve(costas);
  ASSERT_TRUE(report.solved);
  EXPECT_EQ(report.walkers.size(), 8u);
}

TEST(MultiWalkSolver, UnsolvableInstanceReportsBestEffort) {
  // L(2,5) has no solution (n must be ≡ 0 or 3 mod 4).
  problems::Langford langford(5);
  MultiWalkOptions options;
  options.num_walkers = 3;
  options.master_seed = 5;
  core::Params params =
      core::Params::from_hints(langford.tuning(), langford.num_variables());
  params.restart_limit = 2'000;
  params.max_restarts = 2;
  options.params = params;
  const MultiWalkSolver solver(options);
  const MultiWalkReport report = solver.solve(langford);
  EXPECT_FALSE(report.solved);
  EXPECT_EQ(report.winner, kNoWinner);
  EXPECT_FALSE(report.has_winner());
  EXPECT_GT(report.best.cost, 0);
  EXPECT_FALSE(report.best.solution.empty());
}

TEST(RunIndependentWalks, DeterministicPerStream) {
  problems::Costas costas(10);
  const auto a = run_independent_walks(costas, 5, 42);
  const auto b = run_independent_walks(costas, 5, 42);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.stats.iterations, b[i].result.stats.iterations);
    EXPECT_EQ(a[i].result.solution, b[i].result.solution);
  }
}

TEST(RunIndependentWalks, StreamsExploreIndependently) {
  problems::Costas costas(11);
  const auto walks = run_independent_walks(costas, 8, 7);
  std::set<std::uint64_t> iteration_counts;
  for (const auto& w : walks) {
    EXPECT_TRUE(w.result.solved);
    iteration_counts.insert(w.result.stats.iterations);
  }
  // Eight independent heavy-tailed walks almost surely differ.
  EXPECT_GT(iteration_counts.size(), 4u);
}

TEST(RunIndependentWalks, PrefixStabilityAcrossPopulationSize) {
  // Walker i's trajectory must not depend on how many walkers run: this is
  // what makes offline min-of-k analysis equivalent to the racing version.
  problems::Costas costas(9);
  const auto small = run_independent_walks(costas, 3, 99);
  const auto large = run_independent_walks(costas, 6, 99);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].result.stats.iterations,
              large[i].result.stats.iterations);
  }
}

TEST(EmulateFirstFinisher, PicksFewestIterations) {
  problems::Costas costas(10);
  auto walks = run_independent_walks(costas, 6, 11);
  const MultiWalkReport report = emulate_first_finisher(walks);
  ASSERT_TRUE(report.solved);
  const auto& winner = report.walkers[report.winner];
  for (const auto& w : report.walkers) {
    if (w.result.solved) {
      EXPECT_LE(winner.result.stats.iterations, w.result.stats.iterations);
    }
  }
  EXPECT_EQ(report.best.stats.iterations, winner.result.stats.iterations);
}

TEST(EmulateFirstFinisher, HandlesAllFailed) {
  problems::Langford langford(5);  // unsolvable
  core::Params params =
      core::Params::from_hints(langford.tuning(), langford.num_variables());
  params.restart_limit = 500;
  params.max_restarts = 0;
  auto walks = run_independent_walks(langford, 3, 1, params);
  const MultiWalkReport report = emulate_first_finisher(walks);
  EXPECT_FALSE(report.solved);
  EXPECT_GT(report.best.cost, 0);
}

TEST(ElitePool, OfferAcceptsOnlyStrictImprovements) {
  ElitePool pool;  // decay 0: the PR-1 keep-best slot
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{3, 2, 1};
  EXPECT_TRUE(pool.offer(1, 10, a));
  EXPECT_FALSE(pool.offer(2, 10, b));  // equal is rejected
  EXPECT_FALSE(pool.offer(3, 11, b));
  EXPECT_TRUE(pool.offer(4, 9, b));
  EXPECT_EQ(pool.best_cost(), 9);
  EXPECT_EQ(pool.accepted_offers(), 2u);
}

TEST(ElitePool, TakeIfBetterHonoursThreshold) {
  ElitePool pool;
  std::vector<int> out;
  EXPECT_EQ(pool.take_if_better(1, 100, out), csp::kInfiniteCost);  // empty
  pool.offer(1, 10, std::vector<int>{4, 5, 6});
  EXPECT_EQ(pool.take_if_better(2, 10, out), csp::kInfiniteCost);  // not better
  EXPECT_EQ(pool.take_if_better(2, 11, out), 10);
  EXPECT_EQ(out, (std::vector<int>{4, 5, 6}));
}

TEST(DependentMultiWalk, SolvesWithCommunicationEnabled) {
  problems::Costas costas(10);
  DependentOptions options;
  options.base.num_walkers = 4;
  options.base.master_seed = 6;
  options.period = 50;
  options.adopt_probability = 0.5;
  const DependentMultiWalkSolver solver(options);
  const MultiWalkReport report = solver.solve(costas);
  ASSERT_TRUE(report.solved);
  EXPECT_TRUE(costas.verify(report.best.solution));
}

/// Sweep: the racing solver must succeed across walker counts and seeds.
class MultiWalkSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MultiWalkSweep, AlwaysSolvesCostas9) {
  const auto [walkers, seed] = GetParam();
  problems::Costas costas(9);
  MultiWalkOptions options;
  options.num_walkers = walkers;
  options.master_seed = seed;
  const MultiWalkSolver solver(options);
  const MultiWalkReport report = solver.solve(costas);
  ASSERT_TRUE(report.solved);
  EXPECT_TRUE(costas.verify(report.best.solution));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiWalkSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u),
                       ::testing::Values(1ULL, 77ULL)));

}  // namespace
}  // namespace cspls::parallel
