// RNG substrate tests: determinism, stream independence, bounded generation.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace cspls::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, KnownSeedIsReproducible) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, StateIsNeverAllZero) {
  // splitmix expansion cannot produce the all-zero fixed point.
  for (std::uint64_t seed : {0ULL, 1ULL, 0xffffffffffffffffULL}) {
    Xoshiro256 rng(seed);
    const auto st = rng.state();
    EXPECT_TRUE(st[0] || st[1] || st[2] || st[3]);
    EXPECT_NE(rng.next(), rng.next());  // it moves
  }
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(1234);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBound)];
  }
  const double expected = static_cast<double>(kDraws) / kBound;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);  // +-10%
  }
}

TEST(Xoshiro256, BetweenCoversInclusiveRange) {
  Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits += rng.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.25, 0.01);
}

TEST(Xoshiro256, ShuffleKeepsMultiset) {
  Xoshiro256 rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Xoshiro256, ShuffleActuallyPermutes) {
  Xoshiro256 rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, orig);  // probability of identity is 1/50! — negligible
}

TEST(Xoshiro256, JumpChangesState) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.jump();
  EXPECT_NE(a.state(), b.state());
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, JumpedStreamsDoNotCollideEarly) {
  // Heuristic non-overlap check: the first outputs of sibling streams
  // share no value (2^-64 collision probability per pair).
  Xoshiro256 base(4242);
  Xoshiro256 s0 = base;
  Xoshiro256 s1 = base;
  s1.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(s0.next());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(first.count(s1.next()), 0u);
  }
}

TEST(RngStreamFactory, SameStreamIsIdentical) {
  const RngStreamFactory factory(77);
  Xoshiro256 a = factory.stream(3);
  Xoshiro256 b = factory.stream(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(RngStreamFactory, DifferentStreamsDiffer) {
  const RngStreamFactory factory(77);
  Xoshiro256 a = factory.stream(0);
  Xoshiro256 b = factory.stream(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngStreamFactory, StreamCreationOrderIrrelevant) {
  const RngStreamFactory factory(77);
  Xoshiro256 late = factory.stream(5);
  (void)factory.stream(2);
  Xoshiro256 again = factory.stream(5);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(late.next(), again.next());
  }
}

TEST(RngStreamFactory, RepetitionsAreDecorrelated) {
  const RngStreamFactory factory(77);
  Xoshiro256 rep0 = factory.repetition(0).stream(0);
  Xoshiro256 rep1 = factory.repetition(1).stream(0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += rep0.next() == rep1.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(DeriveSeeds, CorrectCountAllDistinct) {
  const auto seeds = derive_seeds(123, 256);
  EXPECT_EQ(seeds.size(), 256u);
  const std::set<std::uint64_t> uniq(seeds.begin(), seeds.end());
  EXPECT_EQ(uniq.size(), seeds.size());
}

TEST(DeriveSeeds, DeterministicInMasterSeed) {
  EXPECT_EQ(derive_seeds(5, 10), derive_seeds(5, 10));
  EXPECT_NE(derive_seeds(5, 10), derive_seeds(6, 10));
}

/// Property sweep: bounded generation is in-range for many (seed, bound)
/// combinations.
class RngBoundSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(RngBoundSweep, BelowInRangeAndHitsExtremes) {
  const auto [seed, bound] = GetParam();
  Xoshiro256 rng(seed);
  std::uint64_t lo = bound, hi = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.below(bound);
    ASSERT_LT(v, bound);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, bound - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngBoundSweep,
    ::testing::Combine(::testing::Values(1ULL, 42ULL, 0xdeadbeefULL),
                       ::testing::Values(2ULL, 7ULL, 64ULL, 101ULL)));

}  // namespace
}  // namespace cspls::util
