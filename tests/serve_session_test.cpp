// End-to-end through the stdio transport: the streaming event grammar
// (accepted -> nonincreasing samples -> report), fixed-seed report
// byte-identity with the in-process api::Solver path, wire-boundary error
// containment, and the service_dispatch fault leg.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "serve/stdio_server.hpp"
#include "util/fault.hpp"

namespace cspls::serve {
namespace {

std::vector<util::Json> serve_lines(const std::vector<std::string>& lines,
                                    SchedulerOptions options = {},
                                    Session::Options session = {}) {
  std::string input;
  for (const std::string& line : lines) {
    input += line;
    input += '\n';
  }
  std::istringstream in(input);
  std::ostringstream out;
  Scheduler scheduler(options);
  StdioServer(scheduler, in, out, session).run();
  scheduler.shutdown();

  std::vector<util::Json> events;
  std::istringstream replies(out.str());
  std::string reply;
  while (std::getline(replies, reply)) {
    auto event = util::Json::parse(reply);
    EXPECT_TRUE(event.has_value()) << "unparsable event line: " << reply;
    if (event) events.push_back(std::move(*event));
  }
  return events;
}

std::string solve_line(const api::SolveRequest& request, bool stream,
                       std::uint64_t sample_period,
                       std::string_view tag = "t") {
  util::Json envelope = util::Json::object();
  envelope.set("op", "solve").set("request", request.to_json());
  if (stream) {
    envelope.set("stream", true).set("sample_period", sample_period);
  }
  envelope.set("tag", tag);
  return envelope.dump(0);
}

api::SolveRequest small_request(std::uint64_t seed) {
  api::SolveRequest request;
  request.problem = "costas:9";
  request.walkers = 1;
  request.seed = seed;
  request.scheduling = parallel::Scheduling::kSequential;
  return request;
}

void zero_timings(api::SolveReport& report) {
  report.wall_seconds = 0.0;
  report.time_to_solution_seconds = 0.0;
  for (api::WalkerReport& walker : report.walkers) walker.seconds = 0.0;
}

TEST(ServeSession, StreamsAcceptedThenNonincreasingSamplesThenReport) {
  const auto events =
      serve_lines({solve_line(small_request(0x5eed), true, 1)});
  ASSERT_GE(events.size(), 3u) << "expected accepted + sample(s) + report";

  EXPECT_EQ(events.front().at("event").as_string(), "accepted");
  EXPECT_EQ(events.front().at("tag").as_string(), "t");
  const std::uint64_t id = events.front().at("id").as_uint64();

  std::size_t samples = 0;
  csp::Cost last_cost = csp::kInfiniteCost;
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    const util::Json& event = events[i];
    ASSERT_EQ(event.at("event").as_string(), "sample");
    EXPECT_EQ(event.at("id").as_uint64(), id);
    const csp::Cost cost = event.at("best_cost").as_int64();
    EXPECT_LT(cost, last_cost) << "sample costs must strictly decrease";
    last_cost = cost;
    ++samples;
  }
  EXPECT_GE(samples, 1u);

  const util::Json& last = events.back();
  EXPECT_EQ(last.at("event").as_string(), "report");
  EXPECT_EQ(last.at("id").as_uint64(), id);
  EXPECT_EQ(last.at("status").as_string(), "done");
  // The final report's cost closes the nonincreasing chain.
  EXPECT_LE(last.at("report").at("cost").as_int64(), last_cost);
}

TEST(ServeSession, FixedSeedReportIsByteIdenticalToInProcessSolver) {
  // Warm path (sequential) and a threaded pool forced onto the warm path:
  // the transport must add naming and framing, never behaviour.
  // kBestAfterBudget so per-walker trajectories are deterministic even on
  // real threads (kFirstFinisher's winner would race wall-clock).
  api::SolveRequest threaded = small_request(99);
  threaded.problem = "costas:8";
  threaded.walkers = 2;
  threaded.scheduling = parallel::Scheduling::kThreads;
  threaded.termination = parallel::Termination::kBestAfterBudget;

  for (const api::SolveRequest& request :
       {small_request(123), threaded}) {
    SchedulerOptions options;
    options.warm_lease_threshold = 8;  // keep both on the Solver-direct path
    const auto events =
        serve_lines({solve_line(request, false, 0)}, options);
    ASSERT_EQ(events.size(), 2u);
    ASSERT_EQ(events.back().at("event").as_string(), "report");

    api::SolveReport wire =
        api::SolveReport::from_json(events.back().at("report"));
    api::SolveReport direct = api::Solver::solve(request);
    zero_timings(wire);
    zero_timings(direct);
    EXPECT_EQ(wire.to_json().dump(0), direct.to_json().dump(0));
  }
}

TEST(ServeSession, WireErrorsAreContainedAndTheServerKeepsServing) {
  Session::Options session;
  session.max_line_bytes = 512;
  const std::string oversized =
      R"({"op":"solve","request":{"problem":")" + std::string(600, 'x') +
      R"("}})";
  const auto events = serve_lines(
      {
          "{broken json",
          R"({"op":"solve","request":{"problem":"costas:7"},"nope":1})",
          oversized,
          R"({"op":"solve","request":{"problem":"costas:7","walkers":1,)"
          R"("scheduling":"sequential","seed":5},"tag":"after"})",
      },
      SchedulerOptions{}, session);

  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].at("event").as_string(), "error");
  EXPECT_EQ(events[0].at("code").as_string(), "bad_json");
  EXPECT_EQ(events[1].at("event").as_string(), "error");
  EXPECT_EQ(events[1].at("code").as_string(), "bad_envelope");
  EXPECT_EQ(events[2].at("event").as_string(), "error");
  EXPECT_EQ(events[2].at("code").as_string(), "oversized");
  // The session survived all three: the valid solve still runs to a report.
  EXPECT_EQ(events[3].at("event").as_string(), "accepted");
  EXPECT_EQ(events[4].at("event").as_string(), "report");
  EXPECT_EQ(events[4].at("status").as_string(), "done");
  EXPECT_EQ(events[4].at("tag").as_string(), "after");
}

TEST(ServeSession, BadRequestBodyAndUnknownJobCancelAreStructuredErrors) {
  const auto events = serve_lines({
      R"({"op":"solve","request":{"problem":"no-such-problem:5"},"tag":"x"})",
      R"({"op":"cancel","id":999})",
      R"({"op":"stats"})",
  });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("event").as_string(), "error");
  EXPECT_EQ(events[0].at("code").as_string(), "bad_request");
  EXPECT_EQ(events[0].at("tag").as_string(), "x");
  EXPECT_EQ(events[1].at("event").as_string(), "error");
  EXPECT_EQ(events[1].at("code").as_string(), "unknown_job");
  EXPECT_EQ(events[2].at("event").as_string(), "stats");
  // Both stat panes carry their schema.
  EXPECT_TRUE(events[2].at("scheduler").contains("batches"));
  EXPECT_TRUE(events[2].at("scheduler").contains("preempted_queued"));
  EXPECT_TRUE(events[2].at("scheduler").contains("preempted_running"));
  EXPECT_TRUE(events[2].at("scheduler").contains("rejected_overload"));
  EXPECT_TRUE(events[2].at("service").contains("thread_budget"));
  EXPECT_TRUE(events[2].at("service").contains("retried"));
}

TEST(ServeSession, ServiceDispatchThrowFaultFailsTheJobNotTheServer) {
  if (!util::fault::kCompiledIn) {
    GTEST_SKIP() << "fault sites compiled out (CSPLS_FAULT_INJECTION=OFF)";
  }
  api::SolveRequest doomed = small_request(1);
  util::fault::FaultPlan plan;
  plan.site = util::fault::Site::kServiceDispatch;
  plan.kind = util::fault::Kind::kThrow;
  plan.at_count = 1;
  doomed.faults.push_back(plan);

  const auto events = serve_lines({
      solve_line(doomed, false, 0, "doomed"),
      solve_line(small_request(2), false, 0, "fine"),
  });
  // Both accepteds may precede both reports, and the reports race each
  // other: locate each job's report by tag instead of by position.
  ASSERT_EQ(events.size(), 4u);
  auto report_of = [&](std::string_view tag) -> const util::Json* {
    for (const util::Json& event : events) {
      if (event.at("event").as_string() == "report" &&
          event.at("tag").as_string() == tag) {
        return &event;
      }
    }
    return nullptr;
  };
  const util::Json* failed = report_of("doomed");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->at("status").as_string(), "failed");
  EXPECT_NE(failed->at("error").as_string().find("service_dispatch"),
            std::string::npos);
  // The crash was contained to its job: the next solve is untouched.
  const util::Json* fine = report_of("fine");
  ASSERT_NE(fine, nullptr);
  EXPECT_EQ(fine->at("status").as_string(), "done");
}

TEST(ServeSession, ServiceDispatchStallFaultOnlyDelaysTheJob) {
  if (!util::fault::kCompiledIn) {
    GTEST_SKIP() << "fault sites compiled out (CSPLS_FAULT_INJECTION=OFF)";
  }
  api::SolveRequest slow = small_request(3);
  util::fault::FaultPlan plan;
  plan.site = util::fault::Site::kServiceDispatch;
  plan.kind = util::fault::Kind::kStall;
  plan.stall_ms = 50;
  slow.faults.push_back(plan);

  const auto events = serve_lines({solve_line(slow, false, 0)});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events.back().at("event").as_string(), "report");
  EXPECT_EQ(events.back().at("status").as_string(), "done");
}

}  // namespace
}  // namespace cspls::serve
