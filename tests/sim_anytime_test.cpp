// sim::anytime_curve — best-cost-after-budget aggregation over walker cost
// traces: running minima per walker, pool minimum per budget, budget-grid
// helper, and consistency with a real traced WalkerPool run.
#include "sim/anytime.hpp"

#include <gtest/gtest.h>

#include "parallel/walker_pool.hpp"
#include "problems/costas.hpp"

namespace cspls::sim {
namespace {

core::WalkerTrace trace_of(std::vector<core::TraceSample> samples) {
  core::WalkerTrace trace;
  trace.cost_samples = std::move(samples);
  return trace;
}

TEST(AnytimeCurve, TakesRunningMinimaThenPoolMinimum) {
  // Walker 0 dips to 3 at iteration 100 and *rises* back to 9 (a reset);
  // walker 1 reaches 5 late.  The anytime value reports the best
  // configuration that could have been returned, not the current one.
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({{0, 20}, {100, 3}, {200, 9}}),
      trace_of({{0, 18}, {150, 5}}),
  };
  const std::vector<std::uint64_t> budgets = {0, 99, 100, 160, 500};
  const auto curve = anytime_curve(walkers, budgets);
  ASSERT_EQ(curve.size(), budgets.size());
  EXPECT_EQ(curve[0], (AnytimePoint{0, 18}));
  EXPECT_EQ(curve[1], (AnytimePoint{99, 18}));
  EXPECT_EQ(curve[2], (AnytimePoint{100, 3}));
  EXPECT_EQ(curve[3], (AnytimePoint{160, 3}));   // running min, despite {200, 9}
  EXPECT_EQ(curve[4], (AnytimePoint{500, 3}));
}

TEST(AnytimeCurve, WalkersWithoutSamplesContributeNothing) {
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({}),
      trace_of({{50, 7}}),
  };
  const std::vector<std::uint64_t> budgets = {10, 50};
  const auto curve = anytime_curve(walkers, budgets);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve[0].best_cost, csp::kInfiniteCost);  // nothing sampled yet
  EXPECT_EQ(curve[1].best_cost, 7);

  EXPECT_TRUE(anytime_curve({}, budgets)[0].best_cost == csp::kInfiniteCost);
}

TEST(AnytimeBudgetGrid, DoublesUpToTheLastSampledIteration) {
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({{0, 9}, {800, 2}}),
      trace_of({{0, 9}, {100, 4}}),
  };
  const auto grid = anytime_budget_grid(walkers, 4);
  EXPECT_EQ(grid, (std::vector<std::uint64_t>{100, 200, 400, 800}));
  // Degenerate inputs: no samples, or zero points.
  EXPECT_TRUE(anytime_budget_grid({}, 4).empty());
  EXPECT_TRUE(anytime_budget_grid(walkers, 0).empty());
  // Tiny ranges drop zero/duplicate budgets instead of emitting them.
  const std::vector<core::WalkerTrace> tiny = {trace_of({{0, 3}, {2, 1}})};
  EXPECT_EQ(anytime_budget_grid(tiny, 4), (std::vector<std::uint64_t>{1, 2}));
}

TEST(AnytimeCurve, AgreesWithATracedPoolRun) {
  problems::Costas costas(9);
  parallel::WalkerPoolOptions pool;
  pool.num_walkers = 3;
  pool.master_seed = 21;
  pool.scheduling = parallel::Scheduling::kSequential;
  pool.termination = parallel::Termination::kBestAfterBudget;
  pool.trace.enabled = true;
  pool.trace.sample_period = 50;
  const auto report = parallel::WalkerPool(pool).run(costas);

  std::vector<core::WalkerTrace> traces;
  for (const auto& w : report.walkers) traces.push_back(w.trace);
  const auto grid = anytime_budget_grid(traces, 6);
  ASSERT_FALSE(grid.empty());
  const auto curve = anytime_curve(traces, grid);
  ASSERT_EQ(curve.size(), grid.size());
  // Non-increasing in the budget, and the full-budget point matches the
  // pool's best outcome.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].best_cost, curve[i - 1].best_cost);
  }
  EXPECT_EQ(curve.back().best_cost, report.best.cost);
}

}  // namespace
}  // namespace cspls::sim
