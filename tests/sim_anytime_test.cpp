// sim::anytime_curve — best-cost-after-budget aggregation over walker cost
// traces: running minima per walker, pool minimum per budget, budget-grid
// helper, and consistency with a real traced WalkerPool run.
#include "sim/anytime.hpp"

#include <gtest/gtest.h>

#include "parallel/walker_pool.hpp"
#include "problems/costas.hpp"

namespace cspls::sim {
namespace {

core::WalkerTrace trace_of(std::vector<core::TraceSample> samples) {
  core::WalkerTrace trace;
  trace.cost_samples = std::move(samples);
  return trace;
}

TEST(AnytimeCurve, TakesRunningMinimaThenPoolMinimum) {
  // Walker 0 dips to 3 at iteration 100 and *rises* back to 9 (a reset);
  // walker 1 reaches 5 late.  The anytime value reports the best
  // configuration that could have been returned, not the current one.
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({{0, 20}, {100, 3}, {200, 9}}),
      trace_of({{0, 18}, {150, 5}}),
  };
  const std::vector<std::uint64_t> budgets = {0, 99, 100, 160, 500};
  const auto curve = anytime_curve(walkers, budgets);
  ASSERT_EQ(curve.size(), budgets.size());
  EXPECT_EQ(curve[0], (AnytimePoint{0, 18}));
  EXPECT_EQ(curve[1], (AnytimePoint{99, 18}));
  EXPECT_EQ(curve[2], (AnytimePoint{100, 3}));
  EXPECT_EQ(curve[3], (AnytimePoint{160, 3}));   // running min, despite {200, 9}
  EXPECT_EQ(curve[4], (AnytimePoint{500, 3}));
}

TEST(AnytimeCurve, WalkersWithoutSamplesContributeNothing) {
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({}),
      trace_of({{50, 7}}),
  };
  const std::vector<std::uint64_t> budgets = {10, 50};
  const auto curve = anytime_curve(walkers, budgets);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve[0].best_cost, csp::kInfiniteCost);  // nothing sampled yet
  EXPECT_EQ(curve[1].best_cost, 7);

  EXPECT_TRUE(anytime_curve({}, budgets)[0].best_cost == csp::kInfiniteCost);
}

TEST(AnytimeBudgetGrid, DoublesUpToTheLastSampledIteration) {
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({{0, 9}, {800, 2}}),
      trace_of({{0, 9}, {100, 4}}),
  };
  const auto grid = anytime_budget_grid(walkers, 4);
  EXPECT_EQ(grid, (std::vector<std::uint64_t>{100, 200, 400, 800}));
  // Degenerate inputs: no samples, or zero points.
  EXPECT_TRUE(anytime_budget_grid({}, 4).empty());
  EXPECT_TRUE(anytime_budget_grid(walkers, 0).empty());
  // Tiny ranges drop zero/duplicate budgets instead of emitting them.
  const std::vector<core::WalkerTrace> tiny = {trace_of({{0, 3}, {2, 1}})};
  EXPECT_EQ(anytime_budget_grid(tiny, 4), (std::vector<std::uint64_t>{1, 2}));
}

TEST(AnytimeCurve, AllEmptyTracesYieldInfiniteEverywhere) {
  // A pool whose walkers recorded nothing (tracing off, or cut before the
  // first sample) must produce a well-formed all-infinite curve, not crash
  // or fabricate zeros.
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({}), trace_of({}), trace_of({})};
  const std::vector<std::uint64_t> budgets = {0, 10, 1'000};
  const auto curve = anytime_curve(walkers, budgets);
  ASSERT_EQ(curve.size(), budgets.size());
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    EXPECT_EQ(curve[b].budget, budgets[b]);
    EXPECT_EQ(curve[b].best_cost, csp::kInfiniteCost);
  }
  // And the grid over nothing is empty.
  EXPECT_TRUE(anytime_budget_grid(walkers, 8).empty());
}

TEST(AnytimeCurve, BudgetBelowEveryFirstSampleIsInfinite) {
  // Every walker's first sample lies beyond the queried budgets: no
  // configuration could have been returned yet at any of them.
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({{100, 5}, {200, 3}}),
      trace_of({{150, 9}}),
  };
  const std::vector<std::uint64_t> budgets = {0, 50, 99};
  const auto curve = anytime_curve(walkers, budgets);
  ASSERT_EQ(curve.size(), 3u);
  for (const auto& point : curve) {
    EXPECT_EQ(point.best_cost, csp::kInfiniteCost);
  }
  // The first budget at or past a sample picks it up.
  EXPECT_EQ(anytime_curve(walkers, std::vector<std::uint64_t>{100})[0]
                .best_cost,
            5);
}

TEST(AnytimeBudgetGrid, SinglePointGridsAndSingleSampleTraces) {
  const std::vector<core::WalkerTrace> walkers = {
      trace_of({{0, 9}, {800, 2}})};
  // points = 1: exactly the last sampled iteration.
  EXPECT_EQ(anytime_budget_grid(walkers, 1),
            (std::vector<std::uint64_t>{800}));
  // A lone sample at iteration 1 cannot halve: one budget, no zeros.
  const std::vector<core::WalkerTrace> lone = {trace_of({{1, 4}})};
  EXPECT_EQ(anytime_budget_grid(lone, 4), (std::vector<std::uint64_t>{1}));
  // Samples only at iteration 0 span no budget range at all.
  const std::vector<core::WalkerTrace> degenerate = {trace_of({{0, 4}})};
  EXPECT_TRUE(anytime_budget_grid(degenerate, 4).empty());
}

TEST(AnytimeCurve, SeparatesGossipFromOnResetRegimes) {
  // The ablation's mode comparison in miniature: the same unsolvable
  // population traced under on-reset and async gossip produces two
  // comparable anytime curves over a shared budget grid — both
  // non-increasing, both ending at their pool's best cost.
  problems::Costas costas(9);
  for (const auto mode :
       {parallel::CommMode::kOnReset, parallel::CommMode::kAsync}) {
    parallel::WalkerPoolOptions pool;
    pool.num_walkers = 3;
    pool.master_seed = 33;
    pool.scheduling = parallel::Scheduling::kSequential;
    pool.termination = parallel::Termination::kBestAfterBudget;
    pool.communication.neighborhood = parallel::Neighborhood::kRing;
    pool.communication.exchange = parallel::Exchange::kElite;
    pool.communication.mode = mode;
    pool.communication.period = 50;
    pool.communication.adopt_probability = 0.5;
    pool.trace.enabled = true;
    pool.trace.sample_period = 50;
    const auto report = parallel::WalkerPool(pool).run(costas);

    std::vector<core::WalkerTrace> traces;
    for (const auto& w : report.walkers) traces.push_back(w.trace);
    const auto grid = anytime_budget_grid(traces, 5);
    ASSERT_FALSE(grid.empty());
    const auto curve = anytime_curve(traces, grid);
    for (std::size_t i = 1; i < curve.size(); ++i) {
      EXPECT_LE(curve[i].best_cost, curve[i - 1].best_cost);
    }
    EXPECT_EQ(curve.back().best_cost, report.best.cost);
  }
}

TEST(AnytimeCurve, AgreesWithATracedPoolRun) {
  problems::Costas costas(9);
  parallel::WalkerPoolOptions pool;
  pool.num_walkers = 3;
  pool.master_seed = 21;
  pool.scheduling = parallel::Scheduling::kSequential;
  pool.termination = parallel::Termination::kBestAfterBudget;
  pool.trace.enabled = true;
  pool.trace.sample_period = 50;
  const auto report = parallel::WalkerPool(pool).run(costas);

  std::vector<core::WalkerTrace> traces;
  for (const auto& w : report.walkers) traces.push_back(w.trace);
  const auto grid = anytime_budget_grid(traces, 6);
  ASSERT_FALSE(grid.empty());
  const auto curve = anytime_curve(traces, grid);
  ASSERT_EQ(curve.size(), grid.size());
  // Non-increasing in the budget, and the full-budget point matches the
  // pool's best outcome.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].best_cost, curve[i - 1].best_cost);
  }
  EXPECT_EQ(curve.back().best_cost, report.best.cost);
}

}  // namespace
}  // namespace cspls::sim
