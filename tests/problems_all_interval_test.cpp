// All-Interval Series model tests (CSPLib prob007).
#include "problems/all_interval.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/adaptive_search.hpp"
#include "util/rng.hpp"

namespace cspls::problems {
namespace {

using csp::Cost;

/// The zigzag construction 0, n-1, 1, n-2, ... is an all-interval series for
/// every n (differences n-1, n-2, ..., 1).
std::vector<int> zigzag(std::size_t n) {
  std::vector<int> v(n);
  int lo = 0, hi = static_cast<int>(n) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (i % 2 == 0) ? lo++ : hi--;
  }
  return v;
}

TEST(AllInterval, RejectsDegenerateSizes) {
  EXPECT_THROW(AllInterval(0), std::invalid_argument);
  EXPECT_THROW(AllInterval(1), std::invalid_argument);
}

TEST(AllInterval, ZigzagIsASolutionForAllSizes) {
  for (std::size_t n = 2; n <= 30; ++n) {
    AllInterval p(n);
    const auto sol = zigzag(n);
    EXPECT_EQ(p.assign(sol), 0) << "n=" << n;
    EXPECT_TRUE(p.verify(sol)) << "n=" << n;
  }
}

TEST(AllInterval, IdentityPermutationIsMaximallyBad) {
  AllInterval p(10);
  std::vector<int> identity(10);
  std::iota(identity.begin(), identity.end(), 0);
  // All 9 differences are 1: 8 surplus occurrences.
  EXPECT_EQ(p.assign(identity), 8);
  EXPECT_FALSE(p.verify(identity));
}

TEST(AllInterval, CostCountsSurplusOccurrences) {
  AllInterval p(5);
  // 0 2 4 1 3 -> differences 2 2 3 2: distance 2 thrice -> cost 2.
  const std::vector<int> config{0, 2, 4, 1, 3};
  EXPECT_EQ(p.assign(config), 2);
}

TEST(AllInterval, CostOnVariableBlamesDuplicatedDistances) {
  AllInterval p(5);
  const std::vector<int> config{0, 2, 4, 1, 3};  // diffs 2 2 3 2
  p.assign(config);
  // Position 0 touches diff (0,1)=2 which has occ 3 -> err 2.
  EXPECT_EQ(p.cost_on_variable(0), 2);
  // Position 2 touches diffs 2 and 3 -> err 2 + 0.
  EXPECT_EQ(p.cost_on_variable(2), 2);
  // Position 3 touches diffs 3 and 2 -> 0 + 2.
  EXPECT_EQ(p.cost_on_variable(3), 2);
}

TEST(AllInterval, AdjacentSwapKeepsSharedDifferenceCorrect) {
  AllInterval p(8);
  util::Xoshiro256 rng(5);
  p.randomize(rng);
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    const Cost probed = p.cost_if_swap(i, i + 1);
    const Cost committed = p.swap(i, i + 1);
    ASSERT_EQ(probed, committed) << "adjacent swap at " << i;
    ASSERT_EQ(committed, p.full_cost());
  }
}

TEST(AllInterval, EndpointSwapsStayConsistent) {
  AllInterval p(12);
  util::Xoshiro256 rng(6);
  p.randomize(rng);
  const Cost probed = p.cost_if_swap(0, 11);
  EXPECT_EQ(p.swap(0, 11), probed);
  EXPECT_EQ(p.total_cost(), p.full_cost());
}

TEST(AllInterval, ResetPerturbationReversesSegment) {
  AllInterval p(20);
  const auto sol = zigzag(20);
  p.assign(sol);
  util::Xoshiro256 rng(7);
  const Cost cost = p.reset_perturbation(0.3, rng);
  EXPECT_EQ(cost, p.full_cost());
  // A reversal preserves the multiset.
  std::vector<int> sorted(p.values().begin(), p.values().end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int>(i));
  }
  // A reversal changes at most two differences, so the damage is bounded.
  EXPECT_LE(cost, 2);
}

TEST(AllInterval, VerifyRejectsMalformedInputs) {
  AllInterval p(6);
  EXPECT_FALSE(p.verify(std::vector<int>{0, 1, 2}));          // size
  EXPECT_FALSE(p.verify(std::vector<int>{0, 0, 1, 2, 3, 4})); // not perm
  EXPECT_FALSE(p.verify(std::vector<int>{0, 1, 2, 3, 4, 5})); // dup diffs
}

TEST(AllInterval, EngineSolvesModerateInstance) {
  AllInterval p(14);
  auto params = core::Params::from_hints(p.tuning(), p.num_variables());
  params.max_restarts = 100;
  const core::AdaptiveSearch engine(params);
  util::Xoshiro256 rng(8);
  const auto result = engine.solve(p, rng);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(p.verify(result.solution));
}

TEST(AllInterval, RandomWalkKeepsCacheCoherent) {
  AllInterval p(16);
  util::Xoshiro256 rng(9);
  p.randomize(rng);
  for (int step = 0; step < 1000; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(16));
    auto j = static_cast<std::size_t>(rng.below(16));
    if (i == j) j = (j + 1) % 16;
    p.swap(i, j);
  }
  EXPECT_EQ(p.total_cost(), p.full_cost());
}

}  // namespace
}  // namespace cspls::problems
