// Asynchronous gossip (CommMode::kAsync): the engine's mid-walk adoption
// hook, mid-walk pull wiring through comm_hooks, determinism of gossiping
// pools under kSequential/kEmulatedRace, the adoption/publish/accept
// counter split, threaded gossip under TSan, and the async x kNone
// validation rejection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/adaptive_search.hpp"
#include "parallel/walker_pool.hpp"
#include "problems/costas.hpp"
#include "problems/langford.hpp"
#include "util/rng.hpp"

namespace cspls::parallel {
namespace {

/// Unsolvable-instance pool options on which communication actually fires:
/// every walker runs its whole (small) budget, exchanging every 100
/// iterations.
WalkerPoolOptions gossip_options(Neighborhood neighborhood,
                                 Exchange exchange, CommMode mode) {
  problems::Langford langford(5);
  core::Params params =
      core::Params::from_hints(langford.tuning(), langford.num_variables());
  params.restart_limit = 2'000;
  params.max_restarts = 1;

  WalkerPoolOptions pool;
  pool.num_walkers = 4;
  pool.master_seed = 13;
  pool.scheduling = Scheduling::kSequential;
  pool.termination = Termination::kBestAfterBudget;
  pool.params = params;
  pool.communication.neighborhood = neighborhood;
  pool.communication.exchange = exchange;
  pool.communication.mode = mode;
  pool.communication.period = 100;
  pool.communication.adopt_probability = 0.5;
  return pool;
}

void expect_identical_reports(const MultiWalkReport& a,
                              const MultiWalkReport& b) {
  ASSERT_EQ(a.walkers.size(), b.walkers.size());
  for (std::size_t i = 0; i < a.walkers.size(); ++i) {
    EXPECT_EQ(a.walkers[i].result.stats.iterations,
              b.walkers[i].result.stats.iterations)
        << "walker " << i;
    EXPECT_EQ(a.walkers[i].result.cost, b.walkers[i].result.cost)
        << "walker " << i;
    EXPECT_EQ(a.walkers[i].result.solution, b.walkers[i].result.solution)
        << "walker " << i;
    EXPECT_EQ(a.walkers[i].result.stats.resets, b.walkers[i].result.stats.resets)
        << "walker " << i;
  }
  EXPECT_EQ(a.comm_publishes, b.comm_publishes);
  EXPECT_EQ(a.elite_accepted, b.elite_accepted);
  EXPECT_EQ(a.comm_adoptions, b.comm_adoptions);
}

// --- The engine's mid-walk adoption hook --------------------------------

TEST(MidWalkHook, AdoptedSolutionEndsTheWalk) {
  // Obtain a genuine solution first, then inject it through the mid-walk
  // hook into a fresh walk: the engine must notice the adopted
  // configuration reached the target and stop — through the recomputed
  // cost, not a stale error cache.
  problems::Costas costas(10);
  const core::AdaptiveSearch engine(core::AdaptiveSearch::with_defaults(costas));
  auto solver_clone = costas.clone();
  util::Xoshiro256 warmup_rng(3);
  const core::Result warmup = engine.solve(*solver_clone, warmup_rng);
  ASSERT_TRUE(warmup.solved);

  auto fresh = costas.clone();
  util::Xoshiro256 rng(4);
  core::Hooks hooks;
  hooks.mid_walk_period = 10;
  hooks.mid_walk = [&warmup](csp::Problem& problem, util::Xoshiro256&) {
    problem.assign(warmup.solution);
    return true;
  };
  const core::Result result = engine.solve(*fresh, rng, core::StopToken{}, hooks);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.cost, 0);
  EXPECT_EQ(result.solution, warmup.solution);
  EXPECT_TRUE(costas.verify(result.solution));
}

TEST(MidWalkHook, DecliningHookLeavesTheWalkByteIdentical) {
  // A mid-walk hook that consumes no RNG and adopts nothing must be
  // invisible: same trajectory as the hook-free run.
  problems::Costas costas(10);
  const core::AdaptiveSearch engine(core::AdaptiveSearch::with_defaults(costas));

  auto plain_clone = costas.clone();
  util::Xoshiro256 plain_rng(9);
  const core::Result plain = engine.solve(*plain_clone, plain_rng);

  auto hooked_clone = costas.clone();
  util::Xoshiro256 hooked_rng(9);
  core::Hooks hooks;
  hooks.mid_walk_period = 25;
  std::uint64_t gates = 0;
  hooks.mid_walk = [&gates](csp::Problem&, util::Xoshiro256&) {
    ++gates;
    return false;
  };
  const core::Result hooked =
      engine.solve(*hooked_clone, hooked_rng, core::StopToken{}, hooks);

  EXPECT_EQ(hooked.solved, plain.solved);
  EXPECT_EQ(hooked.cost, plain.cost);
  EXPECT_EQ(hooked.stats.iterations, plain.stats.iterations);
  EXPECT_EQ(hooked.stats.swaps, plain.stats.swaps);
  EXPECT_EQ(hooked.stats.resets, plain.stats.resets);
  EXPECT_EQ(hooked.solution, plain.solution);
  EXPECT_EQ(gates, plain.stats.iterations / 25);
}

TEST(MidWalkHook, AdoptingAWorseConfigurationReentersCleanly) {
  // Adoption is not always an improvement (migration is diversification):
  // after adopting an arbitrary configuration mid-walk the engine must
  // carry on consistently and still solve.
  problems::Costas costas(9);
  const core::AdaptiveSearch engine(core::AdaptiveSearch::with_defaults(costas));
  auto clone = costas.clone();
  util::Xoshiro256 rng(5);
  core::Hooks hooks;
  hooks.mid_walk_period = 50;
  bool adopted = false;
  hooks.mid_walk = [&adopted](csp::Problem& problem, util::Xoshiro256& r) {
    if (adopted) return false;
    adopted = true;
    // A fresh random configuration: almost surely worse than mid-walk state.
    (void)problem.randomize(r);
    return true;
  };
  const core::Result result = engine.solve(*clone, rng, core::StopToken{}, hooks);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(costas.verify(result.solution));
}

// --- Gossiping pools ----------------------------------------------------

TEST(AsyncGossip, DeterministicUnderSequentialScheduling) {
  for (const Exchange exchange :
       {Exchange::kElite, Exchange::kMigration, Exchange::kDecayElite}) {
    problems::Langford langford(5);
    WalkerPoolOptions pool =
        gossip_options(Neighborhood::kRing, exchange, CommMode::kAsync);
    if (exchange == Exchange::kDecayElite) pool.communication.decay = 6;
    const auto a = WalkerPool(pool).run(langford);
    const auto b = WalkerPool(pool).run(langford);
    expect_identical_reports(a, b);
  }
}

TEST(AsyncGossip, DeterministicUnderEmulatedRace) {
  problems::Langford langford(5);
  WalkerPoolOptions pool =
      gossip_options(Neighborhood::kComplete, Exchange::kElite,
                     CommMode::kAsync);
  pool.scheduling = Scheduling::kEmulatedRace;
  pool.termination = Termination::kFirstFinisher;
  const auto a = WalkerPool(pool).run(langford);
  const auto b = WalkerPool(pool).run(langford);
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.winner, b.winner);
  expect_identical_reports(a, b);
}

TEST(AsyncGossip, MigrationAdoptsMidWalk) {
  // Unconditional migration on the ring (per-walker slots): in sequential
  // order every walker after the first finds its predecessor's migrant at
  // each mid-walk gate, so with a certain gate adoptions are plentiful
  // while accepted offers stay zero (stores are not accepts).
  problems::Langford langford(5);
  WalkerPoolOptions pool = gossip_options(
      Neighborhood::kRing, Exchange::kMigration, CommMode::kAsync);
  pool.communication.adopt_probability = 1.0;
  const auto report = WalkerPool(pool).run(langford);
  EXPECT_GT(report.comm_publishes, 0u);
  EXPECT_EQ(report.elite_accepted, 0u);  // migration never "accepts"
  EXPECT_GT(report.comm_adoptions, 0u);
}

TEST(AsyncGossip, MidWalkGateNeverAdoptsOwnPublication) {
  // A single walker on the complete graph publishes into the one shared
  // slot and is also its only reader: every mid-walk gate would "adopt"
  // its own configuration back.  The self-publication filter must make
  // gossip inert here — zero adoptions despite a certain gate.
  problems::Langford langford(5);
  WalkerPoolOptions pool = gossip_options(
      Neighborhood::kComplete, Exchange::kMigration, CommMode::kAsync);
  pool.num_walkers = 1;
  pool.communication.adopt_probability = 1.0;
  const auto report = WalkerPool(pool).run(langford);
  EXPECT_GT(report.comm_publishes, 0u);  // it still publishes
  EXPECT_EQ(report.comm_adoptions, 0u);  // but never gossips with itself
}

TEST(AsyncGossip, GossipAdoptsAtLeastAsOftenAsOnReset) {
  // Same ring population, same seed: async mode keeps the reset-time
  // adoption path and adds mid-walk gates that (for walkers > 0) always
  // face a fresh predecessor migrant, so with a certain gate it adopts
  // far more often than restart-time-only communication.
  problems::Langford langford(5);
  WalkerPoolOptions on_reset = gossip_options(
      Neighborhood::kRing, Exchange::kMigration, CommMode::kOnReset);
  on_reset.communication.adopt_probability = 1.0;
  WalkerPoolOptions async = on_reset;
  async.communication.mode = CommMode::kAsync;
  const auto reset_report = WalkerPool(on_reset).run(langford);
  const auto async_report = WalkerPool(async).run(langford);
  EXPECT_GE(async_report.comm_adoptions, reset_report.comm_adoptions);
  EXPECT_GT(async_report.comm_adoptions, 0u);
}

TEST(AsyncGossip, ThreadedGossipSolves) {
  // The TSan job runs this binary: concurrent mid-walk pulls against the
  // slot mutexes and the pool-wide clock must be race-free.
  problems::Costas costas(10);
  WalkerPoolOptions pool;
  pool.num_walkers = 4;
  pool.master_seed = 6;
  pool.scheduling = Scheduling::kThreads;
  pool.termination = Termination::kFirstFinisher;
  pool.communication.neighborhood = Neighborhood::kHypercube;
  pool.communication.exchange = Exchange::kElite;
  pool.communication.mode = CommMode::kAsync;
  pool.communication.period = 50;
  pool.communication.adopt_probability = 0.5;
  const auto report = WalkerPool(pool).run(costas);
  ASSERT_TRUE(report.solved);
  EXPECT_TRUE(costas.verify(report.best.solution));
}

TEST(AsyncGossip, ThreadedMigrationGossipSolves) {
  problems::Costas costas(10);
  WalkerPoolOptions pool;
  pool.num_walkers = 4;
  pool.master_seed = 8;
  pool.scheduling = Scheduling::kThreads;
  pool.termination = Termination::kFirstFinisher;
  pool.communication.neighborhood = Neighborhood::kTorus;
  pool.communication.exchange = Exchange::kMigration;
  pool.communication.mode = CommMode::kAsync;
  pool.communication.period = 50;
  pool.communication.adopt_probability = 0.5;
  const auto report = WalkerPool(pool).run(costas);
  ASSERT_TRUE(report.solved);
  EXPECT_TRUE(costas.verify(report.best.solution));
}

// --- Validation ---------------------------------------------------------

TEST(AsyncGossipValidation, AsyncWithoutAnExchangeIsRejected) {
  problems::Costas costas(8);
  WalkerPoolOptions pool;
  pool.communication.mode = CommMode::kAsync;  // exchange stays kNone
  try {
    (void)WalkerPool(std::move(pool)).run(costas);
    FAIL() << "async x none accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("async"), std::string::npos)
        << e.what();
  }
}

TEST(AsyncGossipValidation, DefaultModeIsOnReset) {
  EXPECT_EQ(CommunicationPolicy{}.mode, CommMode::kOnReset);
  // The deprecated Topology aliases keep the historical semantics.
  EXPECT_EQ(CommunicationPolicy{Topology::kRingElite}.mode,
            CommMode::kOnReset);
}

}  // namespace
}  // namespace cspls::parallel
